//! # reweb — reactive (ECA) rules for the Web
//!
//! A complete implementation of the language design laid out in
//! **“Twelve Theses on Reactive Rules for the Web”** (François Bry and
//! Michael Eckert, EDBT 2006 Workshops): an XChange-style
//! Event-Condition-Action rule language with composite event queries,
//! an Xcerpt-style Web query language, an update/action language, local
//! per-node rule processing over a simulated Web, meta-programming
//! (rules as data), and AAA support.
//!
//! This facade crate re-exports every layer:
//!
//! * [`term`] — data substrate: semi-structured terms, RDF, identity, diff,
//!   versioned resource stores, virtual time.
//! * [`query`] — Web query language: query terms, simulation matching,
//!   construct terms, deductive rules (views).
//! * [`events`] — composite event queries: incremental (data-driven) and
//!   naive (query-driven) evaluation, windows, accumulation, absence.
//! * [`update`] — update language and compound actions: transactional
//!   sequences, alternatives, branching, procedures.
//! * [`core`] — the ECA rule language and reactive engine (the paper's
//!   primary contribution), including meta-rules, trust negotiation and AAA.
//! * [`persist`] — durability: write-ahead log, snapshots, and crash
//!   recovery wrapping single or sharded engines ([`DurableEngine`]).
//! * [`net`] — the networked ingress tier: a framed TCP listener,
//!   backpressured router, and per-client reply streams in front of any
//!   engine ([`NetServer`], [`NetClient`]; `docs/WIRE_PROTOCOL.md`).
//! * [`obs`] — observability: causal tracing through a lock-free flight
//!   recorder, log-scale latency histograms, and reaction provenance
//!   (`docs/OBSERVABILITY.md`).
//! * [`production`] — the production-rule (Condition-Action) baseline.
//! * [`websim`] — deterministic discrete-event simulation of Web nodes.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the full system
//! inventory and the per-thesis experiment index.

pub use reweb_core as core;
// The batch-ingestion front-end, re-exported at the root: scaling out a
// node is a facade-level concern, not something users should dig into
// `core::shard` for.
pub use reweb_core::{ExecMode, InMessage, ShardedEngine};
pub use reweb_events as events;
pub use reweb_persist as persist;
// Durability is likewise a facade-level concern: a node that must
// survive restarts wraps its engine once, here.
pub use reweb_net as net;
pub use reweb_persist::{DurableEngine, DurableOptions, SyncPolicy};
// Serving over TCP is the facade-level entry point to the whole stack:
// bind a server around any engine, point clients at it.
pub use reweb_net::{NetClient, NetConfig, NetServer};
pub use reweb_obs as obs;
// Observability is a facade-level concern too: one shared `Obs` handle
// threads tracing and histograms through every layer above.
pub use reweb_obs::Obs;
pub use reweb_production as production;
pub use reweb_query as query;
pub use reweb_term as term;
pub use reweb_update as update;
pub use reweb_websim as websim;
