//! Virtual time.
//!
//! Every component of `reweb` — event queries with temporal windows
//! (Thesis 5), the discrete-event Web simulator (Theses 2/3), volatile-data
//! garbage collection (Thesis 4) — shares this one clock representation so
//! that whole-system runs are deterministic and reproducible. Time is virtual
//! milliseconds since an arbitrary epoch.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in milliseconds since the simulation epoch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Timestamp(pub u64);

/// A span of virtual time, in milliseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Dur(pub u64);

impl Timestamp {
    /// The simulation epoch (time zero).
    pub const ZERO: Timestamp = Timestamp(0);

    /// Milliseconds since the epoch.
    pub fn millis(self) -> u64 {
        self.0
    }

    /// The duration elapsed since `earlier`; zero if `earlier` is later.
    pub fn since(self, earlier: Timestamp) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }

    /// Saturating subtraction of a duration.
    pub fn saturating_sub(self, d: Dur) -> Timestamp {
        Timestamp(self.0.saturating_sub(d.0))
    }
}

impl Dur {
    /// The empty duration.
    pub const ZERO: Dur = Dur(0);

    /// A duration of `ms` milliseconds.
    pub const fn millis(ms: u64) -> Dur {
        Dur(ms)
    }
    /// A duration of `s` seconds.
    pub const fn secs(s: u64) -> Dur {
        Dur(s * 1_000)
    }
    /// A duration of `m` minutes.
    pub const fn mins(m: u64) -> Dur {
        Dur(m * 60_000)
    }
    /// A duration of `h` hours.
    pub const fn hours(h: u64) -> Dur {
        Dur(h * 3_600_000)
    }
    /// A duration of `d` days.
    pub const fn days(d: u64) -> Dur {
        Dur(d * 86_400_000)
    }

    /// The duration in milliseconds.
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// Fractional seconds, for reporting.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// True for the empty duration.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Parse a duration literal with unit suffix: `"250ms"`, `"3s"`, `"5m"`,
    /// `"2h"`, `"1d"`. A bare number is milliseconds.
    pub fn parse(s: &str) -> Option<Dur> {
        let s = s.trim();
        let split = s.find(|c: char| !c.is_ascii_digit()).unwrap_or(s.len());
        let (num, unit) = s.split_at(split);
        let n: u64 = num.parse().ok()?;
        match unit {
            "" | "ms" => Some(Dur::millis(n)),
            "s" => Some(Dur::secs(n)),
            "m" => Some(Dur::mins(n)),
            "h" => Some(Dur::hours(n)),
            "d" => Some(Dur::days(n)),
            _ => None,
        }
    }
}

impl Add<Dur> for Timestamp {
    type Output = Timestamp;
    fn add(self, d: Dur) -> Timestamp {
        Timestamp(self.0 + d.0)
    }
}

impl AddAssign<Dur> for Timestamp {
    fn add_assign(&mut self, d: Dur) {
        self.0 += d.0;
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = Dur;
    fn sub(self, rhs: Timestamp) -> Dur {
        self.since(rhs)
    }
}

impl Add<Dur> for Dur {
    type Output = Dur;
    fn add(self, d: Dur) -> Dur {
        Dur(self.0 + d.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}ms", self.0)
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 3_600_000 && self.0 % 3_600_000 == 0 {
            write!(f, "{}h", self.0 / 3_600_000)
        } else if self.0 >= 60_000 && self.0 % 60_000 == 0 {
            write!(f, "{}m", self.0 / 60_000)
        } else if self.0 >= 1_000 && self.0 % 1_000 == 0 {
            write!(f, "{}s", self.0 / 1_000)
        } else {
            write!(f, "{}ms", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = Timestamp(1_000);
        assert_eq!(t + Dur::secs(2), Timestamp(3_000));
        assert_eq!(Timestamp(5_000) - Timestamp(2_000), Dur::secs(3));
        // `since` saturates rather than wrapping.
        assert_eq!(Timestamp(1_000).since(Timestamp(9_000)), Dur::ZERO);
    }

    #[test]
    fn constructors() {
        assert_eq!(Dur::secs(1), Dur::millis(1_000));
        assert_eq!(Dur::mins(2), Dur::secs(120));
        assert_eq!(Dur::hours(1), Dur::mins(60));
        assert_eq!(Dur::days(1), Dur::hours(24));
    }

    #[test]
    fn parse_units() {
        assert_eq!(Dur::parse("250ms"), Some(Dur::millis(250)));
        assert_eq!(Dur::parse("3s"), Some(Dur::secs(3)));
        assert_eq!(Dur::parse("5m"), Some(Dur::mins(5)));
        assert_eq!(Dur::parse("2h"), Some(Dur::hours(2)));
        assert_eq!(Dur::parse("1d"), Some(Dur::days(1)));
        assert_eq!(Dur::parse("42"), Some(Dur::millis(42)));
        assert_eq!(Dur::parse("7w"), None);
        assert_eq!(Dur::parse(""), None);
    }

    #[test]
    fn display_picks_largest_exact_unit() {
        assert_eq!(Dur::hours(2).to_string(), "2h");
        assert_eq!(Dur::mins(90).to_string(), "90m");
        assert_eq!(Dur::millis(1_500).to_string(), "1500ms");
        assert_eq!(Dur::secs(45).to_string(), "45s");
    }
}
