//! URI-addressed, versioned persistent documents.
//!
//! The [`ResourceStore`] is the "persistent data" side of Thesis 4's
//! persistent/volatile distinction: documents live here until explicitly
//! updated, are retrieved on request (pull), and are the targets of the
//! update language (Thesis 8). Each `put` bumps a version counter, which is
//! what pollers compare to detect remote changes cheaply before diffing.
//!
//! Because [`Term`]s are immutable and structurally shared, a store
//! [`snapshot`](ResourceStore::snapshot) is a cheap map clone — this is the
//! basis for transactional compound actions (all-or-nothing `SEQ`).

use std::collections::BTreeMap;

use crate::error::TermError;
use crate::term::Term;

/// One versioned document.
#[derive(Clone, Debug, PartialEq)]
pub struct Versioned {
    /// The document's current content.
    pub doc: Term,
    /// Monotonic counter, bumped on every `put`.
    pub version: u64,
}

/// A set of named (URI-addressed) persistent documents.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ResourceStore {
    docs: BTreeMap<String, Versioned>,
}

impl ResourceStore {
    /// An empty store.
    pub fn new() -> ResourceStore {
        ResourceStore::default()
    }

    /// Fetch a document (a simulated `GET`).
    pub fn get(&self, uri: &str) -> Result<&Term, TermError> {
        self.docs
            .get(uri)
            .map(|v| &v.doc)
            .ok_or_else(|| TermError::UnknownResource(uri.to_string()))
    }

    /// Current version of a document, if present.
    pub fn version(&self, uri: &str) -> Option<u64> {
        self.docs.get(uri).map(|v| v.version)
    }

    /// Is a document stored under `uri`?
    pub fn contains(&self, uri: &str) -> bool {
        self.docs.contains_key(uri)
    }

    /// Create or replace a document; bumps the version.
    pub fn put(&mut self, uri: impl Into<String>, doc: Term) {
        let uri = uri.into();
        match self.docs.get_mut(&uri) {
            Some(v) => {
                v.version += 1;
                v.doc = doc;
            }
            None => {
                self.docs.insert(uri, Versioned { doc, version: 1 });
            }
        }
    }

    /// Apply a pure transformation to a document in place.
    pub fn update_with(
        &mut self,
        uri: &str,
        f: impl FnOnce(&Term) -> Result<Term, TermError>,
    ) -> Result<(), TermError> {
        let cur = self.get(uri)?.clone();
        let new = f(&cur)?;
        self.put(uri, new);
        Ok(())
    }

    /// Delete a document entirely.
    pub fn remove(&mut self, uri: &str) -> Result<(), TermError> {
        self.docs
            .remove(uri)
            .map(|_| ())
            .ok_or_else(|| TermError::UnknownResource(uri.to_string()))
    }

    /// All URIs, in sorted order.
    pub fn uris(&self) -> impl Iterator<Item = &str> {
        self.docs.keys().map(|s| s.as_str())
    }

    /// Number of stored documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when no documents are stored.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Install a document at an explicit version — the durability
    /// layer's restore path, which must reproduce version counters
    /// exactly so pollers that compare versions across a crash see the
    /// same numbers an uninterrupted node would have shown.
    pub fn put_with_version(&mut self, uri: impl Into<String>, doc: Term, version: u64) {
        self.docs.insert(uri.into(), Versioned { doc, version });
    }

    /// Cheap whole-store snapshot (structural sharing makes this a map of
    /// `Arc` bumps, not a deep copy). Used for transactional actions.
    pub fn snapshot(&self) -> ResourceStore {
        self.clone()
    }

    /// Restore a snapshot taken earlier (transaction rollback).
    pub fn restore(&mut self, snap: ResourceStore) {
        *self = snap;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_versioning() {
        let mut s = ResourceStore::new();
        assert!(s.get("http://x/doc").is_err());
        s.put("http://x/doc", Term::elem("a"));
        assert_eq!(s.version("http://x/doc"), Some(1));
        assert_eq!(s.get("http://x/doc").unwrap().label(), Some("a"));
        s.put("http://x/doc", Term::elem("b"));
        assert_eq!(s.version("http://x/doc"), Some(2));
    }

    #[test]
    fn update_with_applies_transformation() {
        let mut s = ResourceStore::new();
        s.put("u", Term::ordered("l", vec![]));
        s.update_with("u", |d| d.with_child_pushed(Term::text("x")))
            .unwrap();
        assert_eq!(s.get("u").unwrap().children().len(), 1);
        assert_eq!(s.version("u"), Some(2));
        // A failing transformation leaves the store untouched.
        let before = s.get("u").unwrap().clone();
        let r = s.update_with("u", |_| Err(TermError::InvalidEdit("boom".into())));
        assert!(r.is_err());
        assert_eq!(s.get("u").unwrap(), &before);
        assert_eq!(s.version("u"), Some(2));
    }

    #[test]
    fn snapshot_restore_rolls_back() {
        let mut s = ResourceStore::new();
        s.put("u", Term::elem("before"));
        let snap = s.snapshot();
        s.put("u", Term::elem("after"));
        s.put("v", Term::elem("new"));
        s.restore(snap);
        assert_eq!(s.get("u").unwrap().label(), Some("before"));
        assert!(!s.contains("v"));
    }

    #[test]
    fn remove_and_uris() {
        let mut s = ResourceStore::new();
        s.put("b", Term::elem("x"));
        s.put("a", Term::elem("y"));
        assert_eq!(s.uris().collect::<Vec<_>>(), vec!["a", "b"]);
        s.remove("a").unwrap();
        assert!(s.remove("a").is_err());
        assert_eq!(s.len(), 1);
    }
}
