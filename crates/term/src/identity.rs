//! Identity of data items — Thesis 10.
//!
//! > "Reactive languages with the ability to monitor data items (or objects)
//! > and react to their changes need to deal with identity of the data
//! > items. There are basically two approaches to identity: extensional
//! > identity and surrogate identity."
//!
//! * **Extensional identity** ([`ext_id`]) is a deterministic 64-bit hash of
//!   a term's canonical form: equal-valued objects are identical, and an
//!   object *loses its identity when its value changes* — exactly the
//!   behaviour the thesis warns about.
//! * **Surrogate identity** ([`IdentityMode::Surrogate`]) identifies an
//!   object by a designated key attribute (the `xml:id`-style "auxiliary
//!   identity-defining attribute" of the thesis): the object keeps its
//!   identity across value changes as long as the key survives. Because
//!   surrogates must "become part of the data" to cross the network, they
//!   are plain attributes here, not memory addresses.
//!
//! Experiment E10 contrasts the two regimes on a change-monitoring workload.

use crate::term::Term;

/// FNV-1a 64-bit — the deterministic hash used for extensional identity and
/// for salted authentication tokens (`reweb-core::aaa`). Implemented here so
/// results do not depend on `std`'s unspecified hasher.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Extensional identity: hash of the canonical serialized form. Two terms
/// have the same `ext_id` iff they are structurally equal (multiset
/// semantics for unordered elements), up to 64-bit collisions.
pub fn ext_id(t: &Term) -> u64 {
    fnv1a(t.canonicalize().to_string().as_bytes())
}

/// Which identity regime a monitoring observer uses (Thesis 10).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IdentityMode {
    /// Objects are identified by their value ([`ext_id`]). A changed object
    /// is a *different* object: diffs report delete + insert.
    Extensional,
    /// Objects are identified by the value of a key attribute (e.g. `"id"`).
    /// A changed object with a stable key is *the same* object: diffs can
    /// report an in-place modification.
    Surrogate {
        /// Name of the identity-defining attribute (without the `@`).
        key_attr: String,
    },
}

impl IdentityMode {
    /// Conventional surrogate mode keyed on `@id`.
    pub fn surrogate() -> IdentityMode {
        IdentityMode::Surrogate {
            key_attr: "id".into(),
        }
    }

    /// The identity key of `t` under this mode, if it has one.
    /// Under `Surrogate`, elements without the key attribute fall back to
    /// extensional identity (the thesis: Web resources "only rarely provide
    /// auxiliary identity-defining attributes").
    pub fn key_of(&self, t: &Term) -> IdentityKey {
        match self {
            IdentityMode::Extensional => IdentityKey::Ext(ext_id(t)),
            IdentityMode::Surrogate { key_attr } => match t.attr(key_attr) {
                Some(v) => IdentityKey::Surrogate(v.to_string()),
                None => IdentityKey::Ext(ext_id(t)),
            },
        }
    }
}

/// The identity of one data item under some [`IdentityMode`].
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IdentityKey {
    /// Extensional: the item's value hash ([`ext_id`]).
    Ext(u64),
    /// Surrogate: the value of the key attribute.
    Surrogate(String),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_values() {
        // FNV-1a reference vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn ext_id_is_order_insensitive_for_unordered() {
        let a = Term::unordered("s", vec![Term::text("x"), Term::text("y")]);
        let b = Term::unordered("s", vec![Term::text("y"), Term::text("x")]);
        assert_eq!(ext_id(&a), ext_id(&b));
        let c = Term::ordered("s", vec![Term::text("x"), Term::text("y")]);
        let d = Term::ordered("s", vec![Term::text("y"), Term::text("x")]);
        assert_ne!(ext_id(&c), ext_id(&d));
    }

    #[test]
    fn ext_identity_lost_on_value_change() {
        let before = Term::build("article").field("title", "v1").finish();
        let after = Term::build("article").field("title", "v2").finish();
        // The thesis's point: under extensional identity these are
        // different objects.
        assert_ne!(
            IdentityMode::Extensional.key_of(&before),
            IdentityMode::Extensional.key_of(&after)
        );
    }

    #[test]
    fn surrogate_identity_survives_value_change() {
        let before = Term::build("article")
            .attr("id", "a42")
            .field("title", "v1")
            .finish();
        let after = Term::build("article")
            .attr("id", "a42")
            .field("title", "v2")
            .finish();
        let mode = IdentityMode::surrogate();
        assert_eq!(mode.key_of(&before), mode.key_of(&after));
        assert_eq!(
            mode.key_of(&before),
            IdentityKey::Surrogate("a42".to_string())
        );
    }

    #[test]
    fn surrogate_falls_back_to_extensional_without_key() {
        let t = Term::build("article").field("title", "v1").finish();
        let mode = IdentityMode::surrogate();
        assert_eq!(mode.key_of(&t), IdentityKey::Ext(ext_id(&t)));
    }
}
