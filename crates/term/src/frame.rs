//! Length- and CRC32-framed records — the on-disk substrate of the
//! durability layer (`reweb_persist`).
//!
//! A *frame* is `[len: u32 LE][crc32(payload): u32 LE][payload bytes]`.
//! Frames are written append-only; a reader scans a byte buffer from the
//! front and stops at the first frame that is incomplete or fails its
//! checksum. Everything before that point is trusted, everything from it
//! on is a **torn tail** — the expected residue of a crash mid-write —
//! and is reported (not discarded silently) so the writer can truncate
//! the file back to the valid prefix before appending again.
//!
//! The payloads themselves are opaque bytes here; the durability layer
//! puts the textual [`crate::Term`] syntax inside them, so log records
//! survive process boundaries (interned [`crate::Sym`]s serialize as
//! strings and re-intern on load).

/// Maximum payload size a frame may claim (64 MiB). A length prefix
/// larger than this is treated as corruption rather than an instruction
/// to allocate arbitrary memory.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// Size of the frame header: 4 length bytes + 4 CRC bytes.
pub const FRAME_HEADER_LEN: usize = 8;

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial), bit-reflected,
/// table-driven. Self-contained because the build environment has no
/// registry access for a checksum crate.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        let mut i = 0usize;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    });
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Encode one frame (header + payload) into a fresh byte vector.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Append one frame to a writer. Payloads over [`MAX_FRAME_LEN`] are
/// refused with `InvalidInput` *before* any byte is written: a frame
/// the reader would classify as corrupt must never be written (let
/// alone fsynced and acknowledged) in the first place.
pub fn write_frame(w: &mut impl std::io::Write, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() as u64 > MAX_FRAME_LEN as u64 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!(
                "frame payload of {} bytes exceeds MAX_FRAME_LEN ({MAX_FRAME_LEN})",
                payload.len()
            ),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    w.write_all(payload)
}

/// Why a frame scan stopped where it did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TailState {
    /// The buffer ends exactly on a frame boundary — nothing torn.
    Clean,
    /// The final frame's header is incomplete (fewer than 8 bytes left —
    /// this includes a CRC-less or truncated length prefix).
    TruncatedHeader,
    /// The final frame's header is complete but the payload is shorter
    /// than the length prefix claims.
    TruncatedPayload,
    /// A complete frame whose payload fails its checksum (or whose
    /// length prefix exceeds [`MAX_FRAME_LEN`]).
    CorruptPayload,
}

/// Result of scanning a byte buffer for frames.
#[derive(Clone, Debug)]
pub struct FrameScan {
    /// `(offset, payload)` of every valid frame, in order; the offset is
    /// the frame's own start (its header byte), so `offset` values are
    /// stable record identifiers for log positions.
    pub frames: Vec<(u64, Vec<u8>)>,
    /// Bytes of the valid prefix; everything at and after this offset is
    /// the torn tail (equal to the buffer length when `tail` is clean).
    pub valid_len: u64,
    /// What terminated the scan.
    pub tail: TailState,
}

/// Scan a buffer front-to-back, returning every frame of the longest
/// valid prefix and classifying the tail. A torn or corrupt final record
/// is *expected* after a crash and is never an error here — callers
/// truncate to `valid_len` and carry on.
pub fn scan_frames(buf: &[u8]) -> FrameScan {
    let mut frames = Vec::new();
    let mut pos = 0usize;
    let tail = loop {
        if pos == buf.len() {
            break TailState::Clean;
        }
        if buf.len() - pos < FRAME_HEADER_LEN {
            break TailState::TruncatedHeader;
        }
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if len as u32 > MAX_FRAME_LEN {
            break TailState::CorruptPayload;
        }
        let start = pos + FRAME_HEADER_LEN;
        if buf.len() - start < len {
            break TailState::TruncatedPayload;
        }
        let payload = &buf[start..start + len];
        if crc32(payload) != crc {
            break TailState::CorruptPayload;
        }
        frames.push((pos as u64, payload.to_vec()));
        pos = start + len;
    };
    FrameScan {
        frames,
        valid_len: pos as u64,
        tail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"alpha").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, "β-payload".as_bytes()).unwrap();
        let scan = scan_frames(&buf);
        assert_eq!(scan.tail, TailState::Clean);
        assert_eq!(scan.valid_len, buf.len() as u64);
        let payloads: Vec<&[u8]> = scan.frames.iter().map(|(_, p)| p.as_slice()).collect();
        assert_eq!(
            payloads,
            vec![b"alpha".as_slice(), b"", "β-payload".as_bytes()]
        );
        assert_eq!(scan.frames[0].0, 0);
        assert_eq!(scan.frames[1].0, (FRAME_HEADER_LEN + 5) as u64);
    }

    #[test]
    fn every_truncation_point_keeps_the_valid_prefix() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"first").unwrap();
        let keep = buf.len();
        write_frame(&mut buf, b"second-record").unwrap();
        // Cutting anywhere inside the second frame must preserve exactly
        // the first frame and classify the tail as torn.
        for cut in keep..buf.len() {
            let scan = scan_frames(&buf[..cut]);
            assert_eq!(scan.frames.len(), 1, "cut at {cut}");
            assert_eq!(scan.valid_len, keep as u64, "cut at {cut}");
            if cut == keep {
                continue; // boundary handled by the loop start (Clean)
            }
            assert_ne!(scan.tail, TailState::Clean, "cut at {cut}");
        }
        assert_eq!(scan_frames(&buf[..keep]).tail, TailState::Clean);
    }

    #[test]
    fn truncated_length_prefix_is_torn_not_fatal() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"ok").unwrap();
        let keep = buf.len();
        buf.extend_from_slice(&[0x07, 0x00]); // 2 of 4 length bytes
        let scan = scan_frames(&buf);
        assert_eq!(scan.frames.len(), 1);
        assert_eq!(scan.valid_len, keep as u64);
        assert_eq!(scan.tail, TailState::TruncatedHeader);
    }

    #[test]
    fn corrupt_payload_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"ok").unwrap();
        let keep = buf.len();
        write_frame(&mut buf, b"will-be-flipped").unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0x40;
        let scan = scan_frames(&buf);
        assert_eq!(scan.frames.len(), 1);
        assert_eq!(scan.valid_len, keep as u64);
        assert_eq!(scan.tail, TailState::CorruptPayload);
    }

    #[test]
    fn oversized_payload_is_refused_before_writing() {
        let huge = vec![0u8; MAX_FRAME_LEN as usize + 1];
        let mut buf = Vec::new();
        let err = write_frame(&mut buf, &huge).expect_err("must refuse");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        assert!(buf.is_empty(), "no bytes written for a refused frame");
    }

    #[test]
    fn absurd_length_prefix_is_corruption() {
        let mut buf = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
        buf.extend_from_slice(&[0u8; 12]);
        let scan = scan_frames(&buf);
        assert!(scan.frames.is_empty());
        assert_eq!(scan.tail, TailState::CorruptPayload);
    }
}
