//! RDF triples and graphs — the Semantic Web half of the paper's data story.
//!
//! The paper stresses that "updates and reactivity are as much a Semantic
//! Web issue as they are a standard Web issue" and that e-commerce offers
//! "might be described by RDF meta-data … as well as inference from RDF
//! triples". This module provides:
//!
//! * [`Iri`], [`RdfObject`], [`Triple`] — the RDF data model (literals are
//!   plain strings; datatypes/langtags are orthogonal to every thesis).
//! * [`Graph`] — a triple store with pattern lookup on any combination of
//!   bound/unbound subject, predicate, object.
//! * [`Graph::rdfs_closure`] — the classic RDFS entailments (subclass
//!   transitivity, type propagation, subproperty transitivity and
//!   propagation), the "inference from RDF triples, RDF Schema" the paper
//!   mentions.
//! * Term mapping ([`Triple::to_term`] / [`Triple::from_term`]) so triples
//!   can travel inside event messages and be queried with the same query
//!   language as everything else (Thesis 7's "language coherency").

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use crate::term::Term;

/// An IRI (interned string).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Iri(Arc<str>);

impl Iri {
    /// Intern an IRI string.
    pub fn new(s: impl AsRef<str>) -> Iri {
        Iri(Arc::from(s.as_ref()))
    }
    /// The IRI text, without angle brackets.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Iri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}>", self.0)
    }
}

/// Well-known RDFS/RDF vocabulary.
pub mod vocab {
    /// `rdf:type` — instance-of.
    pub const RDF_TYPE: &str = "rdf:type";
    /// `rdfs:subClassOf` — class hierarchy.
    pub const RDFS_SUBCLASS_OF: &str = "rdfs:subClassOf";
    /// `rdfs:subPropertyOf` — property hierarchy.
    pub const RDFS_SUBPROPERTY_OF: &str = "rdfs:subPropertyOf";
}

/// Object position of a triple: IRI or literal.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RdfObject {
    /// A resource.
    Iri(Iri),
    /// A plain literal.
    Literal(String),
}

impl RdfObject {
    /// An IRI object.
    pub fn iri(s: impl AsRef<str>) -> RdfObject {
        RdfObject::Iri(Iri::new(s))
    }
    /// A literal object.
    pub fn lit(s: impl Into<String>) -> RdfObject {
        RdfObject::Literal(s.into())
    }
    /// The IRI, if this object is one.
    pub fn as_iri(&self) -> Option<&Iri> {
        match self {
            RdfObject::Iri(i) => Some(i),
            RdfObject::Literal(_) => None,
        }
    }
}

impl fmt::Display for RdfObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdfObject::Iri(i) => write!(f, "{i}"),
            RdfObject::Literal(s) => write!(f, "{s:?}"),
        }
    }
}

/// One RDF statement.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    /// Subject.
    pub s: Iri,
    /// Predicate.
    pub p: Iri,
    /// Object.
    pub o: RdfObject,
}

impl Triple {
    /// A triple from subject/predicate IRIs and an object.
    pub fn new(s: impl AsRef<str>, p: impl AsRef<str>, o: RdfObject) -> Triple {
        Triple {
            s: Iri::new(s),
            p: Iri::new(p),
            o,
        }
    }

    /// Render as a term: `triple[s["…"], p["…"], o["…"]]` with an
    /// `@kind` attribute on the object distinguishing IRIs from literals.
    pub fn to_term(&self) -> Term {
        let (kind, o) = match &self.o {
            RdfObject::Iri(i) => ("iri", i.as_str().to_string()),
            RdfObject::Literal(l) => ("lit", l.clone()),
        };
        Term::build("triple")
            .field("s", self.s.as_str())
            .field("p", self.p.as_str())
            .child(Term::build("o").attr("kind", kind).text_child(o).finish())
            .finish()
    }

    /// Inverse of [`Triple::to_term`].
    pub fn from_term(t: &Term) -> Option<Triple> {
        if t.label() != Some("triple") {
            return None;
        }
        let field = |name: &str| {
            t.children()
                .iter()
                .find(|c| c.label() == Some(name))
                .map(|c| c.text_content())
        };
        let s = field("s")?;
        let p = field("p")?;
        let o_node = t.children().iter().find(|c| c.label() == Some("o"))?;
        let o_text = o_node.text_content();
        let o = match o_node.attr("kind") {
            Some("iri") => RdfObject::iri(o_text),
            _ => RdfObject::lit(o_text),
        };
        Some(Triple::new(s, p, o))
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.s, self.p, self.o)
    }
}

/// A set of triples with pattern lookup.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Graph {
    triples: BTreeSet<Triple>,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Graph {
        Graph::default()
    }

    /// Add a triple; `false` if it was already present.
    pub fn insert(&mut self, t: Triple) -> bool {
        self.triples.insert(t)
    }

    /// Remove a triple; `false` if it was absent.
    pub fn remove(&mut self, t: &Triple) -> bool {
        self.triples.remove(t)
    }

    /// Is this exact triple in the graph?
    pub fn contains(&self, t: &Triple) -> bool {
        self.triples.contains(t)
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True when the graph holds no triples.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Iterate over all triples in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &Triple> {
        self.triples.iter()
    }

    /// All triples matching the pattern; `None` positions are wildcards.
    pub fn matching<'g>(
        &'g self,
        s: Option<&'g str>,
        p: Option<&'g str>,
        o: Option<&'g RdfObject>,
    ) -> impl Iterator<Item = &'g Triple> + 'g {
        self.triples.iter().filter(move |t| {
            s.map_or(true, |s| t.s.as_str() == s)
                && p.map_or(true, |p| t.p.as_str() == p)
                && o.map_or(true, |o| &t.o == o)
        })
    }

    /// The RDFS closure: adds entailed triples until fixpoint.
    ///
    /// Rules implemented (the core of RDF Schema entailment):
    /// * `subClassOf` transitivity
    /// * `rdf:type` propagation along `subClassOf`
    /// * `subPropertyOf` transitivity
    /// * triple propagation along `subPropertyOf`
    pub fn rdfs_closure(&self) -> Graph {
        let mut g = self.clone();
        loop {
            let mut new: Vec<Triple> = Vec::new();
            // subClassOf transitivity: (a ⊑ b), (b ⊑ c) ⟹ (a ⊑ c)
            for t1 in g.matching(None, Some(vocab::RDFS_SUBCLASS_OF), None) {
                if let Some(mid) = t1.o.as_iri() {
                    for t2 in g.matching(Some(mid.as_str()), Some(vocab::RDFS_SUBCLASS_OF), None) {
                        let cand = Triple {
                            s: t1.s.clone(),
                            p: t1.p.clone(),
                            o: t2.o.clone(),
                        };
                        if !g.contains(&cand) {
                            new.push(cand);
                        }
                    }
                }
            }
            // type propagation: (x type c), (c ⊑ d) ⟹ (x type d)
            for t1 in g.matching(None, Some(vocab::RDF_TYPE), None) {
                if let Some(cls) = t1.o.as_iri() {
                    for t2 in g.matching(Some(cls.as_str()), Some(vocab::RDFS_SUBCLASS_OF), None) {
                        let cand = Triple {
                            s: t1.s.clone(),
                            p: t1.p.clone(),
                            o: t2.o.clone(),
                        };
                        if !g.contains(&cand) {
                            new.push(cand);
                        }
                    }
                }
            }
            // subPropertyOf transitivity
            for t1 in g.matching(None, Some(vocab::RDFS_SUBPROPERTY_OF), None) {
                if let Some(mid) = t1.o.as_iri() {
                    for t2 in g.matching(Some(mid.as_str()), Some(vocab::RDFS_SUBPROPERTY_OF), None)
                    {
                        let cand = Triple {
                            s: t1.s.clone(),
                            p: t1.p.clone(),
                            o: t2.o.clone(),
                        };
                        if !g.contains(&cand) {
                            new.push(cand);
                        }
                    }
                }
            }
            // property propagation: (s p o), (p ⊑p q) ⟹ (s q o)
            let sub_props: Vec<(String, Iri)> = g
                .matching(None, Some(vocab::RDFS_SUBPROPERTY_OF), None)
                .filter_map(|t| {
                    t.o.as_iri()
                        .map(|sup| (t.s.as_str().to_string(), sup.clone()))
                })
                .collect();
            for (p_sub, p_sup) in &sub_props {
                for t in g.matching(None, Some(p_sub), None) {
                    let cand = Triple {
                        s: t.s.clone(),
                        p: p_sup.clone(),
                        o: t.o.clone(),
                    };
                    if !g.contains(&cand) {
                        new.push(cand);
                    }
                }
            }
            if new.is_empty() {
                return g;
            }
            for t in new {
                g.insert(t);
            }
        }
    }

    /// Render the whole graph as one term (a document of `triple[…]`
    /// children) so graphs can live in a [`crate::ResourceStore`] and be
    /// queried like any other document.
    pub fn to_term(&self) -> Term {
        Term::build("graph")
            .children(self.triples.iter().map(Triple::to_term))
            .finish()
    }

    /// Inverse of [`Graph::to_term`]; non-triple children are skipped.
    pub fn from_term(t: &Term) -> Graph {
        let mut g = Graph::new();
        for c in t.children() {
            if let Some(tr) = Triple::from_term(c) {
                g.insert(tr);
            }
        }
        g
    }
}

impl FromIterator<Triple> for Graph {
    fn from_iter<I: IntoIterator<Item = Triple>>(iter: I) -> Graph {
        Graph {
            triples: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn offer_graph() -> Graph {
        [
            Triple::new("ex:ball", vocab::RDF_TYPE, RdfObject::iri("ex:SportsGood")),
            Triple::new(
                "ex:SportsGood",
                vocab::RDFS_SUBCLASS_OF,
                RdfObject::iri("ex:Good"),
            ),
            Triple::new(
                "ex:Good",
                vocab::RDFS_SUBCLASS_OF,
                RdfObject::iri("ex:Thing"),
            ),
            Triple::new("ex:ball", "ex:price", RdfObject::lit("19.99")),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn pattern_matching() {
        let g = offer_graph();
        assert_eq!(g.matching(Some("ex:ball"), None, None).count(), 2);
        assert_eq!(g.matching(None, Some(vocab::RDF_TYPE), None).count(), 1);
        assert_eq!(
            g.matching(None, None, Some(&RdfObject::lit("19.99")))
                .count(),
            1
        );
        assert_eq!(g.matching(Some("ex:nothing"), None, None).count(), 0);
    }

    #[test]
    fn rdfs_closure_subclass_and_type() {
        let g = offer_graph().rdfs_closure();
        // transitivity: SportsGood ⊑ Thing
        assert!(g.contains(&Triple::new(
            "ex:SportsGood",
            vocab::RDFS_SUBCLASS_OF,
            RdfObject::iri("ex:Thing")
        )));
        // type propagation through two levels
        assert!(g.contains(&Triple::new(
            "ex:ball",
            vocab::RDF_TYPE,
            RdfObject::iri("ex:Good")
        )));
        assert!(g.contains(&Triple::new(
            "ex:ball",
            vocab::RDF_TYPE,
            RdfObject::iri("ex:Thing")
        )));
    }

    #[test]
    fn rdfs_closure_subproperty() {
        let g: Graph = [
            Triple::new(
                "ex:hasDiscountPrice",
                vocab::RDFS_SUBPROPERTY_OF,
                RdfObject::iri("ex:hasPrice"),
            ),
            Triple::new("ex:ball", "ex:hasDiscountPrice", RdfObject::lit("9.99")),
        ]
        .into_iter()
        .collect();
        let c = g.rdfs_closure();
        assert!(c.contains(&Triple::new(
            "ex:ball",
            "ex:hasPrice",
            RdfObject::lit("9.99")
        )));
    }

    #[test]
    fn closure_is_idempotent() {
        let c1 = offer_graph().rdfs_closure();
        let c2 = c1.rdfs_closure();
        assert_eq!(c1, c2);
    }

    #[test]
    fn term_roundtrip() {
        let g = offer_graph();
        let t = g.to_term();
        assert_eq!(Graph::from_term(&t), g);
        // Individual triples too, both object kinds.
        for tr in g.iter() {
            assert_eq!(Triple::from_term(&tr.to_term()).as_ref(), Some(tr));
        }
    }

    #[test]
    fn insert_remove() {
        let mut g = Graph::new();
        let t = Triple::new("a", "b", RdfObject::lit("c"));
        assert!(g.insert(t.clone()));
        assert!(!g.insert(t.clone())); // set semantics
        assert_eq!(g.len(), 1);
        assert!(g.remove(&t));
        assert!(g.is_empty());
    }
}
