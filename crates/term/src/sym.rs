//! Interned symbols — integer identity for the system's vocabulary.
//!
//! Element labels, attribute names, and variable names form a small, highly
//! repetitive vocabulary: a 100k-event stream touches a few hundred distinct
//! strings but compares and copies them hundreds of millions of times.
//! Treating symbol identity as *string* identity makes every label check a
//! memcmp and every [`crate::Element`] clone a round of `malloc` traffic.
//! A [`Sym`] is a `u32` index into a process-wide, append-only intern table:
//!
//! * **Equality and hashing are integer operations.** Two `Sym`s are equal
//!   iff they intern the same string, so `==` compares two `u32`s and
//!   [`SymMap`] hashes them with one multiply ([`SymHasher`]) — the engine's
//!   label → rules dispatch index never hashes a string.
//! * **Ordering and display resolve through the interned string.** `Sym`
//!   deliberately does *not* order by id: `Ord` compares the underlying
//!   strings, so `BTreeMap<Sym, _>` iteration, sorted [`Bindings`] output,
//!   and every printed term stay **byte-identical** to the pre-interning
//!   `String` representation. (Bindings live in `reweb-query`.)
//! * **The table is thread-safe and append-only.** Interning takes a write
//!   lock only for a never-seen string; resolution (`as_str`) takes a read
//!   lock and returns `&'static str` because interned strings are leaked,
//!   never freed. The leak is bounded by the vocabulary (labels, attribute
//!   and variable names that ever existed), not by traffic — see DESIGN.md
//!   for the policy.
//!
//! [`Bindings`]: https://docs.rs/reweb-query

use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::{OnceLock, RwLock};

/// An interned string: element label, attribute name, or variable name.
///
/// Cheap to copy (`u32`), integer-fast to compare for equality and to hash,
/// while ordering ([`Ord`]) and printing ([`fmt::Display`]) go through the
/// interned string so all sorted and serialized output is identical to what
/// plain `String`s would produce.
///
/// ```
/// use reweb_term::Sym;
/// let a = Sym::from("order");
/// let b = Sym::from("order");
/// assert_eq!(a, b); // same string ⇒ same id
/// assert_eq!(a.as_str(), "order");
/// assert!(Sym::from("apple") < Sym::from("pear")); // string order, not id order
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sym(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn table() -> &'static RwLock<Interner> {
    static TABLE: OnceLock<RwLock<Interner>> = OnceLock::new();
    TABLE.get_or_init(|| {
        RwLock::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

thread_local! {
    /// Per-thread snapshot of the resolution table. The global table is
    /// append-only and interned strings are `&'static`, so a snapshot is
    /// never *wrong* — at worst it is too short for a symbol interned
    /// after it was taken, in which case it is refreshed under the global
    /// read lock. Once a thread has seen the vocabulary (which stabilizes
    /// after rule installation), every `as_str`/`cmp` is lock-free.
    static SNAPSHOT: std::cell::RefCell<Vec<&'static str>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Resolve `id` through the thread-local snapshot, refreshing it from the
/// global table on a miss.
fn resolve(id: u32) -> &'static str {
    SNAPSHOT.with(|snap| {
        let mut v = snap.borrow_mut();
        if let Some(&s) = v.get(id as usize) {
            return s;
        }
        let g = table().read().unwrap();
        v.clear();
        v.extend_from_slice(&g.strings);
        v[id as usize]
    })
}

impl Sym {
    /// Intern `s`, returning its symbol. The same string always returns the
    /// same `Sym`, from any thread. A string seen for the first time is
    /// copied into the process-wide table and kept for the process lifetime.
    pub fn new(s: &str) -> Sym {
        {
            let g = table().read().unwrap();
            if let Some(&id) = g.map.get(s) {
                return Sym(id);
            }
        }
        let mut g = table().write().unwrap();
        // Double-check: another thread may have interned `s` while we
        // were waiting for the write lock.
        if let Some(&id) = g.map.get(s) {
            return Sym(id);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = u32::try_from(g.strings.len()).expect("symbol table overflow (2^32 symbols)");
        g.strings.push(leaked);
        g.map.insert(leaked, id);
        Sym(id)
    }

    /// The symbol of `s` if it has ever been interned, without interning.
    /// Used on read paths (attribute lookup by name): a string no symbol
    /// was created for cannot occur as a key anywhere.
    pub fn lookup(s: &str) -> Option<Sym> {
        table().read().unwrap().map.get(s).copied().map(Sym)
    }

    /// The interned string. `&'static` because the table never frees.
    /// Lock-free in steady state (see the thread-local snapshot above).
    pub fn as_str(self) -> &'static str {
        resolve(self.0)
    }

    /// The raw table index — stable within this process only. Exposed for
    /// diagnostics; never persist or transmit it.
    pub fn id(self) -> u32 {
        self.0
    }

    /// Number of distinct symbols interned so far (diagnostics / leak-bound
    /// monitoring).
    pub fn table_len() -> usize {
        table().read().unwrap().strings.len()
    }

    /// Probational interning for attribute *values* (data, not vocabulary).
    ///
    /// Enum-like fields — `status="shipped"`, `route="eu-1"` — repeat a
    /// small set of short strings across millions of events, and the
    /// compiled matcher's alpha network wants to compare them as `Sym`s.
    /// But values are unbounded in general, and unconditionally interning
    /// them would grow the leaked table with every distinct order id. So a
    /// value earns a symbol only once it is *repeat-seen*:
    ///
    /// * already interned (e.g. it appears as a constant in some installed
    ///   pattern, which interns eagerly) → its `Sym`, immediately;
    /// * short (≤ [`Sym::MAX_VALUE_LEN`] bytes) and seen before by this
    ///   thread's bounded probation set → interned now;
    /// * otherwise → `None`, and the value is remembered on probation.
    ///
    /// `None` is always a correct answer for callers: a string without a
    /// symbol cannot equal any interned pattern constant. The probation
    /// set is thread-local (no cross-thread contention on the hot path)
    /// and generational (cleared when full), so the table growth is
    /// bounded by genuinely recurring values. Which thread first promotes
    /// a value never affects observable behavior — interning is keyed by
    /// string content, so `Sym` equality is string equality either way.
    pub fn intern_value(s: &str) -> Option<Sym> {
        if let Some(sym) = Sym::lookup(s) {
            return Some(sym);
        }
        if s.len() > Sym::MAX_VALUE_LEN {
            return None;
        }
        PROBATION.with(|p| {
            let mut seen = p.borrow_mut();
            if seen.contains(s) {
                seen.remove(s);
                Some(Sym::new(s))
            } else {
                if seen.len() >= PROBATION_CAP {
                    // Generational reset: cheap, and a hot value re-earns
                    // promotion within two sightings of the next generation.
                    seen.clear();
                }
                seen.insert(s.to_owned());
                None
            }
        })
    }

    /// Longest attribute value eligible for probational interning
    /// ([`Sym::intern_value`]); longer strings are payload, not enums.
    pub const MAX_VALUE_LEN: usize = 32;
}

/// Bound on each thread's probation set (distinct once-seen values held
/// while awaiting a second sighting).
const PROBATION_CAP: usize = 1024;

thread_local! {
    /// Per-thread probation set for [`Sym::intern_value`]: values seen once
    /// but not yet promoted to the global table.
    static PROBATION: std::cell::RefCell<std::collections::HashSet<String>> =
        std::cell::RefCell::new(std::collections::HashSet::new());
}

impl Ord for Sym {
    /// String order, **not** id order: sorted containers and printed output
    /// keep the exact byte order the un-interned representation had. Equal
    /// ids short-circuit without touching the table.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.0 == other.0 {
            return std::cmp::Ordering::Equal;
        }
        SNAPSHOT.with(|snap| {
            let mut v = snap.borrow_mut();
            let (a, b) = (self.0 as usize, other.0 as usize);
            if v.len() <= a.max(b) {
                let g = table().read().unwrap();
                v.clear();
                v.extend_from_slice(&g.strings);
            }
            v[a].cmp(v[b])
        })
    }
}

impl PartialOrd for Sym {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        Sym::new(s)
    }
}

impl From<&String> for Sym {
    fn from(s: &String) -> Sym {
        Sym::new(s)
    }
}

impl From<String> for Sym {
    fn from(s: String) -> Sym {
        Sym::new(&s)
    }
}

impl PartialEq<str> for Sym {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Sym {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

/// A pass-through hasher for [`Sym`] keys: one multiplicative mix of the
/// 32-bit id instead of SipHash over string bytes. This is what makes the
/// engine's dispatch index (`SymMap<Vec<usize>>`) an integer-keyed lookup.
#[derive(Clone, Copy, Default)]
pub struct SymHasher(u64);

impl Hasher for SymHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-`u32` keys (FNV-1a); `Sym` never takes this path.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100000001b3);
        }
    }

    fn write_u32(&mut self, i: u32) {
        // Fibonacci hashing: one multiply spreads the sequential intern ids
        // across the full 64-bit range.
        self.0 = (i as u64 ^ self.0).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

/// A `HashMap` keyed by [`Sym`] with the integer [`SymHasher`].
pub type SymMap<V> = HashMap<Sym, V, BuildHasherDefault<SymHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_resolve_round_trip() {
        let s = Sym::new("hello");
        assert_eq!(s.as_str(), "hello");
        assert_eq!(Sym::new("hello"), s);
        assert_eq!(Sym::lookup("hello"), Some(s));
    }

    #[test]
    fn lookup_does_not_intern() {
        let before = Sym::table_len();
        assert_eq!(Sym::lookup("sym-test-never-interned-7f3a"), None);
        assert_eq!(Sym::table_len(), before);
    }

    #[test]
    fn ord_is_string_order() {
        let mut syms = [Sym::new("pear"), Sym::new("apple"), Sym::new("fig")];
        syms.sort();
        let strs: Vec<&str> = syms.iter().map(|s| s.as_str()).collect();
        assert_eq!(strs, vec!["apple", "fig", "pear"]);
        assert_eq!(Sym::new("x").cmp(&Sym::new("x")), std::cmp::Ordering::Equal);
    }

    #[test]
    fn eq_against_str() {
        assert_eq!(Sym::new("label"), *"label");
        assert_eq!(Sym::new("label"), "label");
        assert_ne!(Sym::new("label"), "other");
    }

    #[test]
    fn sym_map_is_usable() {
        let mut m: SymMap<u32> = SymMap::default();
        m.insert(Sym::new("a"), 1);
        m.insert(Sym::new("b"), 2);
        assert_eq!(m.get(&Sym::new("a")), Some(&1));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn value_interning_is_probational() {
        // Never seen, not a pattern constant: goes on probation.
        let v = "probation-value-a41c";
        assert_eq!(Sym::intern_value(v), None);
        let before = Sym::table_len();
        // Second sighting promotes it.
        let sym = Sym::intern_value(v).expect("promoted on second sight");
        assert_eq!(sym.as_str(), v);
        assert_eq!(Sym::table_len(), before + 1);
        // From now on it resolves immediately.
        assert_eq!(Sym::intern_value(v), Some(sym));
    }

    #[test]
    fn value_interning_shortcuts_known_symbols() {
        let sym = Sym::new("already-interned-value");
        assert_eq!(Sym::intern_value("already-interned-value"), Some(sym));
    }

    #[test]
    fn long_values_never_intern() {
        let long = "x".repeat(Sym::MAX_VALUE_LEN + 1);
        let before = Sym::table_len();
        assert_eq!(Sym::intern_value(&long), None);
        assert_eq!(Sym::intern_value(&long), None);
        assert_eq!(
            Sym::table_len(),
            before,
            "payload strings stay out of the table"
        );
    }

    #[test]
    fn concurrent_interning_converges() {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                std::thread::spawn(move || {
                    (0..100)
                        .map(|i| Sym::new(&format!("concurrent-{}", (i + t) % 50)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let all: Vec<Vec<Sym>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for syms in &all {
            for s in syms {
                assert!(s.as_str().starts_with("concurrent-"));
                assert_eq!(Sym::new(s.as_str()), *s);
            }
        }
    }
}
