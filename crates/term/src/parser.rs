//! Parser for the compact data-term syntax.
//!
//! Grammar (attributes and children share the bracket list):
//!
//! ```text
//! term   ::= STRING                      text leaf
//!          | NUMBER                      text leaf holding the number
//!          | label                       empty ordered element
//!          | label '[' items ']'         ordered element
//!          | label '{' items '}'         unordered element
//! items  ::= (item (',' item)*)?         trailing comma allowed
//! item   ::= '@' IDENT '=' (STRING|NUMBER)   attribute
//!          | term                            child
//! label  ::= IDENT
//! ```
//!
//! `Display` on [`Term`] produces exactly this syntax, and
//! `parse_term(t.to_string()) == t` holds for every term (see the property
//! test at the bottom).

use crate::error::TermError;
use crate::lex::{Cursor, Tok};
use crate::term::Term;

/// Parse a single data term; the whole input must be consumed.
pub fn parse_term(input: &str) -> Result<Term, TermError> {
    let mut cur = Cursor::from_str(input)?;
    let t = parse(&mut cur)?;
    if !cur.at_end() {
        return Err(cur.error("trailing input after term"));
    }
    Ok(t)
}

/// Parse a term at the cursor (used by the query and rule parsers for
/// embedded data terms).
pub fn parse(cur: &mut Cursor) -> Result<Term, TermError> {
    match cur.peek() {
        Some(Tok::Str(_)) => {
            let s = cur.expect_str()?;
            Ok(Term::text(s))
        }
        Some(Tok::Num(n)) => {
            let n = n.clone();
            cur.next();
            Ok(Term::text(n))
        }
        Some(Tok::Ident(_)) => {
            let label = cur.expect_ident()?;
            parse_body(cur, label)
        }
        Some(t) => Err(cur.error(format!("expected term, found {}", t.describe()))),
        None => Err(cur.error("expected term, found end of input")),
    }
}

/// Parse the bracketed body (or nothing) after a label.
pub fn parse_body(cur: &mut Cursor, label: String) -> Result<Term, TermError> {
    let ordered = if cur.eat_punct('[') {
        true
    } else if cur.eat_punct('{') {
        false
    } else {
        return Ok(Term::elem(label));
    };
    let mut b = Term::build(label);
    if !ordered {
        b = b.unordered();
    }
    let close = if ordered { ']' } else { '}' };
    loop {
        if cur.eat_punct(close) {
            break;
        }
        if cur.eat_punct('@') {
            let key = cur.expect_ident()?;
            cur.expect_punct('=')?;
            let val = match cur.peek() {
                Some(Tok::Str(_)) => cur.expect_str()?,
                Some(Tok::Num(n)) => {
                    let n = n.clone();
                    cur.next();
                    n
                }
                Some(t) => {
                    return Err(
                        cur.error(format!("expected attribute value, found {}", t.describe()))
                    )
                }
                None => return Err(cur.error("expected attribute value, found end of input")),
            };
            b = b.attr(key, val);
        } else {
            b = b.child(parse(cur)?);
        }
        if !cur.eat_punct(',') {
            cur.expect_punct(close)?;
            break;
        }
    }
    Ok(b.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaves() {
        assert_eq!(parse_term("\"hi\"").unwrap(), Term::text("hi"));
        assert_eq!(parse_term("42").unwrap(), Term::text("42"));
        assert_eq!(parse_term("3.25").unwrap(), Term::text("3.25"));
        assert_eq!(parse_term("br").unwrap(), Term::elem("br"));
    }

    #[test]
    fn nested_elements() {
        let t = parse_term("flight[ number[\"LH123\"], status[\"cancelled\"] ]").unwrap();
        assert_eq!(t.label(), Some("flight"));
        assert_eq!(t.children().len(), 2);
        assert_eq!(t.children()[0].text_content(), "LH123");
        assert!(t.is_ordered());
    }

    #[test]
    fn unordered_and_attrs() {
        let t = parse_term("article{ @id=\"a42\", title[\"News\"], 7 }").unwrap();
        assert!(!t.is_ordered());
        assert_eq!(t.attr("id"), Some("a42"));
        assert_eq!(t.children().len(), 2);
        assert_eq!(t.children()[1].as_number(), Some(7.0));
    }

    #[test]
    fn numeric_attr_value() {
        let t = parse_term("p[@n=5]").unwrap();
        assert_eq!(t.attr("n"), Some("5"));
    }

    #[test]
    fn trailing_comma_ok() {
        let t = parse_term("l[a, b,]").unwrap();
        assert_eq!(t.children().len(), 2);
    }

    #[test]
    fn empty_unordered_roundtrip() {
        let t = parse_term("s{}").unwrap();
        assert!(!t.is_ordered());
        assert_eq!(parse_term(&t.to_string()).unwrap(), t);
    }

    #[test]
    fn errors() {
        assert!(parse_term("").is_err());
        assert!(parse_term("a[").is_err());
        assert!(parse_term("a[b").is_err());
        assert!(parse_term("a]").is_err());
        assert!(parse_term("a[@x]").is_err());
        assert!(parse_term("a b").is_err()); // trailing input
        assert!(parse_term("[x]").is_err());
    }

    #[test]
    fn roundtrip_examples() {
        for src in [
            "flight[@id=\"LH123\", status[\"cancelled\"], eta[\"18:40\"]]",
            "s{a, b[c, \"text\"], d{@k=\"v\"}}",
            "\"just text with \\\"quotes\\\"\"",
            "deep[a[b[c[d[\"x\"]]]]]",
        ] {
            let t = parse_term(src).unwrap();
            assert_eq!(parse_term(&t.to_string()).unwrap(), t, "src: {src}");
        }
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;

    fn arb_label() -> impl Strategy<Value = String> {
        "[a-z][a-z0-9_]{0,6}".prop_map(|s| s)
    }

    fn arb_text() -> impl Strategy<Value = String> {
        // Includes characters that need escaping.
        proptest::string::string_regex("[ -~]{0,12}").unwrap()
    }

    fn arb_term() -> impl Strategy<Value = Term> {
        let leaf = prop_oneof![
            arb_text().prop_map(Term::text),
            arb_label().prop_map(Term::elem),
        ];
        leaf.prop_recursive(3, 24, 4, |inner| {
            (
                arb_label(),
                any::<bool>(),
                proptest::collection::vec(inner, 0..4),
                proptest::collection::btree_map(arb_label(), arb_text(), 0..3),
            )
                .prop_map(|(label, ordered, children, attrs)| {
                    let mut b = Term::build(label);
                    if !ordered {
                        b = b.unordered();
                    }
                    for (k, v) in attrs {
                        b = b.attr(k, v);
                    }
                    b.children(children).finish()
                })
        })
    }

    proptest! {
        /// parse ∘ print = id — the textual syntax is lossless.
        #[test]
        fn parse_print_roundtrip(t in arb_term()) {
            let printed = t.to_string();
            let reparsed = parse_term(&printed).unwrap();
            prop_assert_eq!(reparsed, t);
        }

        /// Canonicalization is idempotent and preserves structural equality.
        #[test]
        fn canonicalize_idempotent(t in arb_term()) {
            let c = t.canonicalize();
            prop_assert_eq!(c.canonicalize(), c.clone());
            prop_assert!(t.structurally_equal(&c));
        }
    }
}
