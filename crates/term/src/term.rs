//! The semi-structured data model.
//!
//! A [`Term`] is the `reweb` stand-in for an XML fragment: a tree of
//! *elements* (label, string attributes, children) and *text* leaves.
//! Elements carry an ordered/unordered flag following Xcerpt's data terms:
//! `label[ … ]` has significant child order (like XML element content),
//! `label{ … }` does not (like a record or a bag of properties).
//!
//! Terms are immutable and structurally shared (`Arc`): cloning is O(1), and
//! "edits" build a new tree reusing every untouched subtree. That is what
//! makes transactional compound actions (Thesis 8) and store snapshots cheap.
//!
//! Equality, hashing, and ordering are *syntactic* (child order always
//! matters) so the derived impls stay fast and paths into documents stay
//! stable. Semantic, multiset-aware comparison of unordered elements is
//! available through [`Term::canonicalize`], which is also what extensional
//! identity (Thesis 10) hashes.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use smallvec::SmallVec;

use crate::sym::Sym;

/// Inline capacity for an element's child list: terms with at most this
/// many children (the overwhelming majority of event payloads and rule
/// constructions) keep their children inline in the [`Element`] allocation
/// instead of a second heap vector. See DESIGN §1d.
pub const INLINE_CHILDREN: usize = 4;

/// The child list of an [`Element`]: inline up to [`INLINE_CHILDREN`],
/// heap-spilled beyond. Derefs to `[Term]`, so all slice APIs apply.
pub type Children = SmallVec<Term, INLINE_CHILDREN>;

/// An immutable semi-structured tree: element or text leaf.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// An element node (shared; cloning is an `Arc` bump).
    Elem(Arc<Element>),
    /// A text leaf.
    Text(Arc<str>),
}

/// An element node: label, attributes, children, child-order significance.
///
/// The label and attribute *names* are interned [`Sym`]s: copying an element
/// copies integers, and label dispatch compares integers. Attribute *values*
/// stay `String`s (they are data, not vocabulary). Because `Sym` orders by
/// its interned string, the attribute map iterates in exactly the byte order
/// a `BTreeMap<String, _>` would — serialization is unchanged.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Element {
    /// The element name (interned).
    pub label: Sym,
    /// `true` for `label[ … ]` (significant order), `false` for `label{ … }`.
    pub ordered: bool,
    /// String attributes, sorted by (interned) name.
    pub attrs: BTreeMap<Sym, String>,
    /// Child terms, in document order (inline up to [`INLINE_CHILDREN`]).
    pub children: Children,
}

impl Term {
    // ----- constructors --------------------------------------------------

    /// Empty ordered element.
    pub fn elem(label: impl Into<Sym>) -> Term {
        Term::ordered(label, Vec::new())
    }

    /// Ordered element (`label[ … ]`).
    pub fn ordered(label: impl Into<Sym>, children: Vec<Term>) -> Term {
        Term::Elem(Arc::new(Element {
            label: label.into(),
            ordered: true,
            attrs: BTreeMap::new(),
            children: children.into(),
        }))
    }

    /// Unordered element (`label{ … }`).
    pub fn unordered(label: impl Into<Sym>, children: Vec<Term>) -> Term {
        Term::Elem(Arc::new(Element {
            label: label.into(),
            ordered: false,
            attrs: BTreeMap::new(),
            children: children.into(),
        }))
    }

    /// Text leaf.
    pub fn text(s: impl Into<String>) -> Term {
        Term::Text(Arc::from(s.into().as_str()))
    }

    /// Text leaf holding an integer.
    pub fn int(n: i64) -> Term {
        Term::text(n.to_string())
    }

    /// Text leaf holding a float (integral values print without `.0`).
    pub fn num(x: f64) -> Term {
        if x.fract() == 0.0 && x.abs() < 1e15 {
            Term::text(format!("{}", x as i64))
        } else {
            Term::text(format!("{x}"))
        }
    }

    /// Start a [`TermBuilder`] for an element.
    pub fn build(label: impl Into<Sym>) -> TermBuilder {
        TermBuilder {
            label: label.into(),
            ordered: true,
            attrs: BTreeMap::new(),
            children: Vec::new(),
        }
    }

    // ----- accessors -----------------------------------------------------

    /// Is this a text leaf?
    pub fn is_text(&self) -> bool {
        matches!(self, Term::Text(_))
    }

    /// Is this an element?
    pub fn is_elem(&self) -> bool {
        matches!(self, Term::Elem(_))
    }

    /// The element node, if this is an element.
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            Term::Elem(e) => Some(e),
            Term::Text(_) => None,
        }
    }

    /// Element label, if this is an element.
    pub fn label(&self) -> Option<&str> {
        self.as_element().map(|e| e.label.as_str())
    }

    /// Element label as an interned symbol, if this is an element — the
    /// zero-cost form engines dispatch on.
    pub fn label_sym(&self) -> Option<Sym> {
        self.as_element().map(|e| e.label)
    }

    /// Text content, if this is a text leaf.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Term::Text(s) => Some(s),
            Term::Elem(_) => None,
        }
    }

    /// Children (empty slice for text leaves).
    pub fn children(&self) -> &[Term] {
        match self {
            Term::Elem(e) => &e.children,
            Term::Text(_) => &[],
        }
    }

    /// Attribute value, if this is an element with that attribute.
    pub fn attr(&self, key: &str) -> Option<&str> {
        let sym = Sym::lookup(key)?;
        self.as_element()
            .and_then(|e| e.attrs.get(&sym))
            .map(|s| s.as_str())
    }

    /// Whether child order is significant. Text leaves report `true`.
    pub fn is_ordered(&self) -> bool {
        self.as_element().map(|e| e.ordered).unwrap_or(true)
    }

    /// Numeric interpretation: a text leaf that parses as a number, or an
    /// element whose single child does (`total["59.9"]` → `59.9`).
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Term::Text(s) => s.trim().parse::<f64>().ok(),
            Term::Elem(e) if e.children.len() == 1 => e.children[0].as_number(),
            Term::Elem(_) => None,
        }
    }

    /// The concatenated text of this node's direct text children, or the
    /// text itself for a leaf. (`status["cancelled"]` → `"cancelled"`.)
    pub fn text_content(&self) -> String {
        match self {
            Term::Text(s) => s.to_string(),
            Term::Elem(e) => e
                .children
                .iter()
                .filter_map(|c| c.as_text())
                .collect::<Vec<_>>()
                .join(""),
        }
    }

    /// Total number of nodes in this tree (elements + text leaves).
    pub fn node_count(&self) -> usize {
        1 + self.children().iter().map(Term::node_count).sum::<usize>()
    }

    /// Serialized size in bytes of the compact textual form — the "wire
    /// size" used by the network-traffic metrics in the Web simulator.
    pub fn serialized_size(&self) -> usize {
        self.to_string().len()
    }

    /// Depth-first iterator over all nodes with their child-index paths.
    pub fn walk(&self) -> Vec<(crate::path::Path, &Term)> {
        let mut out = Vec::new();
        fn go<'t>(
            t: &'t Term,
            prefix: &mut Vec<usize>,
            out: &mut Vec<(crate::path::Path, &'t Term)>,
        ) {
            out.push((crate::path::Path::new(prefix.clone()), t));
            for (i, c) in t.children().iter().enumerate() {
                prefix.push(i);
                go(c, prefix, out);
                prefix.pop();
            }
        }
        go(self, &mut Vec::new(), &mut out);
        out
    }

    // ----- semantic comparison -------------------------------------------

    /// Canonical form: recursively sorts the children of unordered elements.
    /// Two terms denote the same data value (multiset semantics for `{…}`)
    /// iff their canonical forms are syntactically equal. Extensional
    /// identity (Thesis 10) is a hash of this form.
    pub fn canonicalize(&self) -> Term {
        match self {
            Term::Text(_) => self.clone(),
            Term::Elem(e) => {
                let mut children: Children = e.children.iter().map(Term::canonicalize).collect();
                if !e.ordered {
                    children.sort();
                }
                Term::Elem(Arc::new(Element {
                    label: e.label,
                    ordered: e.ordered,
                    attrs: e.attrs.clone(),
                    children,
                }))
            }
        }
    }

    /// Multiset-aware equality: equal up to reordering inside `{…}` elements.
    pub fn structurally_equal(&self, other: &Term) -> bool {
        self.canonicalize() == other.canonicalize()
    }

    // ----- functional updates ---------------------------------------------

    fn modify_element(
        &self,
        f: impl FnOnce(&mut Element) -> Result<(), crate::TermError>,
    ) -> Result<Term, crate::TermError> {
        match self {
            Term::Text(_) => Err(crate::TermError::NotAnElement(self.to_string())),
            Term::Elem(e) => {
                let mut new = (**e).clone();
                f(&mut new)?;
                Ok(Term::Elem(Arc::new(new)))
            }
        }
    }

    /// New element with the given children.
    pub fn with_children(&self, children: Vec<Term>) -> Result<Term, crate::TermError> {
        self.modify_element(|e| {
            e.children = children.into();
            Ok(())
        })
    }

    /// New element with `child` appended.
    pub fn with_child_pushed(&self, child: Term) -> Result<Term, crate::TermError> {
        self.modify_element(|e| {
            e.children.push(child);
            Ok(())
        })
    }

    /// New element with `child` inserted before index `idx` (may equal len).
    pub fn with_child_inserted(&self, idx: usize, child: Term) -> Result<Term, crate::TermError> {
        self.modify_element(|e| {
            if idx > e.children.len() {
                return Err(crate::TermError::InvalidEdit(format!(
                    "insert index {idx} out of range (len {})",
                    e.children.len()
                )));
            }
            e.children.insert(idx, child);
            Ok(())
        })
    }

    /// New element with the child at `idx` removed.
    pub fn with_child_removed(&self, idx: usize) -> Result<Term, crate::TermError> {
        self.modify_element(|e| {
            if idx >= e.children.len() {
                return Err(crate::TermError::InvalidEdit(format!(
                    "remove index {idx} out of range (len {})",
                    e.children.len()
                )));
            }
            e.children.remove(idx);
            Ok(())
        })
    }

    /// New element with the child at `idx` replaced.
    pub fn with_child_replaced(&self, idx: usize, child: Term) -> Result<Term, crate::TermError> {
        self.modify_element(|e| {
            if idx >= e.children.len() {
                return Err(crate::TermError::InvalidEdit(format!(
                    "replace index {idx} out of range (len {})",
                    e.children.len()
                )));
            }
            e.children[idx] = child;
            Ok(())
        })
    }

    /// New element with attribute `key` set to `value`.
    pub fn with_attr(
        &self,
        key: impl Into<Sym>,
        value: impl Into<String>,
    ) -> Result<Term, crate::TermError> {
        self.modify_element(|e| {
            e.attrs.insert(key.into(), value.into());
            Ok(())
        })
    }

    /// New element with attribute `key` removed (no-op if absent).
    pub fn without_attr(&self, key: &str) -> Result<Term, crate::TermError> {
        self.modify_element(|e| {
            if let Some(sym) = Sym::lookup(key) {
                e.attrs.remove(&sym);
            }
            Ok(())
        })
    }
}

/// Fluent builder for elements.
///
/// ```
/// use reweb_term::Term;
/// let t = Term::build("flight")
///     .attr("id", "LH123")
///     .child(Term::ordered("status", vec![Term::text("cancelled")]))
///     .finish();
/// assert_eq!(t.attr("id"), Some("LH123"));
/// ```
#[derive(Clone, Debug)]
pub struct TermBuilder {
    label: Sym,
    ordered: bool,
    attrs: BTreeMap<Sym, String>,
    children: Vec<Term>,
}

impl TermBuilder {
    /// Make the element unordered (`label{ … }`).
    pub fn unordered(mut self) -> Self {
        self.ordered = false;
        self
    }

    /// Set a string attribute.
    pub fn attr(mut self, key: impl Into<Sym>, value: impl Into<String>) -> Self {
        self.attrs.insert(key.into(), value.into());
        self
    }

    /// Append one child term.
    pub fn child(mut self, t: Term) -> Self {
        self.children.push(t);
        self
    }

    /// Convenience: append `label[ "text" ]`.
    pub fn field(self, label: impl Into<Sym>, text: impl Into<String>) -> Self {
        self.child(Term::ordered(label, vec![Term::text(text)]))
    }

    /// Append several child terms.
    pub fn children(mut self, ts: impl IntoIterator<Item = Term>) -> Self {
        self.children.extend(ts);
        self
    }

    /// Append a text leaf child.
    pub fn text_child(mut self, s: impl Into<String>) -> Self {
        self.children.push(Term::text(s));
        self
    }

    /// Build the element.
    pub fn finish(self) -> Term {
        Term::Elem(Arc::new(Element {
            label: self.label,
            ordered: self.ordered,
            attrs: self.attrs,
            children: self.children.into(),
        }))
    }
}

// ----- display --------------------------------------------------------------

fn quote(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// An identifier can be printed bare iff the lexer would read it back as one
/// token. Otherwise it must be quoted.
fn ident_ok(s: &str) -> bool {
    let mut chars = s.chars().peekable();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    let mut prev_sep = false;
    for c in chars {
        if c.is_ascii_alphanumeric() || c == '_' {
            prev_sep = false;
        } else if (c == ':' || c == '.') && !prev_sep {
            prev_sep = true;
        } else {
            return false;
        }
    }
    !prev_sep
}

fn write_compact(t: &Term, out: &mut String) {
    match t {
        Term::Text(s) => quote(s, out),
        Term::Elem(e) => {
            let label = e.label.as_str();
            if ident_ok(label) {
                out.push_str(label);
            } else {
                // A label that isn't a valid identifier is printed as a
                // quoted string prefixed form — rare, but keeps round-trips.
                out.push_str("_q");
                quote(label, out);
            }
            if e.attrs.is_empty() && e.children.is_empty() {
                // Bare label: `br` round-trips as an empty ordered element.
                if !e.ordered {
                    out.push_str("{}");
                }
                return;
            }
            let (open, close) = if e.ordered { ('[', ']') } else { ('{', '}') };
            out.push(open);
            let mut first = true;
            for (k, v) in &e.attrs {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                out.push('@');
                out.push_str(k.as_str());
                out.push('=');
                quote(v, out);
            }
            for c in &e.children {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                write_compact(c, out);
            }
            out.push(close);
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        write_compact(self, &mut s);
        f.write_str(&s)
    }
}

impl Term {
    /// Multi-line, indented rendering for humans.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        fn go(t: &Term, indent: usize, out: &mut String) {
            let pad = "  ".repeat(indent);
            match t {
                Term::Text(s) => {
                    out.push_str(&pad);
                    quote(s, out);
                }
                Term::Elem(e) => {
                    out.push_str(&pad);
                    out.push_str(e.label.as_str());
                    for (k, v) in &e.attrs {
                        out.push_str(" @");
                        out.push_str(k.as_str());
                        out.push('=');
                        quote(v, out);
                    }
                    if e.children.is_empty() {
                        if !e.ordered {
                            out.push_str(" {}");
                        }
                        return;
                    }
                    let (open, close) = if e.ordered { ('[', ']') } else { ('{', '}') };
                    out.push(' ');
                    out.push(open);
                    for c in &e.children {
                        out.push('\n');
                        go(c, indent + 1, out);
                    }
                    out.push('\n');
                    out.push_str(&pad);
                    out.push(close);
                }
            }
        }
        go(self, 0, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_accessors() {
        let t = Term::build("order")
            .unordered()
            .attr("id", "42")
            .field("item", "soccer ball")
            .child(Term::ordered("qty", vec![Term::int(10)]))
            .finish();
        assert_eq!(t.label(), Some("order"));
        assert_eq!(t.attr("id"), Some("42"));
        assert!(!t.is_ordered());
        assert_eq!(t.children().len(), 2);
        assert_eq!(t.children()[1].as_number(), Some(10.0));
        assert_eq!(t.children()[0].text_content(), "soccer ball");
    }

    #[test]
    fn syntactic_equality_is_order_sensitive() {
        let a = Term::unordered("s", vec![Term::text("x"), Term::text("y")]);
        let b = Term::unordered("s", vec![Term::text("y"), Term::text("x")]);
        assert_ne!(a, b); // syntactic
        assert!(a.structurally_equal(&b)); // semantic (multiset)
    }

    #[test]
    fn canonicalize_is_deep() {
        let a = Term::ordered(
            "doc",
            vec![Term::unordered("s", vec![Term::text("b"), Term::text("a")])],
        );
        let b = Term::ordered(
            "doc",
            vec![Term::unordered("s", vec![Term::text("a"), Term::text("b")])],
        );
        assert_eq!(a.canonicalize(), b.canonicalize());
        // but ordered children never reorder
        let c = Term::ordered("doc", vec![Term::text("b"), Term::text("a")]);
        let d = Term::ordered("doc", vec![Term::text("a"), Term::text("b")]);
        assert_ne!(c.canonicalize(), d.canonicalize());
    }

    #[test]
    fn display_compact() {
        let t = Term::build("flight")
            .attr("id", "LH123")
            .field("status", "cancelled")
            .finish();
        assert_eq!(
            t.to_string(),
            "flight[@id=\"LH123\", status[\"cancelled\"]]"
        );
        assert_eq!(Term::elem("br").to_string(), "br");
        assert_eq!(Term::unordered("s", vec![]).to_string(), "s{}");
        assert_eq!(Term::text("a\"b").to_string(), "\"a\\\"b\"");
    }

    #[test]
    fn numbers() {
        assert_eq!(Term::num(3.0).as_text(), Some("3"));
        assert_eq!(Term::num(3.25).as_text(), Some("3.25"));
        assert_eq!(Term::text(" 12.5 ").as_number(), Some(12.5));
        assert_eq!(Term::text("abc").as_number(), None);
        assert_eq!(
            Term::ordered("price", vec![Term::text("9.5")]).as_number(),
            Some(9.5)
        );
        // Multi-child elements have no single numeric value.
        assert_eq!(
            Term::ordered("p", vec![Term::text("1"), Term::text("2")]).as_number(),
            None
        );
    }

    #[test]
    fn functional_edits_share_structure() {
        let shared = Term::ordered("big", vec![Term::text("payload")]);
        let t = Term::ordered("root", vec![shared.clone(), Term::text("x")]);
        let t2 = t.with_child_replaced(1, Term::text("y")).unwrap();
        // The unchanged subtree is literally the same allocation.
        assert!(matches!(
            (&t.children()[0], &t2.children()[0]),
            (Term::Elem(a), Term::Elem(b)) if Arc::ptr_eq(a, b)
        ));
        assert_eq!(t2.children()[1].as_text(), Some("y"));
        // Original untouched.
        assert_eq!(t.children()[1].as_text(), Some("x"));
    }

    #[test]
    fn edit_errors() {
        let t = Term::elem("e");
        assert!(t.with_child_removed(0).is_err());
        assert!(t.with_child_inserted(1, Term::text("x")).is_err());
        assert!(Term::text("t").with_child_pushed(Term::text("x")).is_err());
    }

    #[test]
    fn attrs_edit() {
        let t = Term::elem("e").with_attr("k", "v").unwrap();
        assert_eq!(t.attr("k"), Some("v"));
        let t2 = t.without_attr("k").unwrap();
        assert_eq!(t2.attr("k"), None);
    }

    #[test]
    fn node_count_and_walk() {
        let t = Term::ordered(
            "a",
            vec![Term::ordered("b", vec![Term::text("x")]), Term::text("y")],
        );
        assert_eq!(t.node_count(), 4);
        let nodes = t.walk();
        assert_eq!(nodes.len(), 4);
        assert_eq!(nodes[0].0.to_string(), "/");
        assert_eq!(nodes[2].0.to_string(), "/0/0");
    }

    #[test]
    fn pretty_renders_nesting() {
        let t = Term::ordered("a", vec![Term::ordered("b", vec![Term::text("x")])]);
        let p = t.pretty();
        assert!(p.contains("a ["));
        assert!(p.contains("  b ["));
        assert!(p.contains("    \"x\""));
    }
}
