//! # reweb-term — data substrate for reactive rules on the Web
//!
//! This crate provides everything the higher layers of `reweb` treat as
//! "Web data" (Thesis 4 of Bry & Eckert's *Twelve Theses on Reactive Rules
//! for the Web*, EDBT 2006):
//!
//! * [`Sym`] — process-wide interned symbols: labels, attribute names, and
//!   variable names compare and hash as integers while still printing and
//!   sorting as strings.
//! * [`Term`] — an immutable, structurally shared, semi-structured data model
//!   standing in for XML: elements with ordered (`[...]`) or unordered
//!   (`{...}`) children, string attributes, and text leaves.
//! * [`rdf`] — RDF triples and graphs with pattern lookup and a small RDFS
//!   closure, standing in for Semantic Web data.
//! * A compact, round-trippable textual syntax ([`parse_term`] / `Display`).
//! * [`Path`]s for addressing nodes inside documents, with functional edits
//!   ([`apply_edit`]) that never mutate shared structure.
//! * [`identity`] — the two identity regimes of Thesis 10: *extensional*
//!   (structural hash) and *surrogate* (key attributes / node ids).
//! * [`diff`] — change detection between document versions under either
//!   identity regime (what a polling observer must do, Theses 3 and 10).
//! * [`ResourceStore`] — versioned, URI-addressed persistent documents, the
//!   "persistent data" half of Thesis 4's persistent/volatile split.
//! * [`frame`] — length- and CRC32-framed append-only records with
//!   torn-tail detection, the byte substrate of the durability layer
//!   (`reweb_persist`'s write-ahead log and snapshots).
//! * [`Timestamp`]/[`Dur`] — the virtual clock shared by every crate, which
//!   keeps the entire system deterministic.
//!
//! Everything downstream (queries, events, updates, the ECA engine, the Web
//! simulator) builds on these types.

#![warn(missing_docs)]

pub mod diff;
pub mod error;
pub mod frame;
pub mod identity;
pub mod lex;
pub mod parser;
pub mod path;
pub mod rdf;
pub mod store;
pub mod sym;
pub mod term;
pub mod time;

pub use diff::{diff_documents, Change};
pub use error::TermError;
pub use frame::{crc32, scan_frames, write_frame, FrameScan, TailState};
pub use identity::{ext_id, fnv1a, IdentityMode};
pub use parser::parse_term;
pub use path::{apply_edit, node_at, Path, PathEdit};
pub use store::ResourceStore;
pub use sym::{Sym, SymHasher, SymMap};
pub use term::{Children, Element, Term, TermBuilder, INLINE_CHILDREN};
pub use time::{Dur, Timestamp};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TermError>;
