//! Change detection between document versions.
//!
//! This is what a *polling* observer (Thesis 3) must do to turn two
//! snapshots of a resource into events, and where the identity regimes of
//! Thesis 10 diverge:
//!
//! * Under **surrogate** identity, children of an element are matched by
//!   their key attribute; an item whose value changed but whose key survived
//!   is reported as [`Change::Modified`] — the observer can say *which*
//!   object changed.
//! * Under **extensional** identity, children are matched by value; any
//!   value change necessarily appears as [`Change::Deleted`] +
//!   [`Change::Inserted`] — the object's identity was its value, and is lost
//!   with it.
//!
//! Changes can be rendered as event payloads ([`Change::to_event_payload`])
//! so pollers in `reweb-websim` can synthesize change events from diffs.

use std::collections::BTreeMap;

use crate::identity::{IdentityKey, IdentityMode};
use crate::path::Path;
use crate::term::Term;

/// One detected change between two versions of a document.
#[derive(Clone, Debug, PartialEq)]
pub enum Change {
    /// `node` exists in the new version at `path` but not in the old one.
    Inserted {
        /// Where the node appears in the new version.
        path: Path,
        /// The inserted node.
        node: Term,
    },
    /// `node` existed at `path` in the old version but not in the new one.
    Deleted {
        /// Where the node was in the old version.
        path: Path,
        /// The deleted node.
        node: Term,
    },
    /// The object kept its identity but its content changed
    /// (only possible under surrogate identity).
    Modified {
        /// Where the object lives in the new version.
        path: Path,
        /// The identity that survived the change.
        key: IdentityKey,
        /// The object's old content.
        before: Term,
        /// The object's new content.
        after: Term,
    },
}

impl Change {
    /// Render as an event payload term, e.g.
    /// `changed{kind["modified"], path["/2"], before[...], after[...]}`.
    pub fn to_event_payload(&self, resource_uri: &str) -> Term {
        let b = Term::build("changed")
            .unordered()
            .field("resource", resource_uri);
        match self {
            Change::Inserted { path, node } => b
                .field("kind", "inserted")
                .field("path", path.to_string())
                .child(Term::ordered("node", vec![node.clone()]))
                .finish(),
            Change::Deleted { path, node } => b
                .field("kind", "deleted")
                .field("path", path.to_string())
                .child(Term::ordered("node", vec![node.clone()]))
                .finish(),
            Change::Modified {
                path,
                key,
                before,
                after,
            } => {
                let key_str = match key {
                    IdentityKey::Surrogate(s) => s.clone(),
                    IdentityKey::Ext(h) => format!("ext:{h:016x}"),
                };
                b.field("kind", "modified")
                    .field("path", path.to_string())
                    .field("key", key_str)
                    .child(Term::ordered("before", vec![before.clone()]))
                    .child(Term::ordered("after", vec![after.clone()]))
                    .finish()
            }
        }
    }

    /// The change kind as the string used in event payloads.
    pub fn kind(&self) -> &'static str {
        match self {
            Change::Inserted { .. } => "inserted",
            Change::Deleted { .. } => "deleted",
            Change::Modified { .. } => "modified",
        }
    }
}

/// Diff two versions of a document under the given identity mode.
///
/// The algorithm walks the two trees in parallel. At each element, children
/// are matched by their identity key ([`IdentityMode::key_of`]); matched
/// pairs with identical content are skipped, matched pairs with different
/// content recurse (surrogate) or — impossible extensionally, since the key
/// *is* the content. Unmatched old children are reported deleted, unmatched
/// new children inserted. Under surrogate identity a matched pair whose
/// labels coincide recurses to localize the change; if the labels differ the
/// whole node is reported modified.
pub fn diff_documents(old: &Term, new: &Term, mode: &IdentityMode) -> Vec<Change> {
    let mut out = Vec::new();
    diff_nodes(old, new, mode, &Path::root(), &mut out);
    out
}

fn diff_nodes(old: &Term, new: &Term, mode: &IdentityMode, path: &Path, out: &mut Vec<Change>) {
    if old == new {
        return;
    }
    match (old.as_element(), new.as_element()) {
        (Some(oe), Some(ne)) if oe.label == ne.label => {
            // Same element identity context: diff the child lists.
            diff_children(old, new, mode, path, out);
        }
        _ => {
            // Entirely different nodes at the same position.
            out.push(Change::Deleted {
                path: path.clone(),
                node: old.clone(),
            });
            out.push(Change::Inserted {
                path: path.clone(),
                node: new.clone(),
            });
        }
    }
}

fn diff_children(old: &Term, new: &Term, mode: &IdentityMode, path: &Path, out: &mut Vec<Change>) {
    // Group children by identity key. Multiset-aware: keys map to queues of
    // (index, node) so duplicates pair up positionally.
    let mut old_by_key: BTreeMap<IdentityKey, Vec<(usize, &Term)>> = BTreeMap::new();
    for (i, c) in old.children().iter().enumerate() {
        old_by_key.entry(mode.key_of(c)).or_default().push((i, c));
    }

    let mut matched_old: Vec<bool> = vec![false; old.children().len()];

    for (new_ix, nc) in new.children().iter().enumerate() {
        let key = mode.key_of(nc);
        if let Some(slot) = old_by_key.get_mut(&key).and_then(|v| {
            if v.is_empty() {
                None
            } else {
                Some(v.remove(0))
            }
        }) {
            let (old_ix, oc) = slot;
            matched_old[old_ix] = true;
            if oc != nc {
                // Only reachable under surrogate identity: the key matched
                // but content differs.
                let changed_path = path.child(new_ix);
                match (oc.as_element(), nc.as_element()) {
                    (Some(oe), Some(ne)) if oe.label == ne.label && oe.attrs == ne.attrs => {
                        // Localize within the object.
                        out.push(Change::Modified {
                            path: changed_path,
                            key,
                            before: oc.clone(),
                            after: nc.clone(),
                        });
                    }
                    _ => {
                        out.push(Change::Modified {
                            path: changed_path,
                            key,
                            before: oc.clone(),
                            after: nc.clone(),
                        });
                    }
                }
            }
        } else {
            out.push(Change::Inserted {
                path: path.child(new_ix),
                node: nc.clone(),
            });
        }
    }

    for (old_ix, oc) in old.children().iter().enumerate() {
        if !matched_old[old_ix] {
            out.push(Change::Deleted {
                path: path.child(old_ix),
                node: oc.clone(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(articles: &[(&str, &str)]) -> Term {
        Term::build("news")
            .children(articles.iter().map(|(id, title)| {
                Term::build("article")
                    .attr("id", *id)
                    .field("title", *title)
                    .finish()
            }))
            .finish()
    }

    #[test]
    fn no_change_is_empty_diff() {
        let d = site(&[("a1", "hello")]);
        assert!(diff_documents(&d, &d, &IdentityMode::Extensional).is_empty());
        assert!(diff_documents(&d, &d, &IdentityMode::surrogate()).is_empty());
    }

    #[test]
    fn surrogate_sees_modification() {
        let old = site(&[("a1", "v1"), ("a2", "stable")]);
        let new = site(&[("a1", "v2"), ("a2", "stable")]);
        let changes = diff_documents(&old, &new, &IdentityMode::surrogate());
        assert_eq!(changes.len(), 1);
        match &changes[0] {
            Change::Modified {
                key, before, after, ..
            } => {
                assert_eq!(*key, IdentityKey::Surrogate("a1".into()));
                assert_eq!(before.children()[0].text_content(), "v1");
                assert_eq!(after.children()[0].text_content(), "v2");
            }
            other => panic!("expected Modified, got {other:?}"),
        }
    }

    #[test]
    fn extensional_sees_delete_plus_insert() {
        let old = site(&[("a1", "v1"), ("a2", "stable")]);
        let new = site(&[("a1", "v2"), ("a2", "stable")]);
        let changes = diff_documents(&old, &new, &IdentityMode::Extensional);
        // The thesis's warning made concrete: identity is lost with the value.
        assert_eq!(changes.len(), 2);
        assert!(changes.iter().any(|c| c.kind() == "deleted"));
        assert!(changes.iter().any(|c| c.kind() == "inserted"));
        assert!(!changes.iter().any(|c| c.kind() == "modified"));
    }

    #[test]
    fn insert_and_delete_detected_under_both_modes() {
        let old = site(&[("a1", "x")]);
        let new = site(&[("a1", "x"), ("a2", "y")]);
        for mode in [IdentityMode::Extensional, IdentityMode::surrogate()] {
            let changes = diff_documents(&old, &new, &mode);
            assert_eq!(changes.len(), 1, "mode {mode:?}");
            assert_eq!(changes[0].kind(), "inserted");
        }
        for mode in [IdentityMode::Extensional, IdentityMode::surrogate()] {
            let changes = diff_documents(&new, &old, &mode);
            assert_eq!(changes.len(), 1);
            assert_eq!(changes[0].kind(), "deleted");
        }
    }

    #[test]
    fn duplicate_values_pair_up_extensionally() {
        let old = Term::ordered("l", vec![Term::text("x"), Term::text("x")]);
        let new = Term::ordered("l", vec![Term::text("x")]);
        let changes = diff_documents(&old, &new, &IdentityMode::Extensional);
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].kind(), "deleted");
    }

    #[test]
    fn root_label_change_is_replace() {
        let old = Term::elem("a");
        let new = Term::elem("b");
        let changes = diff_documents(&old, &new, &IdentityMode::Extensional);
        assert_eq!(changes.len(), 2);
        assert_eq!(changes[0].kind(), "deleted");
        assert_eq!(changes[1].kind(), "inserted");
    }

    #[test]
    fn event_payload_shape() {
        let old = site(&[("a1", "v1")]);
        let new = site(&[("a1", "v2")]);
        let changes = diff_documents(&old, &new, &IdentityMode::surrogate());
        let payload = changes[0].to_event_payload("http://news.example/front");
        assert_eq!(payload.label(), Some("changed"));
        let kinds: Vec<_> = payload
            .children()
            .iter()
            .filter(|c| c.label() == Some("kind"))
            .map(|c| c.text_content())
            .collect();
        assert_eq!(kinds, vec!["modified"]);
    }
}
