//! Error type shared by the data-substrate layer.

use std::fmt;

/// Errors produced while lexing, parsing, navigating, or storing terms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TermError {
    /// Lexical or syntactic error, with a 1-based line/column position.
    Parse {
        /// What went wrong.
        msg: String,
        /// 1-based line of the offending token.
        line: u32,
        /// 1-based column of the offending token.
        col: u32,
    },
    /// A [`crate::Path`] does not address a node in the given document.
    PathNotFound(String),
    /// An operation that requires an element was applied to a text node.
    NotAnElement(String),
    /// The resource store has no document under this URI.
    UnknownResource(String),
    /// An edit could not be applied (index out of range, etc.).
    InvalidEdit(String),
}

impl TermError {
    /// A [`TermError::Parse`] at the given position.
    pub fn parse(msg: impl Into<String>, line: u32, col: u32) -> Self {
        TermError::Parse {
            msg: msg.into(),
            line,
            col,
        }
    }
}

impl fmt::Display for TermError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TermError::Parse { msg, line, col } => {
                write!(f, "parse error at {line}:{col}: {msg}")
            }
            TermError::PathNotFound(p) => write!(f, "path not found: {p}"),
            TermError::NotAnElement(what) => write!(f, "not an element: {what}"),
            TermError::UnknownResource(uri) => write!(f, "unknown resource: {uri}"),
            TermError::InvalidEdit(msg) => write!(f, "invalid edit: {msg}"),
        }
    }
}

impl std::error::Error for TermError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = TermError::parse("unexpected ]", 3, 14);
        assert_eq!(e.to_string(), "parse error at 3:14: unexpected ]");
        assert_eq!(
            TermError::UnknownResource("http://x".into()).to_string(),
            "unknown resource: http://x"
        );
    }
}
