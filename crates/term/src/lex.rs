//! Shared lexer for every textual syntax in `reweb`.
//!
//! Data terms (this crate), query terms (`reweb-query`), and the ECA rule
//! language (`reweb-core`) are all lexed with this one tokenizer, which is a
//! big part of the "language coherency" Thesis 7 asks for: learning one
//! surface syntax is enough.
//!
//! Token classes: identifiers (which may contain `:` or `.` between name
//! parts, so `xml:id` and `price.usd` lex as one token), double-quoted
//! strings with escapes, unsigned numbers (`12`, `3.25`), and single-char
//! punctuation. `#` and `//` start comments running to end of line.
//! Multi-char operators (`[[`, `<=`, …) are assembled by parsers from
//! adjacent punctuation tokens.

use crate::error::TermError;

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Identifier / bare word, e.g. `flight`, `xml:id`.
    Ident(String),
    /// String literal with escapes already processed.
    Str(String),
    /// Number literal, kept as written (`"3.25"`).
    Num(String),
    /// Single punctuation character.
    Punct(char),
}

impl Tok {
    /// Case-insensitive keyword test for identifiers.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Tok::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    /// Is this exactly the punctuation character `c`?
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, Tok::Punct(p) if *p == c)
    }

    /// Human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("identifier `{s}`"),
            Tok::Str(s) => format!("string \"{s}\""),
            Tok::Num(n) => format!("number {n}"),
            Tok::Punct(c) => format!("`{c}`"),
        }
    }
}

/// A token plus its 1-based source position.
#[derive(Clone, Debug, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

/// Tokenize `input`. Comments (`# …` and `// …`) and whitespace are skipped.
pub fn lex(input: &str) -> Result<Vec<Spanned>, TermError> {
    let mut out = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    let bump = |c: char, line: &mut u32, col: &mut u32| {
        if c == '\n' {
            *line += 1;
            *col = 1;
        } else {
            *col += 1;
        }
    };

    while i < chars.len() {
        let c = chars[i];
        // Whitespace.
        if c.is_whitespace() {
            bump(c, &mut line, &mut col);
            i += 1;
            continue;
        }
        // Comments: `#` or `//` to end of line.
        if c == '#' || (c == '/' && chars.get(i + 1) == Some(&'/')) {
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
                col += 1;
            }
            continue;
        }
        let (tline, tcol) = (line, col);
        // Identifiers.
        if c.is_ascii_alphabetic() || c == '_' {
            let mut s = String::new();
            while i < chars.len() {
                let c = chars[i];
                let take = c.is_ascii_alphanumeric()
                    || c == '_'
                    || ((c == ':' || c == '.')
                        && chars
                            .get(i + 1)
                            .is_some_and(|n| n.is_ascii_alphanumeric() || *n == '_'));
                if !take {
                    break;
                }
                s.push(c);
                bump(c, &mut line, &mut col);
                i += 1;
            }
            out.push(Spanned {
                tok: Tok::Ident(s),
                line: tline,
                col: tcol,
            });
            continue;
        }
        // Numbers: digits with optional single fractional part.
        if c.is_ascii_digit() {
            let mut s = String::new();
            let mut seen_dot = false;
            while i < chars.len() {
                let c = chars[i];
                if c.is_ascii_digit() {
                    s.push(c);
                } else if c == '.'
                    && !seen_dot
                    && chars.get(i + 1).is_some_and(|n| n.is_ascii_digit())
                {
                    seen_dot = true;
                    s.push(c);
                } else {
                    break;
                }
                bump(c, &mut line, &mut col);
                i += 1;
            }
            out.push(Spanned {
                tok: Tok::Num(s),
                line: tline,
                col: tcol,
            });
            continue;
        }
        // Strings.
        if c == '"' {
            i += 1;
            col += 1;
            let mut s = String::new();
            loop {
                match chars.get(i) {
                    None => {
                        return Err(TermError::parse("unterminated string", tline, tcol));
                    }
                    Some('"') => {
                        i += 1;
                        col += 1;
                        break;
                    }
                    Some('\\') => {
                        let esc = chars.get(i + 1).copied();
                        let decoded = match esc {
                            Some('n') => '\n',
                            Some('t') => '\t',
                            Some('r') => '\r',
                            Some('"') => '"',
                            Some('\\') => '\\',
                            other => {
                                return Err(TermError::parse(
                                    format!("bad escape `\\{}`", other.unwrap_or(' ')),
                                    line,
                                    col,
                                ));
                            }
                        };
                        s.push(decoded);
                        i += 2;
                        col += 2;
                    }
                    Some(&c) => {
                        s.push(c);
                        bump(c, &mut line, &mut col);
                        i += 1;
                    }
                }
            }
            out.push(Spanned {
                tok: Tok::Str(s),
                line: tline,
                col: tcol,
            });
            continue;
        }
        // Everything else is single-char punctuation.
        const PUNCT: &str = "[]{}()<>,@=!+-*/%;?&|.:";
        if PUNCT.contains(c) {
            out.push(Spanned {
                tok: Tok::Punct(c),
                line: tline,
                col: tcol,
            });
            bump(c, &mut line, &mut col);
            i += 1;
            continue;
        }
        return Err(TermError::parse(
            format!("unexpected character `{c}`"),
            line,
            col,
        ));
    }
    Ok(out)
}

/// Cursor over a token stream, shared by the recursive-descent parsers in
/// this crate, `reweb-query`, and `reweb-core`.
#[derive(Clone, Debug)]
pub struct Cursor {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Cursor {
    /// A cursor at the start of a token stream.
    pub fn new(toks: Vec<Spanned>) -> Self {
        Cursor { toks, pos: 0 }
    }

    /// Lex and wrap in one step. Deliberately an inherent method, not a
    /// `FromStr` impl: every parser in the tree calls it with an
    /// explicit `Cursor::from_str`, and the `?`-friendly `TermError`
    /// (not `FromStr::Err`) is part of the signature.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(input: &str) -> Result<Self, TermError> {
        Ok(Cursor::new(lex(input)?))
    }

    /// The current token, without consuming it.
    pub fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    /// The token `n` positions ahead of the current one.
    pub fn peek_at(&self, n: usize) -> Option<&Tok> {
        self.toks.get(self.pos + n).map(|s| &s.tok)
    }

    /// Consume and return the current token. Not an `Iterator` impl on
    /// purpose: iteration would take the cursor by value or borrow it
    /// exclusively, while the parsers interleave `next` with `peek`,
    /// `peek_at`, and `here` on the same cursor.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Have all tokens been consumed?
    pub fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    /// Position of the *current* token for error reporting.
    pub fn here(&self) -> (u32, u32) {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|s| (s.line, s.col))
            .unwrap_or((1, 1))
    }

    /// A parse error positioned at the current token.
    pub fn error(&self, msg: impl Into<String>) -> TermError {
        let (line, col) = self.here();
        TermError::parse(msg, line, col)
    }

    /// Consume a specific punctuation char or fail.
    pub fn expect_punct(&mut self, c: char) -> Result<(), TermError> {
        match self.peek() {
            Some(t) if t.is_punct(c) => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => Err(self.error(format!("expected `{c}`, found {}", t.describe()))),
            None => Err(self.error(format!("expected `{c}`, found end of input"))),
        }
    }

    /// Consume a specific (case-insensitive) keyword or fail.
    pub fn expect_kw(&mut self, kw: &str) -> Result<(), TermError> {
        match self.peek() {
            Some(t) if t.is_kw(kw) => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => Err(self.error(format!("expected keyword `{kw}`, found {}", t.describe()))),
            None => Err(self.error(format!("expected keyword `{kw}`, found end of input"))),
        }
    }

    /// Consume the keyword if present; report whether it was.
    pub fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Consume the punctuation char if present; report whether it was.
    pub fn eat_punct(&mut self, c: char) -> bool {
        if self.peek().is_some_and(|t| t.is_punct(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Consume two adjacent punctuation chars (e.g. `[[`) if both present.
    pub fn eat_punct2(&mut self, a: char, b: char) -> bool {
        if self.peek().is_some_and(|t| t.is_punct(a))
            && self.peek_at(1).is_some_and(|t| t.is_punct(b))
        {
            self.pos += 2;
            true
        } else {
            false
        }
    }

    /// Consume an identifier or fail.
    pub fn expect_ident(&mut self) -> Result<String, TermError> {
        match self.peek() {
            Some(Tok::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            Some(t) => Err(self.error(format!("expected identifier, found {}", t.describe()))),
            None => Err(self.error("expected identifier, found end of input")),
        }
    }

    /// Consume a string literal or fail.
    pub fn expect_str(&mut self) -> Result<String, TermError> {
        match self.peek() {
            Some(Tok::Str(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            Some(t) => Err(self.error(format!("expected string, found {}", t.describe()))),
            None => Err(self.error("expected string, found end of input")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Tok> {
        lex(s).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn idents_with_namespaces_and_dots() {
        assert_eq!(
            toks("flight xml:id price.usd a_b"),
            vec![
                Tok::Ident("flight".into()),
                Tok::Ident("xml:id".into()),
                Tok::Ident("price.usd".into()),
                Tok::Ident("a_b".into()),
            ]
        );
    }

    #[test]
    fn trailing_colon_is_punct_not_ident() {
        // `label:` — the colon is not followed by a name part, so it stays
        // punctuation and the identifier is just `label`.
        assert_eq!(
            toks("label:"),
            vec![Tok::Ident("label".into()), Tok::Punct(':')]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("12 3.25 7.x"),
            vec![
                Tok::Num("12".into()),
                Tok::Num("3.25".into()),
                Tok::Num("7".into()),
                Tok::Punct('.'),
                Tok::Ident("x".into()),
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            toks(r#""he said \"hi\"\n""#),
            vec![Tok::Str("he said \"hi\"\n".into())]
        );
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("\"oops").is_err());
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("a # rest of line\nb // more\nc"),
            vec![
                Tok::Ident("a".into()),
                Tok::Ident("b".into()),
                Tok::Ident("c".into()),
            ]
        );
    }

    #[test]
    fn slash_alone_is_division_not_comment() {
        assert_eq!(
            toks("a / b"),
            vec![
                Tok::Ident("a".into()),
                Tok::Punct('/'),
                Tok::Ident("b".into()),
            ]
        );
    }

    #[test]
    fn positions_are_tracked() {
        let ts = lex("ab\n  cd").unwrap();
        assert_eq!((ts[0].line, ts[0].col), (1, 1));
        assert_eq!((ts[1].line, ts[1].col), (2, 3));
    }

    #[test]
    fn cursor_multi_punct() {
        let mut c = Cursor::from_str("[[ x ]]").unwrap();
        assert!(c.eat_punct2('[', '['));
        assert_eq!(c.expect_ident().unwrap(), "x");
        assert!(c.eat_punct2(']', ']'));
        assert!(c.at_end());
    }

    #[test]
    fn cursor_keywords_case_insensitive() {
        let mut c = Cursor::from_str("RULE on End").unwrap();
        assert!(c.eat_kw("rule"));
        assert!(c.eat_kw("ON"));
        assert!(c.expect_kw("end").is_ok());
    }
}
