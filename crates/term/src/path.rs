//! Paths: addressing nodes inside documents.
//!
//! A [`Path`] is a sequence of child indexes from the document root. The
//! query matcher records the path of every matched node so that update
//! actions (Thesis 8) can address exactly the matched targets, and the diff
//! module (Thesis 10) can report *where* a change happened.
//!
//! Because terms are immutable, "editing at a path" ([`apply_edit`]) returns
//! a new root that shares all untouched structure with the old one.

use std::fmt;

use crate::error::TermError;
use crate::term::Term;

/// Child-index path from a document root. The empty path is the root itself.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Path(Vec<usize>);

impl Path {
    /// The empty path (the document root).
    pub fn root() -> Path {
        Path(Vec::new())
    }

    /// A path from explicit child indexes.
    pub fn new(ixs: Vec<usize>) -> Path {
        Path(ixs)
    }

    /// Does this path address the root?
    pub fn is_root(&self) -> bool {
        self.0.is_empty()
    }

    /// The child indexes, root-to-leaf.
    pub fn indexes(&self) -> &[usize] {
        &self.0
    }

    /// Number of steps from the root.
    pub fn depth(&self) -> usize {
        self.0.len()
    }

    /// Path of this node's parent, or `None` at the root.
    pub fn parent(&self) -> Option<Path> {
        if self.0.is_empty() {
            None
        } else {
            Some(Path(self.0[..self.0.len() - 1].to_vec()))
        }
    }

    /// Index of this node within its parent, or `None` at the root.
    pub fn last_index(&self) -> Option<usize> {
        self.0.last().copied()
    }

    /// Extend by one child step.
    pub fn child(&self, idx: usize) -> Path {
        let mut v = self.0.clone();
        v.push(idx);
        Path(v)
    }

    /// Whether `self` is an ancestor of (or equal to) `other`.
    pub fn is_prefix_of(&self, other: &Path) -> bool {
        other.0.len() >= self.0.len() && other.0[..self.0.len()] == self.0[..]
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return f.write_str("/");
        }
        for ix in &self.0 {
            write!(f, "/{ix}")?;
        }
        Ok(())
    }
}

/// Resolve a path to the node it addresses.
pub fn node_at<'t>(root: &'t Term, path: &Path) -> Option<&'t Term> {
    let mut cur = root;
    for &ix in &path.0 {
        cur = cur.children().get(ix)?;
    }
    Some(cur)
}

/// An edit applied at a path (see [`apply_edit`]).
#[derive(Clone, Debug, PartialEq)]
pub enum PathEdit {
    /// Replace the addressed node.
    Replace(Term),
    /// Delete the addressed node (invalid at the root).
    Delete,
    /// Insert a child of the addressed element before index `at`
    /// (`at == len` appends).
    InsertChild {
        /// Insertion index among the element's children.
        at: usize,
        /// The child to insert.
        node: Term,
    },
    /// Append a child to the addressed element.
    AppendChild(Term),
    /// Set an attribute on the addressed element.
    SetAttr {
        /// Attribute name.
        key: String,
        /// Attribute value.
        value: String,
    },
    /// Remove an attribute from the addressed element.
    RemoveAttr(String),
}

/// Apply `edit` at `path` in `root`, returning the new root.
///
/// Structure outside the root-to-`path` spine is shared with the input.
pub fn apply_edit(root: &Term, path: &Path, edit: PathEdit) -> Result<Term, TermError> {
    fn rec(node: &Term, rest: &[usize], edit: PathEdit) -> Result<Option<Term>, TermError> {
        match rest.split_first() {
            None => match edit {
                PathEdit::Replace(t) => Ok(Some(t)),
                PathEdit::Delete => Ok(None),
                PathEdit::InsertChild { at, node: n } => Ok(Some(node.with_child_inserted(at, n)?)),
                PathEdit::AppendChild(n) => Ok(Some(node.with_child_pushed(n)?)),
                PathEdit::SetAttr { key, value } => Ok(Some(node.with_attr(key, value)?)),
                PathEdit::RemoveAttr(key) => Ok(Some(node.without_attr(&key)?)),
            },
            Some((&ix, tail)) => {
                let child = node
                    .children()
                    .get(ix)
                    .ok_or_else(|| TermError::PathNotFound(format!("index {ix} out of range")))?;
                match rec(child, tail, edit)? {
                    Some(new_child) => Ok(Some(node.with_child_replaced(ix, new_child)?)),
                    None => Ok(Some(node.with_child_removed(ix)?)),
                }
            }
        }
    }
    match rec(root, &path.0, edit)? {
        Some(t) => Ok(t),
        None => Err(TermError::InvalidEdit(
            "cannot delete the document root".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Term {
        // root[ a[ "x" ], b[ "y", "z" ] ]
        Term::ordered(
            "root",
            vec![
                Term::ordered("a", vec![Term::text("x")]),
                Term::ordered("b", vec![Term::text("y"), Term::text("z")]),
            ],
        )
    }

    #[test]
    fn navigation() {
        let d = doc();
        assert_eq!(node_at(&d, &Path::root()), Some(&d));
        assert_eq!(
            node_at(&d, &Path::new(vec![1, 0])).and_then(Term::as_text),
            Some("y")
        );
        assert_eq!(node_at(&d, &Path::new(vec![2])), None);
        assert_eq!(node_at(&d, &Path::new(vec![0, 0, 0])), None);
    }

    #[test]
    fn path_algebra() {
        let p = Path::new(vec![1, 0]);
        assert_eq!(p.parent(), Some(Path::new(vec![1])));
        assert_eq!(p.last_index(), Some(0));
        assert_eq!(p.to_string(), "/1/0");
        assert_eq!(Path::root().to_string(), "/");
        assert!(Path::new(vec![1]).is_prefix_of(&p));
        assert!(!Path::new(vec![0]).is_prefix_of(&p));
        assert!(p.is_prefix_of(&p));
        assert_eq!(Path::root().parent(), None);
    }

    #[test]
    fn replace_at_path() {
        let d = doc();
        let d2 = apply_edit(
            &d,
            &Path::new(vec![0, 0]),
            PathEdit::Replace(Term::text("X")),
        )
        .unwrap();
        assert_eq!(
            node_at(&d2, &Path::new(vec![0, 0])).and_then(Term::as_text),
            Some("X")
        );
        // sibling subtree untouched & shared
        assert_eq!(d.children()[1], d2.children()[1]);
    }

    #[test]
    fn delete_at_path() {
        let d = doc();
        let d2 = apply_edit(&d, &Path::new(vec![1, 0]), PathEdit::Delete).unwrap();
        assert_eq!(d2.children()[1].children().len(), 1);
        assert_eq!(d2.children()[1].children()[0].as_text(), Some("z"));
        // deleting the root is rejected
        assert!(apply_edit(&d, &Path::root(), PathEdit::Delete).is_err());
    }

    #[test]
    fn insert_and_append() {
        let d = doc();
        let d2 = apply_edit(
            &d,
            &Path::new(vec![1]),
            PathEdit::InsertChild {
                at: 1,
                node: Term::text("mid"),
            },
        )
        .unwrap();
        let texts: Vec<_> = d2.children()[1]
            .children()
            .iter()
            .filter_map(Term::as_text)
            .collect();
        assert_eq!(texts, vec!["y", "mid", "z"]);

        let d3 = apply_edit(&d, &Path::root(), PathEdit::AppendChild(Term::elem("c"))).unwrap();
        assert_eq!(d3.children().len(), 3);
        assert_eq!(d3.children()[2].label(), Some("c"));
    }

    #[test]
    fn attr_edits() {
        let d = doc();
        let d2 = apply_edit(
            &d,
            &Path::new(vec![0]),
            PathEdit::SetAttr {
                key: "id".into(),
                value: "a1".into(),
            },
        )
        .unwrap();
        assert_eq!(d2.children()[0].attr("id"), Some("a1"));
        let d3 = apply_edit(&d2, &Path::new(vec![0]), PathEdit::RemoveAttr("id".into())).unwrap();
        assert_eq!(d3.children()[0].attr("id"), None);
    }

    #[test]
    fn bad_paths_error() {
        let d = doc();
        assert!(apply_edit(&d, &Path::new(vec![9]), PathEdit::Delete).is_err());
        // Edits that need an element fail on text nodes.
        assert!(apply_edit(
            &d,
            &Path::new(vec![0, 0]),
            PathEdit::AppendChild(Term::text("q"))
        )
        .is_err());
    }
}
