//! A `NodeKind::Net` node — an engine behind the real TCP ingress tier
//! — must be indistinguishable from the same engine hosted in-process:
//! identical sink traces (payload bytes *and* virtual timestamps), with
//! the simulation's determinism intact.

use reweb_core::{Credentials, ReactiveEngine};
use reweb_net::{NetConfig, NetServer};
use reweb_term::{parse_term, Term, Timestamp};
use reweb_websim::Simulation;

const PROGRAM: &str = r#"
RULE fwd ON order{{id[[var O]]}} DO SEND ack{id[var O]} TO "http://client" END
RULE quiet ON absence(ping, ping, 5s) DO SEND alarm TO "http://client" END
"#;

/// Run the same scenario against a local engine node or a TCP-fronted
/// one and return the sink trace.
fn run(net: Option<&NetServer>) -> Vec<(u64, String)> {
    let mut sim = Simulation::new(7);
    // Zero transit latency pins every arrival to an exact virtual time,
    // so the local deadline scan and the explicit wakeup below fire the
    // absence alarm at the same instant in both runs.
    sim.set_latency(reweb_term::Dur::millis(0), 0);
    match net {
        Some(server) => {
            server.with_engine(|e| e.install_source(PROGRAM).expect("install remote"));
            sim.add_net_engine("http://shop", server.local_addr())
                .expect("connect net node");
        }
        None => {
            let mut engine = ReactiveEngine::new("http://shop");
            engine.install_program(PROGRAM).expect("install local");
            sim.add_engine("http://shop", engine);
        }
    }
    sim.add_sink("http://client");
    sim.post(
        "http://client",
        "http://shop",
        parse_term("order{id[\"o1\"]}").unwrap(),
        Timestamp(0),
    );
    sim.post(
        "http://client",
        "http://shop",
        Term::elem("ping"),
        Timestamp(0),
    );
    // Remote absence deadlines are invisible to the simulation's
    // deadline scan, so both runs drive the alarm with the same
    // explicit wakeup at exactly the deadline (ping at 0 + 5s).
    sim.schedule_wakeup("http://shop", Timestamp(5_000));
    sim.run_until(Timestamp(10_000));
    sim.sink("http://client")
        .iter()
        .map(|(t, e)| (t.millis(), e.body.to_string()))
        .collect()
}

#[test]
fn tcp_fronted_node_matches_local_engine() {
    let server = NetServer::bind(
        "127.0.0.1:0",
        ReactiveEngine::new("http://shop"),
        NetConfig::default(),
    )
    .expect("bind");
    let local = run(None);
    let networked = run(Some(&server));
    assert!(
        local.iter().any(|(_, b)| b.starts_with("ack")),
        "scenario exercises rules: {local:?}"
    );
    assert!(
        local.iter().any(|(_, b)| b == "alarm"),
        "scenario exercises deadlines: {local:?}"
    );
    assert_eq!(local, networked, "TCP front must be invisible to the sim");
}

/// Credentials attached by the simulation ride the gateway session's
/// per-event override, so AAA on the far side of the wire sees the same
/// principal it would in-process.
#[test]
fn credentials_cross_the_wire() {
    let mut engine = ReactiveEngine::new("http://secure");
    engine.aaa = reweb_core::aaa::Aaa::new(reweb_core::AaaConfig {
        require_auth: true,
        authorize: false,
        accounting: false,
        accounting_events: false,
    });
    engine.aaa.register("franz", "pw", vec![]);
    engine
        .install_program(r#"RULE ok ON ping DO SEND pong TO "http://client" END"#)
        .unwrap();
    let server = NetServer::bind("127.0.0.1:0", engine, NetConfig::default()).expect("bind");

    let mut sim = Simulation::new(7);
    sim.add_net_engine("http://secure", server.local_addr())
        .expect("connect");
    sim.add_sink("http://client");
    // Without credentials: denied by the remote AAA.
    sim.post(
        "http://client",
        "http://secure",
        Term::elem("ping"),
        Timestamp(0),
    );
    sim.run_until(Timestamp(1_000));
    assert_eq!(sim.sink("http://client").len(), 0);
    // With credentials: accepted.
    sim.set_outgoing_credentials(
        "http://client",
        Credentials {
            principal: "franz".into(),
            secret: "pw".into(),
        },
    );
    sim.post(
        "http://client",
        "http://secure",
        Term::elem("ping"),
        Timestamp(2_000),
    );
    sim.run_until(Timestamp(3_000));
    assert_eq!(sim.sink("http://client").len(), 1);
    assert_eq!(sim.sink("http://client")[0].1.body.label(), Some("pong"));
}
