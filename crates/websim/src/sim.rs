//! The discrete-event simulation: scheduled deliveries, polls, wakeups,
//! and resource updates over a virtual clock.
//!
//! Determinism: the event queue orders by (time, sequence number), and the
//! only randomness — latency jitter — comes from a seeded RNG. Two runs
//! with the same seed are identical, which is what makes the experiment
//! tables reproducible.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::path::Path;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reweb_core::{Credentials, MessageMeta, ReactiveEngine, ShardedEngine};
use reweb_persist::{DurableEngine, DurableOptions};
use reweb_term::{Dur, IdentityMode, ResourceStore, Term, Timestamp};

use crate::envelope::Envelope;
use crate::node::{DurableNode, NetFront, NodeKind, Poller};

/// Network traffic and delivery statistics (experiments E2, E3).
#[derive(Clone, Debug, Default)]
pub struct NetMetrics {
    /// Push deliveries (`POST`s).
    pub posts: u64,
    /// Poll round-trips (`GET`s; each counts two wire messages).
    pub gets: u64,
    /// Total wire messages (posts + 2×gets).
    pub messages: u64,
    /// Total wire bytes ([`Envelope::wire_size`]).
    pub bytes: u64,
    /// Deliveries to unknown nodes.
    pub dropped: u64,
    /// Deliveries lost because the destination node was down (killed by
    /// fault injection and not yet recovered) when they arrived.
    pub lost_while_down: u64,
    /// Messages sent, per sending node.
    pub sent_by_node: BTreeMap<String, u64>,
    /// Messages delivered, per receiving node.
    pub received_by_node: BTreeMap<String, u64>,
    /// (recipient, transit time) per delivery.
    pub delivery_latencies: Vec<(String, Dur)>,
}

enum Task {
    Deliver(Envelope),
    Poll { node: String },
    Wakeup { node: String },
    UpdateResource { uri: String, doc: Term },
}

struct Scheduled {
    at: Timestamp,
    seq: u64,
    task: Task,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The simulated Web.
pub struct Simulation {
    nodes: BTreeMap<String, NodeKind>,
    /// resource URI → (notify node, identity mode) push subscriptions.
    push_subs: BTreeMap<String, Vec<(String, IdentityMode)>>,
    /// Credentials a node presents on its outbound messages.
    outgoing_creds: BTreeMap<String, Credentials>,
    /// Nodes currently killed by fault injection: deliveries to them are
    /// lost, their engines neither advance nor answer polls.
    down: BTreeSet<String>,
    queue: BinaryHeap<Reverse<Scheduled>>,
    now: Timestamp,
    seq: u64,
    next_msg_id: u64,
    latency_base: Dur,
    jitter_ms: u64,
    rng: StdRng,
    /// Traffic and delivery counters.
    pub metrics: NetMetrics,
}

impl Simulation {
    /// An empty simulated Web; `seed` drives the latency jitter.
    pub fn new(seed: u64) -> Simulation {
        Simulation {
            nodes: BTreeMap::new(),
            push_subs: BTreeMap::new(),
            outgoing_creds: BTreeMap::new(),
            down: BTreeSet::new(),
            queue: BinaryHeap::new(),
            now: Timestamp::ZERO,
            seq: 0,
            next_msg_id: 0,
            latency_base: Dur::millis(20),
            jitter_ms: 10,
            rng: StdRng::seed_from_u64(seed),
            metrics: NetMetrics::default(),
        }
    }

    /// Configure transit latency: `base` plus uniform jitter in
    /// `[0, jitter_ms]`.
    pub fn set_latency(&mut self, base: Dur, jitter_ms: u64) {
        self.latency_base = base;
        self.jitter_ms = jitter_ms;
    }

    /// The current virtual time.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    // ----- topology -------------------------------------------------------

    /// Add a reactive node processing its rules locally.
    pub fn add_engine(&mut self, uri: impl Into<String>, engine: ReactiveEngine) {
        self.nodes
            .insert(uri.into(), NodeKind::Engine(Box::new(engine)));
    }

    /// Add a node backed by a sharded engine: deliveries route through
    /// its label-affinity front-end instead of a single engine.
    pub fn add_sharded_engine(&mut self, uri: impl Into<String>, engine: ShardedEngine) {
        self.nodes
            .insert(uri.into(), NodeKind::Sharded(Box::new(engine)));
    }

    /// Add a node whose engine is served over real TCP by a
    /// `reweb_net::NetServer` listening at `addr`. Connects a gateway
    /// session named after the node, so forwarded deliveries keep their
    /// simulated sender and credentials. See
    /// [`NetFront`] for the determinism contract
    /// (lockstep flushes; schedule wakeups for remote absence
    /// deadlines).
    pub fn add_net_engine(
        &mut self,
        uri: impl Into<String>,
        addr: impl std::net::ToSocketAddrs,
    ) -> std::io::Result<()> {
        let uri = uri.into();
        let addr = std::net::ToSocketAddrs::to_socket_addrs(&addr)?
            .next()
            .ok_or_else(|| std::io::Error::other("address resolved to nothing"))?;
        let client = reweb_net::NetClient::connect_with(addr, uri.clone(), None, true)?;
        self.nodes
            .insert(uri.clone(), NodeKind::Net(NetFront::new(client, addr, uri)));
        Ok(())
    }

    /// Add a reactive node whose engine is wrapped in a WAL-backed
    /// [`DurableEngine`] journaling to `dir` — the target for
    /// [`Simulation::kill_node`] / [`Simulation::recover_node`] fault
    /// injection. On a fresh directory the `program` is installed (and
    /// logged); on an existing one the log is replayed and `program` is
    /// ignored, exactly as a restarted process would recover.
    pub fn add_durable_engine(
        &mut self,
        uri: impl Into<String>,
        dir: impl AsRef<Path>,
        opts: DurableOptions,
        program: &str,
    ) -> reweb_persist::Result<()> {
        let uri = uri.into();
        let u = uri.clone();
        let mut eng = DurableEngine::open(dir.as_ref(), opts, move || ReactiveEngine::new(u))?;
        if !eng.recovery().recovered {
            eng.install_program(program)?;
        }
        // Deliveries lost while previous incarnations of this node were
        // down were journaled beside its WAL; fold them back into the
        // metrics so the counter round-trips across a simulation
        // restart, exactly like the engine state does.
        self.metrics.lost_while_down += DurableNode::lost_journal_count(dir.as_ref());
        self.nodes.insert(
            uri.clone(),
            NodeKind::Durable(DurableNode {
                uri,
                dir: dir.as_ref().to_path_buf(),
                opts,
                engine: Some(Box::new(eng)),
            }),
        );
        Ok(())
    }

    // ----- fault injection --------------------------------------------------

    /// Kill `uri` mid-run: deliveries addressed to it are lost (counted
    /// in [`NetMetrics::lost_while_down`]), its engine neither advances
    /// nor answers polls. A [`NodeKind::Durable`] node drops its
    /// in-memory engine (the on-disk log survives, crash-style); a
    /// [`NodeKind::Net`] node drops its TCP session without a `bye`.
    /// Returns false if no such node exists.
    pub fn kill_node(&mut self, uri: &str) -> bool {
        let Some(node) = self.nodes.get_mut(uri) else {
            return false;
        };
        self.down.insert(uri.to_string());
        match node {
            NodeKind::Durable(d) => d.kill(),
            NodeKind::Net(f) => f.kill(),
            _ => {}
        }
        true
    }

    /// Recover a killed node: durable nodes reopen their engine from the
    /// log (replaying to the pre-crash state), net nodes reconnect their
    /// gateway session. No-op for nodes that are up.
    pub fn recover_node(&mut self, uri: &str) -> std::io::Result<()> {
        let Some(node) = self.nodes.get_mut(uri) else {
            return Err(std::io::Error::other(format!("no node at {uri}")));
        };
        match node {
            NodeKind::Durable(d) => d.recover().map_err(std::io::Error::other)?,
            NodeKind::Net(f) => f.recover()?,
            _ => {}
        }
        self.down.remove(uri);
        Ok(())
    }

    /// True while `uri` is killed and not yet recovered.
    pub fn is_down(&self, uri: &str) -> bool {
        self.down.contains(uri)
    }

    /// Add a passive resource server.
    pub fn add_store(&mut self, uri: impl Into<String>, store: ResourceStore) {
        self.nodes.insert(uri.into(), NodeKind::Store(store));
    }

    /// Add a sink node recording every delivery.
    pub fn add_sink(&mut self, uri: impl Into<String>) {
        self.nodes.insert(uri.into(), NodeKind::Sink(Vec::new()));
    }

    /// Add a poller node; it polls immediately (taking its baseline
    /// snapshot) and then every interval.
    pub fn add_poller(&mut self, uri: impl Into<String>, poller: Poller) {
        let uri = uri.into();
        let at = self.now;
        self.nodes.insert(uri.clone(), NodeKind::Poller(poller));
        self.schedule(at, Task::Poll { node: uri });
    }

    /// Push subscription: whenever `resource` changes (via
    /// [`Simulation::schedule_update`]), the owner sends the diff as
    /// change events to `notify`.
    pub fn subscribe_push(
        &mut self,
        resource: impl Into<String>,
        notify: impl Into<String>,
        mode: IdentityMode,
    ) {
        self.push_subs
            .entry(resource.into())
            .or_default()
            .push((notify.into(), mode));
    }

    /// Credentials `node` presents on every outbound message.
    pub fn set_outgoing_credentials(&mut self, node: impl Into<String>, creds: Credentials) {
        self.outgoing_creds.insert(node.into(), creds);
    }

    /// The node registered at `uri`, if any.
    pub fn node(&self, uri: &str) -> Option<&NodeKind> {
        self.nodes.get(uri)
    }

    /// Mutable access to the node registered at `uri`.
    pub fn node_mut(&mut self, uri: &str) -> Option<&mut NodeKind> {
        self.nodes.get_mut(uri)
    }

    /// The engine at `uri`, if that node is an [`NodeKind::Engine`].
    pub fn engine(&self, uri: &str) -> Option<&ReactiveEngine> {
        self.nodes.get(uri).and_then(NodeKind::as_engine)
    }

    /// The sharded engine at `uri`, if that node is sharded.
    pub fn sharded(&self, uri: &str) -> Option<&ShardedEngine> {
        self.nodes.get(uri).and_then(NodeKind::as_sharded)
    }

    /// The durable engine at `uri`, if that node is durable and up
    /// (`None` while killed).
    pub fn durable(&self, uri: &str) -> Option<&DurableEngine<ReactiveEngine>> {
        self.nodes
            .get(uri)
            .and_then(NodeKind::as_durable)
            .and_then(DurableNode::engine)
    }

    /// Deliveries recorded at the sink `uri` (empty for non-sinks).
    pub fn sink(&self, uri: &str) -> &[(Timestamp, Envelope)] {
        self.nodes
            .get(uri)
            .and_then(NodeKind::as_sink)
            .unwrap_or(&[])
    }

    /// The node whose URI is the longest prefix of `uri` (resource
    /// ownership on this simulated Web).
    pub fn owner_of(&self, uri: &str) -> Option<&str> {
        self.nodes
            .keys()
            .filter(|n| uri.starts_with(n.as_str()))
            .max_by_key(|n| n.len())
            .map(|s| s.as_str())
    }

    // ----- scheduling -------------------------------------------------------

    fn schedule(&mut self, at: Timestamp, task: Task) {
        self.seq += 1;
        self.queue.push(Reverse(Scheduled {
            at,
            seq: self.seq,
            task,
        }));
    }

    fn transit(&mut self) -> Dur {
        let jitter = if self.jitter_ms == 0 {
            0
        } else {
            self.rng.gen_range(0..=self.jitter_ms)
        };
        self.latency_base + Dur::millis(jitter)
    }

    /// Send `payload` from one node to another at time `at` (push).
    pub fn post(&mut self, from: &str, to: &str, payload: Term, at: Timestamp) {
        self.next_msg_id += 1;
        let env = Envelope {
            from: from.to_string(),
            to: to.to_string(),
            sent_at: at,
            message_id: self.next_msg_id,
            credentials: self.outgoing_creds.get(from).cloned(),
            body: payload,
        };
        let arrive = at + self.transit();
        *self
            .metrics
            .sent_by_node
            .entry(from.to_string())
            .or_default() += 1;
        self.schedule(arrive, Task::Deliver(env));
    }

    /// Change a resource at time `at` (the external workload driver);
    /// triggers push notifications for subscribers.
    pub fn schedule_update(&mut self, resource_uri: impl Into<String>, doc: Term, at: Timestamp) {
        self.schedule(
            at,
            Task::UpdateResource {
                uri: resource_uri.into(),
                doc,
            },
        );
    }

    /// Wake an engine node at `at` (drives absence-rule deadlines).
    pub fn schedule_wakeup(&mut self, node: impl Into<String>, at: Timestamp) {
        self.schedule(at, Task::Wakeup { node: node.into() });
    }

    // ----- the main loop ----------------------------------------------------

    /// The earliest pending rule deadline (absence timers) across all
    /// engine nodes.
    fn min_engine_deadline(&self) -> Option<Timestamp> {
        self.nodes
            .iter()
            .filter(|(uri, _)| !self.down.contains(uri.as_str()))
            .filter_map(|(_, n)| match n {
                NodeKind::Engine(e) => e.next_deadline(),
                NodeKind::Sharded(e) => e.next_deadline(),
                NodeKind::Durable(d) => d.engine().and_then(|e| e.engine().next_deadline()),
                _ => None,
            })
            .min()
    }

    /// Advance every engine's clock to `at`, delivering what that
    /// produces. Net-fronted engines advance over the wire, fenced, so
    /// their firings land at the same virtual time.
    fn advance_engines(&mut self, at: Timestamp) {
        let uris: Vec<String> = self.nodes.keys().cloned().collect();
        for uri in uris {
            if self.down.contains(&uri) {
                continue;
            }
            let outs: Vec<(String, Term)> = match self.nodes.get_mut(&uri) {
                Some(NodeKind::Engine(e)) => e
                    .advance_time(at)
                    .into_iter()
                    .map(|o| (o.to, o.payload))
                    .collect(),
                Some(NodeKind::Sharded(e)) => e
                    .advance_time(at)
                    .into_iter()
                    .map(|o| (o.to, o.payload))
                    .collect(),
                Some(NodeKind::Net(f)) => f.advance(at),
                Some(NodeKind::Durable(d)) => durable_outs(d, |e| e.advance_time(at)),
                _ => Vec::new(),
            };
            for (to, payload) in outs {
                self.post(&uri, &to, payload, at);
            }
        }
    }

    /// Run the simulation up to and including time `t`. Queued work and
    /// engine deadlines (absence timers) interleave in timestamp order, so
    /// a deadline at 5 s produces its message at 5 s, not at `t`.
    pub fn run_until(&mut self, t: Timestamp) {
        loop {
            let qnext = self.queue.peek().map(|Reverse(s)| s.at);
            let dnext = self.min_engine_deadline();
            let next = [qnext, dnext].into_iter().flatten().min();
            match next {
                Some(at) if at <= t => {
                    self.now = self.now.max(at);
                    if qnext == Some(at) {
                        let Reverse(s) = self.queue.pop().expect("peeked");
                        self.dispatch(s.task);
                    } else {
                        self.advance_engines(at);
                    }
                }
                _ => {
                    // Nothing due before t: final clock advance and out.
                    self.now = self.now.max(t);
                    self.advance_engines(t);
                    if !self.queue.iter().any(|Reverse(s)| s.at <= t) {
                        return;
                    }
                }
            }
        }
    }

    fn dispatch(&mut self, task: Task) {
        match task {
            Task::Deliver(env) => self.deliver(env),
            Task::Poll { node } => self.poll(node),
            Task::Wakeup { node } => {
                if self.down.contains(&node) {
                    return;
                }
                let now = self.now;
                let outs: Vec<(String, Term)> = match self.nodes.get_mut(&node) {
                    Some(NodeKind::Engine(e)) => e
                        .advance_time(now)
                        .into_iter()
                        .map(|o| (o.to, o.payload))
                        .collect(),
                    Some(NodeKind::Sharded(e)) => e
                        .advance_time(now)
                        .into_iter()
                        .map(|o| (o.to, o.payload))
                        .collect(),
                    Some(NodeKind::Net(f)) => f.advance(now),
                    Some(NodeKind::Durable(d)) => durable_outs(d, |e| e.advance_time(now)),
                    _ => Vec::new(),
                };
                for (to, payload) in outs {
                    self.post(&node, &to, payload, now);
                }
            }
            Task::UpdateResource { uri, doc } => self.apply_update(uri, doc),
        }
    }

    fn deliver(&mut self, env: Envelope) {
        self.metrics.posts += 1;
        self.metrics.messages += 1;
        self.metrics.bytes += env.wire_size() as u64;
        self.metrics
            .delivery_latencies
            .push((env.to.clone(), self.now.since(env.sent_at)));
        let Some(owner) = self.owner_of(&env.to).map(String::from) else {
            self.metrics.dropped += 1;
            return;
        };
        if self.down.contains(&owner) {
            // The destination crashed: push delivery is fire-and-forget
            // on this simulated Web, so the message is simply lost. A
            // durable owner journals the loss beside its WAL, so the
            // counter survives a restart of the simulation itself.
            self.metrics.lost_while_down += 1;
            if let Some(NodeKind::Durable(d)) = self.nodes.get(&owner) {
                d.journal_lost(self.now);
            }
            return;
        }
        *self
            .metrics
            .received_by_node
            .entry(owner.clone())
            .or_default() += 1;
        let now = self.now;
        let outs: Vec<(String, Term)> = match self.nodes.get_mut(&owner) {
            Some(NodeKind::Engine(e)) => {
                let meta = MessageMeta {
                    from: env.from.clone(),
                    credentials: env.credentials.clone(),
                };
                e.receive(env.body.clone(), &meta, now)
                    .into_iter()
                    .map(|o| (o.to, o.payload))
                    .collect()
            }
            Some(NodeKind::Sharded(e)) => {
                let meta = MessageMeta {
                    from: env.from.clone(),
                    credentials: env.credentials.clone(),
                };
                e.receive(env.body.clone(), &meta, now)
                    .into_iter()
                    .map(|o| (o.to, o.payload))
                    .collect()
            }
            // The engine is on the far side of a TCP connection: the
            // delivery crosses the wire with its simulated sender and
            // credentials, and the fenced reply stream comes back before
            // the clock moves.
            Some(NodeKind::Net(f)) => f.forward(&env, now),
            Some(NodeKind::Durable(d)) => {
                let meta = MessageMeta {
                    from: env.from.clone(),
                    credentials: env.credentials.clone(),
                };
                durable_outs(d, |e| e.receive(env.body.clone(), &meta, now))
            }
            Some(NodeKind::Sink(v)) => {
                v.push((now, env));
                Vec::new()
            }
            // Stores and pollers accept but ignore pushes.
            Some(_) => Vec::new(),
            None => unreachable!("owner resolved above"),
        };
        for (to, payload) in outs {
            self.post(&owner, &to, payload, now);
        }
    }

    fn poll(&mut self, node: String) {
        // Read the poller's config, fetch the remote snapshot, then feed
        // it to the poller (split to satisfy the borrow checker).
        let Some(NodeKind::Poller(p)) = self.nodes.get(&node) else {
            return;
        };
        let (target, notify, interval) = (p.target.clone(), p.notify.clone(), p.interval);

        let fetched: Option<(Term, u64)> = self
            .owner_of(&target)
            .map(String::from)
            .filter(|owner| !self.down.contains(owner))
            .and_then(|owner| self.nodes.get(&owner))
            .and_then(NodeKind::store)
            .and_then(|s| {
                s.get(&target)
                    .ok()
                    .cloned()
                    .map(|d| (d, s.version(&target).unwrap_or(0)))
            });

        // The GET round-trip costs traffic whether or not anything changed.
        self.metrics.gets += 1;
        self.metrics.messages += 2;
        self.metrics.bytes += 64
            + fetched
                .as_ref()
                .map(|(d, _)| d.serialized_size() as u64)
                .unwrap_or(16);

        let events: Vec<Term> = match (&fetched, self.nodes.get_mut(&node)) {
            (Some((doc, version)), Some(NodeKind::Poller(p))) => p.observe(doc, *version),
            _ => Vec::new(),
        };
        let now = self.now;
        for ev in events {
            self.post(&node, &notify, ev, now);
        }
        self.schedule(now + interval, Task::Poll { node });
    }

    fn apply_update(&mut self, uri: String, doc: Term) {
        let Some(owner) = self.owner_of(&uri).map(String::from) else {
            return;
        };
        if self.down.contains(&owner) {
            // A crashed owner can't accept the write; the update is lost
            // (the workload driver does not retry). Durable owners
            // journal the loss, as in `deliver`.
            self.metrics.lost_while_down += 1;
            if let Some(NodeKind::Durable(d)) = self.nodes.get(&owner) {
                d.journal_lost(self.now);
            }
            return;
        }
        let old = self
            .nodes
            .get(&owner)
            .and_then(NodeKind::store)
            .and_then(|s| s.get(&uri).ok().cloned());
        match self.nodes.get_mut(&owner) {
            // A sharded owner replicates the update to every shard's
            // store, so every rule reads the same data.
            Some(NodeKind::Sharded(e)) => e.put_resource(uri.clone(), doc.clone()),
            // A durable owner logs the update so recovery replays it.
            Some(NodeKind::Durable(d)) => {
                let Some(e) = d.engine.as_deref_mut() else {
                    return;
                };
                if e.put_resource(&uri, doc.clone()).is_err() {
                    return;
                }
            }
            Some(n) => {
                if let Some(store) = n.store_mut() {
                    store.put(uri.clone(), doc.clone());
                } else {
                    return;
                }
            }
            None => return,
        }
        // Push notifications: the owner tells subscribers what changed.
        let subs = self.push_subs.get(&uri).cloned().unwrap_or_default();
        let now = self.now;
        for (notify, mode) in subs {
            let payloads: Vec<Term> = match &old {
                Some(old_doc) => reweb_term::diff_documents(old_doc, &doc, &mode)
                    .into_iter()
                    .map(|c| c.to_event_payload(&uri))
                    .collect(),
                None => vec![Term::build("changed")
                    .unordered()
                    .field("resource", &uri)
                    .field("kind", "created")
                    .finish()],
            };
            for p in payloads {
                self.post(&owner, &notify, p, now);
            }
        }
    }
}

/// Run `f` against a durable node's engine and shape the outputs for
/// re-posting. Empty when the node is crashed or the log write fails —
/// the simulated Web drops messages, it does not crash the run.
fn durable_outs(
    d: &mut DurableNode,
    f: impl FnOnce(
        &mut DurableEngine<ReactiveEngine>,
    ) -> reweb_persist::Result<Vec<reweb_core::OutMessage>>,
) -> Vec<(String, Term)> {
    d.engine
        .as_deref_mut()
        .and_then(|e| f(e).ok())
        .unwrap_or_default()
        .into_iter()
        .map(|o| (o.to, o.payload))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use reweb_term::parse_term;

    fn news_doc(title: &str) -> Term {
        parse_term(&format!("news[article{{@id=\"a1\", title[\"{title}\"]}}]")).unwrap()
    }

    #[test]
    fn post_delivers_to_engine_and_relays() {
        let mut sim = Simulation::new(7);
        let mut engine = ReactiveEngine::new("http://shop");
        engine
            .install_program(
                r#"RULE fwd ON order{{id[[var O]]}} DO SEND ack{id[var O]} TO "http://client" END"#,
            )
            .unwrap();
        sim.add_engine("http://shop", engine);
        sim.add_sink("http://client");
        sim.post(
            "http://client",
            "http://shop",
            parse_term("order{id[\"o1\"]}").unwrap(),
            Timestamp(0),
        );
        sim.run_until(Timestamp(1_000));
        let deliveries = sim.sink("http://client");
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].1.body.to_string(), "ack{id[\"o1\"]}");
        // Two wire messages: order + ack.
        assert_eq!(sim.metrics.posts, 2);
        assert!(sim.metrics.bytes > 0);
    }

    #[test]
    fn messages_to_nowhere_are_dropped() {
        let mut sim = Simulation::new(7);
        sim.add_sink("http://a");
        sim.post("http://a", "http://ghost", Term::elem("x"), Timestamp(0));
        sim.run_until(Timestamp(1_000));
        assert_eq!(sim.metrics.dropped, 1);
    }

    #[test]
    fn push_subscription_notifies_on_update() {
        let mut sim = Simulation::new(7);
        let mut store = ResourceStore::new();
        store.put("http://news/front", news_doc("old"));
        sim.add_store("http://news", store);
        sim.add_sink("http://watcher");
        sim.subscribe_push(
            "http://news/front",
            "http://watcher",
            IdentityMode::surrogate(),
        );
        sim.schedule_update("http://news/front", news_doc("new"), Timestamp(500));
        sim.run_until(Timestamp(2_000));
        let got = sim.sink("http://watcher");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1.body.label(), Some("changed"));
        // Reaction latency ≈ transit latency only.
        let lat = got[0].0.since(Timestamp(500));
        assert!(lat <= Dur::millis(30), "latency {lat}");
    }

    #[test]
    fn poller_notices_late_and_costs_traffic() {
        let mut sim = Simulation::new(7);
        let mut store = ResourceStore::new();
        store.put("http://news/front", news_doc("old"));
        sim.add_store("http://news", store);
        sim.add_sink("http://watcher");
        sim.add_poller(
            "http://poller",
            Poller::new(
                "http://news/front",
                Dur::secs(10),
                "http://watcher",
                IdentityMode::surrogate(),
            ),
        );
        // Change at t=12s; polls at 10s (baseline), 20s (sees change).
        sim.schedule_update("http://news/front", news_doc("new"), Timestamp(12_000));
        sim.run_until(Timestamp(60_000));
        let got = sim.sink("http://watcher");
        assert_eq!(got.len(), 1);
        // Latency is dominated by the polling interval, not transit.
        let lat = got[0].0.since(Timestamp(12_000));
        assert!(lat >= Dur::secs(7), "latency {lat}");
        // Seven polls in a minute (baseline at t=0 plus six intervals),
        // each a GET round-trip.
        assert_eq!(sim.metrics.gets, 7);
    }

    #[test]
    fn wakeups_fire_absence_deadlines() {
        let mut sim = Simulation::new(7);
        let mut engine = ReactiveEngine::new("http://me");
        engine
            .install_program(
                r#"RULE quiet ON absence(ping, ping, 5s) DO SEND alarm TO "http://ops" END"#,
            )
            .unwrap();
        sim.add_engine("http://me", engine);
        sim.add_sink("http://ops");
        sim.post("http://ops", "http://me", Term::elem("ping"), Timestamp(0));
        sim.run_until(Timestamp(10_000));
        let got = sim.sink("http://ops");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1.body.label(), Some("alarm"));
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed: u64| {
            let mut sim = Simulation::new(seed);
            sim.add_sink("http://s");
            let mut store = ResourceStore::new();
            store.put("http://n/doc", news_doc("v0"));
            sim.add_store("http://n", store);
            sim.subscribe_push("http://n/doc", "http://s", IdentityMode::surrogate());
            for i in 1..10u64 {
                sim.schedule_update(
                    "http://n/doc",
                    news_doc(&format!("v{i}")),
                    Timestamp(i * 100),
                );
            }
            sim.run_until(Timestamp(5_000));
            sim.sink("http://s")
                .iter()
                .map(|(t, e)| (t.millis(), e.body.to_string()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        // Different seeds may reorder (jitter), but deliver the same count.
        assert_eq!(run(42).len(), run(43).len());
    }

    #[test]
    fn owner_resolution_longest_prefix() {
        let mut sim = Simulation::new(1);
        sim.add_sink("http://a");
        sim.add_sink("http://a/deep");
        assert_eq!(sim.owner_of("http://a/deep/doc"), Some("http://a/deep"));
        assert_eq!(sim.owner_of("http://a/other"), Some("http://a"));
        assert_eq!(sim.owner_of("http://zzz"), None);
    }

    #[test]
    fn sharded_node_processes_deliveries_and_timers() {
        let mut sim = Simulation::new(7);
        let mut engine = ShardedEngine::new("http://shop", 4);
        engine
            .install_program(
                r#"RULE fwd ON order{{id[[var O]]}} DO SEND ack{id[var O]} TO "http://client" END
                   RULE quiet ON absence(ping, ping, 5s) DO SEND alarm TO "http://client" END"#,
            )
            .unwrap();
        sim.add_sharded_engine("http://shop", engine);
        sim.add_sink("http://client");
        sim.post(
            "http://client",
            "http://shop",
            parse_term("order{id[\"o1\"]}").unwrap(),
            Timestamp(0),
        );
        sim.post(
            "http://client",
            "http://shop",
            Term::elem("ping"),
            Timestamp(0),
        );
        sim.run_until(Timestamp(10_000));
        let got = sim.sink("http://client");
        let labels: Vec<_> = got.iter().filter_map(|(_, e)| e.body.label()).collect();
        // The order was acked and the absence deadline fired through the
        // simulation's wakeup machinery.
        assert!(labels.contains(&"ack"), "got {labels:?}");
        assert!(labels.contains(&"alarm"), "got {labels:?}");
        let shop = sim.sharded("http://shop").expect("sharded accessor");
        assert_eq!(shop.metrics().events_received, 2);
    }

    /// A thread-per-shard engine drops into the same node slot: same
    /// deliveries, same timer wakeups, same outputs — the simulation
    /// never observes which executor is behind `NodeKind::Sharded`.
    #[test]
    fn parallel_sharded_node_behaves_like_serial() {
        let run = |parallel: bool| {
            let mut sim = Simulation::new(7);
            let mut engine = if parallel {
                ShardedEngine::new_parallel("http://shop", 4)
            } else {
                ShardedEngine::new("http://shop", 4)
            };
            engine
                .install_program(
                    r#"RULE fwd ON order{{id[[var O]]}} DO SEND ack{id[var O]} TO "http://client" END
                       RULE quiet ON absence(ping, ping, 5s) DO SEND alarm TO "http://client" END"#,
                )
                .unwrap();
            sim.add_sharded_engine("http://shop", engine);
            sim.add_sink("http://client");
            sim.post(
                "http://client",
                "http://shop",
                parse_term("order{id[\"o1\"]}").unwrap(),
                Timestamp(0),
            );
            sim.post(
                "http://client",
                "http://shop",
                Term::elem("ping"),
                Timestamp(0),
            );
            sim.run_until(Timestamp(10_000));
            sim.sink("http://client")
                .iter()
                .map(|(t, e)| (t.millis(), e.body.to_string()))
                .collect::<Vec<_>>()
        };
        let serial = run(false);
        let parallel = run(true);
        assert!(!serial.is_empty());
        assert_eq!(
            serial, parallel,
            "executor choice must be invisible to the sim"
        );
    }

    #[test]
    fn sharded_node_resource_updates_replicate() {
        let mut sim = Simulation::new(7);
        let mut engine = ShardedEngine::new("http://shop", 2);
        engine
            .install_program(
                r#"RULE chk ON probe{{v[[var X]]}}
                   IF in "http://shop/items" item{{v[[var X]]}}
                   THEN SEND yes{v[var X]} TO "http://client"
                   ELSE SEND no{v[var X]} TO "http://client" END"#,
            )
            .unwrap();
        sim.add_sharded_engine("http://shop", engine);
        sim.add_sink("http://client");
        sim.schedule_update(
            "http://shop/items",
            parse_term("items[item{v[\"1\"]}]").unwrap(),
            Timestamp(100),
        );
        sim.post(
            "http://client",
            "http://shop",
            parse_term("probe{v[\"1\"]}").unwrap(),
            Timestamp(500),
        );
        sim.run_until(Timestamp(2_000));
        let got = sim.sink("http://client");
        assert_eq!(got.len(), 1);
        assert_eq!(
            got[0].1.body.label(),
            Some("yes"),
            "update reached the shard store"
        );
    }

    #[test]
    fn durable_node_crash_loses_in_flight_and_recovery_replays_state() {
        let dir = std::env::temp_dir().join(format!("reweb-websim-dur-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let program =
            r#"RULE fwd ON order{{id[[var O]]}} DO SEND ack{id[var O]} TO "http://client" END"#;
        let mut sim = Simulation::new(7);
        sim.add_durable_engine("http://shop", &dir, DurableOptions::default(), program)
            .unwrap();
        sim.add_sink("http://client");
        // First order processed (and logged) while the node is up.
        sim.post(
            "http://client",
            "http://shop",
            parse_term("order{id[\"o1\"]}").unwrap(),
            Timestamp(0),
        );
        sim.run_until(Timestamp(1_000));
        assert_eq!(sim.sink("http://client").len(), 1);

        // Crash the node; a second order arrives into the void.
        assert!(sim.kill_node("http://shop"));
        assert!(sim.is_down("http://shop"));
        sim.post(
            "http://client",
            "http://shop",
            parse_term("order{id[\"o2\"]}").unwrap(),
            Timestamp(2_000),
        );
        sim.run_until(Timestamp(3_000));
        assert_eq!(sim.metrics.lost_while_down, 1);
        assert_eq!(sim.sink("http://client").len(), 1, "o2 was lost");

        // Recover from the write-ahead log: the rules replay, and a
        // third order is processed as if the crash never happened.
        sim.recover_node("http://shop").unwrap();
        assert!(!sim.is_down("http://shop"));
        assert!(sim.durable("http://shop").unwrap().recovery().recovered);
        sim.post(
            "http://client",
            "http://shop",
            parse_term("order{id[\"o3\"]}").unwrap(),
            Timestamp(4_000),
        );
        sim.run_until(Timestamp(5_000));
        let bodies: Vec<String> = sim
            .sink("http://client")
            .iter()
            .map(|(_, e)| e.body.to_string())
            .collect();
        assert_eq!(bodies, vec!["ack{id[\"o1\"]}", "ack{id[\"o3\"]}"]);

        // The loss round-trips like the engine state does: a brand-new
        // simulation over the same directory starts with o2's loss
        // already on the books (journaled beside the WAL at loss time),
        // not reset to zero by the restart.
        drop(sim);
        let mut sim2 = Simulation::new(7);
        assert_eq!(sim2.metrics.lost_while_down, 0);
        sim2.add_durable_engine("http://shop", &dir, DurableOptions::default(), program)
            .unwrap();
        assert_eq!(
            sim2.metrics.lost_while_down, 1,
            "lost_while_down survives a simulation restart"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn credentials_travel_with_messages() {
        let mut sim = Simulation::new(7);
        let mut engine = ReactiveEngine::new("http://secure");
        engine.aaa = reweb_core::aaa::Aaa::new(reweb_core::AaaConfig {
            require_auth: true,
            authorize: false,
            accounting: false,
            accounting_events: false,
        });
        engine.aaa.register("franz", "pw", vec![]);
        engine
            .install_program(r#"RULE ok ON ping DO SEND pong TO "http://client" END"#)
            .unwrap();
        sim.add_engine("http://secure", engine);
        sim.add_sink("http://client");
        // Without credentials: denied.
        sim.post(
            "http://client",
            "http://secure",
            Term::elem("ping"),
            Timestamp(0),
        );
        sim.run_until(Timestamp(1_000));
        assert_eq!(sim.sink("http://client").len(), 0);
        // With credentials: accepted.
        sim.set_outgoing_credentials(
            "http://client",
            Credentials {
                principal: "franz".into(),
                secret: "pw".into(),
            },
        );
        sim.post(
            "http://client",
            "http://secure",
            Term::elem("ping"),
            Timestamp(2_000),
        );
        sim.run_until(Timestamp(3_000));
        assert_eq!(sim.sink("http://client").len(), 1);
    }
}
