//! SOAP-like message envelopes.
//!
//! The paper: "SOAP's main components are (1) message envelope and
//! (2) transport binding. The envelope … consists of the header, which
//! provides information about the message (e.g., date when sent), and the
//! body, which carries application-dependent data (the 'payload')."
//!
//! [`Envelope`] is that structure: header fields (from, to, sent-at,
//! message id, optional credentials for Thesis 12) plus a term body. The
//! transport binding is the simulator's scheduled delivery.

use reweb_core::Credentials;
use reweb_term::{Term, Timestamp};

/// A message in flight: SOAP-style header + payload body.
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope {
    /// URI of the sending node.
    pub from: String,
    /// URI of the receiving node.
    pub to: String,
    /// Virtual time the message left the sender.
    pub sent_at: Timestamp,
    /// Simulation-wide sequence number (tie-breaks deliveries).
    pub message_id: u64,
    /// Credentials the sender presents (AAA, Thesis 11).
    pub credentials: Option<Credentials>,
    /// The event payload.
    pub body: Term,
}

impl Envelope {
    /// Wire size in bytes: header estimate plus serialized body — the
    /// quantity the traffic metrics count.
    pub fn wire_size(&self) -> usize {
        let header = self.from.len()
            + self.to.len()
            + 24 // timestamps + id
            + self
                .credentials
                .as_ref()
                .map(|c| c.principal.len() + c.secret.len())
                .unwrap_or(0);
        header + self.body.serialized_size()
    }

    /// Render as a term (for sinks and debugging).
    pub fn to_term(&self) -> Term {
        Term::build("envelope")
            .field("from", &self.from)
            .field("to", &self.to)
            .field("sent_at", self.sent_at.millis().to_string())
            .field("id", self.message_id.to_string())
            .child(Term::ordered("body", vec![self.body.clone()]))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> Envelope {
        Envelope {
            from: "http://a".into(),
            to: "http://b".into(),
            sent_at: Timestamp(42),
            message_id: 7,
            credentials: None,
            body: Term::build("order").attr("id", "o1").finish(),
        }
    }

    #[test]
    fn wire_size_includes_body() {
        let e = env();
        assert!(e.wire_size() > e.body.serialized_size());
        let with_creds = Envelope {
            credentials: Some(Credentials {
                principal: "franz".into(),
                secret: "pw".into(),
            }),
            ..env()
        };
        assert!(with_creds.wire_size() > e.wire_size());
    }

    #[test]
    fn to_term_shape() {
        let t = env().to_term();
        assert_eq!(t.label(), Some("envelope"));
        assert!(t.to_string().contains("from[\"http://a\"]"));
        assert!(t.to_string().contains("body[order[@id=\"o1\"]]"));
    }
}
