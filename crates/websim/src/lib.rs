//! # reweb-websim — a deterministic simulated Web
//!
//! The substitute for the real Web that the paper's claims run on
//! (Theses 2 and 3): nodes identified by URIs exchange HTTP-like messages
//! — `POST` delivers a SOAP-like [`Envelope`] (push), `GET` retrieves a
//! resource (pull) — over a network with configurable, seeded latency.
//! Everything is discrete-event simulated on the shared virtual clock, so
//! whole-system runs are reproducible bit for bit.
//!
//! * Every node processes its rules **locally** ([`NodeKind::Engine`]
//!   wraps a `reweb_core::ReactiveEngine`); coordination happens only
//!   through messages — there is no central rule processor (Thesis 2).
//! * **Push**: resource owners notify subscribers on every change
//!   ([`Simulation::subscribe_push`]); **poll**: a [`Poller`] GETs a
//!   remote resource periodically and synthesizes change events from the
//!   diff (Thesis 10's identity modes decide what the diff can say).
//!   Experiment E3 contrasts the two on traffic and reaction latency.
//! * [`NetMetrics`] counts every message and byte on the wire, per node
//!   and total, and records deliveries at [`NodeKind::Sink`] nodes so
//!   benchmarks can compute reaction latencies.
//! * A [`NodeKind::Net`] node fronts a real `reweb_net::NetServer` over
//!   loopback TCP ([`Simulation::add_net_engine`]): simulated deliveries
//!   cross the actual wire protocol in lockstep, so a networked engine
//!   can be dropped into any experiment without losing determinism.
//! * **Fault injection**: [`Simulation::kill_node`] crashes a node
//!   mid-run — a [`NodeKind::Durable`] node drops its in-memory engine
//!   (its write-ahead log survives on disk), a [`NodeKind::Net`] node
//!   drops its TCP session — and [`Simulation::recover_node`] brings it
//!   back, replaying the log or reconnecting. Deliveries that arrive
//!   while a node is down are lost and counted
//!   ([`NetMetrics::lost_while_down`]), which is exactly the gap the
//!   `reweb_net` delivery agent's retry/dead-letter machinery closes.

#![warn(missing_docs)]

pub mod envelope;
pub mod node;
pub mod sim;

pub use envelope::Envelope;
pub use node::{DurableNode, NetFront, NodeKind, Poller};
pub use sim::{NetMetrics, Simulation};

pub use reweb_term::TermError;
