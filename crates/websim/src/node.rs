//! Web nodes: engines, resource servers, pollers, sinks, and TCP
//! fronts.

use std::path::PathBuf;

use reweb_core::{ReactiveEngine, ShardedEngine};
use reweb_net::wire::Reply;
use reweb_net::NetClient;
use reweb_persist::{DurableEngine, DurableOptions};
use reweb_term::{diff_documents, Dur, IdentityMode, ResourceStore, Term, Timestamp};

use crate::envelope::Envelope;

/// What a node does with the messages and timers it receives.
pub enum NodeKind {
    /// A reactive node: rules processed locally (Thesis 2). Boxed: a
    /// `ReactiveEngine` is by far the largest variant, and nodes of all
    /// kinds live together in the simulation's node map.
    Engine(Box<ReactiveEngine>),
    /// A reactive node whose rules are partitioned across N engine
    /// shards by event-label affinity (batch-ingestion front-end).
    /// Works with either executor — build the engine with
    /// `ShardedEngine::new` (serial) or `ShardedEngine::new_parallel`
    /// (one worker thread per shard); the simulation cannot tell them
    /// apart.
    Sharded(Box<ShardedEngine>),
    /// A passive resource server: answers `GET`s, ignores `POST`s.
    Store(ResourceStore),
    /// A polling observer (the Thesis 3 baseline).
    Poller(Poller),
    /// Records every delivery, for tests and latency measurements.
    Sink(Vec<(Timestamp, Envelope)>),
    /// A node whose engine is served over real TCP by a
    /// `reweb_net::NetServer` ([`NetFront`]): simulated deliveries cross
    /// the wire protocol and the engine's reactions re-enter the
    /// simulation as ordinary posts.
    Net(NetFront),
    /// A reactive node whose engine is wrapped in a WAL-backed
    /// [`DurableEngine`] ([`DurableNode`]): the fault-injection target.
    /// `Simulation::kill_node` drops the in-memory engine (the on-disk
    /// log survives); `Simulation::recover_node` reopens it from the
    /// log, replaying to the exact pre-crash state.
    Durable(DurableNode),
}

impl NodeKind {
    /// The store served to `GET` requests, if this node has one. A
    /// sharded node serves shard 0's store (resource updates are
    /// replicated to every shard, so the shards agree on served data).
    pub fn store(&self) -> Option<&ResourceStore> {
        match self {
            NodeKind::Engine(e) => Some(&e.qe.store),
            NodeKind::Sharded(e) => Some(&e.shards()[0].qe.store),
            NodeKind::Store(s) => Some(s),
            NodeKind::Durable(d) => d.engine.as_ref().map(|e| &e.engine().qe.store),
            _ => None,
        }
    }

    /// Mutable access to the single backing store. `None` for sharded
    /// nodes (writes there must replicate to every shard, which the
    /// simulation does through [`ShardedEngine::put_resource`]) and for
    /// durable nodes (writes there must be logged, which the simulation
    /// does through [`DurableEngine::put_resource`]).
    pub fn store_mut(&mut self) -> Option<&mut ResourceStore> {
        match self {
            NodeKind::Engine(e) => Some(&mut e.qe.store),
            NodeKind::Store(s) => Some(s),
            _ => None,
        }
    }

    /// The engine, if this node is an [`NodeKind::Engine`].
    pub fn as_engine(&self) -> Option<&ReactiveEngine> {
        match self {
            NodeKind::Engine(e) => Some(e),
            _ => None,
        }
    }

    /// Mutable access to the engine of an [`NodeKind::Engine`].
    pub fn as_engine_mut(&mut self) -> Option<&mut ReactiveEngine> {
        match self {
            NodeKind::Engine(e) => Some(e),
            _ => None,
        }
    }

    /// The sharded engine, if this node is an [`NodeKind::Sharded`].
    pub fn as_sharded(&self) -> Option<&ShardedEngine> {
        match self {
            NodeKind::Sharded(e) => Some(e),
            _ => None,
        }
    }

    /// Mutable access to the engine of an [`NodeKind::Sharded`].
    pub fn as_sharded_mut(&mut self) -> Option<&mut ShardedEngine> {
        match self {
            NodeKind::Sharded(e) => Some(e),
            _ => None,
        }
    }

    /// The recorded deliveries, if this node is an [`NodeKind::Sink`].
    pub fn as_sink(&self) -> Option<&[(Timestamp, Envelope)]> {
        match self {
            NodeKind::Sink(v) => Some(v),
            _ => None,
        }
    }

    /// The durable node, if this is an [`NodeKind::Durable`].
    pub fn as_durable(&self) -> Option<&DurableNode> {
        match self {
            NodeKind::Durable(d) => Some(d),
            _ => None,
        }
    }

    /// Mutable access to an [`NodeKind::Durable`] node.
    pub fn as_durable_mut(&mut self) -> Option<&mut DurableNode> {
        match self {
            NodeKind::Durable(d) => Some(d),
            _ => None,
        }
    }
}

/// A WAL-backed reactive node (the `Simulation::kill_node` /
/// `recover_node` fault-injection target). While crashed the in-memory
/// engine is gone (`engine` is `None`) but the log directory persists;
/// recovery reopens the [`DurableEngine`] from disk, replaying rules,
/// state, and pending absence deadlines exactly as the persistence tier
/// guarantees.
pub struct DurableNode {
    pub(crate) uri: String,
    pub(crate) dir: PathBuf,
    pub(crate) opts: DurableOptions,
    pub(crate) engine: Option<Box<DurableEngine<ReactiveEngine>>>,
}

impl DurableNode {
    /// The running engine, `None` while the node is crashed.
    pub fn engine(&self) -> Option<&DurableEngine<ReactiveEngine>> {
        self.engine.as_deref()
    }

    /// True while the node is crashed (killed and not yet recovered).
    pub fn is_down(&self) -> bool {
        self.engine.is_none()
    }

    /// Simulate a crash: drop the in-memory engine. The log directory
    /// survives; whatever was synced is what recovery will see.
    pub(crate) fn kill(&mut self) {
        self.engine = None;
    }

    /// Reopen the engine from its log directory (crash recovery).
    pub(crate) fn recover(&mut self) -> reweb_persist::Result<()> {
        if self.engine.is_some() {
            return Ok(());
        }
        let uri = self.uri.clone();
        let eng = DurableEngine::open(&self.dir, self.opts, move || ReactiveEngine::new(uri))?;
        self.engine = Some(Box::new(eng));
        Ok(())
    }

    /// Journal one delivery lost while this node was down. The count
    /// lives beside the WAL (CRC-framed, one `lost{at[…]}` record per
    /// loss) so `NetMetrics::lost_while_down` survives a simulation
    /// restart over the same directory — the counter is durability
    /// accounting, and accounting that forgets losses across the very
    /// crash that caused them is useless. Best-effort: the node is
    /// *down*; a journaling failure must not take the simulation with
    /// it.
    pub(crate) fn journal_lost(&self, at: Timestamp) {
        let path = DurableNode::lost_journal_path(&self.dir);
        let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        else {
            return;
        };
        let bytes = Term::build("lost")
            .unordered()
            .field("at", at.millis().to_string())
            .finish()
            .to_string()
            .into_bytes();
        let _ = reweb_term::frame::write_frame(&mut f, &bytes);
        let _ = f.sync_data();
    }

    /// The loss journal's path inside a node's log directory.
    pub(crate) fn lost_journal_path(dir: &std::path::Path) -> PathBuf {
        dir.join("lost.log")
    }

    /// Replay the loss journal of `dir`: how many deliveries were lost
    /// while the node logging there was down, across every incarnation.
    /// A torn tail (crash mid-append) drops only the torn record.
    pub fn lost_journal_count(dir: &std::path::Path) -> u64 {
        let Ok(bytes) = std::fs::read(DurableNode::lost_journal_path(dir)) else {
            return 0;
        };
        reweb_term::frame::scan_frames(&bytes).frames.len() as u64
    }
}

/// The TCP front of a [`NodeKind::Net`] node: a gateway session on a
/// `reweb_net::NetServer`, so each simulated delivery keeps its original
/// sender and credentials on the wire.
///
/// Determinism: every forwarded event and clock advance is fenced with a
/// `sync` round-trip before the simulation's clock moves, so the remote
/// engine's reactions arrive in a fixed order at a fixed virtual time.
/// The remote engine's absence deadlines are invisible to the
/// simulation's deadline scan — schedule explicit wakeups
/// (`Simulation::schedule_wakeup`) where their timing matters; otherwise
/// they fire at the next clock advance.
pub struct NetFront {
    /// `None` while the connection is killed (fault injection).
    client: Option<NetClient>,
    /// Reconnect coordinates for [`Simulation::recover_node`].
    addr: std::net::SocketAddr,
    from: String,
}

impl NetFront {
    /// Wrap an established gateway session, remembering the reconnect
    /// coordinates so a killed front can be recovered.
    pub fn new(client: NetClient, addr: std::net::SocketAddr, from: impl Into<String>) -> NetFront {
        NetFront {
            client: Some(client),
            addr,
            from: from.into(),
        }
    }

    /// True while the TCP session is down (killed and not recovered).
    pub fn is_down(&self) -> bool {
        self.client.is_none()
    }

    /// Simulate a connection failure: drop the TCP session without a
    /// `bye`. Deliveries forwarded while down are lost, as they would be
    /// on a real partition.
    pub(crate) fn kill(&mut self) {
        self.client = None;
    }

    /// Re-establish the gateway session after a kill.
    pub(crate) fn recover(&mut self) -> std::io::Result<()> {
        if self.client.is_some() {
            return Ok(());
        }
        self.client = Some(NetClient::connect_with(
            self.addr,
            self.from.clone(),
            None,
            true,
        )?);
        Ok(())
    }

    /// Collect `(to, payload)` reactions from a fenced flush.
    fn drain(&mut self) -> Vec<(String, Term)> {
        let Some(client) = self.client.as_mut() else {
            return Vec::new();
        };
        match client.sync() {
            Ok(replies) => replies
                .into_iter()
                .filter_map(|r| match r {
                    Reply::Reaction { to, payload, .. } => Some((to, payload)),
                    // Errors and backpressure replies degrade the remote
                    // engine to silence for this delivery — the simulated
                    // Web drops messages, it does not crash.
                    _ => None,
                })
                .collect(),
            Err(_) => Vec::new(),
        }
    }

    /// Forward one simulated delivery over the wire and return the
    /// remote engine's reactions.
    pub(crate) fn forward(&mut self, env: &Envelope, now: Timestamp) -> Vec<(String, Term)> {
        let Some(client) = self.client.as_mut() else {
            return Vec::new();
        };
        if client
            .send_event_as(
                env.from.clone(),
                env.credentials.clone(),
                env.body.clone(),
                Some(now),
            )
            .is_err()
        {
            return Vec::new();
        }
        self.drain()
    }

    /// Advance the remote engine's clock (absence deadlines) and return
    /// what fired.
    pub(crate) fn advance(&mut self, at: Timestamp) -> Vec<(String, Term)> {
        let Some(client) = self.client.as_mut() else {
            return Vec::new();
        };
        if client.advance(at).is_err() {
            return Vec::new();
        }
        self.drain()
    }
}

/// A periodic poller: `GET`s a remote resource, diffs it against the last
/// snapshot under the configured identity mode (Thesis 10), and sends the
/// changes as events to a notify target.
///
/// This is the pull-based observer Thesis 3 compares against push: its
/// traffic grows with `1/interval` whether or not anything changed, and
/// its reaction latency is up to a full interval.
pub struct Poller {
    /// Resource to watch (owned by whichever node's URI prefixes it).
    pub target: String,
    /// Polling period.
    pub interval: Dur,
    /// Node to send `changed{…}` events to.
    pub notify: String,
    /// Identity mode the diff runs under (Thesis 10).
    pub mode: IdentityMode,
    /// Snapshot from the previous poll (`None` before the first).
    pub last_seen: Option<Term>,
    /// Skip the diff when the resource version is unchanged (cheap
    /// version probe — still a round-trip on the wire).
    pub last_version: Option<u64>,
}

impl Poller {
    /// A poller with no baseline snapshot yet.
    pub fn new(
        target: impl Into<String>,
        interval: Dur,
        notify: impl Into<String>,
        mode: IdentityMode,
    ) -> Poller {
        Poller {
            target: target.into(),
            interval,
            notify: notify.into(),
            mode,
            last_seen: None,
            last_version: None,
        }
    }

    /// Process one fetched snapshot; returns the change-event payloads to
    /// send (empty on the first observation or when nothing changed).
    pub fn observe(&mut self, doc: &Term, version: u64) -> Vec<Term> {
        if self.last_version == Some(version) {
            return Vec::new();
        }
        self.last_version = Some(version);
        let out = match &self.last_seen {
            None => Vec::new(),
            Some(prev) => diff_documents(prev, doc, &self.mode)
                .into_iter()
                .map(|c| c.to_event_payload(&self.target))
                .collect(),
        };
        self.last_seen = Some(doc.clone());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reweb_term::parse_term;

    #[test]
    fn poller_detects_changes_between_snapshots() {
        let mut p = Poller::new(
            "http://news/front",
            Dur::secs(30),
            "http://watcher",
            IdentityMode::surrogate(),
        );
        let v1 = parse_term("news[article{@id=\"a1\", title[\"old\"]}]").unwrap();
        let v2 = parse_term("news[article{@id=\"a1\", title[\"new\"]}]").unwrap();
        // First observation: baseline only.
        assert!(p.observe(&v1, 1).is_empty());
        // Same version: cheap skip.
        assert!(p.observe(&v1, 1).is_empty());
        // Changed version: one modification event.
        let events = p.observe(&v2, 2);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].label(), Some("changed"));
        assert!(events[0].to_string().contains("modified"));
    }

    #[test]
    fn poller_under_extensional_identity_sees_delete_insert() {
        let mut p = Poller::new(
            "http://news/front",
            Dur::secs(30),
            "http://watcher",
            IdentityMode::Extensional,
        );
        let v1 = parse_term("news[article{@id=\"a1\", title[\"old\"]}]").unwrap();
        let v2 = parse_term("news[article{@id=\"a1\", title[\"new\"]}]").unwrap();
        p.observe(&v1, 1);
        let events = p.observe(&v2, 2);
        assert_eq!(events.len(), 2, "identity lost: delete + insert");
    }

    #[test]
    fn node_kind_accessors() {
        let mut store = ResourceStore::new();
        store.put("u", Term::elem("d"));
        let n = NodeKind::Store(store);
        assert!(n.store().is_some());
        assert!(n.as_engine().is_none());
        let n = NodeKind::Sink(Vec::new());
        assert!(n.store().is_none());
        assert!(n.as_sink().is_some());
    }
}
