//! Shared workload generators and table plumbing for the experiments
//! E1…E13 — one per thesis plus the sharded-ingestion scaling table (see
//! `DESIGN.md` §3 and `EXPERIMENTS.md`).
//!
//! The paper is a position paper with no tables or figures of its own, so
//! every experiment here regenerates a table supporting one thesis's
//! quantifiable claim. The `experiments` binary prints them all; the
//! Criterion benches in `benches/` reuse the same generators for the
//! timing-shaped claims.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reweb_term::{parse_term, Term, Timestamp};

pub mod experiments;

/// A printable experiment table.
#[derive(Clone, Debug)]
pub struct Table {
    pub id: &'static str,
    pub thesis: &'static str,
    pub title: String,
    pub columns: Vec<&'static str>,
    pub rows: Vec<Vec<String>>,
    pub note: String,
}

impl Table {
    pub fn new(
        id: &'static str,
        thesis: &'static str,
        title: impl Into<String>,
        columns: Vec<&'static str>,
    ) -> Table {
        Table {
            id,
            thesis,
            title: title.into(),
            columns,
            rows: Vec::new(),
            note: String::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity");
        self.rows.push(cells);
    }

    pub fn with_note(mut self, note: impl Into<String>) -> Table {
        self.note = note.into();
        self
    }

    /// Render as a Markdown table block.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "### {} ({}) — {}\n\n",
            self.id, self.thesis, self.title
        ));
        out.push_str(&format!("| {} |\n", self.columns.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.columns.iter().map(|_| "---|").collect::<String>()
        ));
        for r in &self.rows {
            out.push_str(&format!("| {} |\n", r.join(" | ")));
        }
        if !self.note.is_empty() {
            out.push_str(&format!("\n{}\n", self.note));
        }
        out
    }
}

/// Format a float cell compactly.
pub fn f(x: f64) -> String {
    if x >= 1000.0 {
        format!("{x:.0}")
    } else if x >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

// ----- workload generators ------------------------------------------------

/// A customers document with `n` entries (`c0` … `c{n-1}`).
pub fn customers_doc(n: usize) -> Term {
    let mut src = String::from("customers[");
    for i in 0..n {
        if i > 0 {
            src.push(',');
        }
        src.push_str(&format!(
            "customer{{id[\"c{i}\"], name[\"cust{i}\"], rating[\"{}\"]}}",
            i % 5 + 1
        ));
    }
    src.push(']');
    parse_term(&src).expect("generated customers parse")
}

/// A news document with `n` articles carrying their last-update time in
/// the title (so observers can compute reaction latency from content).
pub fn news_doc(n: usize, stamp: u64) -> Term {
    let mut src = String::from("news[");
    for i in 0..n {
        if i > 0 {
            src.push(',');
        }
        src.push_str(&format!("article{{@id=\"a{i}\", title[\"{stamp}\"]}}"));
    }
    src.push(']');
    parse_term(&src).expect("generated news parse")
}

/// An order event payload.
pub fn order_payload(id: usize, total: u64) -> Term {
    parse_term(&format!("order{{id[\"o{id}\"], total[\"{total}\"]}}")).expect("order parse")
}

/// A payment event payload.
pub fn payment_payload(id: usize, amount: u64) -> Term {
    parse_term(&format!(
        "payment{{order[\"o{id}\"], amount[\"{amount}\"]}}"
    ))
    .expect("payment parse")
}

/// A stock-tick payload.
pub fn stock_payload(sym: &str, price: f64) -> Term {
    parse_term(&format!("stock{{sym[\"{sym}\"], price[\"{price}\"]}}")).expect("stock parse")
}

/// An event stream for the incremental-vs-naive comparison: mostly noise
/// (`c`), with an `order`/`payment` pair every `pair_every` events.
pub fn mixed_stream(len: usize, pair_every: usize, seed: u64) -> Vec<(Timestamp, Term)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(len);
    let mut t = 0u64;
    for i in 0..len {
        t += rng.gen_range(50..150);
        let payload = if pair_every > 0 && i % pair_every == 0 {
            order_payload(i, 100)
        } else if pair_every > 0 && i % pair_every == pair_every / 2 {
            payment_payload(i - pair_every / 2, 100)
        } else {
            Term::unordered("c", vec![Term::ordered("v", vec![Term::int(i as i64)])])
        };
        out.push((Timestamp(t), payload));
    }
    out
}

/// A rule program with `n_labels` independent composite rules, one per
/// evt/ack label pair — the partitionable workload for E13 and the
/// `sharded_throughput` bench. Every rule is a windowed join, so the
/// per-event timer-advance cost is proportional to how many rules one
/// engine hosts; label affinity splits them evenly across shards.
pub fn sharded_rules(n_labels: usize) -> String {
    let mut src = String::new();
    for i in 0..n_labels {
        src.push_str(&format!(
            "RULE pair{i} ON and(evt{i}{{{{n[[var N]]}}}}, ack{i}{{{{n[[var N]]}}}}) within 1m \
             DO SEND done{i}{{n[var N]}} TO \"http://sink\" END\n"
        ));
    }
    src
}

/// The matching event stream: adjacent evt/ack pairs cycling round-robin
/// over `n_labels` label pairs, with seeded timestamp jitter. Every pair
/// completes its join, so reactions = `len / 2` regardless of sharding.
pub fn paired_stream(n_labels: usize, len: usize, seed: u64) -> Vec<(Timestamp, Term)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(len);
    let mut t = 0u64;
    for j in 0..len {
        t += rng.gen_range(10..50);
        let i = (j / 2) % n_labels;
        let payload = if j % 2 == 0 {
            parse_term(&format!("evt{i}{{n[\"{j}\"]}}")).expect("evt parse")
        } else {
            parse_term(&format!("ack{i}{{n[\"{}\"]}}", j - 1)).expect("ack parse")
        };
        out.push((Timestamp(t), payload));
    }
    out
}

/// Wall-clock helper: run `body` and return elapsed seconds.
pub fn timed<T>(body: impl FnOnce() -> T) -> (T, f64) {
    let start = std::time::Instant::now();
    let v = body();
    (v, start.elapsed().as_secs_f64())
}
