//! Regenerate the experiment tables E1…E19 (see DESIGN.md §3).
//!
//! ```text
//! cargo run --release --bin experiments            # all tables
//! cargo run --release --bin experiments -- E3 E6   # a subset
//! cargo run --release --bin experiments -- --smoke # fast CI sanity check
//! cargo run --release --bin experiments -- --obs   # observability report
//! cargo run --release --bin experiments -- \
//!     --bench-json out.json                        # machine-readable E13+E14
//! cargo run --release --bin experiments -- \
//!     --bench-json out.json --check-floor bench/baseline.json
//! ```
//!
//! Output is Markdown, pasteable into EXPERIMENTS.md. `--smoke` skips the
//! tables and instead drives one rule through the reactive engine
//! end-to-end in well under a second — CI uses it to prove the binary and
//! the engine work without paying for the full (~15 s) experiment run.
//!
//! `--bench-json <path>` runs only the perf experiments — E13 (sharded
//! throughput), E14 (single-engine hot path), E15 (durable-mode
//! ingestion + cold recovery), E16 (compiled-matcher rule scaling,
//! 100 → 100k installed rules), E17 (indexed vs scan beta joins,
//! 100 → 10k composite rules plus the occupancy axis), E18 (TCP
//! loopback ingress at 1 → 8 clients), E18b (outbound delivery
//! under a receiver kill/recover cycle, with its recovery time), and
//! E19 (observability overhead: the E14 workload with the obs handle
//! disabled, enabled, and with a saturated flight recorder), full
//! 100k-event workloads — and writes their numbers as one JSON file;
//! `--check-floor <baseline>` additionally compares the run against a
//! committed baseline and exits non-zero when parallel throughput fell
//! more than 25% below it (normalized by the same run's single-engine
//! rate, so machine speed cancels), when the absolute E14 hot-path,
//! E15 durable-ingestion, E16 100k-rule, E17 10k-composite, E18
//! loopback-ingress, or E18b delivery-push rates fell more than 25%
//! below their conservatively
//! rounded committed floors (E19's `obs-off` row included), or when the
//! same run's E16 per-event cost
//! is no longer flat in the rule count, or when the same run's E17
//! indexed join is no longer ≥2x the scan join at the largest occupancy,
//! or when the same run's E19 obs-disabled rate fell below 0.95x the
//! interleaved uninstrumented baseline in every measured round — the
//! "zero-cost when disabled" budget
//! (see [`experiments::check_floor`]). CI runs this as its performance
//! floor and uploads the JSON — recovery timings included — as an
//! artifact.

use reweb_bench::experiments;

/// Fast path for CI: one ECA rule, one matching event, one reaction.
/// Panics (non-zero exit) if the engine does not behave.
fn smoke() {
    use reweb_core::{MessageMeta, ReactiveEngine};
    use reweb_term::{parse_term, Timestamp};

    let mut engine = ReactiveEngine::new("http://smoke.example");
    engine.qe.store.put(
        "http://smoke.example/customers",
        parse_term(r#"customers[ customer{id["c1"], name["Ann"]} ]"#).unwrap(),
    );
    engine
        .install_program(
            r#"RULE on_order
                 ON order{{ id[[var O]], customer[[var C]] }}
                 IF in "http://smoke.example/customers" customer{{ id[[var C]], name[[var N]] }}
                 THEN SEND confirmation{order[var O], dear[var N]} TO "http://client.example"
               END"#,
        )
        .expect("smoke rule parses");

    let meta = MessageMeta::from_uri("http://client.example");
    let out = engine.receive(
        parse_term(r#"order{ id["o-1"], customer["c1"] }"#).unwrap(),
        &meta,
        Timestamp(1_000),
    );
    assert_eq!(out.len(), 1, "expected exactly one reaction message");
    assert_eq!(
        engine.metrics.rules_fired, 1,
        "expected the rule to fire once"
    );
    println!(
        "smoke OK: 1 rule installed, 1 event received, 1 reaction sent to {}",
        out[0].to
    );
}

/// The perf bench path: run E13 through E18, write JSON, optionally
/// enforce the perf floor.
fn bench_perf(json_out: Option<&str>, floor_baseline: Option<&str>) {
    eprintln!("running E13 (100k events, serial + parallel at 1/2/4/8 shards)…");
    let report = experiments::e13_report(100_000);
    println!("{}", experiments::e13_table(&report).to_markdown());
    eprintln!("running E14 (100k events, single-engine hot path)…");
    let hot = experiments::e14_report(100_000);
    println!("{}", experiments::e14_table(&hot).to_markdown());
    eprintln!("running E15 (100k events, durable engine + cold recovery)…");
    let durable = experiments::e15_report(100_000);
    println!("{}", experiments::e15_table(&durable).to_markdown());
    eprintln!("running E16 (100k events, compiled matcher at 100 → 100k rules)…");
    let rules = experiments::e16_report(100_000);
    println!("{}", experiments::e16_table(&rules).to_markdown());
    eprintln!("running E17 (100k events, indexed vs scan joins at 100 → 10k composite rules)…");
    let joins = experiments::e17_report(100_000);
    println!("{}", experiments::e17_table(&joins).to_markdown());
    eprintln!("running E18 (100k events per rung, TCP loopback at 1/2/4/8 clients)…");
    let net = experiments::e18_report(100_000);
    println!("{}", experiments::e18_table(&net).to_markdown());
    eprintln!("running E18b (2k live + 200 faulted reactions, kill/recover delivery)…");
    let delivery = experiments::e18_delivery_report(2_000, 200);
    println!(
        "{}",
        experiments::e18_delivery_table(&delivery).to_markdown()
    );
    eprintln!("running E19 (100k events, observability off / on / recorder-full)…");
    let obs = experiments::e19_report(100_000);
    println!("{}", experiments::e19_table(&obs).to_markdown());
    if let Some(path) = json_out {
        std::fs::write(
            path,
            experiments::bench_json(
                &report, &hot, &durable, &rules, &joins, &net, &delivery, &obs,
            ),
        )
        .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("wrote {path}");
    }
    if let Some(path) = floor_baseline {
        let baseline = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        match experiments::check_floor(
            &report, &hot, &durable, &rules, &joins, &net, &delivery, &obs, &baseline, 0.25,
        ) {
            Ok(summary) => {
                println!("## Performance floor: OK (baseline {path}, 25% tolerance)\n");
                println!("{summary}");
            }
            Err(why) => {
                eprintln!("{why}");
                std::process::exit(1);
            }
        }
    }
}

/// The `--obs` report: drive a small two-node run (sender with a
/// forwarding rule + delivery agent, receiver over loopback TCP) with
/// observability enabled, then print what the layer recorded — the
/// four latency histograms, one full ingress→delivery trace chain, and
/// a reaction explanation. A human-readable complement to the E19
/// overhead numbers; docs/OBSERVABILITY.md documents the model.
fn obs_report() {
    use reweb_core::ReactiveEngine;
    use reweb_net::{DeliveryAgent, DeliveryConfig, NetClient, NetConfig, NetServer};
    use reweb_obs::Span;
    use reweb_term::{parse_term, Timestamp};
    use std::time::Duration;

    const N: usize = 200;
    let dir = std::env::temp_dir().join(format!("reweb-obs-report-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("obs report scratch dir");

    let receiver = NetServer::bind(
        "127.0.0.1:0",
        ReactiveEngine::new("http://b/"),
        NetConfig::default(),
    )
    .expect("receiver binds");
    let mut agent = DeliveryAgent::new(DeliveryConfig {
        from: "http://a/".into(),
        outbox: Some(dir.join("outbox.log")),
        ..DeliveryConfig::default()
    })
    .expect("delivery agent");
    agent.add_route("http://b/", receiver.local_addr());
    let mut engine = ReactiveEngine::new("http://a/");
    engine
        .install_program(
            r#"RULE fwd ON order{{id[[var O]]}} DO SEND ship{id[var O]} TO "http://b/recv" END"#,
        )
        .expect("forwarding rule");
    let sender =
        NetServer::bind("127.0.0.1:0", engine, NetConfig::default()).expect("sender binds");
    sender.attach_delivery(agent.handle());
    sender.obs().enable();

    let mut client =
        NetClient::connect(sender.local_addr(), "http://client/").expect("client connects");
    for i in 0..N {
        client
            .send_event(
                parse_term(&format!("order{{id[\"o{i}\"]}}")).expect("payload"),
                Some(Timestamp(i as u64)),
            )
            .expect("send");
        if (i + 1) % 32 == 0 {
            client.sync().expect("sync");
        }
    }
    client.sync().expect("final sync");
    assert!(agent.flush(Duration::from_secs(30)), "deliveries settle");
    for _ in 0..5_000 {
        if receiver.delivered().len() == N {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }

    let obs = sender.obs();
    println!("# Observability report ({N} traced events, sender -> delivery agent -> receiver)\n");
    println!("## Latency histograms (ns; log-bucket upper bounds)\n");
    println!("| histogram | count | p50 | p90 | p99 | max |");
    println!("|---|---|---|---|---|---|");
    for (name, h) in [
        ("batch", obs.batch.snapshot()),
        ("fsync", obs.fsync.snapshot()),
        ("queue", obs.queue.snapshot()),
        ("delivery", obs.delivery.snapshot()),
    ] {
        println!(
            "| {name} | {} | {} | {} | {} | {} |",
            h.count(),
            h.p50(),
            h.p90(),
            h.p99(),
            h.max()
        );
    }

    println!("\n## Trace 1 (the first ingested event, ingress -> delivery ack)\n");
    let spans: Vec<Span> = obs.spans_for(1);
    if spans.is_empty() {
        println!("(trace 1 evicted from the flight recorder)");
    }
    for s in &spans {
        println!(
            "{:<10} start {:>12} ns   dur {:>9} ns",
            s.stage.to_string(),
            s.start_ns,
            s.dur_ns
        );
    }

    // The provenance surface, shown on a directly driven engine (the
    // wire servers consume their reactions internally).
    let mut local = ReactiveEngine::new("http://a/");
    local
        .install_program(
            r#"RULE fwd ON order{{id[[var O]]}} DO SEND ship{id[var O]} TO "http://b/recv" END"#,
        )
        .expect("forwarding rule");
    local.obs().enable();
    let outs = local.receive(
        parse_term(r#"order{id["o0"]}"#).expect("payload"),
        &reweb_core::MessageMeta::from_uri("http://client/"),
        Timestamp(1),
    );
    println!("\n## explain(reaction)\n");
    for o in &outs {
        if let Some(p) = &o.provenance {
            println!("{} -> {}: {}", p.trace, o.to, p.explain());
        }
    }

    agent.shutdown();
    drop((sender, receiver));
    let _ = std::fs::remove_dir_all(&dir);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut take_flag_value = |flag: &str| -> Option<String> {
        let i = args.iter().position(|a| a == flag)?;
        if i + 1 >= args.len() {
            eprintln!("error: {flag} needs a path argument");
            std::process::exit(2);
        }
        let v = args.remove(i + 1);
        args.remove(i);
        Some(v)
    };
    let bench_json = take_flag_value("--bench-json");
    let check_floor = take_flag_value("--check-floor");
    if bench_json.is_some() || check_floor.is_some() {
        if !args.is_empty() {
            eprintln!(
                "error: --bench-json/--check-floor cannot be combined with other \
                 arguments (got {args:?})"
            );
            std::process::exit(2);
        }
        bench_perf(bench_json.as_deref(), check_floor.as_deref());
        return;
    }
    if args.iter().any(|a| a == "--obs") {
        if args.len() > 1 {
            eprintln!("error: --obs cannot be combined with other arguments (got {args:?})");
            std::process::exit(2);
        }
        obs_report();
        return;
    }
    if args.iter().any(|a| a == "--smoke") {
        if args.len() > 1 {
            eprintln!("error: --smoke cannot be combined with experiment ids (got {args:?})");
            std::process::exit(2);
        }
        smoke();
        return;
    }
    if let Some(bad) = args.iter().find(|a| {
        !experiments::RUNNERS
            .iter()
            .any(|(id, _)| id.eq_ignore_ascii_case(a))
    }) {
        let ids: Vec<&str> = experiments::RUNNERS.iter().map(|(id, _)| *id).collect();
        eprintln!(
            "error: unknown experiment id {bad:?} (expected one of {})",
            ids.join(", ")
        );
        std::process::exit(2);
    }
    let run_all = args.is_empty();

    println!("# reweb experiment tables (E1…E18)\n");
    for (id, run) in experiments::RUNNERS {
        if run_all || args.iter().any(|w| id.eq_ignore_ascii_case(w)) {
            eprintln!("running {id}…");
            let table = run();
            println!("{}", table.to_markdown());
        }
    }
}
