//! Regenerate the per-thesis experiment tables E1…E12 (see DESIGN.md §3).
//!
//! ```text
//! cargo run --release -p reweb-bench --bin experiments          # all
//! cargo run --release -p reweb-bench --bin experiments -- E3 E6 # a subset
//! ```
//!
//! Output is Markdown, pasteable into EXPERIMENTS.md.

use reweb_bench::experiments;

fn main() {
    let wanted: Vec<String> = std::env::args()
        .skip(1)
        .map(|s| s.to_uppercase())
        .collect();
    let run_all = wanted.is_empty();

    let runners: Vec<(&str, fn() -> reweb_bench::Table)> = vec![
        ("E1", experiments::e1_eca_vs_production),
        ("E2", experiments::e2_local_vs_central),
        ("E3", experiments::e3_push_vs_poll),
        ("E4", experiments::e4_volatility),
        ("E5", experiments::e5_event_dimensions),
        ("E6", experiments::e6_incremental_vs_naive),
        ("E7", experiments::e7_condition_queries),
        ("E8", experiments::e8_compound_actions),
        ("E9", experiments::e9_structuring),
        ("E10", experiments::e10_identity),
        ("E11", experiments::e11_trust_negotiation),
        ("E12", experiments::e12_aaa_overhead),
    ];

    println!("# reweb experiment tables (E1…E12)\n");
    for (id, run) in runners {
        if run_all || wanted.iter().any(|w| w == id) {
            eprintln!("running {id}…");
            let table = run();
            println!("{}", table.to_markdown());
        }
    }
}
