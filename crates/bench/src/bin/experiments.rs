//! Regenerate the experiment tables E1…E13 (see DESIGN.md §3).
//!
//! ```text
//! cargo run --release --bin experiments            # all tables
//! cargo run --release --bin experiments -- E3 E6   # a subset
//! cargo run --release --bin experiments -- --smoke # fast CI sanity check
//! ```
//!
//! Output is Markdown, pasteable into EXPERIMENTS.md. `--smoke` skips the
//! tables and instead drives one rule through the reactive engine
//! end-to-end in well under a second — CI uses it to prove the binary and
//! the engine work without paying for the full (~15 s) experiment run.

use reweb_bench::experiments;

/// Fast path for CI: one ECA rule, one matching event, one reaction.
/// Panics (non-zero exit) if the engine does not behave.
fn smoke() {
    use reweb_core::{MessageMeta, ReactiveEngine};
    use reweb_term::{parse_term, Timestamp};

    let mut engine = ReactiveEngine::new("http://smoke.example");
    engine.qe.store.put(
        "http://smoke.example/customers",
        parse_term(r#"customers[ customer{id["c1"], name["Ann"]} ]"#).unwrap(),
    );
    engine
        .install_program(
            r#"RULE on_order
                 ON order{{ id[[var O]], customer[[var C]] }}
                 IF in "http://smoke.example/customers" customer{{ id[[var C]], name[[var N]] }}
                 THEN SEND confirmation{order[var O], dear[var N]} TO "http://client.example"
               END"#,
        )
        .expect("smoke rule parses");

    let meta = MessageMeta::from_uri("http://client.example");
    let out = engine.receive(
        parse_term(r#"order{ id["o-1"], customer["c1"] }"#).unwrap(),
        &meta,
        Timestamp(1_000),
    );
    assert_eq!(out.len(), 1, "expected exactly one reaction message");
    assert_eq!(engine.metrics.rules_fired, 1, "expected the rule to fire once");
    println!(
        "smoke OK: 1 rule installed, 1 event received, 1 reaction sent to {}",
        out[0].to
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        if args.len() > 1 {
            eprintln!("error: --smoke cannot be combined with experiment ids (got {args:?})");
            std::process::exit(2);
        }
        smoke();
        return;
    }
    if let Some(bad) = args.iter().find(|a| {
        let up = a.to_uppercase();
        !experiments::RUNNERS.iter().any(|(id, _)| *id == up)
    }) {
        let ids: Vec<&str> = experiments::RUNNERS.iter().map(|(id, _)| *id).collect();
        eprintln!(
            "error: unknown experiment id {bad:?} (expected one of {})",
            ids.join(", ")
        );
        std::process::exit(2);
    }
    let wanted: Vec<String> = args.iter().map(|s| s.to_uppercase()).collect();
    let run_all = wanted.is_empty();

    println!("# reweb experiment tables (E1…E13)\n");
    for (id, run) in experiments::RUNNERS {
        if run_all || wanted.iter().any(|w| w == id) {
            eprintln!("running {id}…");
            let table = run();
            println!("{}", table.to_markdown());
        }
    }
}
