//! The experiments E1…E19 — one per thesis, plus E13 for the sharded
//! batch-ingestion layer, E14 for the single-engine match/fire hot
//! path, E15 for the durability layer — write-ahead log and snapshots —
//! E16 for the compiled rule matcher, E17 for the indexed beta joins,
//! E18 for the TCP ingress tier, and E19 for the observability layer's
//! overhead (DESIGN.md §3).
//!
//! Each function builds its workload, runs the systems under comparison,
//! and returns a [`Table`] whose *shape* (who wins, how things scale)
//! tests the thesis's quantifiable claim. Absolute numbers depend on the
//! host; the shapes should not.

use reweb_core::{negotiate, AaaConfig, MessageMeta, Permission, ReactiveEngine, Strategy};
use reweb_events::{parse_event_query, Event, EventId, IncrementalEngine, NaiveEngine};
use reweb_production::{CaRule, ProductionEngine};
use reweb_query::parser::{parse_condition, parse_construct_term, parse_query_term};
use reweb_query::{Bindings, QueryEngine};
use reweb_term::{parse_term, Dur, IdentityMode, ResourceStore, Term, Timestamp};
use reweb_update::{apply_update, Action, Executor, Update};
use reweb_websim::{Poller, Simulation};

use crate::{customers_doc, f, mixed_stream, news_doc, order_payload, timed, Table};

/// An experiment entry point: builds its workload and returns its table.
pub type Runner = fn() -> Table;

/// The experiment table, in run order — the single source the
/// `experiments` binary uses both to validate its arguments and to
/// dispatch, so ids and runners cannot drift apart.
pub const RUNNERS: [(&str, Runner); 20] = [
    ("E1", e1_eca_vs_production),
    ("E2", e2_local_vs_central),
    ("E3", e3_push_vs_poll),
    ("E4", e4_volatility),
    ("E5", e5_event_dimensions),
    ("E6", e6_incremental_vs_naive),
    ("E7", e7_condition_queries),
    ("E8", e8_compound_actions),
    ("E9", e9_structuring),
    ("E10", e10_identity),
    ("E11", e11_trust_negotiation),
    ("E12", e12_aaa_overhead),
    ("E13", e13_sharded_throughput),
    ("E14", e14_hot_path),
    ("E15", e15_durability),
    ("E16", e16_rules_scaling),
    ("E17", e17_indexed_joins),
    ("E18", e18_net_loopback),
    ("E18b", e18b_delivery_under_fault),
    ("E19", e19_observability_overhead),
];

/// E1 (Thesis 1): ECA rules vs production rules on an event-driven
/// marketplace workload over a growing fact base.
pub fn e1_eca_vs_production() -> Table {
    let mut t = Table::new(
        "E1",
        "Thesis 1",
        "ECA vs production rules: 50 order events over n customers",
        vec!["approach", "n_facts", "reactions", "cond_evals", "time_ms"],
    )
    .with_note(
        "Claim: ECA rules react per event with bindings flowing from the event; \
         production rules must be re-driven against the whole fact base after \
         every change, so their evaluations and time grow with it.",
    );
    const EVENTS: usize = 50;
    for n_facts in [100usize, 1_000, 5_000] {
        // --- ECA ---
        let mut eca = ReactiveEngine::new("http://shop");
        eca.qe
            .store
            .put("http://shop/customers", customers_doc(n_facts));
        eca.install_program(
            r#"RULE on_order ON order{{id[[var O]], total[[var T]]}}
               IF in "http://shop/customers" customer{{id[[var O]], name[[var N]]}} and var T >= 50
               THEN PERSIST handled{order[var O], by[var N]} IN "http://shop/handled"
               END"#,
        )
        .expect("program");
        let meta = MessageMeta::from_uri("http://client");
        let (_, secs) = timed(|| {
            for i in 0..EVENTS {
                // Each order references customer c{i} via the condition's
                // free variable — one customer matches per event is the
                // interesting case, so seed C through the payload id.
                let payload =
                    parse_term(&format!("order{{id[\"c{}\"], total[\"60\"]}}", i % n_facts))
                        .unwrap();
                eca.receive(payload, &meta, Timestamp(i as u64 * 100));
            }
        });
        t.row(vec![
            "ECA".into(),
            n_facts.to_string(),
            eca.metrics.rules_fired.to_string(),
            eca.metrics.condition_evals.to_string(),
            f(secs * 1e3),
        ]);

        // --- production ---
        let mut pe = ProductionEngine::new();
        pe.qe
            .store
            .put("http://shop/customers", customers_doc(n_facts));
        pe.qe
            .store
            .put("http://shop/orders", parse_term("orders[]").unwrap());
        pe.add_rule(CaRule::new(
            "on_order",
            parse_condition(
                "in \"http://shop/orders\" order{{id[[var O]], total[[var T]]}} \
                 and in \"http://shop/customers\" customer{{id[[var O]], name[[var N]]}} \
                 and var T >= 50",
            )
            .unwrap(),
            Action::Persist {
                resource: "http://shop/handled".into(),
                payload: parse_construct_term("handled{order[var O], by[var N]}").unwrap(),
            },
        ));
        let (_, secs) = timed(|| {
            for i in 0..EVENTS {
                let u = Update::insert(
                    "http://shop/orders",
                    parse_query_term("orders[[]]").unwrap(),
                    parse_construct_term(&format!(
                        "order{{id[\"c{}\"], total[\"60\"]}}",
                        i % n_facts
                    ))
                    .unwrap(),
                );
                apply_update(&mut pe.qe.store, &u, &Bindings::new()).unwrap();
                pe.run_to_quiescence(); // CA rules must be driven
            }
        });
        t.row(vec![
            "production".into(),
            n_facts.to_string(),
            pe.metrics.rules_fired.to_string(),
            pe.metrics.condition_evals.to_string(),
            f(secs * 1e3),
        ]);
    }
    t
}

/// E2 (Thesis 2): choreography (local rules, peer-to-peer events) vs a
/// central rule-processing node, by load concentration.
pub fn e2_local_vs_central() -> Table {
    let mut t = Table::new(
        "E2",
        "Thesis 2",
        "token ring, 100 laps: messages through the hottest node",
        vec![
            "architecture",
            "n_nodes",
            "total_msgs",
            "hottest_node_msgs",
            "hottest_share",
        ],
    )
    .with_note(
        "Claim: local processing with event-based communication spreads load; \
         a central rule processor concentrates it (its load grows with n).",
    );
    const LAPS: usize = 100;
    for n in [4usize, 16, 64] {
        // --- choreography: each node forwards to the next ---
        let mut sim = Simulation::new(1);
        sim.set_latency(Dur::millis(1), 0);
        for i in 0..n {
            let mut e = ReactiveEngine::new(format!("http://n{i}"));
            let next = (i + 1) % n;
            e.install_program(&format!(
                r#"RULE fwd ON token{{{{lap[[var L]]}}}} where var L < {LAPS}
                   DO SEND token{{lap[eval(var L + {inc})]}} TO "http://n{next}" END"#,
                inc = if next == 0 { 1 } else { 0 },
            ))
            .expect("ring rule");
            sim.add_engine(format!("http://n{i}"), e);
        }
        sim.post(
            "http://n0",
            "http://n0",
            parse_term("token{lap[\"0\"]}").unwrap(),
            Timestamp(0),
        );
        sim.run_until(Timestamp(3_600_000));
        let total = sim.metrics.posts;
        let hottest = sim
            .metrics
            .received_by_node
            .values()
            .copied()
            .max()
            .unwrap_or(0);
        t.row(vec![
            "choreography".into(),
            n.to_string(),
            total.to_string(),
            hottest.to_string(),
            f(hottest as f64 / total as f64),
        ]);

        // --- central coordinator: every hop goes through it ---
        let mut sim = Simulation::new(1);
        sim.set_latency(Dur::millis(1), 0);
        let mut coord = ReactiveEngine::new("http://coord");
        for i in 0..n {
            let next = (i + 1) % n;
            coord
                .install_program(&format!(
                    r#"RULE hop{i} ON from{i}{{{{lap[[var L]]}}}} where var L < {LAPS}
                       DO SEND visit{{lap[eval(var L + {inc})]}} TO "http://n{next}" END"#,
                    inc = if next == 0 { 1 } else { 0 },
                ))
                .expect("coord rule");
        }
        sim.add_engine("http://coord", coord);
        for i in 0..n {
            let mut e = ReactiveEngine::new(format!("http://n{i}"));
            e.install_program(&format!(
                r#"RULE up ON visit{{{{lap[[var L]]}}}}
                   DO SEND from{i}{{lap[var L]}} TO "http://coord" END"#,
            ))
            .expect("leaf rule");
            sim.add_engine(format!("http://n{i}"), e);
        }
        sim.post(
            "http://coord",
            "http://n0",
            parse_term("visit{lap[\"0\"]}").unwrap(),
            Timestamp(0),
        );
        sim.run_until(Timestamp(3_600_000));
        let total = sim.metrics.posts;
        let hottest = sim
            .metrics
            .received_by_node
            .get("http://coord")
            .copied()
            .unwrap_or(0);
        t.row(vec![
            "central".into(),
            n.to_string(),
            total.to_string(),
            hottest.to_string(),
            f(hottest as f64 / total as f64),
        ]);
    }
    t
}

/// E3 (Thesis 3): push vs poll — traffic and reaction latency over one
/// simulated hour.
pub fn e3_push_vs_poll() -> Table {
    let mut t = Table::new(
        "E3",
        "Thesis 3",
        "watching one resource for 1h (updates every 60s)",
        vec![
            "paradigm",
            "param",
            "wire_msgs",
            "kbytes",
            "mean_lat_s",
            "max_lat_s",
            "changes_seen",
        ],
    )
    .with_note(
        "Claim: push costs traffic proportional to the event rate with \
         latency ≈ transit; polling costs 1/Δ whether or not anything \
         changed, with latency up to Δ.",
    );
    const HORIZON_MS: u64 = 3_600_000;
    const UPDATE_EVERY_MS: u64 = 60_000;

    // Updates land at randomized (seeded) times so poll ticks and update
    // instants never phase-align.
    let updates: Vec<u64> = {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let mut ts = Vec::new();
        let mut t = 0u64;
        loop {
            t += rng.gen_range(UPDATE_EVERY_MS / 2..UPDATE_EVERY_MS * 3 / 2);
            if t >= HORIZON_MS {
                break;
            }
            ts.push(t);
        }
        ts
    };

    let latencies = |sim: &Simulation| -> (f64, f64, usize) {
        let got = sim.sink("http://watcher");
        let mut lats = Vec::new();
        for (at, env) in got {
            // The article title carries the update's timestamp.
            if let Some(after) = env
                .body
                .children()
                .iter()
                .find(|c| c.label() == Some("after"))
            {
                if let Some(ms) = after
                    .to_string()
                    .split('"')
                    .find_map(|s| s.parse::<u64>().ok())
                {
                    lats.push(at.since(Timestamp(ms)).as_secs_f64());
                }
            }
        }
        let mean = if lats.is_empty() {
            0.0
        } else {
            lats.iter().sum::<f64>() / lats.len() as f64
        };
        let max = lats.iter().cloned().fold(0.0, f64::max);
        (mean, max, got.len())
    };

    // --- push ---
    let mut sim = Simulation::new(3);
    sim.set_latency(Dur::millis(20), 10);
    let mut store = ResourceStore::new();
    store.put("http://news/front", news_doc(5, 0));
    sim.add_store("http://news", store);
    sim.add_sink("http://watcher");
    sim.subscribe_push(
        "http://news/front",
        "http://watcher",
        IdentityMode::surrogate(),
    );
    for &ms in &updates {
        let mut doc = news_doc(5, 0);
        doc = reweb_term::apply_edit(
            &doc,
            &reweb_term::Path::new(vec![0]),
            reweb_term::PathEdit::Replace(
                parse_term(&format!("article{{@id=\"a0\", title[\"{ms}\"]}}")).unwrap(),
            ),
        )
        .unwrap();
        sim.schedule_update("http://news/front", doc, Timestamp(ms));
    }
    sim.run_until(Timestamp(HORIZON_MS + 1_000));
    let (mean, max, seen) = latencies(&sim);
    t.row(vec![
        "push".into(),
        "-".into(),
        sim.metrics.messages.to_string(),
        f(sim.metrics.bytes as f64 / 1024.0),
        f(mean),
        f(max),
        seen.to_string(),
    ]);

    // --- poll at several intervals ---
    for poll_secs in [5u64, 30, 120] {
        let mut sim = Simulation::new(3);
        sim.set_latency(Dur::millis(20), 10);
        let mut store = ResourceStore::new();
        store.put("http://news/front", news_doc(5, 0));
        sim.add_store("http://news", store);
        sim.add_sink("http://watcher");
        sim.add_poller(
            "http://poller",
            Poller::new(
                "http://news/front",
                Dur::secs(poll_secs),
                "http://watcher",
                IdentityMode::surrogate(),
            ),
        );
        for &ms in &updates {
            let mut doc = news_doc(5, 0);
            doc = reweb_term::apply_edit(
                &doc,
                &reweb_term::Path::new(vec![0]),
                reweb_term::PathEdit::Replace(
                    parse_term(&format!("article{{@id=\"a0\", title[\"{ms}\"]}}")).unwrap(),
                ),
            )
            .unwrap();
            sim.schedule_update("http://news/front", doc, Timestamp(ms));
        }
        sim.run_until(Timestamp(HORIZON_MS + 1_000));
        let (mean, max, seen) = latencies(&sim);
        t.row(vec![
            "poll".into(),
            format!("Δ={poll_secs}s"),
            sim.metrics.messages.to_string(),
            f(sim.metrics.bytes as f64 / 1024.0),
            f(mean),
            f(max),
            seen.to_string(),
        ]);
    }
    t
}

/// E4 (Thesis 4): volatile event data must be disposed of — retained
/// partial-match state with and without windows/TTL.
pub fn e4_volatility() -> Table {
    let mut t = Table::new(
        "E4",
        "Thesis 4",
        "20,000-event stream into `and(a, b)`: retained partial matches",
        vec!["configuration", "max_state", "final_state", "answers"],
    )
    .with_note(
        "Claim: without disposal, event state grows without bound (a \
         'shadow Web'); windows or a TTL keep it constant.",
    );
    const N: usize = 20_000;
    for (name, q, ttl) in [
        ("no window, no TTL", "and(a{{n[[var X]]}}, b)", None),
        ("window 1m", "and(a{{n[[var X]]}}, b) within 1m", None),
        (
            "no window, TTL 1m",
            "and(a{{n[[var X]]}}, b)",
            Some(Dur::mins(1)),
        ),
    ] {
        let mut eng = IncrementalEngine::new(&parse_event_query(q).unwrap());
        if let Some(d) = ttl {
            eng = eng.with_ttl(d);
        }
        let mut max_state = 0usize;
        let mut answers = 0usize;
        for i in 0..N {
            let e = Event::new(
                EventId(i as u64),
                Timestamp(i as u64 * 1_000),
                parse_term(&format!("a{{n[\"{i}\"]}}")).unwrap(),
            );
            answers += eng.push(&e).len();
            max_state = max_state.max(eng.state_size());
        }
        t.row(vec![
            name.into(),
            max_state.to_string(),
            eng.state_size().to_string(),
            answers.to_string(),
        ]);
    }
    t
}

/// E5 (Thesis 5): the four event-query dimensions, detect counts and
/// throughput on 10,000-event streams.
pub fn e5_event_dimensions() -> Table {
    let mut t = Table::new(
        "E5",
        "Thesis 5",
        "four dimensions of event queries on 10,000-event streams",
        vec!["dimension", "query", "detections", "kevents_per_s"],
    );
    const N: usize = 10_000;
    type PayloadGen = Box<dyn Fn(usize) -> Term>;
    let cases: Vec<(&str, &str, PayloadGen)> = vec![
        (
            "data extraction",
            "order{{id[[var O]], total[[var T]]}}",
            Box::new(|i| order_payload(i, 50 + (i as u64 % 100))),
        ),
        (
            "composition",
            "and(order{{id[[var O]]}}, payment{{order[[var O]]}}) within 1m",
            Box::new(|i| {
                if i % 2 == 0 {
                    order_payload(i / 2, 100)
                } else {
                    crate::payment_payload(i / 2, 100)
                }
            }),
        ),
        (
            "temporal (absence)",
            "absence(ping{{n[[var N]]}}, pong{{n[[var N]]}}, 5s)",
            Box::new(|i| {
                // Pings every 3rd event; answered unless n % 15 == 0, so a
                // fraction of the deadlines fire.
                if i % 3 == 0 {
                    parse_term(&format!("ping{{n[\"{i}\"]}}")).unwrap()
                } else {
                    let n = i - 1 - (i % 3 - 1);
                    let n = if n % 15 == 0 { n + 1 } else { n };
                    parse_term(&format!("pong{{n[\"{n}\"]}}")).unwrap()
                }
            }),
        ),
        (
            "accumulation",
            "avg(var P, 5, stock{{sym[[var S]], price[[var P]]}}) as var A group by var S",
            Box::new(|i| {
                crate::stock_payload(
                    if i % 2 == 0 { "ACME" } else { "GLOB" },
                    100.0 + (i % 10) as f64,
                )
            }),
        ),
    ];
    for (dim, q, gen) in cases {
        let mut eng = IncrementalEngine::new(&parse_event_query(q).unwrap());
        let events: Vec<Event> = (0..N)
            .map(|i| Event::new(EventId(i as u64), Timestamp(i as u64 * 1_000), gen(i)))
            .collect();
        let (detections, secs) = timed(|| {
            let mut d = 0usize;
            for e in &events {
                d += eng.push(e).len();
            }
            d += eng.advance_to(Timestamp(N as u64 * 1_000 + 10_000)).len();
            d
        });
        t.row(vec![
            dim.into(),
            q.into(),
            detections.to_string(),
            f(N as f64 / secs / 1_000.0),
        ]);
    }
    t
}

/// E6 (Thesis 6): incremental vs naive evaluation — per-event cost vs
/// history length.
pub fn e6_incremental_vs_naive() -> Table {
    let mut t = Table::new(
        "E6",
        "Thesis 6",
        "per-event latency, `and(order, payment)` over growing history",
        vec![
            "history",
            "incremental_total_ms",
            "incr_us_per_event",
            "naive_total_ms",
            "naive_us_per_event",
            "speedup",
        ],
    )
    .with_note(
        "Claim: the incremental engine's per-event cost tracks the live \
         state, the naive engine's tracks the whole history — so the gap \
         widens with history length.",
    );
    let q = parse_event_query("and(order{{id[[var O]]}}, payment{{order[[var O]]}}) within 1h")
        .unwrap();
    for h in [500usize, 1_000, 2_000, 4_000] {
        let stream = mixed_stream(h, 50, 42);
        let mut inc = IncrementalEngine::new(&q);
        let (inc_answers, inc_secs) = timed(|| {
            let mut n = 0usize;
            for (i, (ts, p)) in stream.iter().enumerate() {
                n += inc
                    .push(&Event::new(EventId(i as u64), *ts, p.clone()))
                    .len();
            }
            n
        });
        let mut naive = NaiveEngine::new(&q);
        let (naive_answers, naive_secs) = timed(|| {
            let mut n = 0usize;
            for (i, (ts, p)) in stream.iter().enumerate() {
                n += naive
                    .push(&Event::new(EventId(i as u64), *ts, p.clone()))
                    .len();
            }
            n
        });
        assert_eq!(inc_answers, naive_answers, "engines must agree");
        t.row(vec![
            h.to_string(),
            f(inc_secs * 1e3),
            f(inc_secs * 1e6 / h as f64),
            f(naive_secs * 1e3),
            f(naive_secs * 1e6 / h as f64),
            f(naive_secs / inc_secs),
        ]);
    }
    t
}

/// E7 (Thesis 7): conditions are Web queries parameterized by event
/// bindings — evaluation cost vs document size, seeded vs unseeded.
pub fn e7_condition_queries() -> Table {
    let mut t = Table::new(
        "E7",
        "Thesis 7",
        "condition over a customers document, seeded by event bindings",
        vec![
            "n_customers",
            "seeded_ms_per_eval",
            "unseeded_ms_per_eval",
            "answers_seeded",
            "answers_unseeded",
        ],
    )
    .with_note(
        "Claim: variables bound in the event part parameterize the \
         condition (one answer instead of n), which is both the semantics \
         Thesis 7 requires and a large constant-factor win.",
    );
    const REPS: usize = 20;
    for n in [100usize, 1_000, 5_000] {
        let mut qe = QueryEngine::new();
        qe.store.put("http://shop/customers", customers_doc(n));
        let cond =
            parse_condition("in \"http://shop/customers\" customer{{id[[var C]], name[[var N]]}}")
                .unwrap();
        let seed = Bindings::of("C", Term::text(format!("c{}", n / 2)));
        let (a_seeded, secs_seeded) = timed(|| {
            let mut total = 0usize;
            for _ in 0..REPS {
                total = qe.eval_condition(&cond, &seed).unwrap().len();
            }
            total
        });
        let (a_unseeded, secs_unseeded) = timed(|| {
            let mut total = 0usize;
            for _ in 0..REPS {
                total = qe.eval_condition(&cond, &Bindings::new()).unwrap().len();
            }
            total
        });
        t.row(vec![
            n.to_string(),
            f(secs_seeded * 1e3 / REPS as f64),
            f(secs_unseeded * 1e3 / REPS as f64),
            a_seeded.to_string(),
            a_unseeded.to_string(),
        ]);
    }
    t
}

/// E8 (Thesis 8): transactional compound actions under failure injection.
pub fn e8_compound_actions() -> Table {
    let mut t = Table::new(
        "E8",
        "Thesis 8",
        "2-step payment workflow, 500 runs, injected step-2 failures",
        vec![
            "p_fail",
            "variant",
            "completed",
            "anomalies",
            "alt_recovered",
        ],
    )
    .with_note(
        "Claim: compound actions need atomicity. Transactional SEQ leaves \
         zero half-done workflows; the naive variant leaks one per failure. \
         ALT recovers failed runs via the alternative action.",
    );
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    const RUNS: usize = 500;
    for p_fail in [0.0f64, 0.1, 0.3] {
        for variant in ["transactional", "naive", "alt-fallback"] {
            let mut qe = QueryEngine::new();
            qe.store.put(
                "http://shop/stock",
                parse_term("stock[units[\"100000\"]]").unwrap(),
            );
            qe.store
                .put("http://shop/ledger", parse_term("ledger[]").unwrap());
            let procs = std::collections::BTreeMap::new();
            let mut rng = StdRng::seed_from_u64(7);
            let mut completed = 0usize;
            let mut recovered = 0usize;
            for i in 0..RUNS {
                let fail = rng.gen_bool(p_fail);
                let step1 = Action::Persist {
                    resource: "http://shop/stock_log".into(),
                    payload: parse_construct_term(&format!("take[\"{i}\"]")).unwrap(),
                };
                let step2: Action = if fail {
                    Action::Fail("ledger write failed".into())
                } else {
                    Action::Persist {
                        resource: "http://shop/ledger_log".into(),
                        payload: parse_construct_term(&format!("entry[\"{i}\"]")).unwrap(),
                    }
                };
                let mut ex = Executor::new(&mut qe, &procs);
                let result = match variant {
                    "transactional" => {
                        ex.execute(&Action::seq(vec![step1, step2]), &Bindings::new())
                    }
                    "alt-fallback" => {
                        let r = ex.execute(
                            &Action::alt(vec![
                                Action::seq(vec![step1, step2]),
                                Action::Persist {
                                    resource: "http://shop/deferred".into(),
                                    payload: parse_construct_term(&format!("retry[\"{i}\"]"))
                                        .unwrap(),
                                },
                            ]),
                            &Bindings::new(),
                        );
                        if r.is_ok() && fail {
                            recovered += 1;
                        }
                        r
                    }
                    _ => {
                        // Naive: steps run independently, errors ignored.
                        let _ = ex.execute(&step1, &Bindings::new());
                        ex.execute(&step2, &Bindings::new())
                    }
                };
                if result.is_ok() && !fail {
                    completed += 1;
                }
            }
            let takes = qe
                .store
                .get("http://shop/stock_log")
                .map(|d| d.children().len())
                .unwrap_or(0);
            let entries = qe
                .store
                .get("http://shop/ledger_log")
                .map(|d| d.children().len())
                .unwrap_or(0);
            // An anomaly is a stock take without a ledger entry.
            let anomalies = takes.saturating_sub(entries);
            t.row(vec![
                f(p_fail),
                variant.into(),
                completed.to_string(),
                anomalies.to_string(),
                recovered.to_string(),
            ]);
        }
    }
    t
}

/// E9 (Thesis 9): structuring removes redundant evaluation — ECAA vs a
/// C/¬C rule pair, and label-indexed dispatch vs unindexable rules.
pub fn e9_structuring() -> Table {
    let mut t = Table::new(
        "E9",
        "Thesis 9",
        "ECAA vs two rules (1000 events); indexed vs wildcard dispatch",
        vec!["comparison", "variant", "cond_evals", "time_ms"],
    )
    .with_note(
        "Claims: an ECAA rule tests its condition once where a C/¬C pair \
         tests twice; grouping rules by trigger label lets dispatch skip \
         unrelated rules entirely.",
    );
    const EVENTS: usize = 1_000;

    // --- ECAA vs pair ---
    let run_branching = |ecaa: bool| -> (u64, f64) {
        let mut e = ReactiveEngine::new("http://x");
        e.qe.store.put("http://x/c", customers_doc(200));
        if ecaa {
            e.install_program(
                r#"RULE r ON order{{id[[var O]]}}
                   IF in "http://x/c" customer{{id[[var O]]}} THEN LOG known[var O]
                   ELSE LOG unknown[var O] END"#,
            )
            .unwrap();
        } else {
            e.install_program(
                r#"RULE r_pos ON order{{id[[var O]]}}
                   IF in "http://x/c" customer{{id[[var O]]}} THEN LOG known[var O] END
                   RULE r_neg ON order{{id[[var O]]}}
                   IF not in "http://x/c" customer{{id[[var O]]}} THEN LOG unknown[var O] END"#,
            )
            .unwrap();
        }
        let meta = MessageMeta::from_uri("http://y");
        let (_, secs) = timed(|| {
            for i in 0..EVENTS {
                let p = parse_term(&format!("order{{id[\"c{}\"]}}", i % 400)).unwrap();
                e.receive(p, &meta, Timestamp(i as u64));
            }
        });
        (e.metrics.condition_evals, secs)
    };
    let (evals, secs) = run_branching(true);
    t.row(vec![
        "branching".into(),
        "ECAA (one rule)".into(),
        evals.to_string(),
        f(secs * 1e3),
    ]);
    let (evals, secs) = run_branching(false);
    t.row(vec![
        "branching".into(),
        "C and ¬C pair".into(),
        evals.to_string(),
        f(secs * 1e3),
    ]);

    // --- dispatch: 200 rules, only one relevant ---
    let run_dispatch = |indexed: bool| -> f64 {
        let mut e = ReactiveEngine::new("http://x");
        for i in 0..200 {
            let pattern = if indexed {
                format!("evt{i}{{{{v[[var X]]}}}}")
            } else {
                // A wildcard label defeats indexing: every rule must be
                // consulted for every event.
                format!("*{{{{kind[[\"evt{i}\"]], v[[var X]]}}}}")
            };
            e.install_program(&format!(
                r#"RULE r{i} ON {pattern} DO LOG seen{i}[var X] END"#
            ))
            .unwrap();
        }
        let meta = MessageMeta::from_uri("http://y");
        let (_, secs) = timed(|| {
            for i in 0..EVENTS {
                let p = parse_term(&format!("evt7{{kind[\"evt7\"], v[\"{i}\"]}}")).unwrap();
                e.receive(p, &meta, Timestamp(i as u64));
            }
        });
        secs
    };
    let secs = run_dispatch(true);
    t.row(vec![
        "dispatch (200 rules)".into(),
        "label-indexed".into(),
        "-".into(),
        f(secs * 1e3),
    ]);
    let secs = run_dispatch(false);
    t.row(vec![
        "dispatch (200 rules)".into(),
        "unindexable (wildcard)".into(),
        "-".into(),
        f(secs * 1e3),
    ]);
    t
}

/// E10 (Thesis 10): identity regimes under change monitoring.
pub fn e10_identity() -> Table {
    let mut t = Table::new(
        "E10",
        "Thesis 10",
        "monitoring 100 articles through 200 edits",
        vec![
            "identity",
            "modifications",
            "delete+insert",
            "attributed_correctly",
            "diff_ms_total",
        ],
    )
    .with_note(
        "Claim: surrogate identity tracks an object across value changes \
         (edits appear as modifications of *that* article); extensional \
         identity loses it (every edit is a delete + insert).",
    );
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    const ARTICLES: usize = 100;
    const EDITS: usize = 200;
    for mode in [IdentityMode::surrogate(), IdentityMode::Extensional] {
        let mut rng = StdRng::seed_from_u64(5);
        let mut doc = news_doc(ARTICLES, 0);
        let mut mods = 0usize;
        let mut delins = 0usize;
        let mut attributed = 0usize;
        let mut total_secs = 0.0;
        for k in 1..=EDITS {
            let target = rng.gen_range(0..ARTICLES);
            let new_doc = reweb_term::apply_edit(
                &doc,
                &reweb_term::Path::new(vec![target]),
                reweb_term::PathEdit::Replace(
                    parse_term(&format!("article{{@id=\"a{target}\", title[\"{k}\"]}}")).unwrap(),
                ),
            )
            .unwrap();
            let (changes, secs) = timed(|| reweb_term::diff_documents(&doc, &new_doc, &mode));
            total_secs += secs;
            for c in &changes {
                match c {
                    reweb_term::Change::Modified { key, .. } => {
                        mods += 1;
                        if *key
                            == reweb_term::identity::IdentityKey::Surrogate(format!("a{target}"))
                        {
                            attributed += 1;
                        }
                    }
                    _ => delins += 1,
                }
            }
            doc = new_doc;
        }
        t.row(vec![
            match mode {
                IdentityMode::Surrogate { .. } => "surrogate (@id)".into(),
                IdentityMode::Extensional => "extensional".into(),
            },
            mods.to_string(),
            delins.to_string(),
            attributed.to_string(),
            f(total_secs * 1e3),
        ]);
    }
    t
}

/// E11 (Thesis 11): reactive vs eager policy exchange in trust
/// negotiation, as the policy base grows.
pub fn e11_trust_negotiation() -> Table {
    let mut t = Table::new(
        "E11",
        "Thesis 11",
        "fussbaelle.biz negotiation with n extra unrelated shop policies",
        vec![
            "strategy",
            "n_policies",
            "messages",
            "policies_sent",
            "sensitive_leaked",
            "bytes",
            "success",
        ],
    )
    .with_note(
        "Claims: reactive exchange sends only the relevant rules (constant \
         in n) and leaks only sensitive policies on the needed path; eager \
         exchange sends and leaks everything.",
    );
    for extra in [0usize, 14, 62] {
        let (franz, mut shop) = reweb_core::trust::fussbaelle_scenario();
        for i in 0..extra {
            let p = reweb_core::Policy::new(format!("unrelated_{i}"), vec!["something"]);
            shop = shop.with_policy(if i % 2 == 0 { p.sensitive() } else { p });
        }
        let n = shop.policies.len() + franz.policies.len();
        for strategy in [Strategy::Reactive, Strategy::Eager] {
            let out = negotiate(&franz, &shop, "purchase", strategy);
            t.row(vec![
                format!("{strategy:?}"),
                n.to_string(),
                out.messages.to_string(),
                out.policies_disclosed.to_string(),
                out.sensitive_leaked.to_string(),
                out.bytes.to_string(),
                out.success.to_string(),
            ]);
        }
    }
    t
}

/// E12 (Thesis 12): AAA overhead and accounting's double reactivity.
pub fn e12_aaa_overhead() -> Table {
    let mut t = Table::new(
        "E12",
        "Thesis 12",
        "5,000 messages through one engine under increasing AAA levels",
        vec![
            "aaa_level",
            "kmsg_per_s",
            "overhead_pct",
            "acct_records",
            "acct_rule_fires",
        ],
    )
    .with_note(
        "Claim: AAA belongs in the engine, affordable as configuration; \
         accounting is itself reactive (records re-enter as events and can \
         trigger rules) without any meta-programming.",
    );
    const N: usize = 5_000;
    let mut base_rate = 0.0f64;
    // Warm up caches/allocator so the first measured config isn't cold.
    {
        let mut w = ReactiveEngine::new("http://svc");
        w.install_program(r#"RULE serve ON order{{id[[var O]]}} DO LOG served[var O] END"#)
            .unwrap();
        let meta = MessageMeta::from_uri("http://client");
        for i in 0..N {
            let p = parse_term(&format!("order{{id[\"o{i}\"]}}")).unwrap();
            w.receive(p, &meta, Timestamp(i as u64));
        }
    }
    for (name, config) in [
        ("off", AaaConfig::default()),
        (
            "authn",
            AaaConfig {
                require_auth: true,
                ..AaaConfig::default()
            },
        ),
        (
            "authn+authz",
            AaaConfig {
                require_auth: true,
                authorize: true,
                ..AaaConfig::default()
            },
        ),
        (
            "full accounting",
            AaaConfig {
                require_auth: true,
                authorize: true,
                accounting: true,
                accounting_events: true,
            },
        ),
    ] {
        let mut e = ReactiveEngine::new("http://svc");
        e.aaa = reweb_core::aaa::Aaa::new(config);
        e.aaa.register("franz", "pw", vec!["customer".into()]);
        e.aaa
            .acl
            .grant("customer", Permission::ReceiveEvent("order".into()));
        e.install_program(
            r#"
            RULE serve ON order{{id[[var O]]}} DO LOG served[var O] END
            RULE meter ON accounting{{principal[[var P]], allowed[["true"]]}}
              DO LOG metered[var P] END
            "#,
        )
        .unwrap();
        // Credentials are only attached when the engine demands them —
        // the "off" level measures the truly unauthenticated path.
        let meta = if e.aaa.config.require_auth {
            MessageMeta::from_uri("http://client").with_credentials("franz", "pw")
        } else {
            MessageMeta::from_uri("http://client")
        };
        let (_, secs) = timed(|| {
            for i in 0..N {
                let p = parse_term(&format!("order{{id[\"o{i}\"]}}")).unwrap();
                e.receive(p, &meta, Timestamp(i as u64));
            }
        });
        let rate = N as f64 / secs;
        if base_rate == 0.0 {
            base_rate = rate;
        }
        let meter_fires = e.metrics.fires_by_rule.get("meter").copied().unwrap_or(0);
        t.row(vec![
            name.into(),
            f(rate / 1_000.0),
            f((base_rate / rate - 1.0) * 100.0),
            e.aaa.records.len().to_string(),
            meter_fires.to_string(),
        ]);
    }
    t
}

/// One measured E13 configuration: the serial and thread-per-shard
/// executors over the same shard count and workload.
#[derive(Clone, Debug)]
pub struct E13Row {
    /// Shard count of this configuration.
    pub shards: usize,
    /// Serial-executor batch throughput, in 1000 events/s.
    pub serial_kevents_per_s: f64,
    /// Thread-executor batch throughput, in 1000 events/s.
    pub parallel_kevents_per_s: f64,
    /// Reactions produced by the serial run (must match every run).
    pub reactions_serial: u64,
    /// Reactions produced by the parallel run (must match every run).
    pub reactions_parallel: u64,
    /// Busiest shard's share of routed events (serial run).
    pub hottest_share: f64,
}

/// Machine-readable E13 result — the table, the `--bench-json` payload,
/// and the CI performance floor all read from this one struct.
#[derive(Clone, Debug)]
pub struct E13Report {
    /// Events in the batch.
    pub events: usize,
    /// Independent rule-label groups in the workload.
    pub labels: usize,
    /// Single-engine (unsharded) throughput, in 1000 events/s — the
    /// normalizer that makes floor checks machine-speed independent.
    pub single_kevents_per_s: f64,
    /// Reactions the single engine produced.
    pub reactions_single: u64,
    /// One row per shard count (1, 2, 4, 8).
    pub rows: Vec<E13Row>,
}

/// E13 (sharded ingestion): batch throughput of the label-affinity
/// front-end vs a single engine, serial vs thread-per-shard execution,
/// 100k-event workload.
pub fn e13_sharded_throughput() -> Table {
    e13_table(&e13_report(100_000))
}

/// Measure the E13 workload at `n_events` (100k for the real table;
/// smaller in the shape test and anything else that only needs shapes).
pub fn e13_report(n_events: usize) -> E13Report {
    use reweb_core::{ExecMode, InMessage, ShardedEngine};

    const LABELS: usize = 128;
    let program = crate::sharded_rules(LABELS);
    let meta = MessageMeta::from_uri("http://client");
    let msgs: Vec<InMessage> = crate::paired_stream(LABELS, n_events, 17)
        .into_iter()
        .map(|(at, payload)| InMessage::new(payload, meta.clone(), at))
        .collect();

    // Every configuration is measured twice and the faster run kept:
    // scheduler noise only ever *slows* a run down, so best-of-N
    // estimates true capacity with far less variance than one sample —
    // which is what keeps the CI performance floor from flapping.
    const REPEATS: usize = 2;

    // Baseline: one engine, one receive per message.
    let mut best_base = f64::MIN;
    let mut single_fired = 0;
    for _ in 0..REPEATS {
        let mut single = ReactiveEngine::new("http://svc");
        single.install_program(&program).expect("program");
        let (_, base_secs) = timed(|| {
            for m in &msgs {
                single.receive(m.payload.clone(), &m.meta, m.at);
            }
        });
        best_base = best_base.max(n_events as f64 / base_secs / 1_000.0);
        single_fired = single.metrics.rules_fired;
    }

    let run_mode = |shards: usize, mode: ExecMode| {
        let mut best = f64::MIN;
        let mut fired = 0;
        let mut hottest = 0.0;
        for _ in 0..REPEATS {
            let mut e = ShardedEngine::with_mode("http://svc", shards, mode);
            e.install_program(&program).expect("program");
            let (_, secs) = timed(|| e.receive_batch(&msgs));
            assert!(
                e.poisoned().is_none(),
                "E13 workload must not fail: {:?}",
                e.warnings
            );
            best = best.max(n_events as f64 / secs / 1_000.0);
            fired = e.metrics().rules_fired;
            hottest = e.hottest_share();
        }
        (best, fired, hottest)
    };

    let rows = [1usize, 2, 4, 8]
        .into_iter()
        .map(|shards| {
            let (serial_rate, reactions_serial, hottest) = run_mode(shards, ExecMode::Serial);
            let (parallel_rate, reactions_parallel, _) = run_mode(shards, ExecMode::Threads);
            E13Row {
                shards,
                serial_kevents_per_s: serial_rate,
                parallel_kevents_per_s: parallel_rate,
                reactions_serial,
                reactions_parallel,
                hottest_share: hottest,
            }
        })
        .collect();

    E13Report {
        events: n_events,
        labels: LABELS,
        single_kevents_per_s: best_base,
        reactions_single: single_fired,
        rows,
    }
}

/// Render an [`E13Report`] as the experiment table.
pub fn e13_table(r: &E13Report) -> Table {
    let mut t = Table::new(
        "E13",
        "scale-out",
        format!(
            "sharded batch ingestion: {} events, {} rule-label groups",
            r.events, r.labels
        ),
        vec![
            "engine",
            "shards",
            "reactions",
            "kevents_per_s",
            "speedup",
            "vs_serial",
            "hottest_share",
        ],
    )
    .with_note(
        "Claim: partitioning rules by event-label affinity divides the \
         per-event work (timer advance, dispatch, partial-match state) by \
         the shard count while producing identical reactions, and because \
         shards share no state the thread-per-shard executor (`sharded-mt`) \
         runs them concurrently — its win over `sharded` tracks the \
         machine's core count (1.0x on a single-core host), while \
         `vs_serial` isolates executor overhead from the sharding win \
         itself. Occupancy stays balanced because label groups spread \
         round-robin.",
    );
    t.row(vec![
        "single".into(),
        "-".into(),
        r.reactions_single.to_string(),
        f(r.single_kevents_per_s),
        "1.000".into(),
        "-".into(),
        "1.000".into(),
    ]);
    for row in &r.rows {
        t.row(vec![
            "sharded".into(),
            row.shards.to_string(),
            row.reactions_serial.to_string(),
            f(row.serial_kevents_per_s),
            f(row.serial_kevents_per_s / r.single_kevents_per_s),
            "1.000".into(),
            f(row.hottest_share),
        ]);
        t.row(vec![
            "sharded-mt".into(),
            row.shards.to_string(),
            row.reactions_parallel.to_string(),
            f(row.parallel_kevents_per_s),
            f(row.parallel_kevents_per_s / r.single_kevents_per_s),
            f(row.parallel_kevents_per_s / row.serial_kevents_per_s),
            f(row.hottest_share),
        ]);
    }
    t
}

/// Machine-readable E14 result: the single-engine hot path — dispatch,
/// match, and fire with no sharding front-end in the way. Where E13's
/// floor gates *scaling* (normalized by this same rate), E14 gates the
/// absolute per-event cost of the engine itself, which is what symbol
/// interning and the allocation-lean `Bindings` attack.
#[derive(Clone, Debug)]
pub struct E14Report {
    /// Events pushed through `ReactiveEngine::receive`.
    pub events: usize,
    /// Independent rule-label groups in the workload.
    pub labels: usize,
    /// Single-engine throughput, in 1000 events/s (best-of-N).
    pub kevents_per_s: f64,
    /// Rule firings the run produced (must be identical every run).
    pub reactions: u64,
    /// Distinct interned symbols after the run — the leak bound.
    pub symbols: usize,
}

/// E14 (hot path): single-engine dispatch + match + fire over the same
/// 100k-event, 128-label-group workload E13 shards — so this number is
/// directly comparable with E13's `single` row and with pre-interning
/// baselines.
pub fn e14_hot_path() -> Table {
    e14_table(&e14_report(100_000))
}

/// Measure the E14 workload at `n_events` (100k for the real table).
pub fn e14_report(n_events: usize) -> E14Report {
    const LABELS: usize = 128;
    let program = crate::sharded_rules(LABELS);
    let meta = MessageMeta::from_uri("http://client");
    let msgs: Vec<(Timestamp, Term)> = crate::paired_stream(LABELS, n_events, 17);

    // Best-of-N for the same reason as E13: noise only slows runs down.
    const REPEATS: usize = 3;
    let mut best = f64::MIN;
    let mut reactions = 0;
    for _ in 0..REPEATS {
        let mut engine = ReactiveEngine::new("http://svc");
        engine.install_program(&program).expect("program");
        let (_, secs) = timed(|| {
            for (at, payload) in &msgs {
                engine.receive(payload.clone(), &meta, *at);
            }
        });
        best = best.max(n_events as f64 / secs / 1_000.0);
        reactions = engine.metrics.rules_fired;
    }
    E14Report {
        events: n_events,
        labels: LABELS,
        kevents_per_s: best,
        reactions,
        symbols: reweb_term::Sym::table_len(),
    }
}

/// Render an [`E14Report`] as the experiment table.
pub fn e14_table(r: &E14Report) -> Table {
    let mut t = Table::new(
        "E14",
        "hot path",
        format!(
            "single-engine dispatch + match + fire: {} events, {} rule-label groups",
            r.events, r.labels
        ),
        vec!["engine", "reactions", "kevents_per_s", "interned_symbols"],
    )
    .with_note(
        "Claim: with interned symbols the per-event cost is matching work, \
         not allocation — label dispatch is an integer-keyed hash lookup, \
         binding extension copies a small (u32, Arc) vector instead of \
         cloning a `BTreeMap<String, Term>`, and the interned-symbol count \
         stays bounded by the vocabulary, not the event count. CI gates \
         this rate absolutely (25% below the conservatively rounded \
         committed baseline fails).",
    );
    t.row(vec![
        "single".into(),
        r.reactions.to_string(),
        f(r.kevents_per_s),
        r.symbols.to_string(),
    ]);
    t
}

/// One recovery measurement of E15: how long a fresh process took to
/// rebuild a durable engine from a log of `events` events.
#[derive(Clone, Debug)]
pub struct E15Recovery {
    /// `cold` (genesis replay, no snapshot) or `snap` (snapshot +
    /// bounded suffix).
    pub mode: &'static str,
    /// Events in the log at the kill point.
    pub events: usize,
    /// Log size at the kill point, bytes.
    pub wal_bytes: u64,
    /// Wall-clock recovery time, milliseconds.
    pub millis: f64,
    /// Replay throughput, in 1000 events/s.
    pub kevents_per_s: f64,
}

/// Machine-readable E15 result: durable-mode ingestion throughput (the
/// E14 hot path behind a write-ahead log with per-batch fsync) and cold
/// recovery time as a function of log length.
#[derive(Clone, Debug)]
pub struct E15Report {
    /// Events ingested by the throughput run.
    pub events: usize,
    /// Independent rule-label groups in the workload.
    pub labels: usize,
    /// Messages per `receive_batch` call = per log record = per fsync.
    pub batch: usize,
    /// Durable ingestion throughput, in 1000 events/s (best-of-N).
    pub durable_kevents_per_s: f64,
    /// Rule firings (must match the in-memory E14 run's count).
    pub reactions: u64,
    /// Write-ahead-log size after the run, bytes.
    pub wal_bytes: u64,
    /// Recovery measurements at increasing log lengths.
    pub recoveries: Vec<E15Recovery>,
}

/// E15 (durability): the E14 workload through a
/// [`reweb_persist::DurableEngine`] — every batch framed, CRC'd,
/// appended, and fsynced before processing — plus cold-recovery timings.
pub fn e15_durability() -> Table {
    e15_table(&e15_report(100_000))
}

/// Measure the E15 workload at `n_events` (100k for the real table).
pub fn e15_report(n_events: usize) -> E15Report {
    use reweb_core::{InMessage, ReactiveEngine};
    use reweb_persist::{DurableEngine, DurableOptions, SyncPolicy};

    const LABELS: usize = 128;
    const BATCH: usize = 1024;
    let program = crate::sharded_rules(LABELS);
    let meta = MessageMeta::from_uri("http://client");
    let msgs: Vec<InMessage> = crate::paired_stream(LABELS, n_events, 17)
        .into_iter()
        .map(|(at, payload)| InMessage::new(payload, meta.clone(), at))
        .collect();
    let base = std::env::temp_dir().join(format!("reweb-e15-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let opts = DurableOptions {
        sync: SyncPolicy::Always,
        snapshot_every: None,
    };
    let feed = |dir: &std::path::Path, upto: usize| -> (f64, u64, u64) {
        let mut d = DurableEngine::open(dir, opts, || ReactiveEngine::new("http://svc"))
            .expect("open durable node");
        d.install_program(&program).expect("program");
        let (_, secs) = crate::timed(|| {
            for chunk in msgs[..upto].chunks(BATCH) {
                d.receive_batch(chunk).expect("durable batch");
            }
        });
        (
            upto as f64 / secs / 1_000.0,
            d.engine().metrics.rules_fired,
            d.wal_len(),
        )
    };

    // Durable ingestion throughput, best-of-2 (fresh log each run).
    const REPEATS: usize = 2;
    let mut best = f64::MIN;
    let mut reactions = 0;
    let mut wal_bytes = 0;
    for rep in 0..REPEATS {
        let dir = base.join(format!("throughput-{rep}"));
        let (rate, fired, bytes) = feed(&dir, n_events);
        best = best.max(rate);
        reactions = fired;
        wal_bytes = bytes;
    }

    // Cold recovery (genesis replay, no snapshot) vs log length, plus a
    // snapshot-bounded recovery of the full log: snapshot at 90%, crash
    // at 100%, so recovery = snapshot restore + 10% suffix.
    let mut recoveries = Vec::new();
    for frac in [4usize, 2, 1] {
        let upto = n_events / frac;
        let dir = base.join(format!("cold-{frac}"));
        let (_, _, bytes) = feed(&dir, upto);
        let (d, secs) = crate::timed(|| {
            DurableEngine::open(&dir, opts, || ReactiveEngine::new("http://svc"))
                .expect("cold recovery")
        });
        assert!(d.recovery().recovered && !d.recovery().used_snapshot);
        recoveries.push(E15Recovery {
            mode: "cold",
            events: upto,
            wal_bytes: bytes,
            millis: secs * 1_000.0,
            kevents_per_s: upto as f64 / secs / 1_000.0,
        });
    }
    {
        let dir = base.join("snap");
        let mut d = DurableEngine::open(&dir, opts, || ReactiveEngine::new("http://svc"))
            .expect("open durable node");
        d.install_program(&program).expect("program");
        let cut = n_events * 9 / 10;
        for chunk in msgs[..cut].chunks(BATCH) {
            d.receive_batch(chunk).expect("durable batch");
        }
        d.snapshot_now().expect("snapshot");
        for chunk in msgs[cut..].chunks(BATCH) {
            d.receive_batch(chunk).expect("durable batch");
        }
        let bytes = d.wal_len();
        drop(d);
        let (d, secs) = crate::timed(|| {
            DurableEngine::open(&dir, opts, || ReactiveEngine::new("http://svc"))
                .expect("snapshot recovery")
        });
        assert!(d.recovery().used_snapshot);
        recoveries.push(E15Recovery {
            mode: "snap",
            events: n_events,
            wal_bytes: bytes,
            millis: secs * 1_000.0,
            kevents_per_s: n_events as f64 / secs / 1_000.0,
        });
    }
    let _ = std::fs::remove_dir_all(&base);

    E15Report {
        events: n_events,
        labels: LABELS,
        batch: BATCH,
        durable_kevents_per_s: best,
        reactions,
        wal_bytes,
        recoveries,
    }
}

/// Render an [`E15Report`] as the experiment table.
pub fn e15_table(r: &E15Report) -> Table {
    let mut t = Table::new(
        "E15",
        "durability",
        format!(
            "durable engine: {} events, {}-message batches, fsync per batch",
            r.events, r.batch
        ),
        vec!["config", "events", "wal_mb", "recovery_ms", "kevents_per_s"],
    )
    .with_note(
        "Claim: write-ahead logging costs little when batched — one framed \
         record and one fsync per ingestion batch amortize to microseconds \
         per event, so the `durable` rate stays within the CI-gated floor \
         of the in-memory E14 hot path — and recovery is replay-shaped: \
         cold (genesis) recovery time grows linearly with the log, while a \
         snapshot bounds it to the suffix after the snapshot offset \
         (rules + stores restore directly; only composite-event state \
         within the retention horizon is re-derived). Reactions equal the \
         in-memory run's count: durability never changes semantics.",
    );
    t.row(vec![
        "durable".into(),
        r.events.to_string(),
        format!("{:.1}", r.wal_bytes as f64 / 1_048_576.0),
        "-".into(),
        f(r.durable_kevents_per_s),
    ]);
    for rec in &r.recoveries {
        t.row(vec![
            format!("recovery-{}", rec.mode),
            rec.events.to_string(),
            format!("{:.1}", rec.wal_bytes as f64 / 1_048_576.0),
            format!("{:.0}", rec.millis),
            f(rec.kevents_per_s),
        ]);
    }
    t
}

/// One measured E16 configuration: dispatch cost at one installed-rule
/// count.
#[derive(Clone, Debug)]
pub struct E16Row {
    /// Installed rules.
    pub rules: usize,
    /// Time to compile and install all rules (incremental network
    /// extension included), milliseconds.
    pub install_ms: f64,
    /// Throughput, in 1000 events/s (best-of-N).
    pub kevents_per_s: f64,
    /// Rule firings (one per event: every event matches exactly one rule).
    pub reactions: u64,
    /// Alpha tests + dispatch probes per event — the flat-cost witness:
    /// tracks event shape, not rule count.
    pub alpha_tests_per_event: f64,
    /// Nodes in the candidate index after install.
    pub network_nodes: usize,
}

/// Machine-readable E16 result: rule-count scaling of the compiled
/// discrimination network, with interpreted-dispatch contrast rows.
#[derive(Clone, Debug)]
pub struct E16Report {
    /// Events pushed per configuration.
    pub events: usize,
    /// Compiled-network rows, one per rule count (ascending).
    pub rows: Vec<E16Row>,
    /// Interpreted-dispatch contrast rows (smaller rule counts and a
    /// shorter stream — per-candidate interpretation makes the full
    /// sweep infeasible, which is the point).
    pub interpreted: Vec<E16Row>,
    /// Events per interpreted contrast run.
    pub interpreted_events: usize,
}

/// E16 (rules scaling): per-event dispatch cost of the shared alpha
/// network as the rule base grows 10² → 10⁵, vs interpreted dispatch.
pub fn e16_rules_scaling() -> Table {
    e16_table(&e16_report(100_000))
}

/// Measure the E16 workload at `n_events` per configuration (100k for
/// the real table) over the full 10²→10⁵ sweep.
pub fn e16_report(n_events: usize) -> E16Report {
    e16_report_with(n_events, &[100, 1_000, 10_000, 100_000])
}

/// Build the E16 rule base: rule `i` fires on `order` events whose
/// `@route` attribute equals `"r{i}"` — every rule shares the label and
/// child-shape tests, so the network's per-event work is one attribute
/// probe plus a handful of shared shape tests at *any* rule count.
fn e16_rule(i: usize) -> reweb_core::EcaRule {
    let on = parse_event_query(&format!("order{{{{@route=\"r{i}\", n[[var N]]}}}}"))
        .expect("E16 trigger parses");
    reweb_core::EcaRule::on_do(format!("r{i}"), on, Action::Noop)
}

/// Measure E16 at the given rule counts (the shape test uses small ones).
pub fn e16_report_with(n_events: usize, rule_counts: &[usize]) -> E16Report {
    use reweb_core::MatchMode;

    let meta = MessageMeta::from_uri("http://client");
    const REPEATS: usize = 2;

    let run = |n_rules: usize, n_events: usize, mode: MatchMode| -> E16Row {
        // Pre-parse the stream so the timed region is dispatch + match +
        // fire only. Every event matches exactly one rule.
        let msgs: Vec<Term> = (0..n_events)
            .map(|i| {
                parse_term(&format!("order{{@route=\"r{}\", n[\"{i}\"]}}", i % n_rules))
                    .expect("E16 event parses")
            })
            .collect();
        let mut best = f64::MIN;
        let mut picked: Option<E16Row> = None;
        for _ in 0..REPEATS {
            let mut e = ReactiveEngine::new("http://svc");
            e.set_match_mode(mode);
            let (_, install_secs) = timed(|| {
                for i in 0..n_rules {
                    e.add_rule(e16_rule(i));
                }
            });
            let (_, secs) = timed(|| {
                for (i, p) in msgs.iter().enumerate() {
                    e.receive(p.clone(), &meta, Timestamp(i as u64));
                }
            });
            let rate = n_events as f64 / secs / 1_000.0;
            if rate > best {
                best = rate;
                picked = Some(E16Row {
                    rules: n_rules,
                    install_ms: install_secs * 1e3,
                    kevents_per_s: rate,
                    reactions: e.metrics.rules_fired,
                    alpha_tests_per_event: e.metrics.alpha_tests_run as f64 / n_events as f64,
                    network_nodes: e.index_node_count(),
                });
            }
        }
        picked.expect("at least one repeat ran")
    };

    let rows = rule_counts
        .iter()
        .map(|&n| run(n, n_events, MatchMode::Compiled))
        .collect();
    // Interpreted contrast: per-candidate interpretation costs
    // O(rules) per event, so measure it only at the two smallest counts
    // over a shorter stream (rates are per-event, so they compare).
    let interpreted_events = (n_events / 10).max(1);
    let interpreted = rule_counts
        .iter()
        .take(2)
        .map(|&n| run(n, interpreted_events, MatchMode::Interpreted))
        .collect();

    E16Report {
        events: n_events,
        rows,
        interpreted,
        interpreted_events,
    }
}

/// Render an [`E16Report`] as the experiment table.
pub fn e16_table(r: &E16Report) -> Table {
    let mut t = Table::new(
        "E16",
        "rules scaling",
        format!(
            "compiled rule matcher: {} events per configuration, rules 10² → 10⁵",
            r.events
        ),
        vec![
            "dispatch",
            "rules",
            "install_ms",
            "reactions",
            "kevents_per_s",
            "alpha_tests_per_event",
            "network_nodes",
        ],
    )
    .with_note(
        "Claim: compiling all rules into one shared discrimination network \
         makes per-event dispatch cost a function of the event's shape, not \
         the rule count — throughput and alpha tests per event stay flat \
         from 100 to 100,000 installed rules (CI gates 100k-rule throughput \
         absolutely and requires it at ≥0.3x the 100-rule rate), while \
         interpreted dispatch walks every same-label candidate and falls \
         off linearly. Install extends the network incrementally; no \
         rebuild, so install time stays linear in rules.",
    );
    for row in &r.rows {
        t.row(vec![
            "compiled".into(),
            row.rules.to_string(),
            f(row.install_ms),
            row.reactions.to_string(),
            f(row.kevents_per_s),
            f(row.alpha_tests_per_event),
            row.network_nodes.to_string(),
        ]);
    }
    for row in &r.interpreted {
        t.row(vec![
            format!("interpreted ({} events)", r.interpreted_events),
            row.rules.to_string(),
            f(row.install_ms),
            row.reactions.to_string(),
            f(row.kevents_per_s),
            f(row.alpha_tests_per_event),
            row.network_nodes.to_string(),
        ]);
    }
    t
}

/// The `engine` id a rule count gets in [`bench_json`] (`rules-100`,
/// `rules-1k`, `rules-10k`, `rules-100k`).
pub fn e16_engine_id(rules: usize) -> String {
    match rules {
        1_000 => "rules-1k".into(),
        10_000 => "rules-10k".into(),
        100_000 => "rules-100k".into(),
        n => format!("rules-{n}"),
    }
}

/// One measured E17 configuration: a composite-rule (And/Seq) workload
/// through one join mode.
#[derive(Clone, Debug)]
pub struct E17Row {
    /// Installed composite rules (alternating `and`/`seq` triggers).
    pub rules: usize,
    /// Events driven through this configuration.
    pub events: usize,
    /// `"indexed"` or `"scan"`.
    pub mode: &'static str,
    /// Rule-install wall time.
    pub install_ms: f64,
    /// Throughput, in 1000 events/s.
    pub kevents_per_s: f64,
    /// Composite answers fired (identical across modes — the
    /// equivalence `join_equivalence.rs` pins, re-checked here).
    pub answers: u64,
    /// Beta-index bucket lookups per event (zero in scan mode).
    pub probes_per_event: f64,
    /// Join candidates examined per event — the occupancy contrast:
    /// flat for indexed, linear in stored answers for scan.
    pub attempts_per_event: f64,
    /// Retained partial-match answers at the end of the run.
    pub state_size: usize,
}

/// Machine-readable E17 result — the table, the `--bench-json` payload,
/// and the CI performance floor all read from this one struct.
#[derive(Clone, Debug)]
pub struct E17Report {
    /// Events per rules-axis configuration.
    pub events: usize,
    /// Part A: rule-count axis 10² → 10⁴, indexed mode (the product
    /// configuration; `composite-10k` is the CI floor row).
    pub rules_axis: Vec<E17Row>,
    /// Scan contrast at the two smallest rule counts over a shorter
    /// stream (rates are per-event, so they compare).
    pub scan_contrast: Vec<E17Row>,
    /// Events per scan-contrast configuration.
    pub contrast_events: usize,
    /// Part B: occupancy axis at a fixed small rule count — wide windows
    /// and a growing stream, (indexed, scan) measured pairwise on the
    /// same workload. The last pair carries the ≥2x same-run gate.
    pub occupancy: Vec<(E17Row, E17Row)>,
}

/// E17 (indexed joins): many-rule composite workloads through the beta
/// network — And/Seq at 10² → 10⁴ rules, plus the occupancy axis where
/// scan joins degrade linearly and indexed joins stay flat.
pub fn e17_indexed_joins() -> Table {
    e17_table(&e17_report(100_000))
}

/// Measure the E17 workload at `n_events` per rules-axis configuration
/// (100k for the real table).
pub fn e17_report(n_events: usize) -> E17Report {
    e17_report_with(
        n_events,
        &[100, 1_000, 10_000],
        &[8_000, 16_000, 32_000, 64_000],
    )
}

/// Build E17 rule `i`: a two-way join on `@route`-disjoint composite
/// triggers — `and` for even `i`, `seq` for odd — sharing `var K` so the
/// join key analysis has something to index, under a window far wider
/// than the stream (maximal occupancy: nothing GCs during a run).
fn e17_rule(i: usize) -> reweb_core::EcaRule {
    let op = if i % 2 == 0 { "and" } else { "seq" };
    let on = parse_event_query(&format!(
        "{op}(pa{{{{@route=\"r{i}\", id[[var K]]}}}}, pb{{{{@route=\"r{i}\", id[[var K]]}}}}) \
         within 10h"
    ))
    .expect("E17 trigger parses");
    reweb_core::EcaRule::on_do(format!("c{i}"), on, Action::Noop)
}

/// Measure E17 at the given rule counts and occupancy stream lengths.
pub fn e17_report_with(n_events: usize, rule_counts: &[usize], occupancy: &[usize]) -> E17Report {
    use reweb_core::JoinMode;

    let meta = MessageMeta::from_uri("http://client");
    const REPEATS: usize = 2;

    // Event `2j` is `pa`, event `2j+1` the matching `pb`: pair `j` routes
    // to rule `j % n_rules` and joins exactly once on `id`. The alpha
    // network dispatches each event to its one rule; everything measured
    // past that point is join work.
    let run = |n_rules: usize, n_events: usize, mode: JoinMode| -> E17Row {
        let msgs: Vec<Term> = (0..n_events)
            .map(|j| {
                let pair = j / 2;
                let label = if j % 2 == 0 { "pa" } else { "pb" };
                parse_term(&format!(
                    "{label}{{@route=\"r{}\", id[\"{pair}\"]}}",
                    pair % n_rules
                ))
                .expect("E17 event parses")
            })
            .collect();
        let mut best = f64::MIN;
        let mut picked: Option<E17Row> = None;
        for _ in 0..REPEATS {
            let mut e = ReactiveEngine::new("http://svc");
            e.set_join_mode(mode);
            let (_, install_secs) = timed(|| {
                for i in 0..n_rules {
                    e.add_rule(e17_rule(i));
                }
            });
            let (_, secs) = timed(|| {
                for (i, p) in msgs.iter().enumerate() {
                    e.receive(p.clone(), &meta, Timestamp(i as u64));
                }
            });
            let rate = n_events as f64 / secs / 1_000.0;
            if rate > best {
                best = rate;
                picked = Some(E17Row {
                    rules: n_rules,
                    events: n_events,
                    mode: match mode {
                        JoinMode::Indexed => "indexed",
                        JoinMode::Scan => "scan",
                    },
                    install_ms: install_secs * 1e3,
                    kevents_per_s: rate,
                    answers: e.metrics.rules_fired,
                    probes_per_event: e.metrics.index_probes as f64 / n_events as f64,
                    attempts_per_event: e.metrics.join_attempts as f64 / n_events as f64,
                    state_size: e.state_size(),
                });
            }
        }
        picked.expect("at least one repeat ran")
    };

    let rules_axis: Vec<E17Row> = rule_counts
        .iter()
        .map(|&n| run(n, n_events, JoinMode::Indexed))
        .collect();
    // Scan contrast: per-delta cost is O(stored siblings), so measure it
    // only at the two smallest rule counts over a shorter stream.
    let contrast_events = (n_events / 10).max(2);
    let scan_contrast: Vec<E17Row> = rule_counts
        .iter()
        .take(2)
        .map(|&n| run(n, contrast_events, JoinMode::Scan))
        .collect();
    // Part B: fix the rule count low so per-rule occupancy grows with
    // the stream, and measure both modes on the same workloads.
    let occupancy = occupancy
        .iter()
        .map(|&n| {
            let ix = run(64, n, JoinMode::Indexed);
            let sc = run(64, n, JoinMode::Scan);
            assert_eq!(
                ix.answers, sc.answers,
                "join modes disagreed on E17 answers at {n} events"
            );
            (ix, sc)
        })
        .collect();

    E17Report {
        events: n_events,
        rules_axis,
        scan_contrast,
        contrast_events,
        occupancy,
    }
}

/// Render an [`E17Report`] as the experiment table.
pub fn e17_table(r: &E17Report) -> Table {
    let mut t = Table::new(
        "E17",
        "indexed joins",
        format!(
            "beta-network joins: composite and/seq rules, {} events per \
             rules-axis configuration; occupancy axis at 64 rules",
            r.events
        ),
        vec![
            "join",
            "rules",
            "events",
            "install_ms",
            "answers",
            "kevents_per_s",
            "probes_per_event",
            "attempts_per_event",
            "state_size",
        ],
    )
    .with_note(
        "Claim: hashing stored partial matches on their shared certain \
         variables makes per-event join cost a function of the *matching* \
         candidates, not the store occupancy — probes and attempts per \
         event stay flat as windows hold more state, while the scan join \
         examines every stored sibling and degrades linearly (CI gates \
         composite-10k throughput absolutely and requires indexed at \
         ≥2x scan on the largest occupancy workload, same run).",
    );
    let mut push = |row: &E17Row| {
        t.row(vec![
            row.mode.into(),
            row.rules.to_string(),
            row.events.to_string(),
            f(row.install_ms),
            row.answers.to_string(),
            f(row.kevents_per_s),
            f(row.probes_per_event),
            f(row.attempts_per_event),
            row.state_size.to_string(),
        ]);
    };
    for row in &r.rules_axis {
        push(row);
    }
    for row in &r.scan_contrast {
        push(row);
    }
    for (ix, sc) in &r.occupancy {
        push(ix);
        push(sc);
    }
    t
}

/// The `engine` id a rules-axis row gets in [`bench_json`]
/// (`composite-100`, `composite-1k`, `composite-10k`).
pub fn e17_engine_id(rules: usize) -> String {
    match rules {
        1_000 => "composite-1k".into(),
        10_000 => "composite-10k".into(),
        n => format!("composite-{n}"),
    }
}

/// One rung of the E18 loopback offered-load ramp.
#[derive(Debug, Clone)]
pub struct E18Row {
    /// Concurrent TCP clients offering load.
    pub clients: usize,
    /// Events offered over the wire (sum across clients).
    pub offered: usize,
    /// Events the engine actually ingested (offered minus `busy`
    /// rejections).
    pub processed: u64,
    /// Sustained end-to-end rate: processed events / wall seconds, in
    /// 1000 events/s.
    pub kevents_per_s: f64,
    /// `busy` backpressure replies (global queue full at admission).
    pub busy_replies: u64,
    /// Reaction replies dropped on slow readers (should be 0 here: the
    /// clients flush every [`E18_SYNC_WINDOW`] events).
    pub replies_dropped: u64,
    /// Highest ingress queue depth the rung observed.
    pub queue_highwater: u64,
    /// Median engine batch-ingest latency, microseconds (from the
    /// rung's observability histogram; the ramp runs with obs on).
    pub batch_p50_us: f64,
    /// 99th-percentile engine batch-ingest latency, microseconds.
    pub batch_p99_us: f64,
}

/// Render a log-bucketed nanosecond quantile as microseconds. The
/// histogram answers bucket ceilings, so this is an upper bound — fine
/// for a latency column whose job is catching order-of-magnitude moves.
fn ns_to_us(ns: u64) -> f64 {
    ns as f64 / 1_000.0
}

/// The E18 measurements: a TCP loopback offered-load ramp.
#[derive(Debug, Clone)]
pub struct E18Report {
    /// Events offered per rung.
    pub events: usize,
    /// One row per client count, in ramp order.
    pub rows: Vec<E18Row>,
    /// Best sustained loopback rate across the ramp — the number the
    /// `net-loopback` floor gates.
    pub loopback_kevents_per_s: f64,
}

/// How many events an E18 client sends between `sync` round-trips. A
/// pipelined-but-bounded reader: deep enough to keep the wire busy,
/// shallow enough that reply buffers never overflow (reply drops would
/// make the measured rate depend on drop accounting, not throughput).
pub const E18_SYNC_WINDOW: usize = 512;

/// E18 (ingress tier): the TCP listener + backpressured router in front
/// of a single `ReactiveEngine`, measured end-to-end over loopback at a
/// ramp of concurrent clients.
pub fn e18_net_loopback() -> Table {
    e18_table(&e18_report(100_000))
}

/// Measure the E18 ramp at `n_events` offered per rung (100k for the
/// real table) over 1/2/4/8 clients.
pub fn e18_report(n_events: usize) -> E18Report {
    e18_report_with(n_events, &[1, 2, 4, 8])
}

/// The E18 rule program: one echo rule over a 16-label event cycle, so
/// 1 in 16 events produces a reaction and the reply path stays
/// exercised while ingress — framing, parsing, batching, admission —
/// dominates the measurement. A join-heavy program here would measure
/// the engine again (that is E14/E17's job), hiding wire regressions.
const E18_PROGRAM: &str =
    r#"RULE echo ON e0{{n[[var N]]}} DO SEND seen{n[var N]} TO "http://sink/0" END"#;

/// Measure the loopback ramp at the given client counts.
///
/// Each rung binds a fresh ephemeral-port [`reweb_net::NetServer`]
/// around a [`ReactiveEngine`] running a one-rule echo program (see
/// `E18_PROGRAM`), then has every client
/// blast its share of the `n_events` stream (`e{j%16}{n["j"]}` with
/// monotone per-client timestamps) as fast as the wire accepts,
/// flushing with `sync` every [`E18_SYNC_WINDOW`] events. The sustained
/// rate counts *processed* events over the wall time of the whole rung
/// — `busy` rejections are offered load the admission control shed, and
/// the row reports them next to the rate.
pub fn e18_report_with(n_events: usize, client_counts: &[usize]) -> E18Report {
    use reweb_net::{NetClient, NetConfig, NetServer};

    let rows: Vec<E18Row> = client_counts
        .iter()
        .map(|&clients| {
            let server = NetServer::bind(
                "127.0.0.1:0",
                ReactiveEngine::new("http://svc"),
                NetConfig::default(),
            )
            .expect("E18 server binds on loopback");
            server.with_engine(|e| e.install_source(E18_PROGRAM).expect("E18 program installs"));
            // The ramp runs with observability on: the latency columns
            // come from the same run as the rate, and the <5% enabled
            // overhead (E19 gates it) is far inside the rate floor.
            server.obs().enable();
            let addr = server.local_addr();
            let per_client = n_events / clients;
            let offered = per_client * clients;
            let (_, secs) = timed(|| {
                std::thread::scope(|s| {
                    for c in 0..clients {
                        s.spawn(move || {
                            let mut client = NetClient::connect(addr, format!("http://load/{c}"))
                                .expect("E18 client connects");
                            for j in 0..per_client {
                                let g = c * per_client + j; // globally unique payload id
                                let payload = parse_term(&format!("e{}{{n[\"{g}\"]}}", g % 16))
                                    .expect("E18 event parses");
                                client
                                    .send_event(payload, Some(Timestamp(g as u64)))
                                    .expect("E18 send");
                                if (j + 1) % E18_SYNC_WINDOW == 0 {
                                    client.sync().expect("E18 windowed sync");
                                }
                            }
                            client.sync().expect("E18 final sync");
                            let _ = client.bye();
                        });
                    }
                });
            });
            let stats = server.stats();
            assert_eq!(
                stats.msgs_enqueued + stats.busy_replies,
                offered as u64,
                "E18 accounting: every offered event is admitted or refused"
            );
            let batch = server.obs().batch.snapshot();
            E18Row {
                clients,
                offered,
                processed: stats.msgs_processed,
                kevents_per_s: stats.msgs_processed as f64 / secs / 1_000.0,
                busy_replies: stats.busy_replies,
                replies_dropped: stats.replies_dropped,
                queue_highwater: stats.queue_highwater,
                batch_p50_us: ns_to_us(batch.p50()),
                batch_p99_us: ns_to_us(batch.p99()),
            }
        })
        .collect();

    let best = rows
        .iter()
        .map(|r| r.kevents_per_s)
        .fold(f64::MIN, f64::max);
    E18Report {
        events: n_events,
        rows,
        loopback_kevents_per_s: best,
    }
}

/// Render an [`E18Report`] as the experiment table.
pub fn e18_table(r: &E18Report) -> Table {
    let mut t = Table::new(
        "E18",
        "ingress tier",
        format!(
            "TCP loopback offered-load ramp: {} events per rung, \
             sync every {} events",
            r.events, E18_SYNC_WINDOW
        ),
        vec![
            "clients",
            "offered",
            "processed",
            "kevents_per_s",
            "busy",
            "replies_dropped",
            "queue_highwater",
            "batch_p50_us",
            "batch_p99_us",
        ],
    )
    .with_note(
        "Claim: the ingress tier degrades by shedding load at admission \
         (`busy` replies), never by stalling the engine or dropping \
         flow-control replies — sustained throughput holds as offered \
         load climbs, and processed + busy always equals offered (CI \
         gates the best sustained rate absolutely as `net-loopback`).",
    );
    for row in &r.rows {
        t.row(vec![
            row.clients.to_string(),
            row.offered.to_string(),
            row.processed.to_string(),
            f(row.kevents_per_s),
            row.busy_replies.to_string(),
            row.replies_dropped.to_string(),
            row.queue_highwater.to_string(),
            format!("{:.1}", row.batch_p50_us),
            format!("{:.1}", row.batch_p99_us),
        ]);
    }
    t
}

/// The E18 delivery-under-fault measurements: the outbound delivery
/// agent pushing reactions end-to-end while the receiver crashes and
/// recovers (DESIGN.md §1g).
#[derive(Debug, Clone)]
pub struct E18DeliveryReport {
    /// Reactions offered while the receiver was up.
    pub live_events: usize,
    /// Reactions offered while the receiver was down (all of them must
    /// dead-letter — the budget is exhausted against a dead port).
    pub faulted_events: usize,
    /// Reactions delivered and acked in the live phase.
    pub delivered_live: u64,
    /// Reactions that exhausted the retry budget while the receiver was
    /// down. Must equal `faulted_events`: nothing is silently dropped.
    pub dead_lettered: u64,
    /// Dead letters re-queued (and then delivered) after recovery.
    pub redelivered: u64,
    /// Sustained live push rate in 1000 events/s: journaled outbox
    /// append + fsync, framed wire push, receiver-side ledger fsync, and
    /// ack — per reaction. The number the `net-delivery` floor gates.
    pub kevents_per_s: f64,
    /// Wall-clock milliseconds from the receiver's restart until its
    /// ingested ledger accounts for every offered reaction (restart +
    /// route update + `redeliver` + the full dead-letter drain).
    pub recovery_ms: f64,
    /// Median delivery round-trip (outbox append → ack), microseconds,
    /// over every acked push of the run.
    pub delivery_p50_us: f64,
    /// 99th-percentile delivery round-trip, microseconds.
    pub delivery_p99_us: f64,
}

/// Measure the delivery agent under a receiver kill/recover cycle.
///
/// Three phases: (1) `live_events` reactions push end-to-end while the
/// receiver is up — the sustained rate; (2) the receiver is killed and
/// `faulted_events` more are offered, every one retried to budget
/// exhaustion and dead-lettered; (3) the receiver restarts from its
/// journaled ledger, `redeliver` re-queues the dead letters under their
/// original keys, and the clock stops when the receiver's ledger
/// accounts for every reaction offered — the recovery time.
pub fn e18_delivery_report(live_events: usize, faulted_events: usize) -> E18DeliveryReport {
    use reweb_net::{BackoffPolicy, DeliveryAgent, DeliveryConfig, NetConfig, NetServer};
    use std::time::Duration;

    let dir = std::env::temp_dir().join(format!("reweb-e18-delivery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("E18 delivery scratch dir");
    let ledger = dir.join("ledger.log");
    let bind = |ledger: &std::path::Path| {
        NetServer::bind(
            "127.0.0.1:0",
            ReactiveEngine::new("http://b/"),
            NetConfig {
                delivery_journal: Some(ledger.to_path_buf()),
                ..NetConfig::default()
            },
        )
        .expect("E18 delivery receiver binds")
    };
    let receiver = bind(&ledger);
    let mut agent = DeliveryAgent::new(DeliveryConfig {
        from: "http://a/".into(),
        // Tight ladder: the bench measures the machinery, not the waits.
        backoff: BackoffPolicy {
            base_ms: 1,
            max_ms: 2,
            jitter_ms: 0,
        },
        retry_budget: 2,
        connect_timeout: Duration::from_millis(300),
        io_timeout: Duration::from_millis(1_000),
        outbox: Some(dir.join("outbox.log")),
        dead_letter: Some(dir.join("dead.log")),
    })
    .expect("E18 delivery agent");
    agent.add_route("http://b/", receiver.local_addr());
    // Round-trip quantiles come from the agent's own observability
    // handle — same run as the rate, like the E18 batch columns.
    let obs = reweb_obs::Obs::enabled();
    agent.handle().set_obs(std::sync::Arc::clone(&obs));

    let payload_at = |i: usize| {
        (
            parse_term(&format!("r{}{{n[\"{i}\"]}}", i % 16)).expect("E18 delivery payload"),
            Timestamp(i as u64),
        )
    };

    // Phase 1: receiver up — the sustained end-to-end push rate.
    let (_, secs) = timed(|| {
        for i in 0..live_events {
            let (p, at) = payload_at(i);
            assert!(agent.enqueue("http://b/push", at, &p), "route exists");
        }
        assert!(agent.flush(Duration::from_secs(300)), "E18 live flush");
    });
    let delivered_live = agent.stats().delivered;
    assert_eq!(
        delivered_live, live_events as u64,
        "E18 delivery accounting: every live reaction delivered"
    );

    // Phase 2: kill the receiver; everything offered now must exhaust
    // its budget and dead-letter — never silently drop.
    let mut down = receiver;
    down.shutdown();
    drop(down);
    for i in live_events..live_events + faulted_events {
        let (p, at) = payload_at(i);
        assert!(agent.enqueue("http://b/push", at, &p), "route exists");
    }
    assert!(agent.flush(Duration::from_secs(300)), "E18 faulted flush");
    let dead_lettered = agent.stats().dead_lettered;
    assert_eq!(
        dead_lettered, faulted_events as u64,
        "E18 delivery accounting: dead letters equal the undeliverable remainder"
    );

    // Phase 3: restart from the journaled ledger, redeliver, and stop
    // the clock when the receiver accounts for everything.
    let want = live_events + faulted_events;
    let (_, rec_secs) = timed(|| {
        let receiver = bind(&ledger);
        agent.add_route("http://b/", receiver.local_addr());
        agent.redeliver().expect("E18 redeliver");
        assert!(agent.flush(Duration::from_secs(300)), "E18 recovery flush");
        for _ in 0..10_000 {
            if receiver.delivered().len() == want {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(
            receiver.delivered().len(),
            want,
            "E18 at-least-once: the recovered ledger accounts for every reaction"
        );
    });
    let redelivered = agent.stats().redelivered;
    agent.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    let rtt = obs.delivery.snapshot();
    E18DeliveryReport {
        live_events,
        faulted_events,
        delivered_live,
        dead_lettered,
        redelivered,
        kevents_per_s: delivered_live as f64 / secs / 1_000.0,
        recovery_ms: rec_secs * 1_000.0,
        delivery_p50_us: ns_to_us(rtt.p50()),
        delivery_p99_us: ns_to_us(rtt.p99()),
    }
}

/// Render an [`E18DeliveryReport`] as the experiment table.
pub fn e18_delivery_table(r: &E18DeliveryReport) -> Table {
    let mut t = Table::new(
        "E18b",
        "outbound delivery under fault",
        format!(
            "{} reactions pushed live, {} offered into a crashed receiver, \
             then recovery + redelivery",
            r.live_events, r.faulted_events
        ),
        vec![
            "offered",
            "delivered_live",
            "dead_lettered",
            "redelivered",
            "kevents_per_s",
            "recovery_ms",
            "rtt_p50_us",
            "rtt_p99_us",
        ],
    )
    .with_note(
        "Claim: the delivery agent degrades gracefully — reactions to a \
         dead destination retry on the backoff ladder, dead-letter when \
         the budget is spent (delivered + dead-lettered always equals \
         offered; nothing is silently dropped), and `redeliver` after \
         recovery completes the receiver's ingested ledger exactly \
         (at-least-once, deduplicated by key on the receiver). CI gates \
         the live push rate absolutely as `net-delivery`; recovery_ms \
         is informational.",
    );
    t.row(vec![
        (r.live_events + r.faulted_events).to_string(),
        r.delivered_live.to_string(),
        r.dead_lettered.to_string(),
        r.redelivered.to_string(),
        f(r.kevents_per_s),
        format!("{:.1}", r.recovery_ms),
        format!("{:.1}", r.delivery_p50_us),
        format!("{:.1}", r.delivery_p99_us),
    ]);
    t
}

/// E18b (delivery agent): the outbound push loop under a receiver
/// kill/recover cycle, sized for the committed table.
pub fn e18b_delivery_under_fault() -> Table {
    e18_delivery_table(&e18_delivery_report(2_000, 200))
}

/// Machine-readable E19 result: what observability costs, measured on
/// the E14 hot-path workload (same program, same stream) in three
/// configurations.
#[derive(Clone, Debug)]
pub struct E19Report {
    /// Events per run.
    pub events: usize,
    /// The engine's own default handle, untouched — byte-for-byte the
    /// E14 loop. The same-run overhead gate divides `off` by this, so
    /// machine drift between experiments cancels exactly.
    pub baseline_kevents_per_s: f64,
    /// Handle installed but disabled — the production default. This is
    /// the rate the `obs-off` floor and the same-run <5% overhead gate
    /// protect: the disabled path must stay one relaxed atomic load.
    pub off_kevents_per_s: f64,
    /// Tracing + histograms + flight recorder on, default capacity.
    pub on_kevents_per_s: f64,
    /// Recorder saturated: a tiny ring every span wraps, so the run
    /// measures steady-state overwrite, not append into empty slots.
    pub full_kevents_per_s: f64,
    /// Spans the enabled (default-capacity) run recorded.
    pub spans_recorded: u64,
    /// The gate statistic: max over rounds of the off-rate divided by
    /// the *same round's* baseline rate (the two passes run back to
    /// back, ~seconds apart). A genuine probe-site tax slows `off` in
    /// every round, so the max still catches it; transient noise in a
    /// single round does not fail the build.
    pub off_vs_baseline: f64,
}

/// Measure the E19 overhead quartet at `n_events` (100k for the real
/// table). One discarded warmup pass, then best-of-5 per configuration
/// with the rounds interleaved — every round measures baseline, off,
/// on, and full back to back, so slow machine drift (thermal
/// throttling, noisy neighbors between the first and last experiment
/// of a CI run) hits all four equally and the overhead ratios stay
/// honest.
pub fn e19_report(n_events: usize) -> E19Report {
    use std::sync::Arc;

    const LABELS: usize = 128;
    let program = crate::sharded_rules(LABELS);
    let meta = MessageMeta::from_uri("http://client");
    let msgs: Vec<(Timestamp, Term)> = crate::paired_stream(LABELS, n_events, 17);

    // One timed pass; `None` leaves the engine's default disabled
    // handle in place — exactly the E14 loop.
    let run_once = |obs: Option<&Arc<reweb_obs::Obs>>| -> f64 {
        let mut engine = ReactiveEngine::new("http://svc");
        engine.install_program(&program).expect("program");
        if let Some(o) = obs {
            engine.set_obs(Arc::clone(o));
        }
        let (_, secs) = timed(|| {
            for (at, payload) in &msgs {
                engine.receive(payload.clone(), &meta, *at);
            }
        });
        n_events as f64 / secs / 1_000.0
    };

    // A discarded warmup pass: the first timed loop of a fresh process
    // pays lazy page mapping for the stream and cold caches, and it
    // must not be charged to whichever configuration happens to run
    // first (the baseline, which the overhead gate divides by).
    run_once(None);

    const REPEATS: usize = 5;
    let mut best = [f64::MIN; 4];
    let mut off_vs_baseline = f64::MIN;
    let mut spans_recorded = 0;
    for _ in 0..REPEATS {
        let off = Arc::new(reweb_obs::Obs::new());
        let on = reweb_obs::Obs::enabled();
        let full = {
            let o = reweb_obs::Obs::with_capacity(64);
            o.enable();
            Arc::new(o)
        };
        let mut round = [0.0f64; 4];
        for (slot, obs) in [None, Some(&off), Some(&on), Some(&full)]
            .into_iter()
            .enumerate()
        {
            round[slot] = run_once(obs);
            best[slot] = best[slot].max(round[slot]);
        }
        // The gate statistic pairs each off pass with the baseline
        // pass seconds before it, so round-level machine noise hits
        // both sides; a real disabled-path tax depresses every round.
        off_vs_baseline = off_vs_baseline.max(round[1] / round[0]);
        spans_recorded = on.recorder().recorded();
    }
    let [baseline, off, on, full] = best;
    E19Report {
        events: n_events,
        baseline_kevents_per_s: baseline,
        off_kevents_per_s: off,
        on_kevents_per_s: on,
        full_kevents_per_s: full,
        spans_recorded,
        off_vs_baseline,
    }
}

/// Render an [`E19Report`] as the experiment table.
pub fn e19_table(r: &E19Report) -> Table {
    let mut t = Table::new(
        "E19",
        "observability overhead",
        format!(
            "E14 hot-path workload, {} events, obs baseline / off / on / recorder-full",
            r.events
        ),
        vec!["mode", "kevents_per_s", "vs_baseline", "spans"],
    )
    .with_note(
        "Claim: observability is paid for only when it is on. The \
         disabled path is one relaxed atomic load per probe site — CI \
         gates it at >=0.95x the uninstrumented baseline, comparing \
         off and baseline passes from the same interleaved round and \
         taking the best round (machine drift and transient noise \
         cancel; a real probe tax depresses every round) — plus the \
         absolute `obs-off` floor. Even the enabled path (trace-id \
         allocation, span writes into the lock-free ring, histogram \
         increments) stays within a small constant, including when \
         the ring wraps every span.",
    );
    let vs = |x: f64| format!("{:.2}x", x / r.baseline_kevents_per_s);
    t.row(vec![
        "baseline".into(),
        f(r.baseline_kevents_per_s),
        "1.00x".into(),
        "-".into(),
    ]);
    t.row(vec![
        "off".into(),
        f(r.off_kevents_per_s),
        vs(r.off_kevents_per_s),
        "0".into(),
    ]);
    t.row(vec![
        "on".into(),
        f(r.on_kevents_per_s),
        vs(r.on_kevents_per_s),
        r.spans_recorded.to_string(),
    ]);
    t.row(vec![
        "full".into(),
        f(r.full_kevents_per_s),
        vs(r.full_kevents_per_s),
        "-".into(),
    ]);
    t
}

/// E19 (observability): the overhead quartet, sized for the committed
/// table.
pub fn e19_observability_overhead() -> Table {
    e19_table(&e19_report(100_000))
}

/// Serialize the E13 + E14 + E15 + E16 + E17 + E18 + E19 reports as the
/// `--bench-json` payload (schema `reweb-bench/v8` — v7 plus `p50_us`/
/// `p99_us` latency fields on the `net-ramp` and `net-delivery` rows
/// and the E19 `obs-baseline`/`obs-off`/`obs-on`/`obs-full` overhead
/// rows).
/// Flat rows, one small object per measurement, so the floor check (and
/// any CI tooling) can read it without a JSON library. The E14
/// measurement is the `hotpath` row, E15's throughput the `durable` row,
/// E15's recovery timings the `recovery-*` rows (informational: the
/// artifact carries them, the floor does not gate them), E16's
/// compiled sweep the `rules-*` rows (the `rules-100k` row is the
/// absolute floor; the others feed the flatness ratio), E17's
/// composite-join sweep the `composite-*` rows (`composite-10k` is the
/// absolute floor) plus the `join-indexed`/`join-scan` occupancy pairs
/// (informational: the ≥2x gate recomputes from the same run), and
/// E18's loopback ramp the `net-loopback` row (absolute floor on the
/// best sustained rate) plus per-rung `net-ramp` rows (informational;
/// `shards` carries the client count), and E18b's delivery-under-fault
/// run the `net-delivery` row (absolute floor on the live push rate;
/// `dead_lettered`, `redelivered`, `recovery_ms`, and the round-trip
/// quantiles ride along informationally). E19's overhead quartet lands
/// as the `obs-off` row (absolute floor; additionally gated same-run
/// against the interleaved `obs-baseline` row) plus informational
/// `obs-baseline`/`obs-on`/`obs-full` rows.
#[allow(clippy::too_many_arguments)] // same rationale as `check_floor`
pub fn bench_json(
    r: &E13Report,
    e14: &E14Report,
    e15: &E15Report,
    e16: &E16Report,
    e17: &E17Report,
    e18: &E18Report,
    e18b: &E18DeliveryReport,
    e19: &E19Report,
) -> String {
    let mut rows = vec![format!(
        "    {{\"engine\": \"single\", \"shards\": 1, \"kevents_per_s\": {:.3}}}",
        r.single_kevents_per_s
    )];
    rows.push(format!(
        "    {{\"engine\": \"hotpath\", \"shards\": 1, \"kevents_per_s\": {:.3}}}",
        e14.kevents_per_s
    ));
    rows.push(format!(
        "    {{\"engine\": \"durable\", \"shards\": 1, \"kevents_per_s\": {:.3}}}",
        e15.durable_kevents_per_s
    ));
    for rec in &e15.recoveries {
        rows.push(format!(
            "    {{\"engine\": \"recovery-{}\", \"shards\": 1, \"kevents_per_s\": {:.3}, \
             \"events\": {}, \"millis\": {:.1}}}",
            rec.mode, rec.kevents_per_s, rec.events, rec.millis
        ));
    }
    for row in &e16.rows {
        rows.push(format!(
            "    {{\"engine\": \"{}\", \"shards\": 1, \"kevents_per_s\": {:.3}, \
             \"rules\": {}, \"alpha_tests_per_event\": {:.2}}}",
            e16_engine_id(row.rules),
            row.kevents_per_s,
            row.rules,
            row.alpha_tests_per_event
        ));
    }
    for row in &e17.rules_axis {
        rows.push(format!(
            "    {{\"engine\": \"{}\", \"shards\": 1, \"kevents_per_s\": {:.3}, \
             \"rules\": {}, \"probes_per_event\": {:.2}}}",
            e17_engine_id(row.rules),
            row.kevents_per_s,
            row.rules,
            row.probes_per_event
        ));
    }
    for (ix, sc) in &e17.occupancy {
        for row in [ix, sc] {
            rows.push(format!(
                "    {{\"engine\": \"join-{}\", \"shards\": 1, \"kevents_per_s\": {:.3}, \
                 \"events\": {}, \"attempts_per_event\": {:.2}}}",
                row.mode, row.kevents_per_s, row.events, row.attempts_per_event
            ));
        }
    }
    rows.push(format!(
        "    {{\"engine\": \"net-loopback\", \"shards\": 1, \"kevents_per_s\": {:.3}}}",
        e18.loopback_kevents_per_s
    ));
    for row in &e18.rows {
        rows.push(format!(
            "    {{\"engine\": \"net-ramp\", \"shards\": {}, \"kevents_per_s\": {:.3}, \
             \"busy\": {}, \"queue_highwater\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}}}",
            row.clients,
            row.kevents_per_s,
            row.busy_replies,
            row.queue_highwater,
            row.batch_p50_us,
            row.batch_p99_us
        ));
    }
    rows.push(format!(
        "    {{\"engine\": \"net-delivery\", \"shards\": 1, \"kevents_per_s\": {:.3}, \
         \"dead_lettered\": {}, \"redelivered\": {}, \"recovery_ms\": {:.1}, \
         \"p50_us\": {:.1}, \"p99_us\": {:.1}}}",
        e18b.kevents_per_s,
        e18b.dead_lettered,
        e18b.redelivered,
        e18b.recovery_ms,
        e18b.delivery_p50_us,
        e18b.delivery_p99_us
    ));
    rows.push(format!(
        "    {{\"engine\": \"obs-baseline\", \"shards\": 1, \"kevents_per_s\": {:.3}}}",
        e19.baseline_kevents_per_s
    ));
    rows.push(format!(
        "    {{\"engine\": \"obs-off\", \"shards\": 1, \"kevents_per_s\": {:.3}, \
         \"vs_baseline\": {:.4}}}",
        e19.off_kevents_per_s, e19.off_vs_baseline
    ));
    rows.push(format!(
        "    {{\"engine\": \"obs-on\", \"shards\": 1, \"kevents_per_s\": {:.3}, \
         \"spans\": {}}}",
        e19.on_kevents_per_s, e19.spans_recorded
    ));
    rows.push(format!(
        "    {{\"engine\": \"obs-full\", \"shards\": 1, \"kevents_per_s\": {:.3}}}",
        e19.full_kevents_per_s
    ));
    for row in &r.rows {
        rows.push(format!(
            "    {{\"engine\": \"sharded\", \"shards\": {}, \"kevents_per_s\": {:.3}}}",
            row.shards, row.serial_kevents_per_s
        ));
        rows.push(format!(
            "    {{\"engine\": \"sharded-mt\", \"shards\": {}, \"kevents_per_s\": {:.3}}}",
            row.shards, row.parallel_kevents_per_s
        ));
    }
    format!(
        "{{\n  \"schema\": \"reweb-bench/v8\",\n  \"events\": {},\n  \"labels\": {},\n  \
         \"reactions\": {},\n  \"rows\": [\n{}\n  ]\n}}\n",
        r.events,
        r.labels,
        r.reactions_single,
        rows.join(",\n")
    )
}

/// Parse the `(engine, shards, kevents_per_s)` rows back out of a
/// [`bench_json`] payload. A minimal scanner for our own fixed schema —
/// the build environment has no JSON dependency to lean on. Unknown or
/// malformed row objects are skipped rather than failing the parse.
pub fn e13_parse_rows(json: &str) -> Vec<(String, usize, f64)> {
    fn field<'a>(chunk: &'a str, key: &str) -> Option<&'a str> {
        let start = chunk.find(key)? + key.len();
        let rest = chunk[start..].trim_start_matches([' ', ':', '"']);
        let end = rest.find(['"', ',', '}', '\n']).unwrap_or(rest.len());
        Some(rest[..end].trim())
    }
    json.split('{')
        .filter(|chunk| chunk.contains("\"engine\""))
        .filter_map(|chunk| {
            let engine = field(chunk, "\"engine\"")?.to_string();
            let shards: usize = field(chunk, "\"shards\"")?.parse().ok()?;
            let rate: f64 = field(chunk, "\"kevents_per_s\"")?.parse().ok()?;
            Some((engine, shards, rate))
        })
        .collect()
}

/// The CI performance floor: compare a fresh [`E13Report`] against a
/// committed baseline JSON, failing when thread-executor throughput
/// regresses more than `tolerance` (e.g. 0.25 = 25%).
///
/// Raw events/s numbers are useless across machines (a laptop baseline
/// vs a CI runner differs far more than any real regression), so the
/// check normalizes: each parallel rate is divided by the **same run's**
/// single-engine rate, and that speedup is compared to the baseline's
/// speedup. Machine speed cancels out; only the engine's scaling
/// behaviour is gated. Returns a human-readable summary table on
/// success, or a description of every violated floor.
/// Additionally, when the baseline carries a `hotpath` row (E14), a
/// `durable` row (E15), or a `net-loopback` row (E18), the current
/// single-engine hot-path rate, the durable-mode ingestion rate, and
/// the best sustained loopback ingress rate must not fall more than
/// `tolerance` below them. These comparisons are *absolute* — there is no faster reference
/// rate on the same machine to normalize by — so the committed baselines
/// are rounded far below the measured rates (see `bench/baseline.json`'s
/// note) and only genuine collapses trip them; for `durable` that is
/// specifically the fsync-batching regression class (e.g. an accidental
/// fsync-per-message would cut the rate by an order of magnitude).
// One argument per gated experiment report: the arity grows with the
// experiment roster by design, and a params struct would only move the
// same six names behind a constructor at every call site.
#[allow(clippy::too_many_arguments)]
pub fn check_floor(
    current: &E13Report,
    current_e14: &E14Report,
    current_e15: &E15Report,
    current_e16: &E16Report,
    current_e17: &E17Report,
    current_e18: &E18Report,
    current_e18b: &E18DeliveryReport,
    current_e19: &E19Report,
    baseline_json: &str,
    tolerance: f64,
) -> Result<String, String> {
    let baseline = e13_parse_rows(baseline_json);
    let base_single = baseline
        .iter()
        .find(|(e, _, _)| e == "single")
        .map(|&(_, _, r)| r)
        .ok_or("baseline JSON has no `single` row")?;
    if base_single <= 0.0 {
        return Err("baseline `single` rate is not positive".into());
    }

    let mut summary = String::from(
        "| shards | serial ke/s | parallel ke/s | par/serial | speedup vs single | \
         baseline speedup | floor |\n|---|---|---|---|---|---|---|\n",
    );
    let mut failures = Vec::new();
    let mut compared = 0;
    for row in &current.rows {
        let Some(&(_, _, base_mt)) = baseline
            .iter()
            .find(|(e, s, _)| e == "sharded-mt" && *s == row.shards)
        else {
            continue; // baseline predates this configuration
        };
        compared += 1;
        let base_speedup = base_mt / base_single;
        let cur_speedup = row.parallel_kevents_per_s / current.single_kevents_per_s;
        let floor = base_speedup * (1.0 - tolerance);
        summary.push_str(&format!(
            "| {} | {:.1} | {:.1} | {:.2}x | {:.2}x | {:.2}x | {:.2}x |\n",
            row.shards,
            row.serial_kevents_per_s,
            row.parallel_kevents_per_s,
            row.parallel_kevents_per_s / row.serial_kevents_per_s,
            cur_speedup,
            base_speedup,
            floor,
        ));
        if cur_speedup < floor {
            failures.push(format!(
                "{} shards: parallel speedup {cur_speedup:.2}x vs single fell below \
                 the floor {floor:.2}x (baseline {base_speedup:.2}x - {:.0}% tolerance)",
                row.shards,
                tolerance * 100.0
            ));
        }
    }
    if compared == 0 {
        // A baseline whose sharded-mt rows were lost (truncation, a
        // schema typo — the row scanner skips what it cannot parse)
        // must not silently disable the gate.
        return Err(
            "baseline JSON contains no `sharded-mt` row matching any measured \
             shard count; the floor compared nothing — regenerate bench/baseline.json"
                .into(),
        );
    }
    // E14: absolute single-engine hot-path floor (baselines that predate
    // the hotpath row skip it).
    if let Some(&(_, _, base_hot)) = baseline.iter().find(|(e, _, _)| e == "hotpath") {
        let floor = base_hot * (1.0 - tolerance);
        summary.push_str(&format!(
            "\nE14 hot path: {:.1} ke/s (committed floor baseline {base_hot:.1}, \
             gate {floor:.1})\n",
            current_e14.kevents_per_s
        ));
        if current_e14.kevents_per_s < floor {
            failures.push(format!(
                "E14 single-engine hot path {:.1} ke/s fell below the floor {floor:.1} \
                 (baseline {base_hot:.1} - {:.0}% tolerance)",
                current_e14.kevents_per_s,
                tolerance * 100.0
            ));
        }
    }
    // E15: absolute durable-ingestion floor (baselines that predate the
    // durable row skip it).
    if let Some(&(_, _, base_durable)) = baseline.iter().find(|(e, _, _)| e == "durable") {
        let floor = base_durable * (1.0 - tolerance);
        summary.push_str(&format!(
            "E15 durable ingestion: {:.1} ke/s (committed floor baseline {base_durable:.1}, \
             gate {floor:.1})\n",
            current_e15.durable_kevents_per_s
        ));
        if current_e15.durable_kevents_per_s < floor {
            failures.push(format!(
                "E15 durable ingestion {:.1} ke/s fell below the floor {floor:.1} \
                 (baseline {base_durable:.1} - {:.0}% tolerance) — check the fsync \
                 batching: one fsync per batch, never per message",
                current_e15.durable_kevents_per_s,
                tolerance * 100.0
            ));
        }
    }
    // E16, gate 1: absolute 100k-rule throughput (baselines that predate
    // the rules sweep skip it; conservatively rounded like E14/E15).
    if let Some(&(_, _, base_100k)) = baseline.iter().find(|(e, _, _)| e == "rules-100k") {
        if let Some(cur) = current_e16.rows.iter().find(|r| r.rules == 100_000) {
            let floor = base_100k * (1.0 - tolerance);
            summary.push_str(&format!(
                "E16 100k-rule dispatch: {:.1} ke/s (committed floor baseline \
                 {base_100k:.1}, gate {floor:.1})\n",
                cur.kevents_per_s
            ));
            if cur.kevents_per_s < floor {
                failures.push(format!(
                    "E16 100k-rule dispatch {:.1} ke/s fell below the floor {floor:.1} \
                     (baseline {base_100k:.1} - {:.0}% tolerance) — the shared network \
                     must keep per-event cost independent of the rule count",
                    cur.kevents_per_s,
                    tolerance * 100.0
                ));
            }
        }
    }
    // E16, gate 2: same-run flatness. 100k-rule throughput must stay at
    // ≥0.3x the 100-rule throughput — both rates come from the same run,
    // so machine speed cancels and no baseline is needed. A fixed ratio
    // (not `tolerance`): it gates the *shape* of the scaling curve,
    // which is the tentpole claim itself. The slack (0.3x, not 1.0x)
    // absorbs cache pressure from the 300k-node network and the 100k
    // distinct attribute values, which cost real memory traffic even
    // though alpha tests per event stay constant.
    const FLATNESS_FLOOR: f64 = 0.3;
    let small = current_e16.rows.iter().find(|r| r.rules == 100);
    let large = current_e16.rows.iter().find(|r| r.rules == 100_000);
    if let (Some(small), Some(large)) = (small, large) {
        let ratio = large.kevents_per_s / small.kevents_per_s;
        summary.push_str(&format!(
            "E16 flatness: {:.1} ke/s at 100 rules vs {:.1} ke/s at 100k rules \
             (ratio {ratio:.2}, floor {FLATNESS_FLOOR:.2})\n",
            small.kevents_per_s, large.kevents_per_s
        ));
        if ratio < FLATNESS_FLOOR {
            failures.push(format!(
                "E16 dispatch is not flat in the rule count: 100k rules ran at \
                 {ratio:.2}x the 100-rule rate (floor {FLATNESS_FLOOR:.2}x)"
            ));
        }
    }
    // E17, gate 1: absolute 10k-composite-rule throughput (baselines
    // that predate the beta network skip it; conservatively rounded like
    // E14/E15/E16).
    if let Some(&(_, _, base_10k)) = baseline.iter().find(|(e, _, _)| e == "composite-10k") {
        if let Some(cur) = current_e17.rules_axis.iter().find(|r| r.rules == 10_000) {
            let floor = base_10k * (1.0 - tolerance);
            summary.push_str(&format!(
                "E17 10k-composite dispatch: {:.1} ke/s (committed floor baseline \
                 {base_10k:.1}, gate {floor:.1})\n",
                cur.kevents_per_s
            ));
            if cur.kevents_per_s < floor {
                failures.push(format!(
                    "E17 10k-composite-rule dispatch {:.1} ke/s fell below the floor \
                     {floor:.1} (baseline {base_10k:.1} - {:.0}% tolerance) — windowed \
                     join state must be probed by key, not enumerated",
                    cur.kevents_per_s,
                    tolerance * 100.0
                ));
            }
        }
    }
    // E17, gate 2: same-run occupancy advantage. On the largest
    // occupancy workload (wide windows, every partial match retained)
    // indexed joins must run at ≥2x the scan join — both rates from the
    // same run, so machine speed cancels and no baseline is needed. A
    // fixed ratio, like the E16 flatness gate: it pins the *shape* claim
    // (flat vs linear in occupancy), and the measured gap is many times
    // wider than 2x, so only a genuine index bypass trips it.
    const E17_SPEEDUP_FLOOR: f64 = 2.0;
    if let Some((ix, sc)) = current_e17.occupancy.last() {
        let speedup = ix.kevents_per_s / sc.kevents_per_s;
        summary.push_str(&format!(
            "E17 occupancy ({} events, 64 rules): indexed {:.1} ke/s \
             ({:.2} attempts/event) vs scan {:.1} ke/s ({:.2} attempts/event), \
             speedup {speedup:.2}x (floor {E17_SPEEDUP_FLOOR:.2}x)\n",
            ix.events,
            ix.kevents_per_s,
            ix.attempts_per_event,
            sc.kevents_per_s,
            sc.attempts_per_event
        ));
        if speedup < E17_SPEEDUP_FLOOR {
            failures.push(format!(
                "E17 indexed join ran at only {speedup:.2}x the scan join on the \
                 largest occupancy workload (floor {E17_SPEEDUP_FLOOR:.2}x)"
            ));
        }
    }
    // E18: absolute loopback ingress floor (baselines that predate the
    // net tier skip it; conservatively rounded like E14/E15). Gates the
    // *best* sustained rate across the ramp: a per-event syscall storm,
    // broken batch formation, or driver-side lock contention collapses
    // every rung, while scheduler noise on one client count does not.
    if let Some(&(_, _, base_net)) = baseline.iter().find(|(e, _, _)| e == "net-loopback") {
        let floor = base_net * (1.0 - tolerance);
        summary.push_str(&format!(
            "E18 loopback ingress: {:.1} ke/s best sustained (committed floor \
             baseline {base_net:.1}, gate {floor:.1})\n",
            current_e18.loopback_kevents_per_s
        ));
        if current_e18.loopback_kevents_per_s < floor {
            failures.push(format!(
                "E18 loopback ingress {:.1} ke/s fell below the floor {floor:.1} \
                 (baseline {base_net:.1} - {:.0}% tolerance) — check batch \
                 formation and the reply lanes: the driver must run batches, \
                 not events, and must never block on a slow reader",
                current_e18.loopback_kevents_per_s,
                tolerance * 100.0
            ));
        }
    }
    // E18b: absolute outbound-delivery floor (baselines that predate the
    // delivery agent skip it; conservatively rounded like E14/E15). The
    // live push rate is fsync-bound twice per reaction (sender outbox
    // append, receiver ledger record), so the gate catches the same
    // regression class as E15: an extra fsync, a lost write batch, or a
    // per-delivery reconnect collapses it by an order of magnitude.
    // recovery_ms rides along informationally — wall-clock recovery time
    // is too host-dependent to gate.
    if let Some(&(_, _, base_dlv)) = baseline.iter().find(|(e, _, _)| e == "net-delivery") {
        let floor = base_dlv * (1.0 - tolerance);
        summary.push_str(&format!(
            "E18b outbound delivery: {:.1} ke/s live push (committed floor \
             baseline {base_dlv:.1}, gate {floor:.1}); {} dead-lettered, \
             {} redelivered, recovery {:.1} ms\n",
            current_e18b.kevents_per_s,
            current_e18b.dead_lettered,
            current_e18b.redelivered,
            current_e18b.recovery_ms
        ));
        if current_e18b.kevents_per_s < floor {
            failures.push(format!(
                "E18b outbound delivery {:.1} ke/s fell below the floor {floor:.1} \
                 (baseline {base_dlv:.1} - {:.0}% tolerance) — check the per-destination \
                 worker: one persistent connection per destination, outbox appends \
                 batched ahead of the dial, never a reconnect per reaction",
                current_e18b.kevents_per_s,
                tolerance * 100.0
            ));
        }
    }
    // E19, gate 1: absolute obs-disabled floor (baselines that predate
    // the observability layer skip it; conservatively rounded like the
    // other absolute gates).
    if let Some(&(_, _, base_off)) = baseline.iter().find(|(e, _, _)| e == "obs-off") {
        let floor = base_off * (1.0 - tolerance);
        summary.push_str(&format!(
            "E19 obs-disabled hot path: {:.1} ke/s (committed floor baseline \
             {base_off:.1}, gate {floor:.1})\n",
            current_e19.off_kevents_per_s
        ));
        if current_e19.off_kevents_per_s < floor {
            failures.push(format!(
                "E19 obs-disabled hot path {:.1} ke/s fell below the floor {floor:.1} \
                 (baseline {base_off:.1} - {:.0}% tolerance)",
                current_e19.off_kevents_per_s,
                tolerance * 100.0
            ));
        }
    }
    // E19, gate 2: same-run disabled-path overhead. The obs-off run is
    // the E14 workload with the (disabled) handle's probe sites live;
    // e19_report measures an uninstrumented baseline interleaved with
    // it and pairs each off pass with the baseline pass of the same
    // round (seconds apart), taking the best round — machine drift and
    // transient noise cancel, leaving exactly the probes' cost, which a
    // real regression imposes on every round. A fixed 5% budget, not
    // `tolerance`: "zero-cost when disabled" is the tentpole claim —
    // one relaxed atomic load per site must disappear in the noise.
    const OBS_OFF_FLOOR: f64 = 0.95;
    {
        let ratio = current_e19.off_vs_baseline;
        summary.push_str(&format!(
            "E19 disabled-path overhead: {:.1} ke/s obs-off vs {:.1} ke/s interleaved \
             baseline (best same-round ratio {ratio:.3}, floor {OBS_OFF_FLOOR:.2}); \
             enabled {:.1} ke/s, recorder-full {:.1} ke/s\n",
            current_e19.off_kevents_per_s,
            current_e19.baseline_kevents_per_s,
            current_e19.on_kevents_per_s,
            current_e19.full_kevents_per_s
        ));
        if ratio < OBS_OFF_FLOOR {
            failures.push(format!(
                "E19 disabled observability cost the hot path {:.1}% in every \
                 measured round (best same-round ratio {ratio:.3} vs the interleaved \
                 uninstrumented baseline, floor {OBS_OFF_FLOOR:.2}) — the disabled \
                 path must stay one relaxed atomic load per probe site, with no \
                 allocation, clock read, or span construction behind it",
                (1.0 - ratio) * 100.0
            ));
        }
    }
    if failures.is_empty() {
        Ok(summary)
    } else {
        Err(format!(
            "{summary}\nPERF FLOOR VIOLATED:\n{}",
            failures.join("\n")
        ))
    }
}

/// Run all experiments (E1–E19 plus the E18b delivery-under-fault run).
pub fn all() -> Vec<Table> {
    vec![
        e1_eca_vs_production(),
        e2_local_vs_central(),
        e3_push_vs_poll(),
        e4_volatility(),
        e5_event_dimensions(),
        e6_incremental_vs_naive(),
        e7_condition_queries(),
        e8_compound_actions(),
        e9_structuring(),
        e10_identity(),
        e11_trust_negotiation(),
        e12_aaa_overhead(),
        e13_sharded_throughput(),
        e14_hot_path(),
        e15_durability(),
        e16_rules_scaling(),
        e17_indexed_joins(),
        e18_net_loopback(),
        e18b_delivery_under_fault(),
        e19_observability_overhead(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    // Shape assertions: each experiment's table must support its thesis.
    // (Smaller workloads would be nicer, but these run in a few seconds.)

    #[test]
    fn e18_shapes() {
        // Small offered load, two rungs: the ramp must account for every
        // event (enforced inside the report), process the overwhelming
        // majority of them, and never drop a reply under windowed syncs.
        let r = e18_report_with(4_000, &[1, 2]);
        assert_eq!(r.rows.len(), 2);
        for row in &r.rows {
            assert_eq!(
                row.processed + row.busy_replies,
                row.offered as u64,
                "shed load is explicit, never silent"
            );
            assert_eq!(row.replies_dropped, 0, "windowed syncs keep readers fast");
            assert!(row.kevents_per_s > 0.0);
            // The ramp runs with observability on, so the latency
            // columns are populated and ordered.
            assert!(
                row.batch_p50_us > 0.0 && row.batch_p50_us <= row.batch_p99_us,
                "batch quantiles: p50 {} p99 {}",
                row.batch_p50_us,
                row.batch_p99_us
            );
        }
        assert!(r.loopback_kevents_per_s >= r.rows[0].kevents_per_s);
    }

    #[test]
    fn e19_shapes() {
        let r = e19_report(2_000);
        assert!(r.baseline_kevents_per_s > 0.0);
        assert!(r.off_kevents_per_s > 0.0);
        assert!(r.on_kevents_per_s > 0.0);
        assert!(r.full_kevents_per_s > 0.0);
        assert!(r.off_vs_baseline > 0.0);
        // The enabled run traced every event: at least an admission span
        // per event made it into the recorder total.
        assert!(
            r.spans_recorded >= r.events as u64,
            "enabled run recorded {} spans over {} events",
            r.spans_recorded,
            r.events
        );
        let t = e19_table(&r);
        assert_eq!(t.rows.len(), 4);
    }

    #[test]
    fn e4_shapes() {
        let t = e4_volatility();
        let unbounded: usize = t.rows[0][1].parse().unwrap();
        let windowed: usize = t.rows[1][1].parse().unwrap();
        let ttl: usize = t.rows[2][1].parse().unwrap();
        assert!(unbounded >= 19_000, "no-GC state grows with the stream");
        assert!(windowed < 100, "windowed state stays bounded");
        assert!(ttl < 100, "TTL state stays bounded");
    }

    #[test]
    fn e11_shapes() {
        let t = e11_trust_negotiation();
        // Reactive discloses a constant number of policies regardless of n.
        let reactive_rows: Vec<_> = t.rows.iter().filter(|r| r[0] == "Reactive").collect();
        assert!(reactive_rows.iter().all(|r| r[3] == "2"));
        // Eager disclosure grows with n and leaks more sensitive policies.
        let eager_last = t.rows.last().unwrap();
        assert_eq!(eager_last[0], "Eager");
        let eager_sent: usize = eager_last[3].parse().unwrap();
        assert!(eager_sent > 60);
        let leaked: usize = eager_last[4].parse().unwrap();
        assert!(leaked > 10);
    }

    #[test]
    fn e10_shapes() {
        let t = e10_identity();
        // surrogate row: all edits attributed as modifications
        assert_eq!(t.rows[0][1], "200");
        assert_eq!(t.rows[0][3], "200");
        assert_eq!(t.rows[0][2], "0");
        // extensional row: zero modifications, 400 delete+insert halves
        assert_eq!(t.rows[1][1], "0");
        assert_eq!(t.rows[1][2], "400");
    }

    #[test]
    fn e13_shapes() {
        let r = e13_report(8_000);
        // Identical reactions at every shard count and in both executors
        // (the equivalence the property test pins, re-checked on the
        // experiment workload).
        assert_eq!(r.reactions_single, 4_000, "one reaction per evt/ack pair");
        for row in &r.rows {
            assert_eq!(row.reactions_serial, 4_000, "serial at {}", row.shards);
            assert_eq!(row.reactions_parallel, 4_000, "parallel at {}", row.shards);
        }
        // Round-robin group assignment keeps occupancy balanced: at 4
        // shards the hottest shard carries ~1/4 of the traffic.
        let four = r.rows.iter().find(|row| row.shards == 4).unwrap();
        assert!(
            four.hottest_share < 0.3,
            "hottest shard overloaded: {}",
            four.hottest_share
        );
        // The table renders one single row plus serial+parallel pairs.
        let t = e13_table(&r);
        assert_eq!(t.rows.len(), 1 + 2 * r.rows.len());
    }

    fn e14(rate: f64) -> E14Report {
        E14Report {
            events: 1000,
            labels: 128,
            kevents_per_s: rate,
            reactions: 500,
            symbols: 300,
        }
    }

    fn e15(rate: f64) -> E15Report {
        E15Report {
            events: 1000,
            labels: 128,
            batch: 256,
            durable_kevents_per_s: rate,
            reactions: 500,
            wal_bytes: 123_456,
            recoveries: vec![E15Recovery {
                mode: "cold",
                events: 1000,
                wal_bytes: 123_456,
                millis: 12.0,
                kevents_per_s: 83.0,
            }],
        }
    }

    fn e16_row(rules: usize, rate: f64) -> E16Row {
        E16Row {
            rules,
            install_ms: 5.0,
            kevents_per_s: rate,
            reactions: 1000,
            alpha_tests_per_event: 3.0,
            network_nodes: rules + 2,
        }
    }

    fn e16(rate_100: f64, rate_100k: f64) -> E16Report {
        E16Report {
            events: 1000,
            rows: vec![e16_row(100, rate_100), e16_row(100_000, rate_100k)],
            interpreted: vec![e16_row(100, rate_100 * 0.8)],
            interpreted_events: 100,
        }
    }

    fn e17_row(rules: usize, events: usize, mode: &'static str, rate: f64) -> E17Row {
        E17Row {
            rules,
            events,
            mode,
            install_ms: 5.0,
            kevents_per_s: rate,
            answers: (events / 2) as u64,
            probes_per_event: if mode == "indexed" { 1.0 } else { 0.0 },
            attempts_per_event: if mode == "indexed" { 1.5 } else { 40.0 },
            state_size: events,
        }
    }

    fn e18(rate: f64) -> E18Report {
        E18Report {
            events: 1000,
            rows: vec![E18Row {
                clients: 1,
                offered: 1000,
                processed: 1000,
                kevents_per_s: rate,
                busy_replies: 0,
                replies_dropped: 0,
                queue_highwater: 10,
                batch_p50_us: 2.0,
                batch_p99_us: 8.0,
            }],
            loopback_kevents_per_s: rate,
        }
    }

    fn e18b(rate: f64) -> E18DeliveryReport {
        E18DeliveryReport {
            live_events: 1000,
            faulted_events: 100,
            delivered_live: 1000,
            dead_lettered: 100,
            redelivered: 100,
            kevents_per_s: rate,
            recovery_ms: 12.0,
            delivery_p50_us: 900.0,
            delivery_p99_us: 4000.0,
        }
    }

    /// `off` drives both E19 gates: the absolute `obs-off` floor and
    /// the same-run ratio against the report's own interleaved
    /// `baseline`; `on`/`full` are informational.
    fn e19_vs(baseline: f64, off: f64) -> E19Report {
        E19Report {
            events: 1000,
            baseline_kevents_per_s: baseline,
            off_kevents_per_s: off,
            on_kevents_per_s: off - 1.0,
            full_kevents_per_s: off - 2.0,
            spans_recorded: 1234,
            off_vs_baseline: off / baseline,
        }
    }

    /// An overhead-free E19 report (ratio exactly 1.0).
    fn e19(off: f64) -> E19Report {
        e19_vs(off, off)
    }

    /// `rate_10k` drives the absolute composite floor; `ix`/`sc` the
    /// same-run occupancy speedup gate.
    fn e17(rate_10k: f64, ix: f64, sc: f64) -> E17Report {
        E17Report {
            events: 1000,
            rules_axis: vec![
                e17_row(100, 1000, "indexed", 95.0),
                e17_row(10_000, 1000, "indexed", rate_10k),
            ],
            scan_contrast: vec![e17_row(100, 100, "scan", 30.0)],
            contrast_events: 100,
            occupancy: vec![(
                e17_row(64, 4000, "indexed", ix),
                e17_row(64, 4000, "scan", sc),
            )],
        }
    }

    #[test]
    fn bench_json_round_trips_through_the_scanner() {
        let r = E13Report {
            events: 1000,
            labels: 128,
            single_kevents_per_s: 50.0,
            reactions_single: 500,
            rows: vec![E13Row {
                shards: 8,
                serial_kevents_per_s: 100.0,
                parallel_kevents_per_s: 200.0,
                reactions_serial: 500,
                reactions_parallel: 500,
                hottest_share: 0.125,
            }],
        };
        let json = bench_json(
            &r,
            &e14(60.0),
            &e15(42.0),
            &e16(90.0, 75.0),
            &e17(70.0, 100.0, 20.0),
            &e18(55.0),
            &e18b(44.0),
            &e19(80.0),
        );
        assert!(json.contains("reweb-bench/v8"), "schema bumped for E19");
        let rows = e13_parse_rows(&json);
        assert_eq!(
            rows,
            vec![
                ("single".to_string(), 1, 50.0),
                ("hotpath".to_string(), 1, 60.0),
                ("durable".to_string(), 1, 42.0),
                ("recovery-cold".to_string(), 1, 83.0),
                ("rules-100".to_string(), 1, 90.0),
                ("rules-100k".to_string(), 1, 75.0),
                ("composite-100".to_string(), 1, 95.0),
                ("composite-10k".to_string(), 1, 70.0),
                ("join-indexed".to_string(), 1, 100.0),
                ("join-scan".to_string(), 1, 20.0),
                ("net-loopback".to_string(), 1, 55.0),
                ("net-ramp".to_string(), 1, 55.0),
                ("net-delivery".to_string(), 1, 44.0),
                ("obs-baseline".to_string(), 1, 80.0),
                ("obs-off".to_string(), 1, 80.0),
                ("obs-on".to_string(), 1, 79.0),
                ("obs-full".to_string(), 1, 78.0),
                ("sharded".to_string(), 8, 100.0),
                ("sharded-mt".to_string(), 8, 200.0),
            ]
        );
    }

    #[test]
    fn e13_floor_normalizes_by_single_engine_rate() {
        let report = |single: f64, mt8: f64| E13Report {
            events: 1000,
            labels: 128,
            single_kevents_per_s: single,
            reactions_single: 500,
            rows: vec![E13Row {
                shards: 8,
                serial_kevents_per_s: single * 1.5,
                parallel_kevents_per_s: mt8,
                reactions_serial: 500,
                reactions_parallel: 500,
                hottest_share: 0.125,
            }],
        };
        // 2.0x speedup baseline
        let baseline = bench_json(
            &report(50.0, 100.0),
            &e14(80.0),
            &e15(40.0),
            &e16(90.0, 75.0),
            &e17(70.0, 100.0, 20.0),
            &e18(55.0),
            &e18b(44.0),
            &e19(80.0),
        );
        // A 4x faster machine with the same 2.0x scaling passes…
        assert!(check_floor(
            &report(200.0, 400.0),
            &e14(80.0),
            &e15(40.0),
            &e16(90.0, 75.0),
            &e17(70.0, 100.0, 20.0),
            &e18(55.0),
            &e18b(44.0),
            &e19(80.0),
            &baseline,
            0.25
        )
        .is_ok());
        // …moderate noise above the floor (1.6x > 1.5x) passes…
        assert!(check_floor(
            &report(200.0, 320.0),
            &e14(80.0),
            &e15(40.0),
            &e16(90.0, 75.0),
            &e17(70.0, 100.0, 20.0),
            &e18(55.0),
            &e18b(44.0),
            &e19(80.0),
            &baseline,
            0.25
        )
        .is_ok());
        // …but a real scaling collapse (1.2x < 1.5x) fails, regardless
        // of machine speed.
        let err = check_floor(
            &report(200.0, 240.0),
            &e14(80.0),
            &e15(40.0),
            &e16(90.0, 75.0),
            &e17(70.0, 100.0, 20.0),
            &e18(55.0),
            &e18b(44.0),
            &e19(80.0),
            &baseline,
            0.25,
        )
        .expect_err("collapsed scaling must trip the floor");
        assert!(err.contains("PERF FLOOR VIOLATED"), "{err}");
        // A baseline with a `single` row but no usable `sharded-mt` rows
        // must fail loudly, not pass vacuously.
        let gutted = baseline.replace("sharded-mt", "sharded-xx");
        let err = check_floor(
            &report(200.0, 400.0),
            &e14(80.0),
            &e15(40.0),
            &e16(90.0, 75.0),
            &e17(70.0, 100.0, 20.0),
            &e18(55.0),
            &e18b(44.0),
            &e19(80.0),
            &gutted,
            0.25,
        )
        .expect_err("a gutted baseline must not disable the gate");
        assert!(err.contains("compared nothing"), "{err}");
    }

    #[test]
    fn e14_floor_is_absolute() {
        let report = E13Report {
            events: 1000,
            labels: 128,
            single_kevents_per_s: 100.0,
            reactions_single: 500,
            rows: vec![E13Row {
                shards: 8,
                serial_kevents_per_s: 150.0,
                parallel_kevents_per_s: 200.0,
                reactions_serial: 500,
                reactions_parallel: 500,
                hottest_share: 0.125,
            }],
        };
        let baseline = bench_json(
            &report,
            &e14(80.0),
            &e15(40.0),
            &e16(90.0, 75.0),
            &e17(70.0, 100.0, 20.0),
            &e18(55.0),
            &e18b(44.0),
            &e19(80.0),
        );
        let ok16 = e16(90.0, 75.0);
        // At the baseline rate: fine. 25% below 80 = 60 is the gate.
        assert!(check_floor(
            &report,
            &e14(80.0),
            &e15(40.0),
            &ok16,
            &e17(70.0, 100.0, 20.0),
            &e18(55.0),
            &e18b(44.0),
            &e19(80.0),
            &baseline,
            0.25
        )
        .is_ok());
        assert!(check_floor(
            &report,
            &e14(61.0),
            &e15(40.0),
            &ok16,
            &e17(70.0, 100.0, 20.0),
            &e18(55.0),
            &e18b(44.0),
            &e19(80.0),
            &baseline,
            0.25
        )
        .is_ok());
        let err = check_floor(
            &report,
            &e14(59.0),
            &e15(40.0),
            &ok16,
            &e17(70.0, 100.0, 20.0),
            &e18(55.0),
            &e18b(44.0),
            &e19(80.0),
            &baseline,
            0.25,
        )
        .expect_err("hot-path collapse must trip the floor");
        assert!(err.contains("E14"), "{err}");
        // A pre-E14 baseline (no hotpath row) skips the absolute gate.
        let old = baseline
            .lines()
            .filter(|l| !l.contains("hotpath"))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(check_floor(
            &report,
            &e14(1.0),
            &e15(40.0),
            &ok16,
            &e17(70.0, 100.0, 20.0),
            &e18(55.0),
            &e18b(44.0),
            &e19(80.0),
            &old,
            0.25
        )
        .is_ok());
    }

    #[test]
    fn e16_floor_gates_absolute_rate_and_flatness() {
        let report = E13Report {
            events: 1000,
            labels: 128,
            single_kevents_per_s: 100.0,
            reactions_single: 500,
            rows: vec![E13Row {
                shards: 8,
                serial_kevents_per_s: 150.0,
                parallel_kevents_per_s: 200.0,
                reactions_serial: 500,
                reactions_parallel: 500,
                hottest_share: 0.125,
            }],
        };
        let baseline = bench_json(
            &report,
            &e14(80.0),
            &e15(40.0),
            &e16(90.0, 60.0),
            &e17(70.0, 100.0, 20.0),
            &e18(55.0),
            &e18b(44.0),
            &e19(80.0),
        );
        // At and above the committed 100k-rule floor: fine (gate = 45).
        assert!(check_floor(
            &report,
            &e14(80.0),
            &e15(40.0),
            &e16(90.0, 60.0),
            &e17(70.0, 100.0, 20.0),
            &e18(55.0),
            &e18b(44.0),
            &e19(80.0),
            &baseline,
            0.25
        )
        .is_ok());
        assert!(check_floor(
            &report,
            &e14(80.0),
            &e15(40.0),
            &e16(90.0, 46.0),
            &e17(70.0, 100.0, 20.0),
            &e18(55.0),
            &e18b(44.0),
            &e19(80.0),
            &baseline,
            0.25
        )
        .is_ok());
        // Below the absolute gate: fails, naming E16.
        let err = check_floor(
            &report,
            &e14(80.0),
            &e15(40.0),
            &e16(80.0, 44.0),
            &e17(70.0, 100.0, 20.0),
            &e18(55.0),
            &e18b(44.0),
            &e19(80.0),
            &baseline,
            0.25,
        )
        .expect_err("100k-rule collapse must trip the floor");
        assert!(err.contains("E16 100k-rule"), "{err}");
        // Healthy rate but a collapsed shape (100k at 0.28x the 100-rule
        // rate) trips the same-run flatness gate even when the absolute
        // floor passes.
        let err = check_floor(
            &report,
            &e14(80.0),
            &e15(40.0),
            &e16(200.0, 56.0),
            &e17(70.0, 100.0, 20.0),
            &e18(55.0),
            &e18b(44.0),
            &e19(80.0),
            &baseline,
            0.25,
        )
        .expect_err("non-flat scaling must trip the flatness floor");
        assert!(err.contains("not flat"), "{err}");
        // A pre-E16 baseline skips the absolute gate; flatness still
        // applies (it needs no baseline).
        let old = baseline
            .lines()
            .filter(|l| !l.contains("rules-"))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(check_floor(
            &report,
            &e14(80.0),
            &e15(40.0),
            &e16(90.0, 1.0),
            &e17(70.0, 100.0, 20.0),
            &e18(55.0),
            &e18b(44.0),
            &e19(80.0),
            &old,
            0.25
        )
        .is_err());
        assert!(check_floor(
            &report,
            &e14(80.0),
            &e15(40.0),
            &e16(90.0, 60.0),
            &e17(70.0, 100.0, 20.0),
            &e18(55.0),
            &e18b(44.0),
            &e19(80.0),
            &old,
            0.25
        )
        .is_ok());
    }

    #[test]
    fn e17_floor_gates_absolute_rate_and_speedup() {
        let report = E13Report {
            events: 1000,
            labels: 128,
            single_kevents_per_s: 100.0,
            reactions_single: 500,
            rows: vec![E13Row {
                shards: 8,
                serial_kevents_per_s: 150.0,
                parallel_kevents_per_s: 200.0,
                reactions_serial: 500,
                reactions_parallel: 500,
                hottest_share: 0.125,
            }],
        };
        let ok16 = e16(90.0, 75.0);
        let baseline = bench_json(
            &report,
            &e14(80.0),
            &e15(40.0),
            &ok16,
            &e17(70.0, 100.0, 20.0),
            &e18(55.0),
            &e18b(44.0),
            &e19(80.0),
        );
        // At and above the committed composite floor: fine (gate = 52.5).
        assert!(check_floor(
            &report,
            &e14(80.0),
            &e15(40.0),
            &ok16,
            &e17(53.0, 100.0, 20.0),
            &e18(55.0),
            &e18b(44.0),
            &e19(80.0),
            &baseline,
            0.25
        )
        .is_ok());
        // Below the absolute gate: fails, naming E17.
        let err = check_floor(
            &report,
            &e14(80.0),
            &e15(40.0),
            &ok16,
            &e17(50.0, 100.0, 20.0),
            &e18(55.0),
            &e18b(44.0),
            &e19(80.0),
            &baseline,
            0.25,
        )
        .expect_err("10k-composite collapse must trip the floor");
        assert!(err.contains("E17 10k-composite"), "{err}");
        // Healthy absolute rate but indexed no faster than scan trips
        // the same-run speedup gate.
        let err = check_floor(
            &report,
            &e14(80.0),
            &e15(40.0),
            &ok16,
            &e17(70.0, 30.0, 20.0),
            &e18(55.0),
            &e18b(44.0),
            &e19(80.0),
            &baseline,
            0.25,
        )
        .expect_err("a bypassed index must trip the speedup floor");
        assert!(err.contains("E17 indexed join"), "{err}");
        // A pre-E17 baseline skips the absolute gate; the speedup gate
        // still applies (it needs no baseline).
        let old = baseline
            .lines()
            .filter(|l| !l.contains("composite-"))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(check_floor(
            &report,
            &e14(80.0),
            &e15(40.0),
            &ok16,
            &e17(1.0, 100.0, 20.0),
            &e18(55.0),
            &e18b(44.0),
            &e19(80.0),
            &old,
            0.25
        )
        .is_ok());
        assert!(check_floor(
            &report,
            &e14(80.0),
            &e15(40.0),
            &ok16,
            &e17(70.0, 30.0, 20.0),
            &e18(55.0),
            &e18b(44.0),
            &e19(80.0),
            &old,
            0.25
        )
        .is_err());
    }

    #[test]
    fn e18_floor_is_absolute() {
        let report = E13Report {
            events: 1000,
            labels: 128,
            single_kevents_per_s: 100.0,
            reactions_single: 500,
            rows: vec![E13Row {
                shards: 8,
                serial_kevents_per_s: 150.0,
                parallel_kevents_per_s: 200.0,
                reactions_serial: 500,
                reactions_parallel: 500,
                hottest_share: 0.125,
            }],
        };
        let ok16 = e16(90.0, 75.0);
        let ok17 = e17(70.0, 100.0, 20.0);
        let baseline = bench_json(
            &report,
            &e14(80.0),
            &e15(40.0),
            &ok16,
            &ok17,
            &e18(55.0),
            &e18b(44.0),
            &e19(80.0),
        );
        // At and above the committed loopback floor: fine (gate = 41.25).
        assert!(check_floor(
            &report,
            &e14(80.0),
            &e15(40.0),
            &ok16,
            &ok17,
            &e18(42.0),
            &e18b(44.0),
            &e19(80.0),
            &baseline,
            0.25
        )
        .is_ok());
        // Below the absolute gate: fails, naming E18.
        let err = check_floor(
            &report,
            &e14(80.0),
            &e15(40.0),
            &ok16,
            &ok17,
            &e18(40.0),
            &e18b(44.0),
            &e19(80.0),
            &baseline,
            0.25,
        )
        .expect_err("an ingress-tier collapse must trip the floor");
        assert!(err.contains("E18"), "{err}");
        // A pre-E18 baseline (no net rows) skips the absolute gate.
        let old = baseline
            .lines()
            .filter(|l| !l.contains("net-"))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(check_floor(
            &report,
            &e14(80.0),
            &e15(40.0),
            &ok16,
            &ok17,
            &e18(1.0),
            &e18b(44.0),
            &e19(80.0),
            &old,
            0.25
        )
        .is_ok());
    }

    #[test]
    fn e18b_floor_is_absolute() {
        let report = E13Report {
            events: 1000,
            labels: 128,
            single_kevents_per_s: 100.0,
            reactions_single: 500,
            rows: vec![E13Row {
                shards: 8,
                serial_kevents_per_s: 150.0,
                parallel_kevents_per_s: 200.0,
                reactions_serial: 500,
                reactions_parallel: 500,
                hottest_share: 0.125,
            }],
        };
        let ok16 = e16(90.0, 75.0);
        let ok17 = e17(70.0, 100.0, 20.0);
        let baseline = bench_json(
            &report,
            &e14(80.0),
            &e15(40.0),
            &ok16,
            &ok17,
            &e18(55.0),
            &e18b(44.0),
            &e19(80.0),
        );
        // At and above the committed delivery floor: fine (gate = 33).
        assert!(check_floor(
            &report,
            &e14(80.0),
            &e15(40.0),
            &ok16,
            &ok17,
            &e18(55.0),
            &e18b(34.0),
            &e19(80.0),
            &baseline,
            0.25
        )
        .is_ok());
        // Below the absolute gate: fails, naming E18b.
        let err = check_floor(
            &report,
            &e14(80.0),
            &e15(40.0),
            &ok16,
            &ok17,
            &e18(55.0),
            &e18b(32.0),
            &e19(80.0),
            &baseline,
            0.25,
        )
        .expect_err("a delivery-agent collapse must trip the floor");
        assert!(err.contains("E18b"), "{err}");
        // A pre-E18b baseline (no net-delivery row) skips the gate.
        let old = baseline
            .lines()
            .filter(|l| !l.contains("net-delivery"))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(check_floor(
            &report,
            &e14(80.0),
            &e15(40.0),
            &ok16,
            &ok17,
            &e18(55.0),
            &e18b(1.0),
            &e19(80.0),
            &old,
            0.25
        )
        .is_ok());
    }

    #[test]
    fn e19_floor_gates_absolute_rate_and_same_run_overhead() {
        let report = E13Report {
            events: 1000,
            labels: 128,
            single_kevents_per_s: 100.0,
            reactions_single: 500,
            rows: vec![E13Row {
                shards: 8,
                serial_kevents_per_s: 150.0,
                parallel_kevents_per_s: 200.0,
                reactions_serial: 500,
                reactions_parallel: 500,
                hottest_share: 0.125,
            }],
        };
        let ok16 = e16(90.0, 75.0);
        let ok17 = e17(70.0, 100.0, 20.0);
        let baseline = bench_json(
            &report,
            &e14(80.0),
            &e15(40.0),
            &ok16,
            &ok17,
            &e18(55.0),
            &e18b(44.0),
            &e19(80.0),
        );
        // At the baseline off-rate, zero same-run overhead: fine.
        assert!(check_floor(
            &report,
            &e14(80.0),
            &e15(40.0),
            &ok16,
            &ok17,
            &e18(55.0),
            &e18b(44.0),
            &e19(80.0),
            &baseline,
            0.25
        )
        .is_ok());
        // 4% disabled-path overhead (76.8 vs an interleaved baseline of
        // 80) passes the 5% budget and the absolute floor (gate = 60).
        assert!(check_floor(
            &report,
            &e14(80.0),
            &e15(40.0),
            &ok16,
            &ok17,
            &e18(55.0),
            &e18b(44.0),
            &e19_vs(80.0, 76.8),
            &baseline,
            0.25
        )
        .is_ok());
        // 10% same-run overhead trips the fixed gate even though the
        // absolute floor (72 > 60) would pass.
        let err = check_floor(
            &report,
            &e14(80.0),
            &e15(40.0),
            &ok16,
            &ok17,
            &e18(55.0),
            &e18b(44.0),
            &e19_vs(80.0, 72.0),
            &baseline,
            0.25,
        )
        .expect_err("a probe-site tax on the disabled path must trip the gate");
        assert!(err.contains("disabled observability"), "{err}");
        // A collapse below the absolute floor fails even at a clean
        // same-run ratio of 1.0 (e.g. the whole machine, baseline
        // included, got slower — exactly what the absolute row is for).
        let err = check_floor(
            &report,
            &e14(80.0),
            &e15(40.0),
            &ok16,
            &ok17,
            &e18(55.0),
            &e18b(44.0),
            &e19(50.0),
            &baseline,
            0.25,
        )
        .expect_err("an obs-off collapse must trip the absolute floor");
        assert!(err.contains("E19 obs-disabled"), "{err}");
        // A pre-E19 baseline (no obs rows) skips the absolute gate —
        // 59.0 would trip it against the committed 80.0 (gate 60) but
        // passes here at ratio 1.0. The same-run overhead gate still
        // applies (it needs no baseline): 10% overhead fails even
        // against the old baseline.
        let old = baseline
            .lines()
            .filter(|l| !l.contains("obs-"))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(check_floor(
            &report,
            &e14(61.0),
            &e15(40.0),
            &ok16,
            &ok17,
            &e18(55.0),
            &e18b(44.0),
            &e19(59.0),
            &old,
            0.25
        )
        .is_ok());
        assert!(check_floor(
            &report,
            &e14(80.0),
            &e15(40.0),
            &ok16,
            &ok17,
            &e18(55.0),
            &e18b(44.0),
            &e19_vs(80.0, 72.0),
            &old,
            0.25
        )
        .is_err());
    }

    #[test]
    fn e18b_delivery_shapes() {
        // Small sizes: the shape is the accounting, not the rate. Every
        // live reaction delivers; every faulted one dead-letters (never a
        // silent drop); redelivery accounts for the full remainder.
        let r = e18_delivery_report(60, 6);
        assert_eq!(r.delivered_live, 60);
        assert_eq!(r.dead_lettered, 6);
        assert_eq!(r.redelivered, 6);
        assert!(r.kevents_per_s > 0.0);
        assert!(r.recovery_ms > 0.0);
    }

    #[test]
    fn e17_shapes() {
        let r = e17_report_with(2_000, &[50, 200], &[500, 2_000]);
        for row in &r.rules_axis {
            // Every pa/pb pair joins exactly once, and the indexed path
            // actually probed (the counters flow through EngineMetrics).
            assert_eq!(
                row.answers as usize,
                row.events / 2,
                "at {} rules",
                row.rules
            );
            assert!(row.probes_per_event > 0.0, "at {} rules", row.rules);
        }
        for row in &r.scan_contrast {
            assert_eq!(row.probes_per_event, 0.0, "scan mode must not probe");
        }
        // The occupancy contrast: with wide windows the scan join's work
        // per event grows with the stream, the indexed join's does not.
        let (ix_small, _) = &r.occupancy[0];
        let (ix_large, sc_large) = &r.occupancy[1];
        let (_, sc_small) = &r.occupancy[0];
        assert!(
            ix_large.attempts_per_event <= ix_small.attempts_per_event * 1.5 + 1.0,
            "indexed attempts grew with occupancy: {} -> {}",
            ix_small.attempts_per_event,
            ix_large.attempts_per_event
        );
        assert!(
            sc_large.attempts_per_event >= sc_small.attempts_per_event * 2.0,
            "scan attempts should grow with occupancy: {} -> {}",
            sc_small.attempts_per_event,
            sc_large.attempts_per_event
        );
        let t = e17_table(&r);
        assert_eq!(
            t.rows.len(),
            r.rules_axis.len() + r.scan_contrast.len() + 2 * r.occupancy.len()
        );
    }

    #[test]
    fn e16_shapes() {
        let r = e16_report_with(2_000, &[50, 500]);
        assert_eq!(r.rows.len(), 2);
        for row in &r.rows {
            // Every event matches exactly one rule, in both directions.
            assert_eq!(row.reactions, 2_000, "at {} rules", row.rules);
            // The flat-cost witness: alpha work per event is a handful of
            // shape probes, independent of the rule count.
            assert!(
                row.alpha_tests_per_event < 10.0,
                "alpha tests blew up at {} rules: {}",
                row.rules,
                row.alpha_tests_per_event
            );
            // The network grew with the vocabulary (one value node per
            // distinct @route constant), i.e. it was actually exercised.
            assert!(row.network_nodes >= row.rules, "at {} rules", row.rules);
        }
        for row in &r.interpreted {
            assert_eq!(row.reactions as usize, r.interpreted_events);
        }
        let t = e16_table(&r);
        assert_eq!(t.rows.len(), r.rows.len() + r.interpreted.len());
    }

    #[test]
    fn e14_shapes() {
        let r = e14_report(4_000);
        assert_eq!(r.reactions, 2_000, "one reaction per evt/ack pair");
        assert!(r.kevents_per_s > 0.0);
        // Interning is bounded by vocabulary, not stream length: the
        // whole workspace test run stays comfortably under this cap.
        assert!(r.symbols < 50_000, "symbol table leaked: {}", r.symbols);
        let t = e14_table(&r);
        assert_eq!(t.rows.len(), 1);
    }

    #[test]
    fn e8_shapes() {
        let t = e8_compound_actions();
        for r in &t.rows {
            match r[1].as_str() {
                "transactional" | "alt-fallback" => {
                    assert_eq!(r[3], "0", "atomic variants leak no anomalies: {r:?}")
                }
                "naive" if r[0] != "0.000" => {
                    let anomalies: usize = r[3].parse().unwrap();
                    assert!(anomalies > 0, "naive must leak under failures: {r:?}");
                }
                _ => {}
            }
        }
    }
}
