//! Symbol interning and the allocation-lean binding hot path: the
//! micro-costs the E14 experiment measures end to end. Four groups:
//! intern hits (the steady-state cost of `Sym::from` on a known string),
//! resolution (`as_str`), binding extension (`bind`/`merge` chains, the
//! per-answer substitution traffic of Thesis 7), and label dispatch
//! lookups against a `SymMap` index.

use criterion::{criterion_group, criterion_main, Criterion};
use reweb_query::Bindings;
use reweb_term::{Sym, SymMap, Term};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("term_interning");

    // Steady state: every label in a running system is already interned.
    let labels: Vec<String> = (0..128).map(|i| format!("evt{i}")).collect();
    for l in &labels {
        Sym::new(l);
    }
    group.bench_function("intern_hit", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % labels.len();
            Sym::new(&labels[i])
        })
    });

    let syms: Vec<Sym> = labels.iter().map(Sym::from).collect();
    group.bench_function("resolve", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % syms.len();
            syms[i].as_str().len()
        })
    });

    // The matcher's per-answer traffic: extend a substitution variable by
    // variable, then merge two halves — what every composite-event join
    // answer pays.
    let vars: Vec<Sym> = ["A", "B", "C", "D", "E", "F"]
        .iter()
        .map(|v| Sym::new(v))
        .collect();
    let value = Term::ordered("v", vec![Term::text("payload")]);
    group.bench_function("bind_chain_6", |b| {
        b.iter(|| {
            let mut binds = Bindings::new();
            for v in &vars {
                binds = binds.bind_sym(*v, &value).expect("fresh variable");
            }
            binds.len()
        })
    });

    let left: Bindings = vars[..3].iter().map(|v| (*v, value.clone())).collect();
    let right: Bindings = vars[3..].iter().map(|v| (*v, value.clone())).collect();
    group.bench_function("merge_3_3", |b| {
        b.iter(|| left.merge(&right).expect("disjoint merge").len())
    });

    // The engine's dispatch index shape: label → subscribed rule ids.
    let mut index: SymMap<Vec<usize>> = SymMap::default();
    for (i, s) in syms.iter().enumerate() {
        index.insert(*s, vec![i]);
    }
    group.bench_function("dispatch_lookup", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % syms.len();
            index.get(&syms[i]).map(|v| v.len()).unwrap_or(0)
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
