//! E7 (Thesis 7): condition evaluation over growing documents, seeded by
//! event bindings vs unseeded.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use reweb_bench::customers_doc;
use reweb_query::parser::parse_condition;
use reweb_query::{Bindings, QueryEngine};
use reweb_term::Term;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("condition_query");
    group.sample_size(10);
    let cond =
        parse_condition("in \"http://shop/customers\" customer{{id[[var C]], name[[var N]]}}")
            .unwrap();
    for n in [100usize, 1_000, 5_000] {
        let mut qe = QueryEngine::new();
        qe.store.put("http://shop/customers", customers_doc(n));
        let seed = Bindings::of("C", Term::text(format!("c{}", n / 2)));
        group.bench_with_input(BenchmarkId::new("seeded", n), &n, |b, _| {
            b.iter(|| qe.eval_condition(&cond, &seed).unwrap().len())
        });
        group.bench_with_input(BenchmarkId::new("unseeded", n), &n, |b, _| {
            b.iter(|| qe.eval_condition(&cond, &Bindings::new()).unwrap().len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
