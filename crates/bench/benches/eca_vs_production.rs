//! E1 (Thesis 1): reacting to order events — ECA engine vs driven
//! production-rule engine over a growing fact base.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use reweb_bench::customers_doc;
use reweb_core::{MessageMeta, ReactiveEngine};
use reweb_production::{CaRule, ProductionEngine};
use reweb_query::parser::{parse_condition, parse_construct_term, parse_query_term};
use reweb_query::Bindings;
use reweb_term::{parse_term, Timestamp};
use reweb_update::{apply_update, Action, Update};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("eca_vs_production");
    group.sample_size(10);
    const EVENTS: usize = 20;
    for n_facts in [100usize, 1_000] {
        group.bench_with_input(BenchmarkId::new("eca", n_facts), &n_facts, |b, &n| {
            b.iter(|| {
                let mut e = ReactiveEngine::new("http://shop");
                e.qe.store.put("http://shop/customers", customers_doc(n));
                e.install_program(
                    r#"RULE r ON order{{id[[var O]], total[[var T]]}}
                       IF in "http://shop/customers" customer{{id[[var O]], name[[var N]]}}
                       THEN LOG handled[var O] END"#,
                )
                .unwrap();
                let meta = MessageMeta::from_uri("http://c");
                for i in 0..EVENTS {
                    let p =
                        parse_term(&format!("order{{id[\"c{}\"], total[\"60\"]}}", i % n)).unwrap();
                    e.receive(p, &meta, Timestamp(i as u64));
                }
                e.metrics.rules_fired
            })
        });
        group.bench_with_input(
            BenchmarkId::new("production", n_facts),
            &n_facts,
            |b, &n| {
                b.iter(|| {
                    let mut pe = ProductionEngine::new();
                    pe.qe.store.put("http://shop/customers", customers_doc(n));
                    pe.qe
                        .store
                        .put("http://shop/orders", parse_term("orders[]").unwrap());
                    pe.add_rule(CaRule::new(
                        "r",
                        parse_condition(
                            "in \"http://shop/orders\" order{{id[[var O]]}} \
                             and in \"http://shop/customers\" customer{{id[[var O]], name[[var N]]}}",
                        )
                        .unwrap(),
                        Action::Log(parse_construct_term("handled[var O]").unwrap()),
                    ));
                    for i in 0..EVENTS {
                        let u = Update::insert(
                            "http://shop/orders",
                            parse_query_term("orders[[]]").unwrap(),
                            parse_construct_term(&format!("order{{id[\"c{}\"]}}", i % n)).unwrap(),
                        );
                        apply_update(&mut pe.qe.store, &u, &Bindings::new()).unwrap();
                        pe.run_to_quiescence();
                    }
                    pe.metrics.rules_fired
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
