//! E12 (Thesis 12): throughput under increasing AAA levels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use reweb_core::{AaaConfig, MessageMeta, Permission, ReactiveEngine};
use reweb_term::{parse_term, Timestamp};

fn engine(config: AaaConfig) -> ReactiveEngine {
    let mut e = ReactiveEngine::new("http://svc");
    e.aaa = reweb_core::aaa::Aaa::new(config);
    e.aaa.register("franz", "pw", vec!["customer".into()]);
    e.aaa
        .acl
        .grant("customer", Permission::ReceiveEvent("order".into()));
    e.install_program(r#"RULE serve ON order{{id[[var O]]}} DO LOG served[var O] END"#)
        .unwrap();
    e
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("aaa_overhead");
    group.sample_size(10);
    const N: usize = 1_000;
    let configs: Vec<(&str, AaaConfig)> = vec![
        ("off", AaaConfig::default()),
        (
            "authn",
            AaaConfig {
                require_auth: true,
                ..AaaConfig::default()
            },
        ),
        (
            "full",
            AaaConfig {
                require_auth: true,
                authorize: true,
                accounting: true,
                accounting_events: true,
            },
        ),
    ];
    for (name, config) in configs {
        group.bench_with_input(BenchmarkId::new("level", name), &config, |b, cfg| {
            b.iter(|| {
                let mut e = engine(cfg.clone());
                let meta = MessageMeta::from_uri("http://c").with_credentials("franz", "pw");
                for i in 0..N {
                    let p = parse_term(&format!("order{{id[\"o{i}\"]}}")).unwrap();
                    e.receive(p, &meta, Timestamp(i as u64));
                }
                e.metrics.rules_fired
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
