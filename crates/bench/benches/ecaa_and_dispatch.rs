//! E9 (Thesis 9): ECAA vs C/¬C rule pair; label-indexed vs wildcard
//! dispatch with many rules.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use reweb_bench::customers_doc;
use reweb_core::{MessageMeta, ReactiveEngine};
use reweb_term::{parse_term, Timestamp};

fn branching_engine(ecaa: bool) -> ReactiveEngine {
    let mut e = ReactiveEngine::new("http://x");
    e.qe.store.put("http://x/c", customers_doc(200));
    let program = if ecaa {
        r#"RULE r ON order{{id[[var O]]}}
           IF in "http://x/c" customer{{id[[var O]]}} THEN LOG k[var O]
           ELSE LOG u[var O] END"#
    } else {
        r#"RULE rp ON order{{id[[var O]]}}
           IF in "http://x/c" customer{{id[[var O]]}} THEN LOG k[var O] END
           RULE rn ON order{{id[[var O]]}}
           IF not in "http://x/c" customer{{id[[var O]]}} THEN LOG u[var O] END"#
    };
    e.install_program(program).unwrap();
    e
}

fn dispatch_engine(indexed: bool) -> ReactiveEngine {
    let mut e = ReactiveEngine::new("http://x");
    for i in 0..100 {
        let pattern = if indexed {
            format!("evt{i}{{{{v[[var X]]}}}}")
        } else {
            format!("*{{{{kind[[\"evt{i}\"]], v[[var X]]}}}}")
        };
        e.install_program(&format!("RULE r{i} ON {pattern} DO LOG s{i}[var X] END"))
            .unwrap();
    }
    e
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ecaa_and_dispatch");
    group.sample_size(10);
    const EVENTS: usize = 200;
    for (name, ecaa) in [("ecaa", true), ("rule_pair", false)] {
        group.bench_with_input(BenchmarkId::new("branching", name), &ecaa, |b, &ecaa| {
            b.iter(|| {
                let mut e = branching_engine(ecaa);
                let meta = MessageMeta::from_uri("http://y");
                for i in 0..EVENTS {
                    let p = parse_term(&format!("order{{id[\"c{}\"]}}", i % 400)).unwrap();
                    e.receive(p, &meta, Timestamp(i as u64));
                }
                e.metrics.condition_evals
            })
        });
    }
    for (name, indexed) in [("indexed", true), ("wildcard", false)] {
        group.bench_with_input(BenchmarkId::new("dispatch", name), &indexed, |b, &ix| {
            b.iter(|| {
                let mut e = dispatch_engine(ix);
                let meta = MessageMeta::from_uri("http://y");
                for i in 0..EVENTS {
                    let p = parse_term(&format!("evt7{{kind[\"evt7\"], v[\"{i}\"]}}")).unwrap();
                    e.receive(p, &meta, Timestamp(i as u64));
                }
                e.metrics.rules_fired
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
