//! E6 (Thesis 6): per-event cost of incremental vs naive event query
//! evaluation as history grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use reweb_bench::mixed_stream;
use reweb_events::{parse_event_query, Event, EventId, IncrementalEngine, NaiveEngine};

fn bench(c: &mut Criterion) {
    let q = parse_event_query("and(order{{id[[var O]]}}, payment{{order[[var O]]}}) within 1h")
        .unwrap();
    let mut group = c.benchmark_group("incremental_vs_naive");
    group.sample_size(10);
    for h in [200usize, 800, 2_000] {
        let stream = mixed_stream(h, 50, 42);
        group.bench_with_input(BenchmarkId::new("incremental", h), &h, |b, _| {
            b.iter(|| {
                let mut eng = IncrementalEngine::new(&q);
                let mut n = 0usize;
                for (i, (ts, p)) in stream.iter().enumerate() {
                    n += eng
                        .push(&Event::new(EventId(i as u64), *ts, p.clone()))
                        .len();
                }
                n
            })
        });
        group.bench_with_input(BenchmarkId::new("naive", h), &h, |b, _| {
            b.iter(|| {
                let mut eng = NaiveEngine::new(&q);
                let mut n = 0usize;
                for (i, (ts, p)) in stream.iter().enumerate() {
                    n += eng
                        .push(&Event::new(EventId(i as u64), *ts, p.clone()))
                        .len();
                }
                n
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
