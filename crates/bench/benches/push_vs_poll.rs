//! E3 (Thesis 3): simulation cost of push vs poll observation for one
//! simulated hour of resource changes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use reweb_bench::news_doc;
use reweb_term::{Dur, IdentityMode, ResourceStore, Timestamp};
use reweb_websim::{Poller, Simulation};

fn drive(sim: &mut Simulation) {
    for k in 1..=30u64 {
        sim.schedule_update(
            "http://news/front",
            news_doc(5, k * 60_000),
            Timestamp(k * 60_000),
        );
    }
    sim.run_until(Timestamp(1_900_000));
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("push_vs_poll");
    group.sample_size(10);
    group.bench_function("push", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(3);
            let mut store = ResourceStore::new();
            store.put("http://news/front", news_doc(5, 0));
            sim.add_store("http://news", store);
            sim.add_sink("http://w");
            sim.subscribe_push("http://news/front", "http://w", IdentityMode::surrogate());
            drive(&mut sim);
            sim.metrics.messages
        })
    });
    for poll_secs in [5u64, 60] {
        group.bench_with_input(
            BenchmarkId::new("poll", poll_secs),
            &poll_secs,
            |b, &secs| {
                b.iter(|| {
                    let mut sim = Simulation::new(3);
                    let mut store = ResourceStore::new();
                    store.put("http://news/front", news_doc(5, 0));
                    sim.add_store("http://news", store);
                    sim.add_sink("http://w");
                    sim.add_poller(
                        "http://p",
                        Poller::new(
                            "http://news/front",
                            Dur::secs(secs),
                            "http://w",
                            IdentityMode::surrogate(),
                        ),
                    );
                    drive(&mut sim);
                    sim.metrics.messages
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
