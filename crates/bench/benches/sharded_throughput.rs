//! E13 (scale-out): batch ingestion throughput of the sharded engine at
//! 1/2/4/8 shards vs a single engine, on the 128-label paired workload —
//! with both the serial and the thread-per-shard executor, so the
//! serial-vs-parallel speedup is measured per shard count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use reweb_bench::{paired_stream, sharded_rules};
use reweb_core::{ExecMode, InMessage, MessageMeta, ReactiveEngine, ShardedEngine};

const LABELS: usize = 128;
const EVENTS: usize = 20_000;

fn workload() -> (String, Vec<InMessage>) {
    let meta = MessageMeta::from_uri("http://client");
    let msgs = paired_stream(LABELS, EVENTS, 17)
        .into_iter()
        .map(|(at, payload)| InMessage::new(payload, meta.clone(), at))
        .collect();
    (sharded_rules(LABELS), msgs)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_throughput");
    group.sample_size(10);
    let (program, msgs) = workload();

    group.bench_function("single_engine", |b| {
        b.iter(|| {
            let mut e = ReactiveEngine::new("http://svc");
            e.install_program(&program).unwrap();
            for m in &msgs {
                e.receive(m.payload.clone(), &m.meta, m.at);
            }
            e.metrics.rules_fired
        })
    });
    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("receive_batch", shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let mut e = ShardedEngine::new("http://svc", shards);
                    e.install_program(&program).unwrap();
                    e.receive_batch(&msgs);
                    e.metrics().rules_fired
                })
            },
        );
    }
    // The thread-per-shard executor on the same workload: the ratio to
    // `receive_batch/<n>` above is the executor's parallel speedup
    // (bounded by the host's core count). Pool spawn/teardown is inside
    // the measured body on purpose — it is part of what a caller pays.
    for shards in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("receive_batch_mt", shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let mut e = ShardedEngine::with_mode("http://svc", shards, ExecMode::Threads);
                    e.install_program(&program).unwrap();
                    e.receive_batch(&msgs);
                    e.metrics().rules_fired
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
