//! E5 (Thesis 5): throughput of the four event-query dimensions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use reweb_bench::{order_payload, payment_payload, stock_payload};
use reweb_events::{parse_event_query, Event, EventId, IncrementalEngine};
use reweb_term::{Term, Timestamp};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_dimensions");
    group.sample_size(10);
    const N: usize = 2_000;
    type PayloadGen = Box<dyn Fn(usize) -> Term>;
    let cases: Vec<(&str, &str, PayloadGen)> = vec![
        (
            "extraction",
            "order{{id[[var O]], total[[var T]]}}",
            Box::new(|i| order_payload(i, 60)),
        ),
        (
            "composition",
            "and(order{{id[[var O]]}}, payment{{order[[var O]]}}) within 1m",
            Box::new(|i| {
                if i % 2 == 0 {
                    order_payload(i / 2, 100)
                } else {
                    payment_payload(i / 2, 100)
                }
            }),
        ),
        (
            "absence",
            "absence(ping{{n[[var N]]}}, pong{{n[[var N]]}}, 5s)",
            Box::new(|i| {
                let l = if i % 3 == 0 { "ping" } else { "pong" };
                reweb_term::parse_term(&format!("{l}{{n[\"{}\"]}}", i / 3)).unwrap()
            }),
        ),
        (
            "accumulation",
            "avg(var P, 5, stock{{sym[[var S]], price[[var P]]}}) as var A group by var S",
            Box::new(|i| stock_payload(if i % 2 == 0 { "A" } else { "B" }, 100.0 + (i % 7) as f64)),
        ),
    ];
    for (name, q, gen) in cases {
        let query = parse_event_query(q).unwrap();
        let events: Vec<Event> = (0..N)
            .map(|i| Event::new(EventId(i as u64), Timestamp(i as u64 * 1_000), gen(i)))
            .collect();
        group.bench_with_input(BenchmarkId::new("dimension", name), &name, |b, _| {
            b.iter(|| {
                let mut eng = IncrementalEngine::new(&query);
                let mut n = 0usize;
                for e in &events {
                    n += eng.push(e).len();
                }
                n
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
