//! Arithmetic expressions and comparisons over bindings.
//!
//! These appear in three places of the rule language, always with the same
//! syntax and semantics (Thesis 7's "language coherency"):
//! event-query `WHERE` parts ("the average … raises by 5%"), condition
//! comparisons ("monthly income of more than EUR 1 500"), and computed
//! values in construct terms and actions.
//!
//! Values are numbers or strings. A variable evaluates to the numeric value
//! of its bound term when that term is (or wraps) a number, and to its text
//! content otherwise. Comparisons between two numbers are numeric, anything
//! else is compared as strings.

use std::fmt;

use reweb_term::Sym;

use crate::bindings::Bindings;

/// Evaluation failure: unbound variable, division by zero, type mismatch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EvalError(pub String);

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "evaluation error: {}", self.0)
    }
}

impl std::error::Error for EvalError {}

/// A runtime value.
#[derive(Clone, Debug, PartialEq)]
pub enum Val {
    /// A number.
    Num(f64),
    /// A string.
    Str(String),
}

impl Val {
    /// Numeric view: numbers directly, strings if they parse.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Val::Num(n) => Some(*n),
            Val::Str(s) => s.trim().parse().ok(),
        }
    }

    /// String view: integral numbers print without a fraction.
    pub fn as_str(&self) -> String {
        match self {
            Val::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    format!("{}", *n as i64)
                } else {
                    format!("{n}")
                }
            }
            Val::Str(s) => s.clone(),
        }
    }
}

/// Binary arithmetic operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+` — numeric addition, or string concatenation.
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` — errors on a zero divisor.
    Div,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        })
    }
}

/// An arithmetic/string expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A numeric literal.
    Num(f64),
    /// A string literal.
    Str(String),
    /// `var X` — the bound term's numeric value or text content.
    Var(Sym),
    /// A binary operation.
    Bin(Box<Expr>, BinOp, Box<Expr>),
}

impl Expr {
    /// Convenience: `var X`.
    pub fn var(name: impl Into<Sym>) -> Expr {
        Expr::Var(name.into())
    }

    /// Convenience: a numeric literal.
    pub fn num(n: f64) -> Expr {
        Expr::Num(n)
    }

    /// Convenience: `lhs op rhs`.
    pub fn bin(lhs: Expr, op: BinOp, rhs: Expr) -> Expr {
        Expr::Bin(Box::new(lhs), op, Box::new(rhs))
    }

    /// Evaluate under the given bindings.
    pub fn eval(&self, binds: &Bindings) -> Result<Val, EvalError> {
        match self {
            Expr::Num(n) => Ok(Val::Num(*n)),
            Expr::Str(s) => Ok(Val::Str(s.clone())),
            Expr::Var(x) => {
                let t = binds
                    .get_sym(*x)
                    .ok_or_else(|| EvalError(format!("unbound variable {x}")))?;
                match t.as_number() {
                    Some(n) => Ok(Val::Num(n)),
                    None => Ok(Val::Str(t.text_content())),
                }
            }
            Expr::Bin(l, op, r) => {
                let lv = l.eval(binds)?;
                let rv = r.eval(binds)?;
                match (lv.as_num(), rv.as_num()) {
                    (Some(a), Some(b)) => match op {
                        BinOp::Add => Ok(Val::Num(a + b)),
                        BinOp::Sub => Ok(Val::Num(a - b)),
                        BinOp::Mul => Ok(Val::Num(a * b)),
                        BinOp::Div => {
                            if b == 0.0 {
                                Err(EvalError("division by zero".into()))
                            } else {
                                Ok(Val::Num(a / b))
                            }
                        }
                    },
                    // String concatenation is the one non-numeric operator.
                    _ if *op == BinOp::Add => Ok(Val::Str(lv.as_str() + &rv.as_str())),
                    _ => Err(EvalError(format!(
                        "non-numeric operands for `{op}`: {lv:?}, {rv:?}"
                    ))),
                }
            }
        }
    }

    /// Variables mentioned in this expression, sorted by name.
    pub fn variables(&self) -> Vec<Sym> {
        let mut out = Vec::new();
        fn go(e: &Expr, out: &mut Vec<Sym>) {
            match e {
                Expr::Var(x) => out.push(*x),
                Expr::Bin(l, _, r) => {
                    go(l, out);
                    go(r, out);
                }
                _ => {}
            }
        }
        go(self, &mut out);
        out.sort();
        out.dedup();
        out
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Num(n) => write!(f, "{}", Val::Num(*n).as_str()),
            Expr::Str(s) => write!(f, "{s:?}"),
            Expr::Var(x) => write!(f, "var {x}"),
            Expr::Bin(l, op, r) => write!(f, "({l} {op} {r})"),
        }
    }
}

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// Substring test (string semantics).
    Contains,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Contains => "contains",
        })
    }
}

/// A comparison between two expressions.
#[derive(Clone, Debug, PartialEq)]
pub struct Cmp {
    /// Left-hand expression.
    pub lhs: Expr,
    /// The operator.
    pub op: CmpOp,
    /// Right-hand expression.
    pub rhs: Expr,
}

impl Cmp {
    /// Build `lhs op rhs`.
    pub fn new(lhs: Expr, op: CmpOp, rhs: Expr) -> Cmp {
        Cmp { lhs, op, rhs }
    }

    /// Whether the comparison holds under the bindings.
    pub fn holds(&self, binds: &Bindings) -> Result<bool, EvalError> {
        let l = self.lhs.eval(binds)?;
        let r = self.rhs.eval(binds)?;
        if self.op == CmpOp::Contains {
            return Ok(l.as_str().contains(&r.as_str()));
        }
        // Numeric comparison when both sides are numeric, else string.
        let ord = match (l.as_num(), r.as_num()) {
            (Some(a), Some(b)) => a.partial_cmp(&b),
            _ => Some(l.as_str().cmp(&r.as_str())),
        };
        let ord = ord.ok_or_else(|| EvalError("incomparable values (NaN)".into()))?;
        Ok(match self.op {
            CmpOp::Eq => ord == std::cmp::Ordering::Equal,
            CmpOp::Ne => ord != std::cmp::Ordering::Equal,
            CmpOp::Lt => ord == std::cmp::Ordering::Less,
            CmpOp::Le => ord != std::cmp::Ordering::Greater,
            CmpOp::Gt => ord == std::cmp::Ordering::Greater,
            CmpOp::Ge => ord != std::cmp::Ordering::Less,
            CmpOp::Contains => unreachable!(),
        })
    }

    /// Variables mentioned on either side, sorted by name.
    pub fn variables(&self) -> Vec<Sym> {
        let mut v = self.lhs.variables();
        v.extend(self.rhs.variables());
        v.sort();
        v.dedup();
        v
    }
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op, self.rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reweb_term::Term;

    fn binds() -> Bindings {
        [
            ("A".to_string(), Term::text("1500")),
            (
                "T".to_string(),
                Term::ordered("total", vec![Term::text("59.9")]),
            ),
            ("S".to_string(), Term::text("cancelled")),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn variable_resolution() {
        assert_eq!(Expr::var("A").eval(&binds()).unwrap(), Val::Num(1500.0));
        // Element wrapping a number resolves numerically.
        assert_eq!(Expr::var("T").eval(&binds()).unwrap(), Val::Num(59.9));
        // Non-numeric resolves to text content.
        assert_eq!(
            Expr::var("S").eval(&binds()).unwrap(),
            Val::Str("cancelled".into())
        );
        assert!(Expr::var("missing").eval(&binds()).is_err());
    }

    #[test]
    fn arithmetic() {
        let e = Expr::bin(Expr::var("A"), BinOp::Mul, Expr::Num(1.05));
        assert_eq!(e.eval(&binds()).unwrap(), Val::Num(1575.0));
        let div0 = Expr::bin(Expr::Num(1.0), BinOp::Div, Expr::Num(0.0));
        assert!(div0.eval(&binds()).is_err());
    }

    #[test]
    fn string_concat_via_plus() {
        let e = Expr::bin(Expr::Str("id-".into()), BinOp::Add, Expr::var("S"));
        assert_eq!(e.eval(&binds()).unwrap(), Val::Str("id-cancelled".into()));
        // but `*` on strings errors
        let bad = Expr::bin(Expr::Str("x".into()), BinOp::Mul, Expr::Str("y".into()));
        assert!(bad.eval(&binds()).is_err());
    }

    #[test]
    fn comparisons_numeric_and_string() {
        // The paper's credit-card rule: income >= 1500.
        let c = Cmp::new(Expr::var("A"), CmpOp::Ge, Expr::Num(1500.0));
        assert!(c.holds(&binds()).unwrap());
        let c = Cmp::new(Expr::var("A"), CmpOp::Gt, Expr::Num(1500.0));
        assert!(!c.holds(&binds()).unwrap());
        // String equality.
        let c = Cmp::new(Expr::var("S"), CmpOp::Eq, Expr::Str("cancelled".into()));
        assert!(c.holds(&binds()).unwrap());
        // Mixed → string comparison ("cancelled" != "1500").
        let c = Cmp::new(Expr::var("S"), CmpOp::Ne, Expr::var("A"));
        assert!(c.holds(&binds()).unwrap());
    }

    #[test]
    fn contains() {
        let c = Cmp::new(Expr::var("S"), CmpOp::Contains, Expr::Str("cancel".into()));
        assert!(c.holds(&binds()).unwrap());
        let c = Cmp::new(Expr::var("S"), CmpOp::Contains, Expr::Str("xyz".into()));
        assert!(!c.holds(&binds()).unwrap());
    }

    #[test]
    fn variables_listed() {
        let c = Cmp::new(
            Expr::bin(Expr::var("B"), BinOp::Add, Expr::var("A")),
            CmpOp::Lt,
            Expr::var("A"),
        );
        assert_eq!(c.variables(), vec![Sym::new("A"), Sym::new("B")]);
    }

    #[test]
    fn display_roundtrip_shape() {
        let e = Expr::bin(Expr::var("X"), BinOp::Mul, Expr::Num(1.05));
        assert_eq!(e.to_string(), "(var X * 1.05)");
        let c = Cmp::new(Expr::var("X"), CmpOp::Le, Expr::Num(3.0));
        assert_eq!(c.to_string(), "var X <= 3");
    }
}
