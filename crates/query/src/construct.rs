//! Construct terms: building new data from query answers.
//!
//! The output half of a deductive rule, of a `DETECT` event rule, and of
//! `SEND`/`INSERT` actions. A construct term is a term skeleton with:
//!
//! * `var X` — splice in the bound term;
//! * `text var X` — splice in the bound term's text content as a text leaf;
//! * `eval(expr)` — a computed value as a text leaf;
//! * `all ct [group by var G, …]` — iterate over the answer set, emitting
//!   one instance of `ct` per group (Xcerpt's `all`);
//! * aggregates `count(var X)`, `sum(var X)`, `avg(var X)`, `min(var X)`,
//!   `max(var X)` — folded over the bindings of the enclosing group.
//!
//! [`construct`] applies a construct term to an *answer set*: the bindings
//! are partitioned by the values of the variables used outside `all`, and
//! one output term is produced per partition.

use std::collections::BTreeMap;
use std::fmt;

use reweb_term::{Sym, Term, TermError};

use crate::bindings::Bindings;
use crate::expr::{EvalError, Expr};

/// Aggregation functions usable inside construct terms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggFn {
    /// Number of distinct bound terms.
    Count,
    /// Sum of the numeric values.
    Sum,
    /// Arithmetic mean of the numeric values.
    Avg,
    /// Smallest numeric value.
    Min,
    /// Largest numeric value.
    Max,
}

impl AggFn {
    /// The surface-syntax name (`count`, `sum`, …).
    pub fn name(self) -> &'static str {
        match self {
            AggFn::Count => "count",
            AggFn::Sum => "sum",
            AggFn::Avg => "avg",
            AggFn::Min => "min",
            AggFn::Max => "max",
        }
    }

    /// Parse a surface-syntax name back into the function.
    pub fn from_name(s: &str) -> Option<AggFn> {
        Some(match s {
            "count" => AggFn::Count,
            "sum" => AggFn::Sum,
            "avg" => AggFn::Avg,
            "min" => AggFn::Min,
            "max" => AggFn::Max,
            _ => return None,
        })
    }

    /// Fold over the numeric values of `var` across `group`.
    /// `Count` counts *distinct bound terms*; the numeric folds skip
    /// non-numeric bindings.
    pub fn apply(self, var: impl Into<Sym>, group: &[Bindings]) -> Result<f64, EvalError> {
        let var = var.into();
        if self == AggFn::Count {
            let mut seen: Vec<&Term> = group.iter().filter_map(|b| b.get_sym(var)).collect();
            seen.sort();
            seen.dedup();
            return Ok(seen.len() as f64);
        }
        let nums: Vec<f64> = group
            .iter()
            .filter_map(|b| b.get_sym(var).and_then(Term::as_number))
            .collect();
        if nums.is_empty() {
            return Err(EvalError(format!(
                "aggregate {} over empty/non-numeric {var}",
                self.name()
            )));
        }
        Ok(match self {
            AggFn::Count => unreachable!(),
            AggFn::Sum => nums.iter().sum(),
            AggFn::Avg => nums.iter().sum::<f64>() / nums.len() as f64,
            AggFn::Min => nums.iter().cloned().fold(f64::INFINITY, f64::min),
            AggFn::Max => nums.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        })
    }
}

/// Attribute value in a construct term.
#[derive(Clone, Debug, PartialEq)]
pub enum AttrValue {
    /// A literal attribute value.
    Str(String),
    /// `@k=var X` — the text content of the bound term.
    Var(Sym),
}

/// A construct term.
#[derive(Clone, Debug, PartialEq)]
pub enum ConstructTerm {
    /// An output element.
    Elem {
        /// Element label.
        label: Sym,
        /// `[…]` (true) vs `{…}` (false) in the output term.
        ordered: bool,
        /// Attributes to emit, literal or variable-valued.
        attrs: Vec<(Sym, AttrValue)>,
        /// Child construct terms, instantiated in order.
        children: Vec<ConstructTerm>,
    },
    /// A literal text leaf.
    Text(String),
    /// `var X` — splice the bound term.
    Var(Sym),
    /// `text var X` — the bound term's text content as a text leaf.
    TextOf(Sym),
    /// `eval(e)` — computed value as a text leaf.
    Calc(Expr),
    /// `all ct group by (vars)` — one instance of `ct` per group.
    All {
        /// Template instantiated once per group.
        inner: Box<ConstructTerm>,
        /// Variables whose valuations partition the answers.
        group_by: Vec<Sym>,
    },
    /// Aggregate over the enclosing group.
    Agg(AggFn, Sym),
}

impl ConstructTerm {
    /// Convenience: an element builder.
    pub fn elem(label: impl Into<Sym>) -> ConstructBuilder {
        ConstructBuilder {
            label: label.into(),
            ordered: true,
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Convenience: `var X`.
    pub fn var(name: impl Into<Sym>) -> ConstructTerm {
        ConstructTerm::Var(name.into())
    }

    /// Convenience: a literal text leaf.
    pub fn text(s: impl Into<String>) -> ConstructTerm {
        ConstructTerm::Text(s.into())
    }

    /// Variables used *outside* any `all` — these drive the top-level
    /// grouping in [`construct`]. Sorted by name.
    pub fn outer_variables(&self) -> Vec<Sym> {
        let mut out = Vec::new();
        fn go(ct: &ConstructTerm, out: &mut Vec<Sym>) {
            match ct {
                ConstructTerm::Var(x) | ConstructTerm::TextOf(x) => out.push(*x),
                ConstructTerm::Calc(e) => out.extend(e.variables()),
                ConstructTerm::Agg(_, _) => {}
                ConstructTerm::All { .. } => {}
                ConstructTerm::Text(_) => {}
                ConstructTerm::Elem {
                    attrs, children, ..
                } => {
                    for (_, a) in attrs {
                        if let AttrValue::Var(x) = a {
                            out.push(*x);
                        }
                    }
                    for c in children {
                        go(c, out);
                    }
                }
            }
        }
        go(self, &mut out);
        out.sort();
        out.dedup();
        out
    }

    /// Instantiate for one group of bindings (all agreeing on the outer
    /// variables; singular positions use the first binding).
    pub fn instantiate(&self, group: &[Bindings]) -> Result<Term, TermError> {
        let first = group
            .first()
            .ok_or_else(|| TermError::InvalidEdit("construct over empty answer set".into()))?;
        match self {
            ConstructTerm::Text(s) => Ok(Term::text(s.clone())),
            ConstructTerm::Var(x) => first
                .get_sym(*x)
                .cloned()
                .ok_or_else(|| TermError::InvalidEdit(format!("unbound variable {x} in construct"))),
            ConstructTerm::TextOf(x) => first
                .get_sym(*x)
                .map(|t| Term::text(t.text_content()))
                .ok_or_else(|| TermError::InvalidEdit(format!("unbound variable {x} in construct"))),
            ConstructTerm::Calc(e) => {
                let v = e
                    .eval(first)
                    .map_err(|e| TermError::InvalidEdit(e.to_string()))?;
                Ok(Term::text(v.as_str()))
            }
            ConstructTerm::Agg(f, x) => {
                let v = f
                    .apply(*x, group)
                    .map_err(|e| TermError::InvalidEdit(e.to_string()))?;
                Ok(Term::num(v))
            }
            ConstructTerm::All { inner, group_by } => Err(TermError::InvalidEdit(format!(
                "`all {inner} group by {group_by:?}` cannot appear at the top level of a construct term"
            ))),
            ConstructTerm::Elem {
                label,
                ordered,
                attrs,
                children,
            } => {
                let mut b = Term::build(*label);
                if !ordered {
                    b = b.unordered();
                }
                for (k, a) in attrs {
                    let v = match a {
                        AttrValue::Str(s) => s.clone(),
                        AttrValue::Var(x) => first
                            .get_sym(*x)
                            .map(|t| t.text_content())
                            .ok_or_else(|| {
                                TermError::InvalidEdit(format!(
                                    "unbound variable {x} in construct attribute"
                                ))
                            })?,
                    };
                    b = b.attr(*k, v);
                }
                for c in children {
                    match c {
                        ConstructTerm::All { inner, group_by } => {
                            for sub in partition(group, group_by, inner) {
                                b = b.child(inner.instantiate(&sub)?);
                            }
                        }
                        other => {
                            b = b.child(other.instantiate(group)?);
                        }
                    }
                }
                Ok(b.finish())
            }
        }
    }
}

/// Split a group into subgroups for an `all`: by the explicit `group by`
/// variables if given, otherwise by the inner term's outer variables (so
/// duplicates collapse, Xcerpt-style).
fn partition(group: &[Bindings], group_by: &[Sym], inner: &ConstructTerm) -> Vec<Vec<Bindings>> {
    let keys: Vec<Sym> = if group_by.is_empty() {
        inner.outer_variables()
    } else {
        group_by.to_vec()
    };
    let mut parts: BTreeMap<Bindings, Vec<Bindings>> = BTreeMap::new();
    for b in group {
        parts.entry(b.project(&keys)).or_default().push(b.clone());
    }
    parts.into_values().collect()
}

/// Apply a construct term to an answer set: one output term per distinct
/// valuation of the outer variables.
pub fn construct(ct: &ConstructTerm, answers: &[Bindings]) -> Result<Vec<Term>, TermError> {
    if answers.is_empty() {
        return Ok(Vec::new());
    }
    let outer = ct.outer_variables();
    let mut parts: BTreeMap<Bindings, Vec<Bindings>> = BTreeMap::new();
    for b in answers {
        parts.entry(b.project(&outer)).or_default().push(b.clone());
    }
    parts
        .into_values()
        .map(|group| ct.instantiate(&group))
        .collect()
}

/// Builder for element construct terms.
#[derive(Clone, Debug)]
pub struct ConstructBuilder {
    label: Sym,
    ordered: bool,
    attrs: Vec<(Sym, AttrValue)>,
    children: Vec<ConstructTerm>,
}

impl ConstructBuilder {
    /// Emit an unordered (`{…}`) element.
    pub fn unordered(mut self) -> Self {
        self.ordered = false;
        self
    }

    /// Emit attribute `k` with the literal value `v`.
    pub fn attr(mut self, k: impl Into<Sym>, v: impl Into<String>) -> Self {
        self.attrs.push((k.into(), AttrValue::Str(v.into())));
        self
    }

    /// Emit attribute `k` with the text content of `var`'s binding.
    pub fn attr_var(mut self, k: impl Into<Sym>, var: impl Into<Sym>) -> Self {
        self.attrs.push((k.into(), AttrValue::Var(var.into())));
        self
    }

    /// Append a child construct term.
    pub fn child(mut self, c: ConstructTerm) -> Self {
        self.children.push(c);
        self
    }

    /// Convenience: child `label[ var X ]`.
    pub fn field_var(self, label: impl Into<Sym>, var: impl Into<Sym>) -> Self {
        self.child(ConstructTerm::Elem {
            label: label.into(),
            ordered: true,
            attrs: Vec::new(),
            children: vec![ConstructTerm::Var(var.into())],
        })
    }

    /// Convenience: child `label[ "text" ]`.
    pub fn field_text(self, label: impl Into<Sym>, text: impl Into<String>) -> Self {
        self.child(ConstructTerm::Elem {
            label: label.into(),
            ordered: true,
            attrs: Vec::new(),
            children: vec![ConstructTerm::Text(text.into())],
        })
    }

    /// Finish building, yielding the element construct term.
    pub fn finish(self) -> ConstructTerm {
        ConstructTerm::Elem {
            label: self.label,
            ordered: self.ordered,
            attrs: self.attrs,
            children: self.children,
        }
    }
}

impl fmt::Display for ConstructTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstructTerm::Text(s) => write!(f, "{s:?}"),
            ConstructTerm::Var(x) => write!(f, "var {x}"),
            ConstructTerm::TextOf(x) => write!(f, "text var {x}"),
            ConstructTerm::Calc(e) => write!(f, "eval({e})"),
            ConstructTerm::Agg(a, x) => write!(f, "{}(var {x})", a.name()),
            ConstructTerm::All { inner, group_by } => {
                write!(f, "all {inner}")?;
                match group_by.as_slice() {
                    [] => {}
                    [g] => write!(f, " group by var {g}")?,
                    many => {
                        write!(f, " group by (")?;
                        for (i, g) in many.iter().enumerate() {
                            if i > 0 {
                                write!(f, ", ")?;
                            }
                            write!(f, "var {g}")?;
                        }
                        write!(f, ")")?;
                    }
                }
                Ok(())
            }
            ConstructTerm::Elem {
                label,
                ordered,
                attrs,
                children,
            } => {
                f.write_str(label.as_str())?;
                if attrs.is_empty() && children.is_empty() {
                    if !ordered {
                        f.write_str("{}")?;
                    }
                    return Ok(());
                }
                let (open, close) = if *ordered { ("[", "]") } else { ("{", "}") };
                f.write_str(open)?;
                let mut first = true;
                for (k, a) in attrs {
                    if !first {
                        f.write_str(", ")?;
                    }
                    first = false;
                    match a {
                        AttrValue::Str(s) => write!(f, "@{k}={s:?}")?,
                        AttrValue::Var(x) => write!(f, "@{k}=var {x}")?,
                    }
                }
                for c in children {
                    if !first {
                        f.write_str(", ")?;
                    }
                    first = false;
                    write!(f, "{c}")?;
                }
                f.write_str(close)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reweb_term::parse_term;

    fn b(pairs: &[(&str, &str)]) -> Bindings {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), parse_term(v).unwrap()))
            .collect()
    }

    #[test]
    fn splice_and_text_of() {
        let ct = ConstructTerm::elem("out")
            .child(ConstructTerm::var("X"))
            .child(ConstructTerm::TextOf("X".into()))
            .finish();
        let t = ct.instantiate(&[b(&[("X", "price[\"9.5\"]")])]).unwrap();
        assert_eq!(t.to_string(), "out[price[\"9.5\"], \"9.5\"]");
    }

    #[test]
    fn unbound_variable_errors() {
        let ct = ConstructTerm::elem("out")
            .field_var("v", "Missing")
            .finish();
        assert!(ct.instantiate(&[Bindings::new()]).is_err());
    }

    #[test]
    fn calc_computes() {
        use crate::expr::{BinOp, Expr};
        let ct = ConstructTerm::elem("total")
            .child(ConstructTerm::Calc(Expr::bin(
                Expr::var("P"),
                BinOp::Mul,
                Expr::Num(2.0),
            )))
            .finish();
        let t = ct.instantiate(&[b(&[("P", "\"3.5\"")])]).unwrap();
        assert_eq!(t.text_content(), "7");
    }

    #[test]
    fn all_iterates_groups() {
        let ct = ConstructTerm::elem("list")
            .child(ConstructTerm::All {
                inner: Box::new(
                    ConstructTerm::elem("item")
                        .child(ConstructTerm::var("X"))
                        .finish(),
                ),
                group_by: vec![],
            })
            .finish();
        let answers = vec![
            b(&[("X", "\"a\"")]),
            b(&[("X", "\"b\"")]),
            b(&[("X", "\"a\"")]), // duplicate collapses
        ];
        let t = ct.instantiate(&answers).unwrap();
        assert_eq!(t.children().len(), 2);
        assert_eq!(t.to_string(), "list[item[\"a\"], item[\"b\"]]");
    }

    #[test]
    fn aggregates() {
        let answers = vec![
            b(&[("P", "\"1\""), ("C", "\"x\"")]),
            b(&[("P", "\"2\""), ("C", "\"y\"")]),
            b(&[("P", "\"3\""), ("C", "\"x\"")]),
        ];
        assert_eq!(AggFn::Sum.apply("P", &answers).unwrap(), 6.0);
        assert_eq!(AggFn::Avg.apply("P", &answers).unwrap(), 2.0);
        assert_eq!(AggFn::Min.apply("P", &answers).unwrap(), 1.0);
        assert_eq!(AggFn::Max.apply("P", &answers).unwrap(), 3.0);
        // count counts distinct terms
        assert_eq!(AggFn::Count.apply("C", &answers).unwrap(), 2.0);
        assert!(AggFn::Sum.apply("C", &[b(&[("C", "\"x\"")])]).is_err());
    }

    #[test]
    fn construct_groups_by_outer_vars() {
        // One output per customer, each listing their orders.
        let ct = ConstructTerm::elem("summary")
            .field_var("customer", "C")
            .child(ConstructTerm::All {
                inner: Box::new(
                    ConstructTerm::elem("order")
                        .child(ConstructTerm::var("O"))
                        .finish(),
                ),
                group_by: vec![],
            })
            .child(ConstructTerm::Agg(AggFn::Count, "O".into()))
            .finish();
        let answers = vec![
            b(&[("C", "\"ann\""), ("O", "\"o1\"")]),
            b(&[("C", "\"ann\""), ("O", "\"o2\"")]),
            b(&[("C", "\"bob\""), ("O", "\"o3\"")]),
        ];
        let out = construct(&ct, &answers).unwrap();
        assert_eq!(out.len(), 2);
        let ann = &out[0];
        assert_eq!(ann.children()[0].text_content(), "ann");
        assert_eq!(
            ann.children()
                .iter()
                .filter(|c| c.label() == Some("order"))
                .count(),
            2
        );
        // count aggregate per group
        assert_eq!(ann.children().last().unwrap().as_text(), Some("2"));
    }

    #[test]
    fn construct_empty_answers_is_empty() {
        let ct = ConstructTerm::elem("x").finish();
        assert!(construct(&ct, &[]).unwrap().is_empty());
    }

    #[test]
    fn explicit_group_by() {
        // Group orders by customer inside one document.
        let ct = ConstructTerm::elem("report")
            .child(ConstructTerm::All {
                inner: Box::new(
                    ConstructTerm::elem("cust")
                        .field_var("name", "C")
                        .child(ConstructTerm::Agg(AggFn::Count, "O".into()))
                        .finish(),
                ),
                group_by: vec!["C".into()],
            })
            .finish();
        let answers = vec![
            b(&[("C", "\"ann\""), ("O", "\"o1\"")]),
            b(&[("C", "\"ann\""), ("O", "\"o2\"")]),
            b(&[("C", "\"bob\""), ("O", "\"o3\"")]),
        ];
        let out = construct(&ct, &answers).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].children().len(), 2);
    }
}
