//! Deductive rules — views over Web data (Thesis 9).
//!
//! > "Deductive rules can be compared to views in relational databases …
//! > They avoid replication of complicated queries, allow to derive
//! > intensional data from extensional data, and can be used to mediate
//! > data in different schemas."
//!
//! A [`DeductiveRule`] has a construct-term head and a condition body
//! (query atoms over resources or other views, plus comparisons). Rules are
//! registered with a [`crate::QueryEngine`] under a view URI; querying that
//! URI sees the materialized extent. Evaluation is bottom-up to a fixpoint,
//! so positive recursion works; negation through a cycle is rejected.
//!
//! The same rule shape is reused for *event* deduction in `reweb-events`
//! (`DETECT … ON …`), where the thesis prescribes rejecting recursion
//! entirely for efficiency.

use std::fmt;

use crate::construct::ConstructTerm;
use crate::engine::Condition;

/// A deductive rule: `CONSTRUCT head FROM body END`.
#[derive(Clone, Debug, PartialEq)]
pub struct DeductiveRule {
    /// Construct term instantiated per answer of the body.
    pub head: ConstructTerm,
    /// Condition whose answers drive the head.
    pub body: Condition,
}

impl DeductiveRule {
    /// Build `CONSTRUCT head FROM body END`.
    pub fn new(head: ConstructTerm, body: Condition) -> DeductiveRule {
        DeductiveRule { head, body }
    }
}

impl fmt::Display for DeductiveRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CONSTRUCT {} FROM {} END", self.head, self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bindings::Bindings;
    use crate::engine::QueryEngine;
    use crate::parser::{parse_condition, parse_construct_term, parse_query_term};
    use reweb_term::{parse_term, ResourceStore};

    fn engine_with_flights() -> QueryEngine {
        let mut store = ResourceStore::new();
        store.put(
            "http://air/flights",
            parse_term(
                "flights[ flight{from[\"MUC\"], to[\"CDG\"]}, \
                           flight{from[\"CDG\"], to[\"NYC\"]}, \
                           flight{from[\"NYC\"], to[\"SFO\"]} ]",
            )
            .unwrap(),
        );
        QueryEngine::with_store(store)
    }

    #[test]
    fn simple_view_mediates_schema() {
        // A view renaming flight{from,to} into hop[a,b].
        let mut e = engine_with_flights();
        e.register_view(
            "view://hops",
            DeductiveRule::new(
                parse_construct_term("hop[a[var F], b[var T]]").unwrap(),
                parse_condition("in \"http://air/flights\" flight{{from[[var F]], to[[var T]]}}")
                    .unwrap(),
            ),
        );
        let answers = e
            .query(
                "view://hops",
                &parse_query_term("hop[[a[[var X]]]]").unwrap(),
                &Bindings::new(),
            )
            .unwrap();
        assert_eq!(answers.len(), 3);
    }

    #[test]
    fn recursive_view_computes_transitive_closure() {
        // reachable(X,Y) :- flight(X,Y) | flight(X,Z), reachable(Z,Y).
        let mut e = engine_with_flights();
        e.register_view(
            "view://reachable",
            DeductiveRule::new(
                parse_construct_term("reach[a[var F], b[var T]]").unwrap(),
                parse_condition("in \"http://air/flights\" flight{{from[[var F]], to[[var T]]}}")
                    .unwrap(),
            ),
        );
        e.register_view(
            "view://reachable",
            DeductiveRule::new(
                parse_construct_term("reach[a[var F], b[var T]]").unwrap(),
                parse_condition(
                    "in \"http://air/flights\" flight{{from[[var F]], to[[var M]]}} \
                     and in \"view://reachable\" reach[a[[var M]], b[[var T]]]",
                )
                .unwrap(),
            ),
        );
        let exts = e.materialize_views().unwrap();
        let reach = &exts["view://reachable"];
        // 3 base hops + MUC→NYC, MUC→SFO, CDG→SFO = 6.
        assert_eq!(reach.len(), 6);
        // And it is queryable like a resource:
        let answers = e
            .query(
                "view://reachable",
                &parse_query_term("reach[a[[\"MUC\"]], b[[\"SFO\"]]]").unwrap(),
                &Bindings::new(),
            )
            .unwrap();
        assert_eq!(answers.len(), 1);
    }

    #[test]
    fn view_over_view() {
        let mut e = engine_with_flights();
        e.register_view(
            "view://hops",
            DeductiveRule::new(
                parse_construct_term("hop[a[var F], b[var T]]").unwrap(),
                parse_condition("in \"http://air/flights\" flight{{from[[var F]], to[[var T]]}}")
                    .unwrap(),
            ),
        );
        e.register_view(
            "view://origins",
            DeductiveRule::new(
                parse_construct_term("origin[var F]").unwrap(),
                parse_condition("in \"view://hops\" hop[[a[[var F]]]]").unwrap(),
            ),
        );
        let exts = e.materialize_views().unwrap();
        assert_eq!(exts["view://origins"].len(), 3);
    }

    #[test]
    fn unstratified_negation_rejected() {
        let mut e = engine_with_flights();
        // odd :- flight(X,Y), not odd  — negation through its own cycle.
        e.register_view(
            "view://odd",
            DeductiveRule::new(
                parse_construct_term("o[var F]").unwrap(),
                parse_condition(
                    "in \"http://air/flights\" flight{{from[[var F]]}} \
                     and not in \"view://odd\" o[[var F]]",
                )
                .unwrap(),
            ),
        );
        assert!(e.materialize_views().is_err());
    }

    #[test]
    fn stratified_negation_over_view_ok() {
        let mut e = engine_with_flights();
        e.register_view(
            "view://dests",
            DeductiveRule::new(
                parse_construct_term("dest[var T]").unwrap(),
                parse_condition("in \"http://air/flights\" flight{{to[[var T]]}}").unwrap(),
            ),
        );
        // Airports that are origins but never destinations.
        e.register_view(
            "view://pure_origins",
            DeductiveRule::new(
                parse_construct_term("pure[var F]").unwrap(),
                parse_condition(
                    "in \"http://air/flights\" flight{{from[[var F]]}} \
                     and not in \"view://dests\" dest[[var F]]",
                )
                .unwrap(),
            ),
        );
        let exts = e.materialize_views().unwrap();
        let pure = &exts["view://pure_origins"];
        assert_eq!(pure.len(), 1);
        assert_eq!(pure[0].text_content(), "MUC");
    }

    #[test]
    fn display_roundtrip_shape() {
        let r = DeductiveRule::new(
            parse_construct_term("hop[a[var F]]").unwrap(),
            parse_condition("in \"u\" flight{{from[[var F]]}}").unwrap(),
        );
        let s = r.to_string();
        assert!(s.starts_with("CONSTRUCT hop[a[var F]] FROM in "));
        assert!(s.ends_with("END"));
    }
}
