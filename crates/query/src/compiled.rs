//! Compiled rule matching: a shared alpha discrimination network.
//!
//! The interpreted dispatch path answers "which rules might this event
//! trigger?" with a label lookup and then re-walks every candidate's
//! `QueryTerm` from scratch — per-event cost linear in the rules sharing a
//! label. This module compiles the *necessary conditions* of every
//! installed pattern into one trie shared across all rules (a Rete-style
//! **alpha network**):
//!
//! ```text
//! label ──► attr presence ──► attr value (=) ──► child shape ──► guards ──► rule ids
//! ```
//!
//! * Each root pattern yields a [`Registration`]: its trigger label plus a
//!   canonically-ordered list of [`AlphaTest`]s, every one a *necessary*
//!   condition — an event failing any test cannot match the pattern, while
//!   an event passing all tests is merely a candidate (the full matcher
//!   still runs on it). That containment is what keeps compiled output
//!   byte-identical to interpreted output.
//! * Identical tests are shared structurally: insertion walks the trie
//!   keyed by `(node, test)` — `Sym`-based structural hashing — so 100k
//!   rules over the same vocabulary collapse into a small network, and
//!   value-discriminating tests (`@route="eu-1"`) dispatch through a hash
//!   map in O(1) instead of being tried one rule at a time.
//! * The network supports **live extension**: installing one more rule
//!   threads one more path through the existing trie (`insert`), never
//!   rebuilding the other registrations.
//!
//! [`EventShape`] is the per-event fingerprint the tests run against,
//! built once per event; attribute values resolve through probational
//! value interning ([`reweb_term::Sym::intern_value`]) so equality tests
//! compare `Sym`s, not strings.
//!
//! Firing order is preserved because the network only ever *selects*
//! candidate rule indices; the engine sorts and deduplicates them into
//! installation order, exactly as the interpreted label index did. See
//! DESIGN §1d.

use std::collections::HashMap;
use std::hash::BuildHasherDefault;

use reweb_term::{Sym, SymHasher, SymMap, Term};

use crate::ast::{AttrPattern, LabelPattern, QueryTerm};
use crate::bindings::Bindings;
use crate::expr::Cmp;

/// A map keyed by `(Sym, Sym)` pairs with the integer [`SymHasher`].
type SymPairMap<V> = HashMap<(Sym, Sym), V, BuildHasherDefault<SymHasher>>;

// ---------------------------------------------------------------------------
// Event fingerprint
// ---------------------------------------------------------------------------

/// The per-event fingerprint alpha tests evaluate against.
///
/// Built once per dispatched event from the payload root: label, resolved
/// attributes, child shape, and direct text content. Attribute values and
/// child texts resolve to `Sym`s via [`Sym::intern_value`]; a value that
/// resolves to `None` can never equal an interned pattern constant (those
/// are interned eagerly at compile time), so equality tests simply fail.
#[derive(Debug)]
pub struct EventShape<'a> {
    /// Root element label (`None` for a text payload).
    pub label: Option<Sym>,
    /// Attributes of the root: name, resolved value symbol, raw value.
    pub attrs: Vec<(Sym, Option<Sym>, &'a str)>,
    /// Number of children of the root.
    pub child_count: usize,
    /// Labels of the root's element children.
    pub child_labels: Vec<Sym>,
    /// `(child label, resolved text)` for each direct text child of each
    /// element child — the pairs `HasChildLabelText` dispatches on.
    pub child_pairs: Vec<(Sym, Sym)>,
    /// Resolved direct text-leaf children of the root.
    pub text_children: Vec<Sym>,
    /// The payload string, when the event is a bare text leaf.
    pub text: Option<&'a str>,
}

impl<'a> EventShape<'a> {
    /// Fingerprint `payload`'s root node.
    pub fn of(payload: &'a Term) -> EventShape<'a> {
        match payload.as_element() {
            None => EventShape {
                label: None,
                attrs: Vec::new(),
                child_count: 0,
                child_labels: Vec::new(),
                child_pairs: Vec::new(),
                text_children: Vec::new(),
                text: payload.as_text(),
            },
            Some(e) => {
                let attrs = e
                    .attrs
                    .iter()
                    .map(|(k, v)| (*k, Sym::intern_value(v), v.as_str()))
                    .collect();
                let mut child_labels = Vec::new();
                let mut child_pairs = Vec::new();
                let mut text_children = Vec::new();
                for c in &e.children {
                    match c {
                        Term::Elem(ce) => {
                            child_labels.push(ce.label);
                            for cc in &ce.children {
                                if let Some(t) = cc.as_text() {
                                    if let Some(ts) = Sym::intern_value(t) {
                                        child_pairs.push((ce.label, ts));
                                    }
                                }
                            }
                        }
                        Term::Text(t) => {
                            if let Some(ts) = Sym::intern_value(t) {
                                text_children.push(ts);
                            }
                        }
                    }
                }
                EventShape {
                    label: Some(e.label),
                    attrs,
                    child_count: e.children.len(),
                    child_labels,
                    child_pairs,
                    text_children,
                    text: None,
                }
            }
        }
    }

    /// Resolved value symbol of attribute `name`, if present and resolved.
    fn attr_sym(&self, name: Sym) -> Option<Sym> {
        self.attrs
            .iter()
            .find(|(k, _, _)| *k == name)
            .and_then(|(_, v, _)| *v)
    }

    /// Raw value of attribute `name`, if present.
    fn attr_raw(&self, name: Sym) -> Option<&'a str> {
        self.attrs
            .iter()
            .find(|(k, _, _)| *k == name)
            .map(|(_, _, raw)| *raw)
    }

    fn has_attr(&self, name: Sym) -> bool {
        self.attrs.iter().any(|(k, _, _)| *k == name)
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

/// A comparison guard hoisted from a `WHERE` clause: the single variable
/// `var` is bound at the pattern root as the value of attribute `attr`, so
/// the comparison can run during dispatch from the raw attribute string.
#[derive(Clone, Debug)]
pub struct GuardTest {
    /// The comparison's only variable.
    pub var: Sym,
    /// The root attribute whose value binds `var`.
    pub attr: Sym,
    /// The hoisted comparison.
    pub cmp: Cmp,
}

impl GuardTest {
    /// Evaluate against the event's raw attribute value. Mirrors the
    /// operator semantics exactly: an evaluation error means "does not
    /// hold", as in the `Where` operator.
    fn passes(&self, shape: &EventShape<'_>) -> bool {
        let Some(raw) = shape.attr_raw(self.attr) else {
            return false;
        };
        let Some(b) = Bindings::new().bind_sym(self.var, &Term::text(raw)) else {
            return false;
        };
        self.cmp.holds(&b).unwrap_or(false)
    }
}

/// One necessary condition on the event's root, compiled from a pattern.
///
/// Every variant is *necessary*: if the test fails, the pattern cannot
/// match the event. No variant is assumed sufficient.
#[derive(Clone, Debug)]
pub enum AlphaTest {
    /// Root has attribute `name` (any value).
    AttrPresent(Sym),
    /// Root attribute `name` equals the interned constant `value`.
    AttrEq(Sym, Sym),
    /// Some element child of the root has this label.
    HasChildLabel(Sym),
    /// Some element child with this label has a direct text child equal to
    /// this interned constant.
    HasChildLabelText(Sym, Sym),
    /// Some direct text-leaf child of the root equals this constant.
    HasTextChild(Sym),
    /// Root has exactly this many children (total child regimes).
    ChildCountEq(usize),
    /// Root has at least this many children (partial child regimes).
    ChildCountGe(usize),
    /// The payload is a bare text leaf equal to this constant.
    IsText(Sym),
    /// A hoisted `WHERE` comparison over one root attribute binding.
    Guard(GuardTest),
}

impl AlphaTest {
    /// Structural identity for trie sharing and canonical ordering.
    ///
    /// Variant order is the network's layer order (attribute presence →
    /// attribute equality → child shape → guards), so sorting a
    /// registration's tests by key aligns shared prefixes across rules.
    fn key(&self) -> TestKey {
        match self {
            AlphaTest::AttrPresent(k) => TestKey::AttrPresent(*k),
            AlphaTest::AttrEq(k, v) => TestKey::AttrEq(*k, *v),
            AlphaTest::HasChildLabel(l) => TestKey::HasChildLabel(*l),
            AlphaTest::HasChildLabelText(l, t) => TestKey::HasChildLabelText(*l, *t),
            AlphaTest::HasTextChild(t) => TestKey::HasTextChild(*t),
            AlphaTest::ChildCountEq(n) => TestKey::ChildCountEq(*n),
            AlphaTest::ChildCountGe(n) => TestKey::ChildCountGe(*n),
            AlphaTest::IsText(t) => TestKey::IsText(*t),
            // `Cmp` holds floats (no `Eq`/`Hash`), so guards are keyed by
            // their printed form — identical guards print identically.
            AlphaTest::Guard(g) => TestKey::Guard(g.var, g.attr, g.cmp.to_string()),
        }
    }

    /// Does the event pass this test?
    fn passes(&self, shape: &EventShape<'_>) -> bool {
        match self {
            AlphaTest::AttrPresent(k) => shape.has_attr(*k),
            AlphaTest::AttrEq(k, v) => shape.attr_sym(*k) == Some(*v),
            AlphaTest::HasChildLabel(l) => shape.child_labels.contains(l),
            AlphaTest::HasChildLabelText(l, t) => shape.child_pairs.contains(&(*l, *t)),
            AlphaTest::HasTextChild(t) => shape.text_children.contains(t),
            AlphaTest::ChildCountEq(n) => shape.child_count == *n,
            AlphaTest::ChildCountGe(n) => shape.child_count >= *n,
            AlphaTest::IsText(t) => {
                shape.text.is_some() && shape.text.and_then(Sym::lookup) == Some(*t)
            }
            AlphaTest::Guard(g) => g.passes(shape),
        }
    }
}

/// Canonical, hashable identity of an [`AlphaTest`] (structural hashing on
/// `Sym` ids; guards via their printed form).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum TestKey {
    AttrPresent(Sym),
    AttrEq(Sym, Sym),
    HasChildLabel(Sym),
    HasChildLabelText(Sym, Sym),
    HasTextChild(Sym),
    ChildCountEq(usize),
    ChildCountGe(usize),
    IsText(Sym),
    Guard(Sym, Sym, String),
}

// ---------------------------------------------------------------------------
// Registrations (compiler output, network input)
// ---------------------------------------------------------------------------

/// The compiled form of one trigger pattern: its dispatch label and the
/// canonically-ordered necessary conditions extracted from the pattern.
#[derive(Clone, Debug)]
pub struct Registration {
    /// Root label to dispatch on; `None` routes through the wildcard
    /// bucket, which every event visits.
    pub label: Option<Sym>,
    /// Necessary conditions, sorted by structural key, deduplicated.
    pub tests: Vec<AlphaTest>,
}

impl Registration {
    /// A label-only registration (no tests beyond the dispatch label) —
    /// the compiled equivalent of the interpreted label index entry. Used
    /// for rules whose timing semantics forbid skipping events (absence
    /// windows, TTL-limited state).
    pub fn label_only(label: Option<Sym>) -> Registration {
        Registration {
            label,
            tests: Vec::new(),
        }
    }

    /// Drop everything but the dispatch label.
    pub fn strip_tests(mut self) -> Registration {
        self.tests.clear();
        self
    }

    fn normalize(mut self) -> Registration {
        self.tests.sort_by_cached_key(AlphaTest::key);
        self.tests.dedup_by_key(|t| t.key());
        self
    }
}

/// Compile the necessary conditions of `pattern` into a [`Registration`],
/// hoisting any of `cmps` whose single variable is bound as a root
/// attribute value into dispatch-time [`AlphaTest::Guard`]s.
///
/// Interns every constant the tests compare against (so event-side
/// resolution by [`Sym::lookup`]/[`Sym::intern_value`] is exact), and only
/// ever *under*-approximates: tests are necessary conditions, never
/// assumed sufficient.
pub fn compile_pattern(pattern: &QueryTerm, cmps: &[Cmp]) -> Registration {
    let mut reg = Registration {
        label: None,
        tests: Vec::new(),
    };
    let mut attr_vars: SymMap<Sym> = SymMap::default();
    compile_root(pattern, &mut reg, &mut attr_vars);
    for cmp in cmps {
        let vars = cmp.variables();
        if let [x] = vars[..] {
            if let Some(&attr) = attr_vars.get(&x) {
                reg.tests.push(AlphaTest::Guard(GuardTest {
                    var: x,
                    attr,
                    cmp: cmp.clone(),
                }));
            }
        }
    }
    reg.normalize()
}

fn compile_root(p: &QueryTerm, reg: &mut Registration, attr_vars: &mut SymMap<Sym>) {
    match p {
        // A bare variable or descendant pattern can match any payload at
        // any depth: wildcard, no tests.
        QueryTerm::Var(_) | QueryTerm::Desc(_) | QueryTerm::Without(_) => {}
        QueryTerm::VarAs(_, inner) => compile_root(inner, reg, attr_vars),
        QueryTerm::Text(s) => reg.tests.push(AlphaTest::IsText(Sym::new(s))),
        QueryTerm::Elem(qe) => {
            if let LabelPattern::Exact(l) = qe.label {
                reg.label = Some(l);
            }
            for (k, ap) in &qe.attrs {
                match ap {
                    AttrPattern::Exact(v) => reg.tests.push(AlphaTest::AttrEq(*k, Sym::new(v))),
                    AttrPattern::Var(x) => {
                        reg.tests.push(AlphaTest::AttrPresent(*k));
                        attr_vars.entry(*x).or_insert(*k);
                    }
                }
            }
            let positives: Vec<&QueryTerm> = qe
                .children
                .iter()
                .filter(|c| !matches!(c, QueryTerm::Without(_)))
                .collect();
            if qe.partial {
                if !positives.is_empty() {
                    reg.tests.push(AlphaTest::ChildCountGe(positives.len()));
                }
            } else {
                reg.tests.push(AlphaTest::ChildCountEq(positives.len()));
            }
            for c in &positives {
                compile_child(c, reg);
            }
        }
    }
}

/// Necessary conditions contributed by one positive child pattern.
fn compile_child(c: &QueryTerm, reg: &mut Registration) {
    match c {
        QueryTerm::VarAs(_, inner) => compile_child(inner, reg),
        QueryTerm::Text(s) => reg.tests.push(AlphaTest::HasTextChild(Sym::new(s))),
        QueryTerm::Elem(ce) => {
            if let LabelPattern::Exact(m) = ce.label {
                // A direct text constant inside the child pattern is
                // required in *every* child regime — strongest available
                // test; otherwise the label presence alone.
                let text_const = ce.children.iter().find_map(|cc| match cc {
                    QueryTerm::Text(s) => Some(Sym::new(s)),
                    _ => None,
                });
                match text_const {
                    Some(t) => reg.tests.push(AlphaTest::HasChildLabelText(m, t)),
                    None => reg.tests.push(AlphaTest::HasChildLabel(m)),
                }
            }
        }
        // Variables, descendants, and negations constrain nothing the
        // root fingerprint can check.
        QueryTerm::Var(_) | QueryTerm::Desc(_) | QueryTerm::Without(_) => {}
    }
}

// ---------------------------------------------------------------------------
// Candidate indexes: the trait both dispatch paths implement
// ---------------------------------------------------------------------------

/// The rule-dispatch index: maps an event fingerprint to the candidate
/// rule indices that might trigger on it.
///
/// Two implementations: [`InterpretedIndex`] (the historical label →
/// rule-list map, every same-label rule a candidate) and [`AlphaNetwork`]
/// (the compiled discrimination network). The contract both satisfy:
/// `collect` pushes a **superset-free, order-free** candidate list — every
/// rule that could match the event is pushed at least once (possibly with
/// duplicates, in any order), and the caller sorts + deduplicates into
/// installation order, which is what preserves firing order across the
/// two paths.
pub trait CandidateIndex: Send {
    /// Add one rule's registration. Live extension: must not disturb
    /// existing registrations.
    fn insert(&mut self, reg: &Registration, rule: usize);

    /// Push every candidate rule index for `shape` into `out` (duplicates
    /// allowed; caller sorts and dedups), incrementing `tests_run` once
    /// per alpha test or dispatch probe evaluated.
    fn collect(&self, shape: &EventShape<'_>, out: &mut Vec<usize>, tests_run: &mut u64);

    /// Number of interior nodes (diagnostics; 0 where meaningless).
    fn node_count(&self) -> usize;
}

/// The interpreted dispatch path: label → rule list, wildcard rules appended
/// to every event. Ignores registration tests entirely — every same-label
/// rule is a candidate, exactly as `ReactiveEngine` dispatched historically.
#[derive(Debug, Default)]
pub struct InterpretedIndex {
    by_label: SymMap<Vec<usize>>,
    wildcard: Vec<usize>,
}

impl InterpretedIndex {
    /// An empty index.
    pub fn new() -> InterpretedIndex {
        InterpretedIndex::default()
    }
}

impl CandidateIndex for InterpretedIndex {
    fn insert(&mut self, reg: &Registration, rule: usize) {
        match reg.label {
            Some(l) => self.by_label.entry(l).or_default().push(rule),
            None => self.wildcard.push(rule),
        }
    }

    fn collect(&self, shape: &EventShape<'_>, out: &mut Vec<usize>, tests_run: &mut u64) {
        if let Some(l) = shape.label {
            *tests_run += 1;
            if let Some(rules) = self.by_label.get(&l) {
                out.extend_from_slice(rules);
            }
        }
        out.extend_from_slice(&self.wildcard);
    }

    fn node_count(&self) -> usize {
        0
    }
}

// ---------------------------------------------------------------------------
// The alpha network
// ---------------------------------------------------------------------------

type NodeId = usize;

/// One trie node. Passing edges are split by dispatch mechanism:
/// value-equality edges resolve through hash maps in O(1) per attribute
/// name / child pair, everything else is evaluated linearly (each linear
/// edge is a *distinct* test, shared across all rules that need it).
#[derive(Debug, Default)]
struct Node {
    /// `AttrEq` edges: attribute name → (value symbol → child node). The
    /// event's value for the attribute selects at most one edge.
    attr_eq: SymMap<SymMap<NodeId>>,
    /// `HasChildLabelText` edges: (child label, text) → child node. Probed
    /// once per event child pair.
    child_text: SymPairMap<NodeId>,
    /// All other edges, one per distinct test.
    linear: Vec<(AlphaTest, NodeId)>,
    /// Rules whose registration ends at this node.
    emit: Vec<usize>,
}

/// The shared alpha discrimination network (see module docs).
///
/// Structure: a label-dispatch root (`labels` + the wildcard bucket every
/// event visits) over tries of shared [`AlphaTest`] edges. Identical
/// `(parent, test)` pairs are structurally deduplicated across all
/// registrations, so the network's size tracks the *vocabulary* of the
/// rule set, not the rule count, and per-event work tracks the event's
/// shape, not the number of installed rules.
#[derive(Debug, Default)]
pub struct AlphaNetwork {
    nodes: Vec<Node>,
    /// Root buckets by exact label.
    labels: SymMap<NodeId>,
    /// Root bucket for label-less registrations (wildcard patterns, text
    /// patterns); traversed for every event, including text payloads.
    any_label: Option<NodeId>,
    /// Structural-sharing map: `(parent, test key)` → existing child.
    edges: HashMap<(NodeId, TestKey), NodeId>,
}

impl AlphaNetwork {
    /// An empty network.
    pub fn new() -> AlphaNetwork {
        AlphaNetwork::default()
    }

    fn new_node(&mut self) -> NodeId {
        self.nodes.push(Node::default());
        self.nodes.len() - 1
    }

    /// Child of `parent` along `test`, creating and wiring the edge on
    /// first use (the structural-sharing step).
    fn child(&mut self, parent: NodeId, test: &AlphaTest) -> NodeId {
        let key = test.key();
        if let Some(&c) = self.edges.get(&(parent, key.clone())) {
            return c;
        }
        let c = self.new_node();
        match test {
            AlphaTest::AttrEq(k, v) => {
                self.nodes[parent]
                    .attr_eq
                    .entry(*k)
                    .or_default()
                    .insert(*v, c);
            }
            AlphaTest::HasChildLabelText(l, t) => {
                self.nodes[parent].child_text.insert((*l, *t), c);
            }
            t => self.nodes[parent].linear.push((t.clone(), c)),
        }
        self.edges.insert((parent, key), c);
        c
    }

    fn walk(
        &self,
        node: NodeId,
        shape: &EventShape<'_>,
        out: &mut Vec<usize>,
        tests_run: &mut u64,
    ) {
        let n = &self.nodes[node];
        out.extend_from_slice(&n.emit);
        for (name, by_value) in &n.attr_eq {
            *tests_run += 1;
            if let Some(v) = shape.attr_sym(*name) {
                if let Some(&c) = by_value.get(&v) {
                    self.walk(c, shape, out, tests_run);
                }
            }
        }
        if !n.child_text.is_empty() {
            for pair in &shape.child_pairs {
                *tests_run += 1;
                if let Some(&c) = n.child_text.get(pair) {
                    self.walk(c, shape, out, tests_run);
                }
            }
        }
        for (test, c) in &n.linear {
            *tests_run += 1;
            if test.passes(shape) {
                self.walk(*c, shape, out, tests_run);
            }
        }
    }
}

impl CandidateIndex for AlphaNetwork {
    fn insert(&mut self, reg: &Registration, rule: usize) {
        let mut node = match reg.label {
            Some(l) => match self.labels.get(&l) {
                Some(&n) => n,
                None => {
                    let n = self.new_node();
                    self.labels.insert(l, n);
                    n
                }
            },
            None => match self.any_label {
                Some(n) => n,
                None => {
                    let n = self.new_node();
                    self.any_label = Some(n);
                    n
                }
            },
        };
        for test in &reg.tests {
            node = self.child(node, test);
        }
        self.nodes[node].emit.push(rule);
    }

    fn collect(&self, shape: &EventShape<'_>, out: &mut Vec<usize>, tests_run: &mut u64) {
        if let Some(l) = shape.label {
            *tests_run += 1;
            if let Some(&n) = self.labels.get(&l) {
                self.walk(n, shape, out, tests_run);
            }
        }
        if let Some(n) = self.any_label {
            self.walk(n, shape, out, tests_run);
        }
    }

    fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, Expr};
    use crate::parser::{parse_cmp, parse_query_term};
    use reweb_term::parse_term;

    fn reg(pattern: &str) -> Registration {
        compile_pattern(&parse_query_term(pattern).unwrap(), &[])
    }

    fn candidates(net: &AlphaNetwork, payload: &str) -> Vec<usize> {
        let t = parse_term(payload).unwrap();
        let shape = EventShape::of(&t);
        let mut out = Vec::new();
        let mut tests = 0;
        net.collect(&shape, &mut out, &mut tests);
        out.sort_unstable();
        out.dedup();
        out
    }

    #[test]
    fn attr_value_discrimination_is_shared() {
        let mut net = AlphaNetwork::new();
        for i in 0..100 {
            let r = reg(&format!("order{{{{ @route=\"r{i}\", n[[var N]] }}}}"));
            net.insert(&r, i);
        }
        // 100 rules share label + attr-present layers; value edges fan out
        // from ONE dispatch map, so node count ≈ rules + shared prefix, and
        // a lookup touches one value edge.
        let hits = candidates(&net, "order{@route=\"r42\", n[\"x\"]}");
        assert_eq!(hits, vec![42]);

        let t = parse_term("order{@route=\"r42\", n[\"x\"]}").unwrap();
        let shape = EventShape::of(&t);
        let mut out = Vec::new();
        let mut tests = 0;
        net.collect(&shape, &mut out, &mut tests);
        assert!(
            tests < 10,
            "dispatch cost must not scale with rule count (ran {tests} tests)"
        );
    }

    #[test]
    fn tests_are_necessary_conditions_only() {
        // Candidate containment: any payload the full matcher accepts must
        // pass the compiled tests.
        let patterns = [
            "order{{ id[[var O]], customer[[var C]] }}",
            "a[b, c]",
            "a[[b, d]]",
            "flight{{ status[\"cancelled\"], without rebooked }}",
            "*{{ v[[var X]] }}",
            "pair{ var X, var X }",
            "\"ping\"",
        ];
        let payloads = [
            r#"order{ id["o-1"], customer["c1"] }"#,
            "a[b, c]",
            "a[b, c, d]",
            r#"flight[status["cancelled"]]"#,
            r#"thing{ v["1"] }"#,
            r#"pair[v["1"], v["1"]]"#,
            "\"ping\"",
            "noise",
        ];
        for p in &patterns {
            let q = parse_query_term(p).unwrap();
            let r = compile_pattern(&q, &[]);
            for d in &payloads {
                let t = parse_term(d).unwrap();
                let interpreted = !crate::matcher::match_at(&q, &t, &Bindings::new()).is_empty();
                let shape = EventShape::of(&t);
                let label_ok = match r.label {
                    Some(l) => shape.label == Some(l),
                    None => true,
                };
                let compiled = label_ok && r.tests.iter().all(|test| test.passes(&shape));
                assert!(
                    !interpreted || compiled,
                    "pattern {p} matched {d} but compiled tests rejected it"
                );
            }
        }
    }

    #[test]
    fn guards_hoist_only_root_attr_vars() {
        let q = parse_query_term("reading{{ @level=var L, src[[var S]] }}").unwrap();
        let level_guard = parse_cmp("var L >= 10").unwrap();
        let src_guard = parse_cmp("var S >= 10").unwrap(); // S is not an attr var
        let two_vars = Cmp::new(Expr::var("L"), CmpOp::Lt, Expr::var("S"));
        let r = compile_pattern(&q, &[level_guard, src_guard, two_vars]);
        let guards: Vec<_> = r
            .tests
            .iter()
            .filter(|t| matches!(t, AlphaTest::Guard(_)))
            .collect();
        assert_eq!(guards.len(), 1, "only the root-attr single-var cmp hoists");

        let mut net = AlphaNetwork::new();
        net.insert(&r, 0);
        assert_eq!(
            candidates(&net, "reading{@level=\"12\", src[\"a\"]}"),
            vec![0]
        );
        assert!(candidates(&net, "reading{@level=\"7\", src[\"a\"]}").is_empty());
    }

    #[test]
    fn live_extension_does_not_disturb_existing_rules() {
        let mut net = AlphaNetwork::new();
        net.insert(&reg("a{{ x[[var X]] }}"), 0);
        let before = candidates(&net, "a{ x[\"1\"] }");
        net.insert(&reg("a{{ x[[var X]], y[[var Y]] }}"), 1);
        net.insert(&reg("b{{ z[[var Z]] }}"), 2);
        assert_eq!(candidates(&net, "a{ x[\"1\"] }"), before);
        assert_eq!(candidates(&net, "a{ x[\"1\"], y[\"2\"] }"), vec![0, 1]);
        assert_eq!(candidates(&net, "b{ z[\"3\"] }"), vec![2]);
    }

    #[test]
    fn shared_prefixes_collapse() {
        let mut net = AlphaNetwork::new();
        // Ten rules with identical structure differing only in rule id.
        let r = reg("evt{{ k[[var K]] }}");
        for i in 0..10 {
            net.insert(&r, i);
        }
        // One path through the trie serves all ten.
        assert!(net.node_count() <= 3, "nodes: {}", net.node_count());
        assert_eq!(
            candidates(&net, "evt{ k[\"v\"] }"),
            (0..10).collect::<Vec<_>>()
        );
    }

    #[test]
    fn wildcard_and_text_routes() {
        let mut net = AlphaNetwork::new();
        net.insert(&reg("*{{ v[[var X]] }}"), 0);
        net.insert(&reg("\"ping\""), 1);
        assert_eq!(candidates(&net, "anything{ v[\"1\"] }"), vec![0]);
        assert_eq!(candidates(&net, "\"ping\""), vec![1]);
        assert!(candidates(&net, "\"pong\"").is_empty());
        assert!(candidates(&net, "anything{ w[\"1\"] }").is_empty());
    }

    #[test]
    fn interpreted_index_keeps_all_label_mates() {
        let mut idx = InterpretedIndex::new();
        idx.insert(&reg("order{{ @route=\"r1\" }}"), 0);
        idx.insert(&reg("order{{ @route=\"r2\" }}"), 1);
        idx.insert(&Registration::label_only(None), 2);
        let t = parse_term("order{@route=\"r1\"}").unwrap();
        let shape = EventShape::of(&t);
        let mut out = Vec::new();
        let mut tests = 0;
        idx.collect(&shape, &mut out, &mut tests);
        out.sort_unstable();
        // Interpreted: both order rules are candidates regardless of value.
        assert_eq!(out, vec![0, 1, 2]);
    }
}
