//! The query engine: conditions over resources and views.
//!
//! A [`Condition`] is the `IF` part of an ECA rule (Thesis 7): a conjunction
//! of possibly negated *query atoms* — each a pattern matched against a
//! URI-addressed resource or view — plus comparisons. Evaluation threads
//! bindings left to right, so variables bound by the event part (the seed)
//! or an earlier atom parameterize later atoms (joins), and negated atoms
//! act as filters (no answers may exist).

use std::collections::BTreeMap;
use std::fmt;

use reweb_term::{ResourceStore, Term, TermError};

use crate::ast::QueryTerm;
use crate::bindings::Bindings;
use crate::expr::Cmp;
use crate::matcher::{match_anywhere, Match};
use crate::rules::DeductiveRule;

/// One conjunct of a condition: a pattern over a resource or view.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryAtom {
    /// URI of a store document or registered view.
    pub resource: String,
    /// Pattern matched anywhere in the resource's document.
    pub pattern: QueryTerm,
    /// `not in <uri> <pattern>` — holds iff the pattern has *no* answer.
    pub negated: bool,
}

/// The condition part of a rule: conjunction of atoms plus comparisons.
///
/// The empty condition is `true`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Condition {
    /// The conjoined query atoms.
    pub atoms: Vec<QueryAtom>,
    /// Comparisons every answer's bindings must satisfy.
    pub comparisons: Vec<Cmp>,
}

impl Condition {
    /// The trivially true condition.
    pub fn always_true() -> Condition {
        Condition::default()
    }

    /// `true` when the condition has no atoms and no comparisons.
    pub fn is_trivial(&self) -> bool {
        self.atoms.is_empty() && self.comparisons.is_empty()
    }

    /// All variables mentioned anywhere in the condition, sorted by name.
    pub fn variables(&self) -> Vec<reweb_term::Sym> {
        let mut out = Vec::new();
        for a in &self.atoms {
            out.extend(a.pattern.variables());
        }
        for c in &self.comparisons {
            out.extend(c.variables());
        }
        out.sort();
        out.dedup();
        out
    }

    /// Syntactic negation of a single-atom-free condition is not supported;
    /// ECAA rules (Thesis 9) exist precisely so `C` / else replaces
    /// `C` / `¬C` pairs.
    pub fn and_cmp(mut self, c: Cmp) -> Condition {
        self.comparisons.push(c);
        self
    }

    /// Conjoin an `in resource pattern` atom.
    pub fn and_atom(mut self, resource: impl Into<String>, pattern: QueryTerm) -> Condition {
        self.atoms.push(QueryAtom {
            resource: resource.into(),
            pattern,
            negated: false,
        });
        self
    }

    /// Conjoin a negated `not in resource pattern` atom.
    pub fn and_not_atom(mut self, resource: impl Into<String>, pattern: QueryTerm) -> Condition {
        self.atoms.push(QueryAtom {
            resource: resource.into(),
            pattern,
            negated: true,
        });
        self
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_trivial() {
            return f.write_str("true");
        }
        let mut first = true;
        for a in &self.atoms {
            if !first {
                f.write_str(" and ")?;
            }
            first = false;
            if a.negated {
                f.write_str("not ")?;
            }
            write!(f, "in {:?} {}", a.resource, a.pattern)?;
        }
        for c in &self.comparisons {
            if !first {
                f.write_str(" and ")?;
            }
            first = false;
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// Evaluates queries and conditions against a [`ResourceStore`] and
/// registered deductive views (Thesis 9).
#[derive(Clone, Debug, Default)]
pub struct QueryEngine {
    /// The documents queries and conditions run against.
    pub store: ResourceStore,
    views: BTreeMap<String, Vec<DeductiveRule>>,
}

impl QueryEngine {
    /// An engine with an empty store and no views.
    pub fn new() -> QueryEngine {
        QueryEngine::default()
    }

    /// An engine over an existing store.
    pub fn with_store(store: ResourceStore) -> QueryEngine {
        QueryEngine {
            store,
            views: BTreeMap::new(),
        }
    }

    /// Register a deductive rule contributing to the view `uri`. Several
    /// rules may feed the same view (union).
    pub fn register_view(&mut self, uri: impl Into<String>, rule: DeductiveRule) {
        self.views.entry(uri.into()).or_default().push(rule);
    }

    /// Is `uri` a registered deductive view (vs a stored document)?
    pub fn is_view(&self, uri: &str) -> bool {
        self.views.contains_key(uri)
    }

    /// The URIs of all registered views.
    pub fn view_names(&self) -> impl Iterator<Item = &str> {
        self.views.keys().map(|s| s.as_str())
    }

    /// Does the dependency graph of views reach `uri` back from itself?
    fn view_in_cycle(&self, uri: &str) -> bool {
        fn reaches(
            views: &BTreeMap<String, Vec<DeductiveRule>>,
            from: &str,
            target: &str,
            seen: &mut Vec<String>,
        ) -> bool {
            if seen.iter().any(|s| s == from) {
                return false;
            }
            seen.push(from.to_string());
            let Some(rules) = views.get(from) else {
                return false;
            };
            for r in rules {
                for a in &r.body.atoms {
                    if a.resource == target {
                        return true;
                    }
                    if views.contains_key(&a.resource) && reaches(views, &a.resource, target, seen)
                    {
                        return true;
                    }
                }
            }
            false
        }
        reaches(&self.views, uri, uri, &mut Vec::new())
    }

    /// Materialize all views to a fixpoint (bottom-up, set semantics).
    ///
    /// Recursion through *positive* atoms is supported with an iteration
    /// cap; negation against a view that is part of a dependency cycle is
    /// rejected (unstratified).
    pub fn materialize_views(&self) -> Result<BTreeMap<String, Vec<Term>>, TermError> {
        const MAX_ITERS: usize = 1_000;
        // Reject unstratified negation up front.
        for rules in self.views.values() {
            for r in rules {
                for a in &r.body.atoms {
                    if a.negated && self.is_view(&a.resource) && self.view_in_cycle(&a.resource) {
                        return Err(TermError::InvalidEdit(format!(
                            "unstratified negation: `not in {:?}` where the view is recursive",
                            a.resource
                        )));
                    }
                }
            }
        }
        let mut extents: BTreeMap<String, Vec<Term>> =
            self.views.keys().map(|k| (k.clone(), Vec::new())).collect();
        for _ in 0..MAX_ITERS {
            let mut changed = false;
            for (uri, rules) in &self.views {
                for rule in rules {
                    let answers =
                        self.eval_condition_with(&rule.body, &Bindings::new(), Some(&extents))?;
                    for t in crate::construct::construct(&rule.head, &answers)? {
                        let ext = extents.get_mut(uri).expect("extent exists");
                        if !ext.contains(&t) {
                            ext.push(t);
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                return Ok(extents);
            }
        }
        Err(TermError::InvalidEdit(
            "view fixpoint did not converge within the iteration cap".into(),
        ))
    }

    /// The document root a query atom runs against: a store document, or a
    /// synthetic root wrapping a view's extent.
    fn resource_root(
        &self,
        uri: &str,
        extents: Option<&BTreeMap<String, Vec<Term>>>,
    ) -> Result<Term, TermError> {
        if let Some(ext) = extents.and_then(|e| e.get(uri)) {
            return Ok(Term::unordered("view", ext.clone()));
        }
        if self.is_view(uri) {
            let all = self.materialize_views()?;
            return Ok(Term::unordered(
                "view",
                all.get(uri).cloned().unwrap_or_default(),
            ));
        }
        self.store.get(uri).cloned()
    }

    /// All answers of `pattern` against resource `uri`, extending `seed`.
    pub fn query(
        &self,
        uri: &str,
        pattern: &QueryTerm,
        seed: &Bindings,
    ) -> Result<Vec<Bindings>, TermError> {
        Ok(self
            .query_with_paths(uri, pattern, seed)?
            .into_iter()
            .map(|m| m.bindings)
            .collect())
    }

    /// Like [`QueryEngine::query`] but keeps the matched node paths —
    /// update actions need them to address their targets.
    pub fn query_with_paths(
        &self,
        uri: &str,
        pattern: &QueryTerm,
        seed: &Bindings,
    ) -> Result<Vec<Match>, TermError> {
        let root = self.resource_root(uri, None)?;
        Ok(match_anywhere(pattern, &root, seed))
    }

    /// Evaluate a condition, threading bindings through atoms left to right.
    /// Returns every extension of `seed` that satisfies the condition
    /// (empty = condition false; for a trivial condition, `vec![seed]`).
    pub fn eval_condition(
        &self,
        cond: &Condition,
        seed: &Bindings,
    ) -> Result<Vec<Bindings>, TermError> {
        self.eval_condition_with(cond, seed, None)
    }

    fn eval_condition_with(
        &self,
        cond: &Condition,
        seed: &Bindings,
        extents: Option<&BTreeMap<String, Vec<Term>>>,
    ) -> Result<Vec<Bindings>, TermError> {
        let mut current = vec![seed.clone()];
        for atom in &cond.atoms {
            let root = self.resource_root(&atom.resource, extents)?;
            let mut next = Vec::new();
            for b in &current {
                let hits = match_anywhere(&atom.pattern, &root, b);
                if atom.negated {
                    if hits.is_empty() {
                        next.push(b.clone());
                    }
                } else {
                    next.extend(hits.into_iter().map(|m| m.bindings));
                }
            }
            next.sort();
            next.dedup();
            current = next;
            if current.is_empty() {
                return Ok(current);
            }
        }
        for c in &cond.comparisons {
            let mut next = Vec::new();
            for b in current {
                match c.holds(&b) {
                    Ok(true) => next.push(b),
                    Ok(false) => {}
                    Err(e) => return Err(TermError::InvalidEdit(e.to_string())),
                }
            }
            current = next;
        }
        Ok(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_condition, parse_query_term};
    use reweb_term::parse_term;

    fn engine() -> QueryEngine {
        let mut store = ResourceStore::new();
        store.put(
            "http://shop/customers",
            parse_term(
                "customers[ customer{id[\"c1\"], name[\"Ann\"], income[\"1800\"]}, \
                             customer{id[\"c2\"], name[\"Bob\"], income[\"900\"]} ]",
            )
            .unwrap(),
        );
        store.put(
            "http://shop/orders",
            parse_term(
                "orders[ order{id[\"o1\"], customer[\"c1\"], total[\"60\"]}, \
                          order{id[\"o2\"], customer[\"c2\"], total[\"45\"]} ]",
            )
            .unwrap(),
        );
        QueryEngine::with_store(store)
    }

    #[test]
    fn single_atom_query() {
        let e = engine();
        let answers = e
            .query(
                "http://shop/customers",
                &parse_query_term("customer{{name[[var N]]}}").unwrap(),
                &Bindings::new(),
            )
            .unwrap();
        assert_eq!(answers.len(), 2);
    }

    #[test]
    fn condition_join_across_resources() {
        // Join orders to customers on the customer id.
        let e = engine();
        let cond = parse_condition(
            "in \"http://shop/orders\" order{{customer[[var C]], total[[var T]]}} \
             and in \"http://shop/customers\" customer{{id[[var C]], name[[var N]]}} \
             and var T >= 50",
        )
        .unwrap();
        let answers = e.eval_condition(&cond, &Bindings::new()).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].get("N").unwrap().text_content(), "Ann");
    }

    #[test]
    fn seed_parameterizes_condition() {
        // The event part bound C = c2; the condition only sees Bob.
        let e = engine();
        let cond =
            parse_condition("in \"http://shop/customers\" customer{{id[[var C]], name[[var N]]}}")
                .unwrap();
        let seed = Bindings::of("C", Term::text("c2"));
        let answers = e.eval_condition(&cond, &seed).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].get("N").unwrap().text_content(), "Bob");
    }

    #[test]
    fn negated_atom_filters() {
        let e = engine();
        let cond = parse_condition(
            "in \"http://shop/customers\" customer{{id[[var C]]}} \
             and not in \"http://shop/orders\" order{{customer[[var C]], total[[\"60\"]]}}",
        )
        .unwrap();
        let answers = e.eval_condition(&cond, &Bindings::new()).unwrap();
        // c1 has a 60-total order, c2 does not.
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].get("C").unwrap().text_content(), "c2");
    }

    #[test]
    fn trivial_condition_passes_seed_through() {
        let e = engine();
        let seed = Bindings::of("X", Term::text("1"));
        let answers = e.eval_condition(&Condition::always_true(), &seed).unwrap();
        assert_eq!(answers, vec![seed]);
    }

    #[test]
    fn missing_resource_is_error() {
        let e = engine();
        let cond = parse_condition("in \"http://nowhere\" x").unwrap();
        assert!(e.eval_condition(&cond, &Bindings::new()).is_err());
    }

    #[test]
    fn unbound_comparison_is_error() {
        let e = engine();
        let cond = parse_condition("var Nope > 3").unwrap();
        assert!(e.eval_condition(&cond, &Bindings::new()).is_err());
    }

    #[test]
    fn condition_display() {
        let cond = parse_condition("in \"u\" a[[var X]] and not in \"v\" b and var X > 1").unwrap();
        let printed = cond.to_string();
        let reparsed = parse_condition(&printed).unwrap();
        assert_eq!(cond, reparsed);
        assert_eq!(Condition::always_true().to_string(), "true");
    }
}
