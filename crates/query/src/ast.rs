//! Abstract syntax of query terms.
//!
//! Query terms are patterns over [`reweb_term::Term`]s, following Xcerpt's
//! conventions:
//!
//! * `label[ p1, p2 ]` — **total ordered**: the data element has exactly
//!   these children, in this order.
//! * `label[[ p1, p2 ]]` — **partial ordered**: the patterns match a
//!   subsequence of the data children (order preserved, others ignored).
//! * `label{ p1, p2 }` — **total unordered**: the patterns match all data
//!   children in some order (a perfect matching).
//! * `label{{ p1, p2 }}` — **partial unordered**: the patterns match some
//!   pairwise-distinct data children, in any order.
//! * `var X` binds a whole subterm; `var X as p` binds it *and* constrains
//!   it with `p`.
//! * `desc p` matches `p` at the current node or any descendant.
//! * `without p` (inside a child list) requires that *no* data child
//!   matches `p` — subterm negation.
//! * `*` is the label wildcard.

use std::fmt;

use reweb_term::Sym;

/// A query term (pattern).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryTerm {
    /// `var X` — matches any single term, binding it to `X`.
    Var(Sym),
    /// `var X as p` — matches `p`, additionally binding the node to `X`.
    VarAs(Sym, Box<QueryTerm>),
    /// `desc p` — matches `p` at this node or any descendant.
    Desc(Box<QueryTerm>),
    /// `without p` — valid only inside a child list: no child matches `p`.
    Without(Box<QueryTerm>),
    /// Element pattern.
    Elem(QueryElem),
    /// Text leaf pattern: the exact string.
    Text(String),
}

/// An element pattern.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryElem {
    /// Label constraint (`order`, or `*` for any).
    pub label: LabelPattern,
    /// `[…]` vs `{…}`.
    pub ordered: bool,
    /// `[[…]]`/`{{…}}` (true) vs `[…]`/`{…}` (false).
    pub partial: bool,
    /// Attribute constraints: every listed attribute must be present and
    /// match. Unlisted attributes are always ignored (attributes are
    /// implicitly partial, as in Xcerpt).
    pub attrs: Vec<(Sym, AttrPattern)>,
    /// Child patterns, in order (significant only when `ordered`).
    pub children: Vec<QueryTerm>,
}

/// Label constraint of an element pattern.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LabelPattern {
    /// The label must equal this symbol.
    Exact(Sym),
    /// `*`
    Any,
}

/// Attribute value constraint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AttrPattern {
    /// The attribute value must equal this string.
    Exact(String),
    /// `@k=var X` — bind the attribute value (as a text term) to `X`.
    Var(Sym),
}

impl QueryTerm {
    /// Convenience: an element pattern builder.
    pub fn elem(label: impl Into<Sym>) -> QueryElemBuilder {
        QueryElemBuilder {
            e: QueryElem {
                label: LabelPattern::Exact(label.into()),
                ordered: true,
                partial: false,
                attrs: Vec::new(),
                children: Vec::new(),
            },
        }
    }

    /// Convenience: `var X`.
    pub fn var(name: impl Into<Sym>) -> QueryTerm {
        QueryTerm::Var(name.into())
    }

    /// Convenience: `var X as p`.
    pub fn var_as(name: impl Into<Sym>, p: QueryTerm) -> QueryTerm {
        QueryTerm::VarAs(name.into(), Box::new(p))
    }

    /// Convenience: `desc p`.
    pub fn desc(p: QueryTerm) -> QueryTerm {
        QueryTerm::Desc(Box::new(p))
    }

    /// Convenience: text pattern.
    pub fn text(s: impl Into<String>) -> QueryTerm {
        QueryTerm::Text(s.into())
    }

    /// All variable names occurring in this pattern (including inside
    /// `without`, which may only *consume* outer bindings), sorted by name.
    pub fn variables(&self) -> Vec<Sym> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_vars(&self, out: &mut Vec<Sym>) {
        match self {
            QueryTerm::Var(x) => out.push(*x),
            QueryTerm::VarAs(x, p) => {
                out.push(*x);
                p.collect_vars(out);
            }
            QueryTerm::Desc(p) | QueryTerm::Without(p) => p.collect_vars(out),
            QueryTerm::Text(_) => {}
            QueryTerm::Elem(e) => {
                for (_, a) in &e.attrs {
                    if let AttrPattern::Var(x) = a {
                        out.push(*x);
                    }
                }
                for c in &e.children {
                    c.collect_vars(out);
                }
            }
        }
    }

    /// The variables bound by *every* successful match of this pattern,
    /// sorted by name: [`QueryTerm::variables`] minus those occurring only
    /// inside `without` subterms. A `without` succeeds when nothing
    /// matches, so its variables may consume outer bindings but are never
    /// produced by the match itself; every other construct (including
    /// `desc`, whose inner pattern must match *somewhere*, and element
    /// attribute patterns, which require the attribute to be present)
    /// binds its variables on success. Join-key analysis relies on this:
    /// a variable is safe to hash answers by only if every answer binds it.
    pub fn certain_variables(&self) -> Vec<Sym> {
        let mut out = Vec::new();
        self.collect_certain_vars(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_certain_vars(&self, out: &mut Vec<Sym>) {
        match self {
            QueryTerm::Var(x) => out.push(*x),
            QueryTerm::VarAs(x, p) => {
                out.push(*x);
                p.collect_certain_vars(out);
            }
            QueryTerm::Desc(p) => p.collect_certain_vars(out),
            QueryTerm::Without(_) | QueryTerm::Text(_) => {}
            QueryTerm::Elem(e) => {
                for (_, a) in &e.attrs {
                    if let AttrPattern::Var(x) = a {
                        out.push(*x);
                    }
                }
                for c in &e.children {
                    c.collect_certain_vars(out);
                }
            }
        }
    }
}

/// Builder returned by [`QueryTerm::elem`].
#[derive(Clone, Debug)]
pub struct QueryElemBuilder {
    e: QueryElem,
}

impl QueryElemBuilder {
    /// Make the pattern unordered (`{…}`): children match in any order.
    pub fn unordered(mut self) -> Self {
        self.e.ordered = false;
        self
    }

    /// Make the pattern partial (`[[…]]`/`{{…}}`): extra children are
    /// allowed in the data.
    pub fn partial(mut self) -> Self {
        self.e.partial = true;
        self
    }

    /// Accept any element label (`*`).
    pub fn any_label(mut self) -> Self {
        self.e.label = LabelPattern::Any;
        self
    }

    /// Require attribute `key` to equal `value`.
    pub fn attr(mut self, key: impl Into<Sym>, value: impl Into<String>) -> Self {
        self.e
            .attrs
            .push((key.into(), AttrPattern::Exact(value.into())));
        self
    }

    /// Require attribute `key` to be present, binding its value to `var`.
    pub fn attr_var(mut self, key: impl Into<Sym>, var: impl Into<Sym>) -> Self {
        self.e
            .attrs
            .push((key.into(), AttrPattern::Var(var.into())));
        self
    }

    /// Append a child pattern.
    pub fn child(mut self, p: QueryTerm) -> Self {
        self.e.children.push(p);
        self
    }

    /// Convenience: child pattern `label[[ var X ]]`-style — a partial
    /// ordered element whose single child binds `X`.
    pub fn field_var(self, label: impl Into<Sym>, var: impl Into<Sym>) -> Self {
        self.child(
            QueryTerm::elem(label)
                .partial()
                .child(QueryTerm::var(var))
                .finish(),
        )
    }

    /// Convenience: child pattern `label[[ "text" ]]`.
    pub fn field_text(self, label: impl Into<Sym>, text: impl Into<String>) -> Self {
        self.child(
            QueryTerm::elem(label)
                .partial()
                .child(QueryTerm::text(text))
                .finish(),
        )
    }

    /// Append a `without p` constraint: no child may match `p`.
    pub fn without(mut self, p: QueryTerm) -> Self {
        self.e.children.push(QueryTerm::Without(Box::new(p)));
        self
    }

    /// Finish building, yielding the element pattern.
    pub fn finish(self) -> QueryTerm {
        QueryTerm::Elem(self.e)
    }
}

// ----- display ---------------------------------------------------------------

impl fmt::Display for QueryTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryTerm::Var(x) => write!(f, "var {x}"),
            QueryTerm::VarAs(x, p) => write!(f, "var {x} as {p}"),
            QueryTerm::Desc(p) => write!(f, "desc {p}"),
            QueryTerm::Without(p) => write!(f, "without {p}"),
            QueryTerm::Text(s) => write!(f, "{s:?}"),
            QueryTerm::Elem(e) => {
                match &e.label {
                    LabelPattern::Exact(l) => f.write_str(l.as_str())?,
                    LabelPattern::Any => f.write_str("*")?,
                }
                if e.attrs.is_empty() && e.children.is_empty() && !e.partial {
                    if !e.ordered {
                        f.write_str("{}")?;
                    }
                    return Ok(());
                }
                let (open, close) = match (e.ordered, e.partial) {
                    (true, false) => ("[", "]"),
                    (true, true) => ("[[", "]]"),
                    (false, false) => ("{", "}"),
                    (false, true) => ("{{", "}}"),
                };
                f.write_str(open)?;
                let mut first = true;
                for (k, a) in &e.attrs {
                    if !first {
                        f.write_str(", ")?;
                    }
                    first = false;
                    match a {
                        AttrPattern::Exact(v) => write!(f, "@{k}={v:?}")?,
                        AttrPattern::Var(x) => write!(f, "@{k}=var {x}")?,
                    }
                }
                for c in &e.children {
                    if !first {
                        f.write_str(", ")?;
                    }
                    first = false;
                    write!(f, "{c}")?;
                }
                f.write_str(close)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_shapes() {
        let q = QueryTerm::elem("order")
            .unordered()
            .partial()
            .attr("id", "42")
            .field_var("total", "T")
            .finish();
        match &q {
            QueryTerm::Elem(e) => {
                assert!(!e.ordered);
                assert!(e.partial);
                assert_eq!(e.attrs.len(), 1);
                assert_eq!(e.children.len(), 1);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn variables_are_collected_and_deduped() {
        let q = QueryTerm::elem("a")
            .attr_var("k", "K")
            .child(QueryTerm::var("X"))
            .child(QueryTerm::var_as("X", QueryTerm::desc(QueryTerm::var("Y"))))
            .without(QueryTerm::var("Z"))
            .finish();
        assert_eq!(
            q.variables(),
            vec![Sym::new("K"), Sym::new("X"), Sym::new("Y"), Sym::new("Z")]
        );
    }

    #[test]
    fn certain_variables_exclude_without_only_vars() {
        let q = QueryTerm::elem("a")
            .attr_var("k", "K")
            .child(QueryTerm::var("X"))
            .child(QueryTerm::var_as("X", QueryTerm::desc(QueryTerm::var("Y"))))
            .without(QueryTerm::var("Z"))
            .finish();
        // `Z` occurs only under `without`: never bound by a match.
        assert_eq!(
            q.certain_variables(),
            vec![Sym::new("K"), Sym::new("X"), Sym::new("Y")]
        );
        // A variable both inside and outside `without` stays certain.
        let q = QueryTerm::elem("a")
            .child(QueryTerm::var("Z"))
            .without(QueryTerm::var("Z"))
            .finish();
        assert_eq!(q.certain_variables(), vec![Sym::new("Z")]);
    }

    #[test]
    fn display_brackets() {
        let q = QueryTerm::elem("a")
            .partial()
            .child(QueryTerm::var("X"))
            .finish();
        assert_eq!(q.to_string(), "a[[var X]]");
        let q = QueryTerm::elem("b")
            .unordered()
            .child(QueryTerm::text("t"))
            .finish();
        assert_eq!(q.to_string(), "b{\"t\"}");
        assert_eq!(QueryTerm::elem("e").finish().to_string(), "e");
        assert_eq!(QueryTerm::elem("e").unordered().finish().to_string(), "e{}");
    }
}
