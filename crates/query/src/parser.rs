//! Parsers for query terms, construct terms, expressions, comparisons, and
//! conditions. All share the lexer from `reweb-term` (one surface syntax —
//! Thesis 7's language coherency).
//!
//! ```text
//! queryterm ::= 'var' IDENT ('as' queryterm)?
//!             | 'desc' queryterm
//!             | 'without' queryterm
//!             | STRING | NUMBER                       (text pattern)
//!             | ('*' | IDENT) qbody?
//! qbody     ::= '[[' qitems ']]' | '[' qitems ']'
//!             | '{{' qitems '}}' | '{' qitems '}'
//! qitem     ::= '@' IDENT '=' (STRING | 'var' IDENT)  (attribute)
//!             | queryterm
//!
//! ct        ::= 'var' IDENT | 'text' 'var' IDENT | 'eval' '(' expr ')'
//!             | 'all' ct ('group' 'by' 'var' IDENT (',' 'var' IDENT)*)?
//!             | ('count'|'sum'|'avg'|'min'|'max') '(' 'var' IDENT ')'
//!             | STRING | NUMBER
//!             | IDENT cbody?
//!
//! expr      ::= eterm (('+'|'-') eterm)*
//! eterm     ::= factor (('*'|'/') factor)*
//! factor    ::= NUMBER | STRING | 'var' IDENT | '(' expr ')' | '-' factor
//!
//! cmp       ::= expr ('=='|'='|'!='|'<'|'<='|'>'|'>='|'contains') expr
//!
//! condition ::= 'true' | catom ('and' catom)*
//! catom     ::= 'not'? 'in' STRING queryterm | cmp
//! ```

use reweb_term::lex::{Cursor, Tok};
use reweb_term::TermError;

use crate::ast::{AttrPattern, LabelPattern, QueryElem, QueryTerm};
use crate::construct::{AggFn, AttrValue, ConstructTerm};
use crate::engine::{Condition, QueryAtom};
use crate::expr::{BinOp, Cmp, CmpOp, Expr};

type Result<T> = std::result::Result<T, TermError>;

// ----- query terms -----------------------------------------------------------

/// Parse a complete query term (whole input).
pub fn parse_query_term(input: &str) -> Result<QueryTerm> {
    let mut cur = Cursor::from_str(input)?;
    let q = query_term(&mut cur)?;
    if !cur.at_end() {
        return Err(cur.error("trailing input after query term"));
    }
    Ok(q)
}

/// Parse a query term at the cursor.
pub fn query_term(cur: &mut Cursor) -> Result<QueryTerm> {
    if cur.eat_kw("var") {
        let name = cur.expect_ident()?;
        if cur.eat_kw("as") {
            let inner = query_term(cur)?;
            return Ok(QueryTerm::VarAs(name.into(), Box::new(inner)));
        }
        return Ok(QueryTerm::Var(name.into()));
    }
    if cur.eat_kw("desc") {
        return Ok(QueryTerm::Desc(Box::new(query_term(cur)?)));
    }
    if cur.eat_kw("without") {
        return Ok(QueryTerm::Without(Box::new(query_term(cur)?)));
    }
    match cur.peek() {
        Some(Tok::Str(_)) => Ok(QueryTerm::Text(cur.expect_str()?)),
        Some(Tok::Num(n)) => {
            let n = n.clone();
            cur.next();
            Ok(QueryTerm::Text(n))
        }
        Some(Tok::Punct('*')) => {
            cur.next();
            query_body(cur, LabelPattern::Any)
        }
        Some(Tok::Ident(_)) => {
            let label = cur.expect_ident()?;
            query_body(cur, LabelPattern::Exact(label.into()))
        }
        Some(t) => Err(cur.error(format!("expected query term, found {}", t.describe()))),
        None => Err(cur.error("expected query term, found end of input")),
    }
}

fn query_body(cur: &mut Cursor, label: LabelPattern) -> Result<QueryTerm> {
    let (ordered, partial, close) = if cur.eat_punct2('[', '[') {
        (true, true, ("]", ']'))
    } else if cur.eat_punct('[') {
        (true, false, ("]", ']'))
    } else if cur.eat_punct2('{', '{') {
        (false, true, ("}", '}'))
    } else if cur.eat_punct('{') {
        (false, false, ("}", '}'))
    } else {
        return Ok(QueryTerm::Elem(QueryElem {
            label,
            ordered: true,
            partial: false,
            attrs: Vec::new(),
            children: Vec::new(),
        }));
    };
    let mut attrs = Vec::new();
    let mut children = Vec::new();
    let close_char = close.1;
    let eat_close = |cur: &mut Cursor, partial: bool| -> bool {
        if partial {
            cur.eat_punct2(close_char, close_char)
        } else {
            cur.eat_punct(close_char)
        }
    };
    loop {
        if eat_close(cur, partial) {
            break;
        }
        if cur.eat_punct('@') {
            let key = cur.expect_ident()?;
            cur.expect_punct('=')?;
            if cur.eat_kw("var") {
                let v = cur.expect_ident()?;
                attrs.push((key.into(), AttrPattern::Var(v.into())));
            } else {
                let v = cur.expect_str()?;
                attrs.push((key.into(), AttrPattern::Exact(v)));
            }
        } else {
            children.push(query_term(cur)?);
        }
        if !cur.eat_punct(',') {
            if !eat_close(cur, partial) {
                return Err(cur.error(format!(
                    "expected `,` or closing `{}{}`",
                    close.0,
                    if partial { close.0 } else { "" }
                )));
            }
            break;
        }
    }
    Ok(QueryTerm::Elem(QueryElem {
        label,
        ordered,
        partial,
        attrs,
        children,
    }))
}

// ----- construct terms --------------------------------------------------------

/// Parse a complete construct term (whole input).
pub fn parse_construct_term(input: &str) -> Result<ConstructTerm> {
    let mut cur = Cursor::from_str(input)?;
    let c = construct_term(&mut cur)?;
    if !cur.at_end() {
        return Err(cur.error("trailing input after construct term"));
    }
    Ok(c)
}

/// Parse a construct term at the cursor.
pub fn construct_term(cur: &mut Cursor) -> Result<ConstructTerm> {
    if cur.eat_kw("var") {
        let name = cur.expect_ident()?;
        return Ok(ConstructTerm::Var(name.into()));
    }
    if cur.eat_kw("text") {
        cur.expect_kw("var")?;
        let name = cur.expect_ident()?;
        return Ok(ConstructTerm::TextOf(name.into()));
    }
    if cur.eat_kw("eval") {
        cur.expect_punct('(')?;
        let e = expr(cur)?;
        cur.expect_punct(')')?;
        return Ok(ConstructTerm::Calc(e));
    }
    if cur.eat_kw("all") {
        let inner = construct_term(cur)?;
        let mut group_by = Vec::new();
        if cur.eat_kw("group") {
            cur.expect_kw("by")?;
            // Multiple grouping variables need parentheses so the commas
            // don't blend into an enclosing child list:
            // `group by var C` or `group by (var C, var D)`.
            if cur.eat_punct('(') {
                loop {
                    cur.expect_kw("var")?;
                    group_by.push(cur.expect_ident()?.into());
                    if !cur.eat_punct(',') {
                        break;
                    }
                }
                cur.expect_punct(')')?;
            } else {
                cur.expect_kw("var")?;
                group_by.push(cur.expect_ident()?.into());
            }
        }
        return Ok(ConstructTerm::All {
            inner: Box::new(inner),
            group_by,
        });
    }
    match cur.peek() {
        Some(Tok::Str(_)) => Ok(ConstructTerm::Text(cur.expect_str()?)),
        Some(Tok::Num(n)) => {
            let n = n.clone();
            cur.next();
            Ok(ConstructTerm::Text(n))
        }
        Some(Tok::Ident(name)) => {
            // Aggregate call: `count(var X)` etc. — recognized by the `(`.
            if let Some(agg) = AggFn::from_name(name) {
                if cur.peek_at(1).is_some_and(|t| t.is_punct('(')) {
                    cur.next(); // name
                    cur.next(); // (
                    cur.expect_kw("var")?;
                    let v = cur.expect_ident()?;
                    cur.expect_punct(')')?;
                    return Ok(ConstructTerm::Agg(agg, v.into()));
                }
            }
            let label = cur.expect_ident()?;
            construct_body(cur, label)
        }
        Some(t) => Err(cur.error(format!("expected construct term, found {}", t.describe()))),
        None => Err(cur.error("expected construct term, found end of input")),
    }
}

fn construct_body(cur: &mut Cursor, label: String) -> Result<ConstructTerm> {
    let label = reweb_term::Sym::from(label);
    let ordered = if cur.eat_punct('[') {
        true
    } else if cur.eat_punct('{') {
        false
    } else {
        return Ok(ConstructTerm::Elem {
            label,
            ordered: true,
            attrs: Vec::new(),
            children: Vec::new(),
        });
    };
    let close = if ordered { ']' } else { '}' };
    let mut attrs = Vec::new();
    let mut children = Vec::new();
    loop {
        if cur.eat_punct(close) {
            break;
        }
        if cur.eat_punct('@') {
            let key = cur.expect_ident()?;
            cur.expect_punct('=')?;
            if cur.eat_kw("var") {
                attrs.push((key.into(), AttrValue::Var(cur.expect_ident()?.into())));
            } else {
                attrs.push((key.into(), AttrValue::Str(cur.expect_str()?)));
            }
        } else {
            children.push(construct_term(cur)?);
        }
        if !cur.eat_punct(',') {
            cur.expect_punct(close)?;
            break;
        }
    }
    Ok(ConstructTerm::Elem {
        label,
        ordered,
        attrs,
        children,
    })
}

// ----- expressions and comparisons --------------------------------------------

/// Parse a complete expression (whole input).
pub fn parse_expr(input: &str) -> Result<Expr> {
    let mut cur = Cursor::from_str(input)?;
    let e = expr(&mut cur)?;
    if !cur.at_end() {
        return Err(cur.error("trailing input after expression"));
    }
    Ok(e)
}

/// Parse an expression at the cursor.
pub fn expr(cur: &mut Cursor) -> Result<Expr> {
    let mut lhs = eterm(cur)?;
    loop {
        let op = if cur.eat_punct('+') {
            BinOp::Add
        } else if cur.eat_punct('-') {
            BinOp::Sub
        } else {
            return Ok(lhs);
        };
        let rhs = eterm(cur)?;
        lhs = Expr::bin(lhs, op, rhs);
    }
}

fn eterm(cur: &mut Cursor) -> Result<Expr> {
    let mut lhs = factor(cur)?;
    loop {
        let op = if cur.eat_punct('*') {
            BinOp::Mul
        } else if cur.eat_punct('/') {
            BinOp::Div
        } else {
            return Ok(lhs);
        };
        let rhs = factor(cur)?;
        lhs = Expr::bin(lhs, op, rhs);
    }
}

fn factor(cur: &mut Cursor) -> Result<Expr> {
    if cur.eat_punct('(') {
        let e = expr(cur)?;
        cur.expect_punct(')')?;
        return Ok(e);
    }
    if cur.eat_punct('-') {
        let e = factor(cur)?;
        return Ok(Expr::bin(Expr::Num(0.0), BinOp::Sub, e));
    }
    if cur.eat_kw("var") {
        return Ok(Expr::Var(cur.expect_ident()?.into()));
    }
    match cur.peek() {
        Some(Tok::Num(n)) => {
            let v: f64 = n
                .parse()
                .map_err(|_| cur.error(format!("bad number {n}")))?;
            cur.next();
            Ok(Expr::Num(v))
        }
        Some(Tok::Str(_)) => Ok(Expr::Str(cur.expect_str()?)),
        Some(t) => Err(cur.error(format!("expected expression, found {}", t.describe()))),
        None => Err(cur.error("expected expression, found end of input")),
    }
}

/// Parse a complete comparison (whole input).
pub fn parse_cmp(input: &str) -> Result<Cmp> {
    let mut cur = Cursor::from_str(input)?;
    let c = cmp(&mut cur)?;
    if !cur.at_end() {
        return Err(cur.error("trailing input after comparison"));
    }
    Ok(c)
}

/// Parse a comparison at the cursor.
pub fn cmp(cur: &mut Cursor) -> Result<Cmp> {
    let lhs = expr(cur)?;
    let op = cmp_op(cur)?;
    let rhs = expr(cur)?;
    Ok(Cmp::new(lhs, op, rhs))
}

fn cmp_op(cur: &mut Cursor) -> Result<CmpOp> {
    if cur.eat_kw("contains") {
        return Ok(CmpOp::Contains);
    }
    if cur.eat_punct2('=', '=') || cur.eat_punct('=') {
        return Ok(CmpOp::Eq);
    }
    if cur.eat_punct2('!', '=') {
        return Ok(CmpOp::Ne);
    }
    if cur.eat_punct2('<', '=') {
        return Ok(CmpOp::Le);
    }
    if cur.eat_punct('<') {
        return Ok(CmpOp::Lt);
    }
    if cur.eat_punct2('>', '=') {
        return Ok(CmpOp::Ge);
    }
    if cur.eat_punct('>') {
        return Ok(CmpOp::Gt);
    }
    Err(cur.error("expected comparison operator"))
}

// ----- conditions --------------------------------------------------------------

/// Parse a complete condition (whole input).
pub fn parse_condition(input: &str) -> Result<Condition> {
    let mut cur = Cursor::from_str(input)?;
    let c = condition(&mut cur)?;
    if !cur.at_end() {
        return Err(cur.error("trailing input after condition"));
    }
    Ok(c)
}

/// Parse a condition at the cursor: `true` or a conjunction of atoms.
pub fn condition(cur: &mut Cursor) -> Result<Condition> {
    if cur.eat_kw("true") {
        return Ok(Condition::always_true());
    }
    let mut cond = Condition::always_true();
    loop {
        catom(cur, &mut cond)?;
        if !cur.eat_kw("and") {
            break;
        }
    }
    Ok(cond)
}

fn catom(cur: &mut Cursor, cond: &mut Condition) -> Result<()> {
    let negated = cur.eat_kw("not");
    if cur.eat_kw("in") {
        let uri = cur.expect_str()?;
        let pattern = query_term(cur)?;
        cond.atoms.push(QueryAtom {
            resource: uri,
            pattern,
            negated,
        });
        return Ok(());
    }
    if negated {
        return Err(cur.error("`not` must be followed by `in <uri> <pattern>`"));
    }
    cond.comparisons.push(cmp(cur)?);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_term_bracket_flavours() {
        for (src, ordered, partial) in [
            ("a[b]", true, false),
            ("a[[b]]", true, true),
            ("a{b}", false, false),
            ("a{{b}}", false, true),
        ] {
            match parse_query_term(src).unwrap() {
                QueryTerm::Elem(e) => {
                    assert_eq!(e.ordered, ordered, "{src}");
                    assert_eq!(e.partial, partial, "{src}");
                    assert_eq!(e.children.len(), 1);
                }
                other => panic!("{src}: {other:?}"),
            }
        }
    }

    #[test]
    fn query_term_roundtrip_via_display() {
        for src in [
            "a[[var X, b{{\"t\"}}]]",
            "var F as flight[[status[\"cancelled\"], without rebooked]]",
            "desc article{{@id=var I}}",
            "*[[var X]]",
            "order{{id[[var O]], total[[var T]]}}",
        ] {
            let q = parse_query_term(src).unwrap();
            let q2 = parse_query_term(&q.to_string()).unwrap();
            assert_eq!(q, q2, "{src}");
        }
    }

    #[test]
    fn nested_partial_brackets_disambiguate() {
        // `a[[ b[c] ]]` — inner total `]` then outer `]]`.
        let q = parse_query_term("a[[ b[c] ]]").unwrap();
        match q {
            QueryTerm::Elem(e) => {
                assert!(e.partial);
                assert_eq!(e.children.len(), 1);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn query_term_errors() {
        assert!(parse_query_term("a[[b]").is_err());
        assert!(parse_query_term("var").is_err());
        assert!(parse_query_term("a[@k]").is_err());
        assert!(parse_query_term("").is_err());
        assert!(parse_query_term("a[b] c").is_err());
    }

    #[test]
    fn construct_term_all_flavours() {
        let c = parse_construct_term(
            "summary[@id=var I, customer[var C], all order[var O] group by var C, count(var O), eval(var T * 1.05), text var C, \"lit\"]",
        )
        .unwrap();
        match &c {
            ConstructTerm::Elem {
                children, attrs, ..
            } => {
                assert_eq!(attrs.len(), 1);
                assert_eq!(children.len(), 6);
                assert!(
                    matches!(&children[1], ConstructTerm::All { group_by, .. } if group_by == &vec![reweb_term::Sym::new("C")])
                );
                assert!(matches!(&children[2], ConstructTerm::Agg(AggFn::Count, v) if *v == "O"));
                assert!(matches!(&children[3], ConstructTerm::Calc(_)));
                assert!(matches!(&children[4], ConstructTerm::TextOf(v) if *v == "C"));
            }
            _ => panic!(),
        }
        // Display → parse roundtrip.
        let c2 = parse_construct_term(&c.to_string()).unwrap();
        assert_eq!(c, c2);
    }

    #[test]
    fn aggregate_name_as_element_label_still_works() {
        // `count[...]` is an element, `count(var X)` an aggregate.
        let c = parse_construct_term("count[var X]").unwrap();
        assert!(matches!(c, ConstructTerm::Elem { .. }));
        let c = parse_construct_term("count(var X)").unwrap();
        assert!(matches!(c, ConstructTerm::Agg(AggFn::Count, _)));
    }

    #[test]
    fn expr_precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        assert_eq!(
            e.eval(&crate::bindings::Bindings::new()).unwrap(),
            crate::expr::Val::Num(7.0)
        );
        let e = parse_expr("(1 + 2) * 3").unwrap();
        assert_eq!(
            e.eval(&crate::bindings::Bindings::new()).unwrap(),
            crate::expr::Val::Num(9.0)
        );
        let e = parse_expr("-2 + 5").unwrap();
        assert_eq!(
            e.eval(&crate::bindings::Bindings::new()).unwrap(),
            crate::expr::Val::Num(3.0)
        );
    }

    #[test]
    fn cmp_operators() {
        for (src, op) in [
            ("var X == 1", CmpOp::Eq),
            ("var X = 1", CmpOp::Eq),
            ("var X != 1", CmpOp::Ne),
            ("var X < 1", CmpOp::Lt),
            ("var X <= 1", CmpOp::Le),
            ("var X > 1", CmpOp::Gt),
            ("var X >= 1", CmpOp::Ge),
            ("var X contains \"a\"", CmpOp::Contains),
        ] {
            assert_eq!(parse_cmp(src).unwrap().op, op, "{src}");
        }
    }

    #[test]
    fn condition_atoms_and_cmps() {
        let c = parse_condition(
            "in \"http://shop/customers\" customer{{id[[var C]]}} and not in \"http://shop/blocklist\" blocked[[var C]] and var A >= 1500",
        )
        .unwrap();
        assert_eq!(c.atoms.len(), 2);
        assert!(!c.atoms[0].negated);
        assert!(c.atoms[1].negated);
        assert_eq!(c.comparisons.len(), 1);
    }

    #[test]
    fn condition_true() {
        let c = parse_condition("true").unwrap();
        assert!(c.atoms.is_empty());
        assert!(c.comparisons.is_empty());
    }

    #[test]
    fn condition_bad_not() {
        assert!(parse_condition("not var X == 1").is_err());
    }
}
