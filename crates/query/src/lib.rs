//! # reweb-query — an Xcerpt-style Web query language
//!
//! Thesis 7 of *Twelve Theses on Reactive Rules for the Web*: a reactive
//! language "should embed or build upon a Web query language" rather than
//! reinvent one. This crate is that embedded language, a reimplementation of
//! the published core of **Xcerpt** (Schaffert & Bry 2004), the query
//! language XChange builds on:
//!
//! * [`QueryTerm`] — patterns with variables (`var X`, `var X as p`),
//!   descendant matching (`desc p`), subterm negation (`without p`),
//!   total `[…]`/`{…}` vs partial `[[…]]`/`{{…}}`, and ordered `[…]` vs
//!   unordered `{…}` child matching.
//! * [`matcher`] — *simulation* matching: a query term matches a data term
//!   if the data simulates the pattern; answers are sets of
//!   [`Bindings`] (the "notion of answers" criterion of Thesis 7).
//! * [`ConstructTerm`] — build new data from bindings, with grouping
//!   (`all … group by …`) and aggregation (`count/sum/avg/min/max`).
//! * [`expr`] — arithmetic and comparisons over bindings, shared with event
//!   queries (Thesis 5) and the rule language's `WHERE` parts.
//! * [`DeductiveRule`]s — views over Web data (Thesis 9's "deductive rules
//!   for … Web queries"), evaluated bottom-up to a fixpoint; recursion is
//!   supported with an iteration cap, negation only against non-recursive
//!   sources.
//! * [`QueryEngine`] — evaluates [`Condition`]s (conjunctions of possibly
//!   negated query atoms plus comparisons) against a resource store and
//!   registered views. Event bindings *parameterize* conditions: this is the
//!   event→condition variable flow Thesis 7 calls out.

#![warn(missing_docs)]

pub mod ast;
pub mod bindings;
pub mod compiled;
pub mod construct;
pub mod engine;
pub mod expr;
pub mod matcher;
pub mod parser;
pub mod rules;

pub use ast::{AttrPattern, LabelPattern, QueryElem, QueryTerm};
pub use bindings::Bindings;
pub use compiled::{
    compile_pattern, AlphaNetwork, AlphaTest, CandidateIndex, EventShape, GuardTest,
    InterpretedIndex, Registration,
};
pub use construct::{construct, AggFn, AttrValue, ConstructTerm};
pub use engine::{Condition, QueryAtom, QueryEngine};
pub use expr::{BinOp, Cmp, CmpOp, EvalError, Expr, Val};
pub use matcher::{match_anywhere, match_at, Match};
pub use parser::{parse_cmp, parse_condition, parse_construct_term, parse_expr, parse_query_term};
pub use rules::DeductiveRule;

pub use reweb_term::TermError;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TermError>;
