//! Simulation matching of query terms against data terms.
//!
//! The matcher computes *all* answers: every way the data can simulate the
//! pattern yields one [`Bindings`]. Matching can be seeded with existing
//! bindings, which is how event-part bindings parameterize condition
//! queries (Thesis 7): a variable already bound behaves like a constant.
//!
//! Child matching follows Xcerpt:
//!
//! | pattern      | data children matched                                 |
//! |--------------|-------------------------------------------------------|
//! | `l[p…]`      | exactly, in order                                     |
//! | `l[[p…]]`    | a subsequence (order preserved)                       |
//! | `l{p…}`      | all of them, in any order (perfect matching)          |
//! | `l{{p…}}`    | pairwise-distinct children, any order                 |
//!
//! `without p` inside a child list succeeds iff *no* data child matches `p`
//! under the candidate bindings. Query children map to *distinct* data
//! children (injectivity).

use reweb_term::path::Path;
use reweb_term::Term;

use crate::ast::{AttrPattern, LabelPattern, QueryTerm};
use crate::bindings::Bindings;

/// A match of a pattern at a specific node of a document.
#[derive(Clone, Debug, PartialEq)]
pub struct Match {
    /// Path of the matched node from the document root.
    pub path: Path,
    /// Variable bindings the match produced.
    pub bindings: Bindings,
}

/// Match `pattern` against the node `data` itself. Returns all answers
/// (deduplicated), each extending `seed`.
pub fn match_at(pattern: &QueryTerm, data: &Term, seed: &Bindings) -> Vec<Bindings> {
    let mut out = Vec::new();
    m(pattern, data, seed, &mut out);
    out.sort();
    out.dedup();
    out
}

/// Match `pattern` at every node of `root` (the node itself and all
/// descendants), returning the matched node's path with each answer.
pub fn match_anywhere(pattern: &QueryTerm, root: &Term, seed: &Bindings) -> Vec<Match> {
    let mut out = Vec::new();
    for (path, node) in root.walk() {
        for bindings in match_at(pattern, node, seed) {
            out.push(Match {
                path: path.clone(),
                bindings,
            });
        }
    }
    out
}

fn m(p: &QueryTerm, d: &Term, b: &Bindings, out: &mut Vec<Bindings>) {
    match p {
        QueryTerm::Var(x) => {
            if let Some(b2) = b.bind_sym(*x, d) {
                out.push(b2);
            }
        }
        QueryTerm::VarAs(x, inner) => {
            let mut tmp = Vec::new();
            m(inner, d, b, &mut tmp);
            for b2 in tmp {
                if let Some(b3) = b2.bind_sym(*x, d) {
                    out.push(b3);
                }
            }
        }
        QueryTerm::Desc(inner) => {
            // At this node or any descendant.
            m(inner, d, b, out);
            for c in d.children() {
                m(p, c, b, out);
            }
        }
        QueryTerm::Without(_) => {
            // `without` is only meaningful inside a child list; standalone it
            // matches nothing (the parser rejects it in term position).
        }
        QueryTerm::Text(s) => {
            if d.as_text() == Some(s.as_str()) {
                out.push(b.clone());
            }
        }
        QueryTerm::Elem(qe) => {
            let Some(e) = d.as_element() else { return };
            if let LabelPattern::Exact(l) = &qe.label {
                if *l != e.label {
                    return;
                }
            }
            // Attributes: all listed must be present and match.
            let mut cur = vec![b.clone()];
            for (k, ap) in &qe.attrs {
                let Some(v) = e.attrs.get(k) else { return };
                match ap {
                    AttrPattern::Exact(want) => {
                        if want != v {
                            return;
                        }
                    }
                    AttrPattern::Var(x) => {
                        let vt = Term::text(v.clone());
                        cur = cur
                            .into_iter()
                            .filter_map(|bb| bb.bind_sym(*x, &vt))
                            .collect();
                        if cur.is_empty() {
                            return;
                        }
                    }
                }
            }
            let (positives, withouts): (Vec<&QueryTerm>, Vec<&QueryTerm>) = qe
                .children
                .iter()
                .partition(|c| !matches!(c, QueryTerm::Without(_)));
            for bb in cur {
                let mut results = Vec::new();
                match_children(
                    &positives,
                    &e.children,
                    qe.ordered,
                    qe.partial,
                    &bb,
                    &mut results,
                );
                'cand: for b2 in results {
                    // Subterm negation: no data child may match any
                    // `without` pattern under these bindings.
                    for w in &withouts {
                        let QueryTerm::Without(wp) = w else {
                            unreachable!()
                        };
                        for c in &e.children {
                            let mut hit = Vec::new();
                            m(wp, c, &b2, &mut hit);
                            if !hit.is_empty() {
                                continue 'cand;
                            }
                        }
                    }
                    out.push(b2);
                }
            }
        }
    }
}

/// Match the positive child patterns against the data children according to
/// the ordered/partial regime, pushing every consistent extension of `b`.
fn match_children(
    pats: &[&QueryTerm],
    data: &[Term],
    ordered: bool,
    partial: bool,
    b: &Bindings,
    out: &mut Vec<Bindings>,
) {
    if ordered && !partial {
        // Exact: same length, pairwise in order.
        if pats.len() != data.len() {
            return;
        }
        fn step(pats: &[&QueryTerm], data: &[Term], b: &Bindings, out: &mut Vec<Bindings>) {
            match (pats.split_first(), data.split_first()) {
                (None, None) => out.push(b.clone()),
                (Some((p, prest)), Some((d, drest))) => {
                    let mut tmp = Vec::new();
                    m(p, d, b, &mut tmp);
                    for b2 in tmp {
                        step(prest, drest, &b2, out);
                    }
                }
                _ => {}
            }
        }
        step(pats, data, b, out);
    } else if ordered && partial {
        // Subsequence: each pattern matches a later data child than the
        // previous one.
        fn step(pats: &[&QueryTerm], data: &[Term], b: &Bindings, out: &mut Vec<Bindings>) {
            let Some((p, prest)) = pats.split_first() else {
                out.push(b.clone());
                return;
            };
            for (i, d) in data.iter().enumerate() {
                let mut tmp = Vec::new();
                m(p, d, b, &mut tmp);
                for b2 in tmp {
                    step(prest, &data[i + 1..], &b2, out);
                }
            }
        }
        step(pats, data, b, out);
    } else {
        // Unordered: injective assignment of patterns to data children.
        // Total additionally requires the assignment to be a bijection.
        if !partial && pats.len() != data.len() {
            return;
        }
        fn step(
            pats: &[&QueryTerm],
            data: &[Term],
            used: &mut Vec<bool>,
            b: &Bindings,
            out: &mut Vec<Bindings>,
        ) {
            let Some((p, prest)) = pats.split_first() else {
                out.push(b.clone());
                return;
            };
            for (i, d) in data.iter().enumerate() {
                if used[i] {
                    continue;
                }
                let mut tmp = Vec::new();
                m(p, d, b, &mut tmp);
                if tmp.is_empty() {
                    continue;
                }
                used[i] = true;
                for b2 in tmp {
                    step(prest, data, used, &b2, out);
                }
                used[i] = false;
            }
        }
        let mut used = vec![false; data.len()];
        step(pats, data, &mut used, b, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query_term;
    use reweb_term::parse_term;

    fn q(s: &str) -> QueryTerm {
        parse_query_term(s).unwrap()
    }

    fn d(s: &str) -> Term {
        parse_term(s).unwrap()
    }

    fn matches(qs: &str, ds: &str) -> Vec<Bindings> {
        match_at(&q(qs), &d(ds), &Bindings::new())
    }

    fn binding_text(b: &Bindings, var: &str) -> String {
        b.get(var).unwrap().text_content()
    }

    #[test]
    fn total_ordered_is_exact() {
        assert_eq!(matches("a[b, c]", "a[b, c]").len(), 1);
        assert!(matches("a[b, c]", "a[c, b]").is_empty());
        assert!(matches("a[b]", "a[b, c]").is_empty());
        assert!(matches("a[b, c]", "a[b]").is_empty());
    }

    #[test]
    fn partial_ordered_is_subsequence() {
        assert_eq!(matches("a[[b, d]]", "a[b, c, d]").len(), 1);
        assert!(matches("a[[d, b]]", "a[b, c, d]").is_empty());
        // Multiple embeddings yield one answer each (here: no vars, so one
        // deduplicated answer).
        assert_eq!(matches("a[[b]]", "a[b, b]").len(), 1);
        // With a variable, both embeddings are distinguishable.
        let r = match_at(
            &q("a[[var X]]"),
            &d("a[p[\"1\"], p[\"2\"]]"),
            &Bindings::new(),
        );
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn total_unordered_is_perfect_matching() {
        assert_eq!(matches("a{c, b}", "a[b, c]").len(), 1);
        assert!(matches("a{b}", "a[b, c]").is_empty());
        assert!(matches("a{b, c, x}", "a[b, c]").is_empty());
    }

    #[test]
    fn partial_unordered_ignores_rest() {
        assert_eq!(matches("a{{c}}", "a[b, c, d]").len(), 1);
        assert_eq!(matches("a{{d, b}}", "a[b, c, d]").len(), 1);
        assert!(matches("a{{x}}", "a[b, c, d]").is_empty());
    }

    #[test]
    fn injectivity_two_patterns_need_two_children() {
        // Two identical query children cannot both match the single data
        // child.
        assert!(matches("a{{b, b}}", "a[b]").is_empty());
        assert_eq!(matches("a{{b, b}}", "a[b, b]").len(), 1);
    }

    #[test]
    fn variables_bind_and_stay_consistent() {
        let r = match_at(
            &q("pair{{ var X, var X }}"),
            &d("pair[v[\"1\"], v[\"1\"]]"),
            &Bindings::new(),
        );
        assert_eq!(r.len(), 1);
        let r = match_at(
            &q("pair{ var X, var X }"),
            &d("pair[v[\"1\"], v[\"2\"]]"),
            &Bindings::new(),
        );
        assert!(r.is_empty(), "same var must bind equal terms");
    }

    #[test]
    fn var_as_binds_node_and_matches_inner() {
        let r = match_at(
            &q("a[[ var F as flight[[ status[\"cancelled\"] ]] ]]"),
            &d("a[flight[no[\"LH1\"], status[\"cancelled\"]], flight[no[\"LH2\"], status[\"ok\"]]]"),
            &Bindings::new(),
        );
        assert_eq!(r.len(), 1);
        let f = r[0].get("F").unwrap();
        assert_eq!(f.children()[0].text_content(), "LH1");
    }

    #[test]
    fn desc_matches_at_depth() {
        let r = matches("desc deep", "a[b[c[deep]]]");
        assert_eq!(r.len(), 1);
        // desc inside a child list
        let r = matches("a{{ desc deep }}", "a[b[c[deep]]]");
        assert_eq!(r.len(), 1);
        // Multiple occurrences at different depths give multiple answers if
        // distinguishable.
        let r = match_at(
            &q("desc p[[var X]]"),
            &d("r[p[\"1\"], q[p[\"2\"]]]"),
            &Bindings::new(),
        );
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn without_rejects_on_match() {
        // The travel example: a flight element without a rebooked child.
        let qq = q("flight{{ status[\"cancelled\"], without rebooked }}");
        assert_eq!(
            match_at(&qq, &d("flight[status[\"cancelled\"]]"), &Bindings::new()).len(),
            1
        );
        assert!(match_at(
            &qq,
            &d("flight[status[\"cancelled\"], rebooked]"),
            &Bindings::new()
        )
        .is_empty());
    }

    #[test]
    fn without_sees_outer_bindings() {
        // no duplicate entry: list must not contain another item equal to X
        let qq = q("l{{ item[[var X]], without dup[[var X]] }}");
        assert_eq!(
            match_at(&qq, &d("l[item[\"a\"], dup[\"b\"]]"), &Bindings::new()).len(),
            1
        );
        assert!(match_at(&qq, &d("l[item[\"a\"], dup[\"a\"]]"), &Bindings::new()).is_empty());
    }

    #[test]
    fn attributes_partial_and_binding() {
        let r = match_at(
            &q("article{{ @id=var I }}"),
            &d("article{@id=\"a42\", @lang=\"en\", title[\"x\"]}"),
            &Bindings::new(),
        );
        assert_eq!(r.len(), 1);
        assert_eq!(binding_text(&r[0], "I"), "a42");
        // exact attr mismatch
        assert!(matches("a[[@k=\"x\"]]", "a[@k=\"y\"]").is_empty());
        // missing attr
        assert!(matches("a[[@k=\"x\"]]", "a[b]").is_empty());
    }

    #[test]
    fn label_wildcard() {
        let r = match_at(&q("*[[var X]]"), &d("thing[\"v\"]"), &Bindings::new());
        assert_eq!(r.len(), 1);
        assert_eq!(binding_text(&r[0], "X"), "v");
    }

    #[test]
    fn seed_bindings_parameterize() {
        // Simulates the event → condition flow: O is already bound.
        let seed = Bindings::of("O", Term::text("o1"));
        let pat = q("order{{ id[[var O]], total[[var T]] }}");
        let data = d("order{id[\"o1\"], total[\"59.9\"]}");
        let r = match_at(&pat, &data, &seed);
        assert_eq!(r.len(), 1);
        assert_eq!(binding_text(&r[0], "T"), "59.9");
        // A conflicting seed filters the match out.
        let seed = Bindings::of("O", Term::text("other"));
        assert!(match_at(&pat, &data, &seed).is_empty());
    }

    #[test]
    fn match_anywhere_returns_paths() {
        let doc = d("news[article[@id=\"a1\"], sec[article[@id=\"a2\"]]]");
        let hits = match_anywhere(&q("article{{@id=var I}}"), &doc, &Bindings::new());
        assert_eq!(hits.len(), 2);
        let paths: Vec<String> = hits.iter().map(|h| h.path.to_string()).collect();
        assert_eq!(paths, vec!["/0", "/1/0"]);
    }

    #[test]
    fn text_patterns() {
        assert_eq!(matches("\"x\"", "\"x\"").len(), 1);
        assert!(matches("\"x\"", "\"y\"").is_empty());
        assert!(matches("\"x\"", "x").is_empty(), "text ≠ element");
    }

    #[test]
    fn element_pattern_rejects_text_node() {
        assert!(matches("a", "\"a\"").is_empty());
    }

    #[test]
    fn duplicate_answers_are_deduped() {
        // Two data children produce the same (empty) bindings — one answer.
        assert_eq!(matches("a{{b}}", "a[b, b]").len(), 1);
    }
}
