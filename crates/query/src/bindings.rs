//! Variable bindings — the "notion of answers" of the query language.
//!
//! An answer to a query is a substitution of terms for variables. Sets of
//! answers flow between the three parts of an ECA rule: the event part
//! produces bindings, the condition part extends or filters them, and the
//! action part consumes them (Thesis 7's parameterization criterion).
//!
//! Representation: a `Vec<(Sym, Term)>` sorted by variable name (string
//! order, via [`Sym`]'s `Ord`), behind an `Arc`. Cloning — which the
//! matcher does for every candidate answer — is one reference-count bump;
//! extending (`bind`/`merge`) copies the small vector once, where each
//! copied entry is a `u32` plus an `Arc` bump, instead of rebuilding a
//! `BTreeMap<String, Term>` node by node. Iteration order, `Ord`, and
//! `Display` are byte-identical to the old B-tree representation because
//! `Sym` sorts by its interned string.

use std::fmt;
use std::sync::{Arc, OnceLock};

use reweb_term::{Sym, Term};

/// A consistent assignment of terms to variable names.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bindings(Arc<Vec<(Sym, Term)>>);

fn empty() -> &'static Arc<Vec<(Sym, Term)>> {
    static EMPTY: OnceLock<Arc<Vec<(Sym, Term)>>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::new(Vec::new()))
}

impl Default for Bindings {
    fn default() -> Bindings {
        Bindings(empty().clone())
    }
}

impl Bindings {
    /// The empty substitution (shared allocation; free to create).
    pub fn new() -> Bindings {
        Bindings::default()
    }

    /// Single-variable binding.
    pub fn of(name: impl Into<Sym>, value: Term) -> Bindings {
        Bindings(Arc::new(vec![(name.into(), value)]))
    }

    /// The term bound to `name`, if any. String-based lookup for public
    /// callers; never interns.
    pub fn get(&self, name: &str) -> Option<&Term> {
        let sym = Sym::lookup(name)?;
        self.get_sym(sym)
    }

    /// The term bound to the symbol `name`, if any — the hot-path lookup:
    /// a linear scan over the (small) vector comparing integer ids.
    pub fn get_sym(&self, name: Sym) -> Option<&Term> {
        self.0.iter().find(|(k, _)| *k == name).map(|(_, v)| v)
    }

    /// Is `name` bound?
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Is the symbol `name` bound?
    pub fn contains_sym(&self, name: Sym) -> bool {
        self.get_sym(name).is_some()
    }

    /// No variables bound?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Bound variable names, in sorted (display) order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.0.iter().map(|(k, _)| k.as_str())
    }

    /// Bound variable symbols, in sorted (display) order.
    pub fn syms(&self) -> impl Iterator<Item = Sym> + '_ {
        self.0.iter().map(|(k, _)| *k)
    }

    /// `(name, term)` pairs in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Term)> {
        self.0.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Bind `name` to `value`. Returns the extended bindings, or `None` if
    /// `name` is already bound to a *different* term (inconsistency).
    #[must_use]
    pub fn bind(&self, name: &str, value: &Term) -> Option<Bindings> {
        self.bind_sym(Sym::new(name), value)
    }

    /// [`Bindings::bind`] by symbol — what the matcher calls.
    #[must_use]
    pub fn bind_sym(&self, name: Sym, value: &Term) -> Option<Bindings> {
        match self.get_sym(name) {
            Some(existing) if existing == value => Some(self.clone()),
            Some(_) => None,
            None => {
                // Insert at the string-sorted position: one allocation, the
                // copied entries are (u32, Arc) pairs.
                let pos = self.0.binary_search_by(|(k, _)| k.cmp(&name)).unwrap_err();
                let mut v = Vec::with_capacity(self.0.len() + 1);
                v.extend_from_slice(&self.0[..pos]);
                v.push((name, value.clone()));
                v.extend_from_slice(&self.0[pos..]);
                Some(Bindings(Arc::new(v)))
            }
        }
    }

    /// Merge two binding sets. Returns `None` if they disagree on any
    /// shared variable.
    #[must_use]
    pub fn merge(&self, other: &Bindings) -> Option<Bindings> {
        if other.0.is_empty() || Arc::ptr_eq(&self.0, &other.0) {
            return Some(self.clone());
        }
        if self.0.is_empty() {
            return Some(other.clone());
        }
        // Merge-join of two sorted vectors.
        let (a, b) = (&self.0, &other.0);
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => {
                    out.push(a[i].clone());
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j].clone());
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    if a[i].1 != b[j].1 {
                        return None;
                    }
                    out.push(a[i].clone());
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        Some(Bindings(Arc::new(out)))
    }

    /// The restriction of these bindings to the given variable names.
    /// A sorted merge-join when `names` is sorted (which
    /// [`crate::ast::QueryTerm::variables`]-style producers guarantee);
    /// unsorted inputs are sorted into a scratch copy first.
    pub fn project(&self, names: &[Sym]) -> Bindings {
        if self.0.is_empty() || names.is_empty() {
            return Bindings::new();
        }
        let sorted_buf;
        let names: &[Sym] = if names.windows(2).all(|w| w[0] <= w[1]) {
            names
        } else {
            sorted_buf = {
                let mut v = names.to_vec();
                v.sort();
                v
            };
            &sorted_buf
        };
        let mut out = Vec::new();
        let mut i = 0;
        for (k, v) in self.0.iter() {
            while i < names.len() && names[i] < *k {
                i += 1;
            }
            if i < names.len() && names[i] == *k {
                out.push((*k, v.clone()));
            }
        }
        if out.is_empty() {
            return Bindings::new();
        }
        Bindings(Arc::new(out))
    }
}

impl FromIterator<(Sym, Term)> for Bindings {
    fn from_iter<I: IntoIterator<Item = (Sym, Term)>>(iter: I) -> Bindings {
        // Last write wins, like inserting into a map in iteration order.
        let mut out: Vec<(Sym, Term)> = Vec::new();
        for (k, v) in iter {
            match out.binary_search_by(|(e, _)| e.cmp(&k)) {
                Ok(i) => out[i].1 = v,
                Err(i) => out.insert(i, (k, v)),
            }
        }
        if out.is_empty() {
            return Bindings::new();
        }
        Bindings(Arc::new(out))
    }
}

impl FromIterator<(String, Term)> for Bindings {
    fn from_iter<I: IntoIterator<Item = (String, Term)>>(iter: I) -> Bindings {
        iter.into_iter().map(|(k, v)| (Sym::from(k), v)).collect()
    }
}

impl fmt::Display for Bindings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, (k, v)) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{k} -> {v}")?;
        }
        f.write_str("}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_consistency() {
        let b = Bindings::of("X", Term::text("1"));
        // Re-binding to the same value is fine.
        assert!(b.bind("X", &Term::text("1")).is_some());
        // Conflicting re-bind fails.
        assert!(b.bind("X", &Term::text("2")).is_none());
        // Fresh variable extends.
        let b2 = b.bind("Y", &Term::text("2")).unwrap();
        assert_eq!(b2.len(), 2);
        // Original untouched.
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn merge_agrees_or_fails() {
        let a = Bindings::of("X", Term::text("1"));
        let b = Bindings::of("Y", Term::text("2"));
        let ab = a.merge(&b).unwrap();
        assert_eq!(ab.len(), 2);
        let conflicting = Bindings::of("X", Term::text("9"));
        assert!(ab.merge(&conflicting).is_none());
        // Merge with agreeing overlap succeeds.
        assert!(ab.merge(&a).is_some());
    }

    #[test]
    fn merge_is_sorted_by_name() {
        let a = Bindings::of("Z", Term::text("1"));
        let b = Bindings::of("A", Term::text("2"));
        let ab = a.merge(&b).unwrap();
        let names: Vec<&str> = ab.names().collect();
        assert_eq!(names, vec!["A", "Z"]);
    }

    #[test]
    fn project_restricts() {
        let b: Bindings = [
            ("X".to_string(), Term::text("1")),
            ("Y".to_string(), Term::text("2")),
        ]
        .into_iter()
        .collect();
        let p = b.project(&[Sym::new("X"), Sym::new("Z")]);
        assert!(p.contains("X"));
        assert!(!p.contains("Y"));
        assert_eq!(p.len(), 1);
        // Unsorted name lists work too (sorted into a scratch copy).
        let p = b.project(&[Sym::new("Y"), Sym::new("X")]);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn from_iter_last_write_wins() {
        let b: Bindings = [
            ("X".to_string(), Term::text("1")),
            ("X".to_string(), Term::text("2")),
        ]
        .into_iter()
        .collect();
        assert_eq!(b.len(), 1);
        assert_eq!(b.get("X").unwrap().as_text(), Some("2"));
    }

    #[test]
    fn unbound_lookup_never_interns() {
        let b = Bindings::of("X", Term::text("v"));
        let before = Sym::table_len();
        assert!(b.get("bindings-test-never-bound-91c2").is_none());
        assert_eq!(Sym::table_len(), before);
    }

    #[test]
    fn display() {
        let b = Bindings::of("X", Term::text("v"));
        assert_eq!(b.to_string(), "{X -> \"v\"}");
    }
}
