//! Variable bindings — the "notion of answers" of the query language.
//!
//! An answer to a query is a substitution of terms for variables. Sets of
//! answers flow between the three parts of an ECA rule: the event part
//! produces bindings, the condition part extends or filters them, and the
//! action part consumes them (Thesis 7's parameterization criterion).

use std::collections::BTreeMap;
use std::fmt;

use reweb_term::Term;

/// A consistent assignment of terms to variable names.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bindings(BTreeMap<String, Term>);

impl Bindings {
    pub fn new() -> Bindings {
        Bindings::default()
    }

    /// Single-variable binding.
    pub fn of(name: impl Into<String>, value: Term) -> Bindings {
        let mut b = Bindings::new();
        b.0.insert(name.into(), value);
        b
    }

    pub fn get(&self, name: &str) -> Option<&Term> {
        self.0.get(name)
    }

    pub fn contains(&self, name: &str) -> bool {
        self.0.contains_key(name)
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.0.keys().map(|s| s.as_str())
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, &Term)> {
        self.0.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Bind `name` to `value`. Returns the extended bindings, or `None` if
    /// `name` is already bound to a *different* term (inconsistency).
    #[must_use]
    pub fn bind(&self, name: &str, value: &Term) -> Option<Bindings> {
        match self.0.get(name) {
            Some(existing) if existing == value => Some(self.clone()),
            Some(_) => None,
            None => {
                let mut b = self.clone();
                b.0.insert(name.to_string(), value.clone());
                Some(b)
            }
        }
    }

    /// Merge two binding sets. Returns `None` if they disagree on any
    /// shared variable.
    #[must_use]
    pub fn merge(&self, other: &Bindings) -> Option<Bindings> {
        let mut out = self.clone();
        for (k, v) in &other.0 {
            match out.0.get(k) {
                Some(existing) if existing != v => return None,
                Some(_) => {}
                None => {
                    out.0.insert(k.clone(), v.clone());
                }
            }
        }
        Some(out)
    }

    /// The restriction of these bindings to the given variable names.
    pub fn project(&self, names: &[String]) -> Bindings {
        Bindings(
            self.0
                .iter()
                .filter(|(k, _)| names.iter().any(|n| n == *k))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        )
    }
}

impl FromIterator<(String, Term)> for Bindings {
    fn from_iter<I: IntoIterator<Item = (String, Term)>>(iter: I) -> Bindings {
        Bindings(iter.into_iter().collect())
    }
}

impl fmt::Display for Bindings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, (k, v)) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{k} -> {v}")?;
        }
        f.write_str("}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_consistency() {
        let b = Bindings::of("X", Term::text("1"));
        // Re-binding to the same value is fine.
        assert!(b.bind("X", &Term::text("1")).is_some());
        // Conflicting re-bind fails.
        assert!(b.bind("X", &Term::text("2")).is_none());
        // Fresh variable extends.
        let b2 = b.bind("Y", &Term::text("2")).unwrap();
        assert_eq!(b2.len(), 2);
        // Original untouched.
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn merge_agrees_or_fails() {
        let a = Bindings::of("X", Term::text("1"));
        let b = Bindings::of("Y", Term::text("2"));
        let ab = a.merge(&b).unwrap();
        assert_eq!(ab.len(), 2);
        let conflicting = Bindings::of("X", Term::text("9"));
        assert!(ab.merge(&conflicting).is_none());
        // Merge with agreeing overlap succeeds.
        assert!(ab.merge(&a).is_some());
    }

    #[test]
    fn project_restricts() {
        let b: Bindings = [
            ("X".to_string(), Term::text("1")),
            ("Y".to_string(), Term::text("2")),
        ]
        .into_iter()
        .collect();
        let p = b.project(&["X".to_string(), "Z".to_string()]);
        assert!(p.contains("X"));
        assert!(!p.contains("Y"));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn display() {
        let b = Bindings::of("X", Term::text("v"));
        assert_eq!(b.to_string(), "{X -> \"v\"}");
    }
}
