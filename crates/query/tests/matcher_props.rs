//! Property tests for the query matcher — the soundness invariants every
//! layer above (events, conditions, updates) relies on.

use proptest::prelude::*;

use reweb_query::{match_anywhere, match_at, parse_query_term, Bindings, QueryTerm};
use reweb_term::{node_at, parse_term, Term};

// ----- generators --------------------------------------------------------

fn arb_label() -> impl Strategy<Value = String> {
    "[a-c][a-z]{0,2}".prop_map(|s| s)
}

fn arb_data() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        "[a-z0-9]{0,4}".prop_map(Term::text),
        arb_label().prop_map(Term::elem),
    ];
    leaf.prop_recursive(3, 20, 3, |inner| {
        (
            arb_label(),
            any::<bool>(),
            proptest::collection::vec(inner, 0..4),
        )
            .prop_map(|(l, ordered, children)| {
                if ordered {
                    Term::ordered(l, children)
                } else {
                    Term::unordered(l, children)
                }
            })
    })
}

/// Derive a pattern that must match `t`: copy the structure, making every
/// element partial-unordered and occasionally generalizing a subterm to a
/// fresh variable.
fn generalize(t: &Term, var_budget: &mut usize, depth: usize) -> QueryTerm {
    if *var_budget > 0 && depth > 0 && t.node_count() % 3 == 0 {
        *var_budget -= 1;
        return QueryTerm::var(format!("V{}", *var_budget));
    }
    match t.as_element() {
        None => QueryTerm::text(t.as_text().unwrap_or_default()),
        Some(e) => {
            let mut b = QueryTerm::elem(e.label).unordered().partial();
            // Keep a subset of children as subpatterns (every other one).
            for (i, c) in e.children.iter().enumerate() {
                if i % 2 == 0 {
                    b = b.child(generalize(c, var_budget, depth + 1));
                }
            }
            b.finish()
        }
    }
}

// ----- properties ---------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A pattern derived from a data term by generalization matches it.
    #[test]
    fn generalized_pattern_matches_its_origin(t in arb_data()) {
        let mut budget = 2usize;
        let p = generalize(&t, &mut budget, 0);
        let answers = match_at(&p, &t, &Bindings::new());
        prop_assert!(
            !answers.is_empty(),
            "pattern {p} failed to match its origin {t}"
        );
    }

    /// Soundness of variable bindings: whatever a `var X as …` pattern
    /// binds X to is a real subterm of the data, and re-matching with that
    /// binding as seed succeeds.
    #[test]
    fn bindings_are_real_subterms_and_rematch(t in arb_data()) {
        let p = parse_query_term("var X as *{{}}").unwrap();
        for m in match_anywhere(&p, &t, &Bindings::new()) {
            let bound = m.bindings.get("X").unwrap();
            // The bound term is exactly the node at the reported path.
            let node = node_at(&t, &m.path).expect("path resolves");
            prop_assert_eq!(node, bound);
            // Re-matching seeded with the binding still succeeds.
            let again = match_at(&p, node, &m.bindings);
            prop_assert!(!again.is_empty());
        }
    }

    /// Seeded matching is a restriction of unseeded matching: every seeded
    /// answer appears among the unseeded answers merged with the seed.
    #[test]
    fn seeding_restricts_not_invents(t in arb_data()) {
        let p = parse_query_term("*{{var X}}").unwrap();
        let unseeded = match_at(&p, &t, &Bindings::new());
        if let Some(first) = unseeded.first() {
            let seed = first.clone();
            let seeded = match_at(&p, &t, &seed);
            for s in &seeded {
                prop_assert!(
                    unseeded.iter().any(|u| u.merge(&seed).as_ref() == Some(s)),
                    "seeded answer {s} not derivable from unseeded set"
                );
            }
            // And the seed itself is among them.
            prop_assert!(seeded.contains(&seed));
        }
    }

    /// match_anywhere paths always resolve to nodes that match.
    #[test]
    fn anywhere_paths_resolve(t in arb_data(), label in arb_label()) {
        let p = QueryTerm::elem(label).unordered().partial().finish();
        for m in match_anywhere(&p, &t, &Bindings::new()) {
            let node = node_at(&t, &m.path);
            prop_assert!(node.is_some());
            prop_assert!(!match_at(&p, node.unwrap(), &Bindings::new()).is_empty());
        }
    }

    /// Total matching implies partial matching (with identical bindings
    /// included), never the other way around.
    #[test]
    fn total_implies_partial(t in arb_data()) {
        if let Some(e) = t.as_element() {
            let total = QueryTerm::Elem(reweb_query::QueryElem {
                label: reweb_query::LabelPattern::Exact(e.label),
                ordered: false,
                partial: false,
                attrs: vec![],
                children: e.children.iter().map(|c| generalize(c, &mut 0, 1)).collect(),
            });
            let partial = match &total {
                QueryTerm::Elem(qe) => QueryTerm::Elem(reweb_query::QueryElem {
                    partial: true,
                    ..qe.clone()
                }),
                _ => unreachable!(),
            };
            let at = match_at(&total, &t, &Bindings::new());
            let ap = match_at(&partial, &t, &Bindings::new());
            for a in &at {
                prop_assert!(ap.contains(a), "total answer {a} missing from partial");
            }
        }
    }

    /// Display ∘ parse is the identity on parsed query terms (parser and
    /// printer agree).
    #[test]
    fn query_display_parse_roundtrip(t in arb_data()) {
        let mut budget = 2usize;
        let p = generalize(&t, &mut budget, 0);
        let printed = p.to_string();
        let reparsed = parse_query_term(&printed).unwrap();
        prop_assert_eq!(p, reparsed, "printed: {}", printed);
    }
}

#[test]
fn regression_without_inside_generated_patterns() {
    // `without` used to be silently droppable by the generalizer; pin the
    // semantics with a direct case.
    let data = parse_term("a[b, c]").unwrap();
    let p = parse_query_term("a{{b, without d}}").unwrap();
    assert_eq!(match_at(&p, &data, &Bindings::new()).len(), 1);
    let p = parse_query_term("a{{b, without c}}").unwrap();
    assert!(match_at(&p, &data, &Bindings::new()).is_empty());
}
