//! Scratch repro (review only — not part of the PR).
use reweb_events::{parse_event_query, Event, EventId, IncrementalEngine, JoinMode};
use reweb_term::{Term, Timestamp};

fn ev(id: u64, t: u64, label: &str, v: i64) -> Event {
    Event::new(
        EventId(id),
        Timestamp(t),
        Term::unordered(label, vec![Term::ordered("v", vec![Term::int(v)])]),
    )
}

#[test]
fn atomic_and_count_sanity() {
    let q = parse_event_query("y").unwrap();
    let mut e1 = IncrementalEngine::new(&q);
    eprintln!("atomic y: {:?}", e1.push(&ev(1, 600, "y", 0)));

    let q2 = parse_event_query("count(2, a, 10s)").unwrap();
    let mut e2 = IncrementalEngine::new(&q2);
    eprintln!("count a@1000: {:?}", e2.push(&ev(1, 1000, "a", 0)));
    eprintln!("count a@500: {:?}", e2.push(&ev(2, 500, "a", 0)));
}

#[test]
fn out_of_order_seq_divergence() {
    let q = parse_event_query("seq(x, count(2, a, 10s), y)").unwrap();
    let mut indexed = IncrementalEngine::new(&q);
    let mut scan = IncrementalEngine::new(&q).with_join_mode(JoinMode::Scan);
    let evs = vec![
        ev(1, 1000, "a", 0),
        ev(2, 500, "a", 0), // count(a) answer: start=1000, end=500 (inverted)
        ev(3, 600, "y", 0), // stored at position 2
        ev(4, 700, "x", 0), // delta at position 0: pairwise checks pass, max-end check fails
    ];
    for e in &evs {
        let ai = indexed.push(e);
        let asc = scan.push(e);
        eprintln!(
            "event {}@{}: indexed={:?} scan={:?} state=({}, {})",
            e.id.0,
            e.time().0,
            ai,
            asc,
            indexed.state_size(),
            scan.state_size()
        );
        assert_eq!(ai, asc, "diverged at event {:?}", e);
    }
}
