//! Thesis 4 regression wall, beta-network edition: on a *windowed*
//! composite stream, both the retained join state and the per-event index
//! work must stay **bounded as the history grows**. A regression that
//! makes the index retain answers past their window (or probe buckets it
//! should have pruned by range) turns the engine back into the "shadow
//! Web" the paper warns about — this test fails loudly on either.
//!
//! Method: feed a long steady-state stream (constant event rate, cycling
//! join keys) through windowed `and`/`seq` composites, sample
//! `state_size` after every event, and compare the per-event
//! `index_probes` and `join_attempts` of the first quarter of the run to
//! the last quarter. Bounded state + a flat probe rate are exactly the
//! E17 claim; the naive engine's history over the same stream grows
//! linearly, which is the contrast pinned here.

use reweb_events::{parse_event_query, Event, EventId, IncrementalEngine, JoinMode, NaiveEngine};
use reweb_term::{Term, Timestamp};

const EVENTS: usize = 2_400;
const STEP_MS: u64 = 1_000;

fn payload(k: usize) -> Term {
    let label = match k % 3 {
        0 => "a",
        1 => "b",
        _ => "c",
    };
    Term::unordered(
        label,
        vec![Term::ordered("v", vec![Term::int((k % 8) as i64)])],
    )
}

/// Drive the steady-state stream; returns (max state_size, probes and
/// attempts split into first-quarter and last-quarter buckets).
fn run(query: &str, mode: JoinMode) -> (usize, [u64; 2], [u64; 2]) {
    let q = parse_event_query(query).unwrap();
    let mut eng = IncrementalEngine::new(&q).with_join_mode(mode);
    let mut max_state = 0usize;
    let quarter = EVENTS / 4;
    let mut probes = [0u64; 2];
    let mut attempts = [0u64; 2];
    for k in 0..EVENTS {
        let (p0, a0) = (eng.stats.index_probes, eng.stats.join_attempts);
        let at = Timestamp(1_000 + k as u64 * STEP_MS);
        eng.push(&Event::new(EventId(k as u64 + 1), at, payload(k)));
        max_state = max_state.max(eng.state_size());
        let bucket = if k < quarter {
            Some(0)
        } else if k >= EVENTS - quarter {
            Some(1)
        } else {
            None
        };
        if let Some(b) = bucket {
            probes[b] += eng.stats.index_probes - p0;
            attempts[b] += eng.stats.join_attempts - a0;
        }
    }
    (max_state, probes, attempts)
}

#[test]
fn windowed_composite_state_and_probe_rate_stay_bounded() {
    for query in [
        "and(a{{v[[var X]]}}, b{{v[[var X]]}}, c{{v[[var X]]}}) within 20s",
        "seq(a{{v[[var X]]}}, b{{v[[var X]]}}, c{{v[[var X]]}}) within 20s",
        "and(seq(a{{v[[var X]]}}, b{{v[[var X]]}}) within 10s, c{{v[[var X]]}}) within 30s",
    ] {
        let (max_state, probes, attempts) = run(query, JoinMode::Indexed);

        // Bounded state: the 30s-or-less windows hold at most ~30 events'
        // worth of partial matches at this rate; 200 is a generous roof
        // that a window-GC leak blows through within a few hundred events
        // (an unbounded store would reach ~EVENTS here).
        assert!(
            max_state < 200,
            "state_size reached {max_state} on {query} — window GC is leaking"
        );

        // Flat work rate: the last quarter of a steady-state run must not
        // probe (or examine) meaningfully more than the first quarter.
        // Under a history-proportional regression the tail quarter does
        // ~4x the head quarter's work.
        assert!(probes[0] > 0, "no index probes recorded on {query}");
        assert!(
            probes[1] <= probes[0] + probes[0] / 2,
            "probes/event grew with history on {query}: head {} vs tail {}",
            probes[0],
            probes[1]
        );
        assert!(
            attempts[1] <= attempts[0] + attempts[0] / 2,
            "join attempts grew with history on {query}: head {} vs tail {}",
            attempts[0],
            attempts[1]
        );
    }
}

/// The contrast the bound is measured against: the naive engine's history
/// over the same stream grows linearly (its per-event cost with it).
#[test]
fn naive_history_grows_linearly_on_the_same_stream() {
    let q = parse_event_query("and(a{{v[[var X]]}}, b{{v[[var X]]}}) within 20s").unwrap();
    let mut naive = NaiveEngine::new(&q);
    for k in 0..500usize {
        let at = Timestamp(1_000 + k as u64 * STEP_MS);
        naive.push(&Event::new(EventId(k as u64 + 1), at, payload(k)));
    }
    assert_eq!(naive.history_len(), 500);
}
