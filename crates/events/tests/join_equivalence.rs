//! The differential wall of the beta network (PR 7's tentpole): an
//! [`IncrementalEngine`] joining through per-child [`JoinIndex`]es
//! (`JoinMode::Indexed`, the default) produces **byte-identical answer
//! sequences** to the stored-sibling scan join (`JoinMode::Scan`, kept as
//! the oracle) — for random `and`/`seq`/`or`/`absence`/`count`/`agg`
//! nestings, windows, selection/consumption policies, and interleaved
//! clock advances. The two modes must also agree on `state_size` after
//! every step: the index holds exactly the stored answers, so windowed GC
//! and consumption retract the same partial matches on both sides.
//!
//! Three engines run in lockstep per case: one pinned `Indexed`, one
//! pinned `Scan`, and one that *switches modes mid-stream* at random
//! points — the switch rebuilds index state from stored answers (or
//! flattens it back), so it must be output-invisible.
//!
//! A separate deterministic test drives the same invariant through the
//! full durable stack: recovery of a [`reweb_persist::DurableEngine`]
//! (snapshot + warmup replay) must rebuild beta-index state such that the
//! recovered run's outputs match the uninterrupted run's, in either join
//! mode.

use proptest::prelude::*;

use reweb_events::{
    parse_event_query, Event, EventId, EventQuery, IncrementalEngine, JoinMode, Policy, Selection,
};
use reweb_term::{Term, Timestamp};

// ----- random queries (superset of the naive≡incremental generator) ----------

fn arb_atomic() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("c".to_string()),
        Just("a{{v[[var X]]}}".to_string()),
        Just("b{{v[[var X]]}}".to_string()),
        Just("b{{v[[var Y]]}}".to_string()),
        Just("c{{v[[var X]], w[[var Y]]}}".to_string()),
        Just("*{{v[[var X]]}}".to_string()),
    ]
}

fn arb_query() -> impl Strategy<Value = String> {
    let leaf = arb_atomic();
    leaf.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            // and / seq, optionally windowed — the operators under test
            4 => (proptest::collection::vec(inner.clone(), 2..4), 0..3u8).prop_map(|(parts, w)| {
                let body = format!("and({})", parts.join(", "));
                match w {
                    0 => body,
                    1 => format!("{body} within 5s"),
                    _ => format!("{body} within 50s"),
                }
            }),
            4 => (proptest::collection::vec(inner.clone(), 2..4), 0..3u8).prop_map(|(parts, w)| {
                let body = format!("seq({})", parts.join(", "));
                match w {
                    0 => body,
                    1 => format!("{body} within 5s"),
                    _ => format!("{body} within 50s"),
                }
            }),
            1 => proptest::collection::vec(inner.clone(), 2..3)
                .prop_map(|parts| format!("or({})", parts.join(", "))),
            1 => (arb_atomic(), arb_atomic()).prop_map(|(t, a)| format!("absence({t}, {a}, 3s)")),
            1 => (2..4usize).prop_map(|n| format!("count({n}, a, 10s)")),
            1 => (2..4usize)
                .prop_map(|n| format!("avg(var X, {n}, a{{{{v[[var X]]}}}}) as var AVG")),
            1 => inner.prop_map(|q| format!("{q} where var X >= 2")),
        ]
    })
}

fn arb_policy() -> impl Strategy<Value = Policy> {
    (0..2u8, 0..2u8).prop_map(|(first, consume)| Policy {
        selection: if first == 1 {
            Selection::First
        } else {
            Selection::Every
        },
        consume: consume == 1,
    })
}

// ----- random streams ---------------------------------------------------------

#[derive(Clone, Debug)]
enum Step {
    Ev { label: u8, value: u8, dt: u16 },
    Advance { dt: u16 },
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        4 => (0..4u8, 0..5u8, 0..3000u16).prop_map(|(label, value, dt)| Step::Ev {
            label,
            value,
            dt
        }),
        1 => (0..6000u16).prop_map(|dt| Step::Advance { dt }),
    ]
}

fn payload(label: u8, value: u8) -> Term {
    let l = match label {
        0 => "a",
        1 => "b",
        2 => "c",
        _ => "d",
    };
    Term::unordered(
        l,
        vec![
            Term::ordered("v", vec![Term::int(value as i64)]),
            Term::ordered("w", vec![Term::int((value % 3) as i64)]),
        ],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Indexed ≡ Scan, as exact answer sequences *and* as retained state,
    /// step by step — including an engine that flips modes mid-stream.
    /// Also pins the direction of the optimization: the index never
    /// examines more join candidates than the scan enumerates.
    #[test]
    fn indexed_equals_scan_with_midstream_switches(
        qsrc in arb_query(),
        policy in arb_policy(),
        steps in proptest::collection::vec(arb_step(), 0..50),
        switches in proptest::collection::vec(0..50usize, 0..4),
    ) {
        let q: EventQuery = parse_event_query(&qsrc).unwrap();
        let mut indexed = IncrementalEngine::new(&q).with_policy(policy);
        let mut scan = IncrementalEngine::new(&q)
            .with_policy(policy)
            .with_join_mode(JoinMode::Scan);
        let mut flip = IncrementalEngine::new(&q).with_policy(policy);
        prop_assert_eq!(indexed.join_mode(), JoinMode::Indexed);
        prop_assert_eq!(scan.join_mode(), JoinMode::Scan);
        let mut now = Timestamp::ZERO;
        let mut next_id = 0u64;
        for (i, step) in steps.into_iter().enumerate() {
            if switches.contains(&i) {
                let flipped = match flip.join_mode() {
                    JoinMode::Indexed => JoinMode::Scan,
                    JoinMode::Scan => JoinMode::Indexed,
                };
                flip.set_join_mode(flipped);
            }
            let (ai, asc, af) = match step {
                Step::Ev { label, value, dt } => {
                    now += reweb_term::Dur::millis(dt as u64);
                    next_id += 1;
                    let e = Event::new(EventId(next_id), now, payload(label, value));
                    (indexed.push(&e), scan.push(&e), flip.push(&e))
                }
                Step::Advance { dt } => {
                    now += reweb_term::Dur::millis(dt as u64);
                    (
                        indexed.advance_to(now),
                        scan.advance_to(now),
                        flip.advance_to(now),
                    )
                }
            };
            prop_assert_eq!(
                &ai, &asc,
                "indexed and scan answers diverged at step {} of query {} under {:?}",
                i, qsrc, policy
            );
            prop_assert_eq!(
                &ai, &af,
                "mode-switching engine diverged at step {} of query {} under {:?}",
                i, qsrc, policy
            );
            // Equal retained state after GC/consumption: the index holds
            // exactly the stored answers (Thesis 4 — no index leaks).
            prop_assert_eq!(
                indexed.state_size(), scan.state_size(),
                "state_size diverged at step {} of query {}", i, qsrc
            );
            prop_assert_eq!(indexed.state_size(), flip.state_size());
        }
        // The point of the index: never more join work than the scan.
        prop_assert!(
            indexed.stats.join_attempts <= scan.stats.join_attempts,
            "index examined more candidates ({}) than the scan ({}) for query {}",
            indexed.stats.join_attempts, scan.stats.join_attempts, qsrc
        );
        prop_assert_eq!(scan.stats.index_probes, 0);
    }
}

// ----- recovery through the durable stack ------------------------------------

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("reweb-joineq-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn copy_dir(from: &std::path::Path, to: &std::path::Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
    }
}

/// Composite rules whose partial-join state straddles any crash point:
/// a windowed 3-way `and`, a `seq` chain, and a `seq`-under-`and` nest.
const COMPOSITE_PROGRAM: &str = r#"
    RULE three_way ON and(a{{v[[var X]]}}, b{{v[[var X]], w[[var Y]]}}, c{{w[[var Y]]}}) within 2m
      DO SEND tri{x[var X], y[var Y]} TO "http://sink/tri" END
    RULE chain ON seq(a{{v[[var X]]}}, b{{v[[var X]]}}, c{{w[[var Y]]}}) within 90s
      DO SEND chain{x[var X]} TO "http://sink/chain" END
    RULE nest ON and(seq(a{{v[[var X]]}}, b{{v[[var X]]}}) within 60s, c{{v[[var Z]]}}) within 2m
      DO SEND nest{x[var X], z[var Z]} TO "http://sink/nest" END
"#;

fn composite_stream() -> Vec<reweb_core::InMessage> {
    use reweb_core::{InMessage, MessageMeta};
    let meta = MessageMeta::from_uri("http://peer");
    let mut msgs = Vec::new();
    for k in 0..36u64 {
        let (label, v, w) = match k % 4 {
            0 => ("a", k % 5, k % 3),
            1 => ("b", k % 5, (k + 1) % 3),
            2 => ("c", (k + 2) % 5, (k + 1) % 3),
            _ => ("b", (k + 1) % 5, k % 3),
        };
        let payload = Term::unordered(
            label,
            vec![
                Term::ordered("v", vec![Term::int(v as i64)]),
                Term::ordered("w", vec![Term::int(w as i64)]),
            ],
        );
        msgs.push(InMessage::new(
            payload,
            meta.clone(),
            Timestamp(1_000 + k * 4_000),
        ));
    }
    msgs
}

fn render(out: &[reweb_core::OutMessage]) -> Vec<String> {
    out.iter()
        .map(|o| format!("{}<-{}", o.to, o.payload))
        .collect()
}

/// Recovery ≡ uninterrupted with beta-index state in play, in both join
/// modes: kill a durable engine at several boundaries mid-join (snapshot
/// and warmup replay active), recover, finish the stream, and require the
/// outputs and the final retained state to match the uninterrupted run's.
/// Closing the chain: recovered-indexed ≡ uninterrupted-indexed ≡
/// uninterrupted-scan.
#[test]
fn recovery_rebuilds_index_state_in_both_modes() {
    use reweb_core::ReactiveEngine;
    use reweb_persist::{DurableEngine, DurableOptions, SyncPolicy};

    let msgs = composite_stream();
    let opts = DurableOptions {
        sync: SyncPolicy::Os,
        snapshot_every: Some(5),
    };

    let mut per_mode_outputs: Vec<Vec<String>> = Vec::new();
    for mode in [JoinMode::Indexed, JoinMode::Scan] {
        let build = move || {
            let mut e = ReactiveEngine::new("http://node");
            e.set_join_mode(mode);
            e
        };

        // Uninterrupted reference run, keeping the on-disk image after
        // each batch so recovery can start mid-join.
        let ref_dir = fresh_dir("ref");
        let mut reference = DurableEngine::open(&ref_dir, opts, build).unwrap();
        reference.install_program(COMPOSITE_PROGRAM).unwrap();
        let mut ref_outputs: Vec<Vec<String>> = vec![Vec::new()];
        let mut images = vec![fresh_dir("img-install")];
        copy_dir(&ref_dir, images.last().unwrap());
        for m in &msgs {
            ref_outputs.push(render(
                &reference.receive_batch(std::slice::from_ref(m)).unwrap(),
            ));
            let img = fresh_dir("img");
            copy_dir(&ref_dir, &img);
            images.push(img);
        }
        let flat_ref: Vec<String> = ref_outputs.iter().flatten().cloned().collect();
        let ref_state = reference.engine().state_size();
        assert!(ref_state > 0, "stream should leave live partial matches");
        drop(reference);

        // Kill points chosen mid-stream: snapshots have been taken and
        // windowed join state spans the boundary.
        for k in [7usize, 14, 23, 31] {
            let node = fresh_dir(&format!("node{k}"));
            copy_dir(&images[k], &node);
            let mut revived = DurableEngine::open(&node, opts, build)
                .unwrap_or_else(|e| panic!("recovery at step {k} failed: {e}"));
            assert!(revived.recovery().recovered);
            assert_eq!(revived.engine().join_mode(), mode);
            let mut outputs: Vec<String> = ref_outputs[..=k].iter().flatten().cloned().collect();
            for m in &msgs[k..] {
                outputs.extend(render(
                    &revived.receive_batch(std::slice::from_ref(m)).unwrap(),
                ));
            }
            assert_eq!(
                outputs, flat_ref,
                "outputs diverged after recovery at step {k} in {mode:?}"
            );
            assert_eq!(
                revived.engine().state_size(),
                ref_state,
                "retained state diverged after recovery at step {k} in {mode:?}"
            );
            std::fs::remove_dir_all(&node).ok();
        }

        per_mode_outputs.push(flat_ref);
        std::fs::remove_dir_all(&ref_dir).ok();
        for img in images {
            std::fs::remove_dir_all(&img).ok();
        }
    }
    assert_eq!(
        per_mode_outputs[0], per_mode_outputs[1],
        "indexed and scan durable runs diverged"
    );
    assert!(!per_mode_outputs[0].is_empty());
}

// ----- a pinned regression case -----------------------------------------------

/// The deterministic seed that first broke the wall (found during PR 7
/// review, formerly `tests/scratch_repro.rs`): an out-of-order `count`
/// answer with an *inverted* interval (start=1000, end=500) feeding a
/// `seq`. The indexed join's max-end pruning disagreed with the scan
/// join's pairwise ordering checks until the index treated inverted
/// intervals exactly like the oracle. Kept as a fixed case because the
/// random generator only rarely produces the inversion + late-delta
/// interleaving together.
#[test]
fn out_of_order_seq_divergence() {
    let ev = |id: u64, t: u64, label: &str| {
        Event::new(
            EventId(id),
            Timestamp(t),
            Term::unordered(label, vec![Term::ordered("v", vec![Term::int(0)])]),
        )
    };
    let q = parse_event_query("seq(x, count(2, a, 10s), y)").unwrap();
    let mut indexed = IncrementalEngine::new(&q);
    let mut scan = IncrementalEngine::new(&q).with_join_mode(JoinMode::Scan);
    let evs = [
        ev(1, 1000, "a"),
        ev(2, 500, "a"), // count(a) answer: start=1000, end=500 (inverted)
        ev(3, 600, "y"), // stored at position 2
        ev(4, 700, "x"), // delta at position 0: pairwise checks pass, max-end check must too
    ];
    for e in &evs {
        let ai = indexed.push(e);
        let asc = scan.push(e);
        assert_eq!(ai, asc, "diverged at event {:?}", e);
        assert_eq!(
            indexed.state_size(),
            scan.state_size(),
            "state diverged at event {:?}",
            e
        );
    }
}
