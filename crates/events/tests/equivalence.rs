//! The central semantic pin of Thesis 6: the incremental (data-driven)
//! engine and the naive (query-driven, history-rescanning) engine compute
//! the *same answer sets* on the same streams — incrementality is purely an
//! efficiency property, never a semantic one.
//!
//! Random event queries and random event streams are generated with
//! proptest; both engines consume the stream interleaved with clock
//! advances, and their answers are compared by answer key (constituents +
//! bindings).

use proptest::prelude::*;

use reweb_events::{
    parse_event_query, Event, EventId, EventQuery, IncrementalEngine, NaiveEngine, Policy,
    Selection,
};
use reweb_query::Bindings;
use reweb_term::{Term, Timestamp};

// ----- random queries ---------------------------------------------------------

/// Atomic patterns over a small fixed alphabet so streams actually hit them.
fn arb_atomic() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("c".to_string()),
        Just("a{{v[[var X]]}}".to_string()),
        Just("b{{v[[var X]]}}".to_string()),
        Just("b{{v[[var Y]]}}".to_string()),
        Just("*{{v[[var X]]}}".to_string()),
    ]
}

fn arb_query() -> impl Strategy<Value = String> {
    let leaf = arb_atomic();
    leaf.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            // and / seq, optionally windowed
            (proptest::collection::vec(inner.clone(), 2..3), 0..3u8).prop_map(|(parts, w)| {
                let body = format!("and({})", parts.join(", "));
                match w {
                    0 => body,
                    1 => format!("{body} within 5s"),
                    _ => format!("{body} within 50s"),
                }
            }),
            (proptest::collection::vec(inner.clone(), 2..3), 0..3u8).prop_map(|(parts, w)| {
                let body = format!("seq({})", parts.join(", "));
                match w {
                    0 => body,
                    1 => format!("{body} within 5s"),
                    _ => format!("{body} within 50s"),
                }
            }),
            proptest::collection::vec(inner.clone(), 2..3)
                .prop_map(|parts| format!("or({})", parts.join(", "))),
            // absence over atomics
            (arb_atomic(), arb_atomic()).prop_map(|(t, a)| format!("absence({t}, {a}, 3s)")),
            // count and agg
            (2..4usize).prop_map(|n| format!("count({n}, a, 10s)")),
            (2..4usize).prop_map(|n| format!("avg(var X, {n}, a{{{{v[[var X]]}}}}) as var AVG")),
            // where filter
            inner.prop_map(|q| format!("{q} where var X >= 2")),
        ]
    })
}

/// Join-shaped queries only (`and`/`seq`/`or`/`where` over atomics), with
/// nested `Seq`-under-`And` shapes explicitly represented — exactly the
/// partial-match state a consuming policy must retract from. Accumulator
/// operators are deliberately absent: under `consume`, naive re-evaluation
/// over a filtered history can resurrect ring-buffer entries the
/// incremental engine already evicted (`count`/`agg`), and consuming a
/// canceller retroactively un-cancels an `absence` — both intended
/// differences of the strawman, not bugs the pin should reject.
fn arb_join_query() -> impl Strategy<Value = String> {
    let leaf = arb_atomic();
    let seq = (proptest::collection::vec(arb_atomic(), 2..4), 0..3u8).prop_map(|(parts, w)| {
        let body = format!("seq({})", parts.join(", "));
        match w {
            0 => body,
            1 => format!("{body} within 5s"),
            _ => format!("{body} within 50s"),
        }
    });
    let inner = prop_oneof![leaf, seq];
    (proptest::collection::vec(inner, 2..4), 0..4u8).prop_map(|(parts, shape)| {
        let body = match shape {
            0 | 1 => format!("and({})", parts.join(", ")),
            2 => format!("seq({})", parts.join(", ")),
            _ => format!("or({})", parts.join(", ")),
        };
        match shape {
            0 => format!("{body} within 50s"),
            _ => body,
        }
    })
}

fn arb_policy() -> impl Strategy<Value = Policy> {
    (0..2u8, 0..2u8).prop_map(|(first, consume)| Policy {
        selection: if first == 1 {
            Selection::First
        } else {
            Selection::Every
        },
        consume: consume == 1,
    })
}

// ----- random streams ---------------------------------------------------------

#[derive(Clone, Debug)]
enum Step {
    Ev { label: u8, value: u8, dt: u16 },
    Advance { dt: u16 },
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        4 => (0..4u8, 0..5u8, 0..3000u16).prop_map(|(label, value, dt)| Step::Ev {
            label,
            value,
            dt
        }),
        1 => (0..6000u16).prop_map(|dt| Step::Advance { dt }),
    ]
}

fn payload(label: u8, value: u8) -> Term {
    let l = match label {
        0 => "a",
        1 => "b",
        2 => "c",
        _ => "d",
    };
    Term::unordered(l, vec![Term::ordered("v", vec![Term::int(value as i64)])])
}

fn keys(answers: &[reweb_events::Answer]) -> Vec<(Vec<EventId>, Bindings, Timestamp, Timestamp)> {
    let mut ks: Vec<_> = answers.iter().map(|a| a.key()).collect();
    ks.sort();
    ks
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Incremental ≡ naive on random streams and queries, step by step.
    #[test]
    fn incremental_equals_naive(qsrc in arb_query(), steps in proptest::collection::vec(arb_step(), 0..40)) {
        let q: EventQuery = parse_event_query(&qsrc).unwrap();
        let mut inc = IncrementalEngine::new(&q);
        let mut naive = NaiveEngine::new(&q);
        let mut now = Timestamp::ZERO;
        let mut next_id = 0u64;
        for step in steps {
            match step {
                Step::Ev { label, value, dt } => {
                    now += reweb_term::Dur::millis(dt as u64);
                    next_id += 1;
                    let e = Event::new(EventId(next_id), now, payload(label, value));
                    let ai = inc.push(&e);
                    let an = naive.push(&e);
                    prop_assert_eq!(
                        keys(&ai), keys(&an),
                        "diverged on event {:?} of query {}", e.payload.to_string(), qsrc
                    );
                }
                Step::Advance { dt } => {
                    now += reweb_term::Dur::millis(dt as u64);
                    let ai = inc.advance_to(now);
                    let an = naive.advance_to(now);
                    prop_assert_eq!(
                        keys(&ai), keys(&an),
                        "diverged on advance to {} of query {}", now, qsrc
                    );
                }
            }
        }
        // Final flush far in the future fires all remaining deadlines.
        let far = now + reweb_term::Dur::hours(24);
        prop_assert_eq!(keys(&inc.advance_to(far)), keys(&naive.advance_to(far)));
    }

    /// Incremental ≡ naive under every selection/consumption policy
    /// combination, on join-shaped queries (including `Seq`-under-`And`):
    /// `First` must pick the same answer of each batch, and `consume`
    /// must retract the same partial matches on both sides.
    #[test]
    fn incremental_equals_naive_under_policy(
        qsrc in arb_join_query(),
        policy in arb_policy(),
        steps in proptest::collection::vec(arb_step(), 0..40),
    ) {
        let q: EventQuery = parse_event_query(&qsrc).unwrap();
        let mut inc = IncrementalEngine::new(&q).with_policy(policy);
        let mut naive = NaiveEngine::new(&q).with_policy(policy);
        let mut now = Timestamp::ZERO;
        let mut next_id = 0u64;
        for step in steps {
            match step {
                Step::Ev { label, value, dt } => {
                    now += reweb_term::Dur::millis(dt as u64);
                    next_id += 1;
                    let e = Event::new(EventId(next_id), now, payload(label, value));
                    let ai = inc.push(&e);
                    let an = naive.push(&e);
                    prop_assert_eq!(
                        keys(&ai), keys(&an),
                        "diverged on event {:?} of query {} under {:?}",
                        e.payload.to_string(), qsrc, policy
                    );
                }
                Step::Advance { dt } => {
                    now += reweb_term::Dur::millis(dt as u64);
                    let ai = inc.advance_to(now);
                    let an = naive.advance_to(now);
                    prop_assert_eq!(
                        keys(&ai), keys(&an),
                        "diverged on advance to {} of query {} under {:?}", now, qsrc, policy
                    );
                }
            }
        }
    }

    /// Incremental answer sets are insensitive to interleaved clock
    /// advances (they only *move* absence answers earlier, never change
    /// the total set).
    #[test]
    fn advances_do_not_change_totals(qsrc in arb_query(), steps in proptest::collection::vec(arb_step(), 0..30)) {
        let q: EventQuery = parse_event_query(&qsrc).unwrap();
        // Run once with advances, once without (events only).
        let mut with_adv = IncrementalEngine::new(&q);
        let mut without = IncrementalEngine::new(&q);
        let mut now = Timestamp::ZERO;
        let mut next_id = 0u64;
        let mut total_with = Vec::new();
        let mut total_without = Vec::new();
        for step in &steps {
            match step {
                Step::Ev { label, value, dt } => {
                    now += reweb_term::Dur::millis(*dt as u64);
                    next_id += 1;
                    let e = Event::new(EventId(next_id), now, payload(*label, *value));
                    total_with.extend(with_adv.push(&e));
                    total_without.extend(without.push(&e));
                }
                Step::Advance { dt } => {
                    now += reweb_term::Dur::millis(*dt as u64);
                    total_with.extend(with_adv.advance_to(now));
                    // `without` deliberately does not see the advance.
                }
            }
        }
        let far = now + reweb_term::Dur::hours(24);
        total_with.extend(with_adv.advance_to(far));
        total_without.extend(without.advance_to(far));
        prop_assert_eq!(keys(&total_with), keys(&total_without), "query {}", qsrc);
    }
}
