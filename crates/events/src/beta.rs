//! The beta network: indexed semi-naive joins for `And`/`Seq` (Thesis 6).
//!
//! PR 6 gave *alpha* dispatch a shared discrimination network; this module
//! does the same for the *join* side. The scan join in
//! [`crate::incremental`] enumerates, per delta, every stored sibling
//! answer — per-event join cost grows with window occupancy. Here every
//! child store of a join is a [`JoinIndex`]: stored answers hashed by
//! their bindings projected onto a compile-time *join key*, with buckets
//! sorted by start time so `within` windows and `Seq` interval order
//! prune candidates by range lookup instead of scan.
//!
//! **Key analysis** ([`JoinPlan`]). A combination is enumerated delta
//! first: the delta answer at position `k` is placed, then the remaining
//! positions in ascending order. The probe key for each step is
//! `certain(child) ∩ ⋃ certain(already placed)`, where [`certain_vars`]
//! are the variables bound by *every* answer of a child (atomic patterns
//! bind all their variables except those under `without`; `or` yields the
//! intersection of its branches; `count` binds nothing; …). Restricting
//! keys to certain variables makes the index lossless: a stored answer
//! always fully binds its key (so it lands in exactly one bucket), the
//! probing side always fully binds it too (certainty is closed under
//! union), and two answers whose bindings merge agree on every shared
//! variable — in particular the key — so every merge-compatible stored
//! answer is in the probed bucket. Extra bucket mates that agree on the
//! key but conflict elsewhere are rejected by the usual merge.
//!
//! **Range pruning.** Within a bucket, entries are sorted by start time.
//! A `within w` window admits only candidates with `start ≥ acc.end − w`
//! (anything earlier would already overflow the span regardless of its
//! end). `Seq` places positions in an order where a candidate's
//! predecessor position is always placed first, so `start > prev.end`
//! cuts the low end exactly, and for positions before the delta the chain
//! transitively requires `end < delta.start` (hence `start < delta.start`
//! cuts the high end). Every cut is a *necessary* condition of the full
//! checks the enumerator still performs, so the answer set is byte-
//! identical to the scan join — pinned by the `join_equivalence`
//! differential proptest.
//!
//! **Retraction.** Window GC pops from a `(start, id)` ordering, so each
//! expired answer costs `O(log n)` instead of a full-store retain;
//! `Policy { consume }` removal and mode switches re-derive an answer's
//! bucket positions from its stored bindings, so the index never needs a
//! reverse map. The index is *derived data*: rebuilding it from the
//! stored answers (as crash recovery does when `reweb_persist` replays
//! through the operators, and as a [`JoinMode`] switch does mid-stream)
//! reproduces it deterministically.

use std::collections::{BTreeSet, HashMap};

use reweb_query::Bindings;
use reweb_term::{Dur, Sym, Timestamp};

use crate::event::{Answer, EventId};
use crate::incremental::EngineStats;
use crate::query::EventQuery;

/// Which join implementation `And`/`Seq` operators run on — see
/// [`crate::IncrementalEngine::set_join_mode`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum JoinMode {
    /// Hash child stores by projected join-key bindings with time-sorted
    /// buckets ([`JoinIndex`]); per-delta join cost tracks the matching
    /// candidates, not the window occupancy.
    #[default]
    Indexed,
    /// The historical scan join: each delta is joined by enumerating the
    /// full sibling stores. Kept as the equivalence oracle (indexed
    /// output is pinned byte-identical to it) and for the E17 contrast.
    Scan,
}

/// The variables bound by *every* answer of `q`, sorted by name.
///
/// This is the soundness condition for join keys: hashing stored answers
/// by a variable that only *some* answers bind would file the others in a
/// different bucket and silently skip joins the scan oracle finds
/// (bindings merge fine across disjoint variable sets).
pub fn certain_vars(q: &EventQuery) -> Vec<Sym> {
    match q {
        EventQuery::Atomic { pattern } => pattern.certain_variables(),
        EventQuery::And { parts, .. } | EventQuery::Seq { parts, .. } => {
            let mut out: Vec<Sym> = parts.iter().flat_map(certain_vars).collect();
            out.sort();
            out.dedup();
            out
        }
        EventQuery::Or { parts } => {
            // An or-answer carries whichever branch matched: only the
            // intersection is guaranteed.
            let mut iter = parts.iter().map(certain_vars);
            let first = iter.next().unwrap_or_default();
            iter.fold(first, |acc, next| {
                acc.into_iter()
                    .filter(|s| next.binary_search(s).is_ok())
                    .collect()
            })
        }
        // An absence answer is its trigger answer with the interval
        // extended to the deadline.
        EventQuery::Absence { trigger, .. } => certain_vars(trigger),
        // Count answers carry no bindings at all.
        EventQuery::Count { .. } => Vec::new(),
        EventQuery::Agg { pattern, out, .. } => {
            // Emitted only when the out-variable binds consistently, so it
            // is certain alongside the pattern's certain variables.
            let mut vs = pattern.certain_variables();
            if vs.binary_search(out).is_err() {
                vs.push(*out);
                vs.sort();
            }
            vs
        }
        EventQuery::Where { inner, .. } => certain_vars(inner),
    }
}

/// One probe step of the delta-first enumeration: which child to extend
/// the partial combination with, and which of its key indexes to probe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JoinStep {
    /// Child position to place next.
    pub child: usize,
    /// Index into this child's [`JoinPlan::child_keys`] entry.
    pub slot: usize,
}

/// Compile-time join-key analysis for one `And`/`Seq` node.
///
/// For each possible first-delta position `k`, the enumeration places
/// position `k` first and then the remaining positions in ascending
/// order; `steps[k]` lists those `n − 1` probe steps. `child_keys[j]`
/// holds the deduplicated key variable sets child `j` is indexed under —
/// one [`JoinIndex`] map per entry. For the common binary join each child
/// has exactly one key (the variables it shares with its sibling).
#[derive(Clone, Debug)]
pub struct JoinPlan {
    /// Deduplicated key variable sets (each sorted) per child.
    pub child_keys: Vec<Vec<Vec<Sym>>>,
    /// Probe steps per first-delta position.
    pub steps: Vec<Vec<JoinStep>>,
}

impl JoinPlan {
    /// Analyze the children of one `And`/`Seq` node.
    pub fn new(parts: &[EventQuery]) -> JoinPlan {
        let certain: Vec<Vec<Sym>> = parts.iter().map(certain_vars).collect();
        let n = parts.len();
        let mut child_keys: Vec<Vec<Vec<Sym>>> = vec![Vec::new(); n];
        let mut steps: Vec<Vec<JoinStep>> = Vec::with_capacity(n);
        for k in 0..n {
            // Certain variables of everything placed so far, kept sorted.
            let mut bound = certain[k].clone();
            let mut ksteps = Vec::with_capacity(n.saturating_sub(1));
            for j in (0..n).filter(|&j| j != k) {
                let key: Vec<Sym> = certain[j]
                    .iter()
                    .filter(|s| bound.binary_search(s).is_ok())
                    .copied()
                    .collect();
                let slot = child_keys[j]
                    .iter()
                    .position(|existing| *existing == key)
                    .unwrap_or_else(|| {
                        child_keys[j].push(key);
                        child_keys[j].len() - 1
                    });
                ksteps.push(JoinStep { child: j, slot });
                for s in &certain[j] {
                    if let Err(pos) = bound.binary_search(s) {
                        bound.insert(pos, *s);
                    }
                }
            }
            steps.push(ksteps);
        }
        JoinPlan { child_keys, steps }
    }
}

/// A bucket entry: `(start, end, arena slot)`. Sorting by this tuple
/// orders each bucket by start time, which is what range pruning cuts on.
type Entry = (Timestamp, Timestamp, u32);

#[derive(Clone, Debug)]
struct KeyMap {
    key: Vec<Sym>,
    buckets: HashMap<Bindings, Vec<Entry>>,
}

/// One child store of an indexed join: an arena of stored answers plus
/// one hash index per key the [`JoinPlan`] probes this child by, and a
/// global `(start, id)` ordering for O(expired · log n) window GC.
#[derive(Clone, Debug, Default)]
pub struct JoinIndex {
    arena: Vec<Option<Answer>>,
    free: Vec<u32>,
    by_start: BTreeSet<(Timestamp, u32)>,
    maps: Vec<KeyMap>,
}

impl JoinIndex {
    /// An empty store indexed under each of the given key variable sets.
    pub fn new(keys: &[Vec<Sym>]) -> JoinIndex {
        JoinIndex {
            arena: Vec::new(),
            free: Vec::new(),
            by_start: BTreeSet::new(),
            maps: keys
                .iter()
                .map(|k| KeyMap {
                    key: k.clone(),
                    buckets: HashMap::new(),
                })
                .collect(),
        }
    }

    /// Number of live stored answers.
    pub fn len(&self) -> usize {
        self.by_start.len()
    }

    /// No live stored answers?
    pub fn is_empty(&self) -> bool {
        self.by_start.is_empty()
    }

    /// Store one answer, filing it into every key map.
    pub fn insert(&mut self, a: Answer) {
        let id = self.free.pop().unwrap_or_else(|| {
            self.arena.push(None);
            (self.arena.len() - 1) as u32
        });
        self.by_start.insert((a.start, id));
        for m in &mut self.maps {
            let entry = (a.start, a.end, id);
            let bucket = m.buckets.entry(a.bindings.project(&m.key)).or_default();
            let pos = bucket.partition_point(|e| e < &entry);
            bucket.insert(pos, entry);
        }
        self.arena[id as usize] = Some(a);
    }

    fn remove(&mut self, id: u32) {
        let a = self.arena[id as usize].take().expect("live arena slot");
        self.by_start.remove(&(a.start, id));
        for m in &mut self.maps {
            let key = a.bindings.project(&m.key);
            if let Some(bucket) = m.buckets.get_mut(&key) {
                if let Ok(pos) = bucket.binary_search(&(a.start, a.end, id)) {
                    bucket.remove(pos);
                }
                // Drop empty buckets: expired keys must not accrete
                // (the volatility regression pins this).
                if bucket.is_empty() {
                    m.buckets.remove(&key);
                }
            }
        }
        self.free.push(id);
    }

    /// Drop every answer whose start has aged past the retention bound —
    /// the same predicate the scan join's retain uses, popped from the
    /// `(start, id)` ordering so cost is O(expired · log n).
    pub fn gc(&mut self, now: Timestamp, retention: Dur) {
        while let Some(&(start, id)) = self.by_start.iter().next() {
            if now.since(start) <= retention {
                break;
            }
            self.remove(id);
        }
    }

    /// Drop every answer with a consumed constituent (`Policy::consume`).
    pub fn consume(&mut self, ids: &BTreeSet<EventId>) {
        let victims: Vec<u32> = self
            .arena
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|a| (i as u32, a)))
            .filter(|(_, a)| a.constituents.iter().any(|c| ids.contains(c)))
            .map(|(i, _)| i)
            .collect();
        for id in victims {
            self.remove(id);
        }
    }

    /// Stored answers in `(start, id)` order — the flat form a
    /// [`JoinMode::Scan`] switch converts back to.
    pub fn to_time_ordered_vec(&self) -> Vec<Answer> {
        self.by_start
            .iter()
            .map(|&(_, id)| self.arena[id as usize].clone().expect("live arena slot"))
            .collect()
    }

    fn get(&self, id: u32) -> &Answer {
        self.arena[id as usize].as_ref().expect("live arena slot")
    }

    /// The bucket slice for `key` under key map `slot`, range-cut to
    /// `start ∈ [min_start, max_start_excl)`.
    fn probe(
        &self,
        slot: usize,
        key: &Bindings,
        min_start: Option<Timestamp>,
        max_start_excl: Option<Timestamp>,
    ) -> &[Entry] {
        let Some(bucket) = self.maps[slot].buckets.get(key) else {
            return &[];
        };
        let lo = min_start.map_or(0, |t| bucket.partition_point(|e| e.0 < t));
        let hi = max_start_excl.map_or(bucket.len(), |t| bucket.partition_point(|e| e.0 < t));
        &bucket[lo..hi.max(lo)]
    }
}

/// Enumerate every *new* combination, like the scan join, but probing
/// [`JoinIndex`]es instead of enumerating full sibling stores. Each combo
/// is keyed by its first delta position `k`: positions before `k` draw
/// from stored answers only, later positions from stored and delta
/// answers. Emits the same answer multiset as the scan join (the batch is
/// sorted and deduplicated downstream, so enumeration order is
/// output-invisible).
#[allow(clippy::too_many_arguments)]
pub(crate) fn join_indexed(
    indexes: &[JoinIndex],
    deltas: &[Vec<Answer>],
    plan: &JoinPlan,
    window: Option<Dur>,
    sequential: bool,
    out: &mut Vec<Answer>,
    stats: &mut EngineStats,
) {
    let n = indexes.len();
    let mut spans: Vec<Option<(Timestamp, Timestamp)>> = vec![None; n];
    for k in 0..n {
        if deltas[k].is_empty() {
            continue;
        }
        let feasible =
            (0..n).all(|j| j == k || !indexes[j].is_empty() || (j > k && !deltas[j].is_empty()));
        if !feasible {
            continue;
        }
        for d in &deltas[k] {
            stats.join_attempts += 1;
            if let Some(w) = window {
                if d.span() > w {
                    continue;
                }
            }
            spans[k] = Some((d.start, d.end));
            place(
                indexes,
                deltas,
                &plan.steps[k],
                0,
                k,
                d,
                &mut spans,
                window,
                sequential,
                out,
                stats,
            );
            spans[k] = None;
        }
    }
}

/// Place the next probe step's child into the partial combination `acc`.
/// `spans` records the interval of every placed position (for the `Seq`
/// order cuts); positions are placed delta-first, then ascending, so a
/// non-first position's predecessor is always placed before it.
#[allow(clippy::too_many_arguments)]
fn place(
    indexes: &[JoinIndex],
    deltas: &[Vec<Answer>],
    steps: &[JoinStep],
    si: usize,
    k: usize,
    acc: &Answer,
    spans: &mut Vec<Option<(Timestamp, Timestamp)>>,
    window: Option<Dur>,
    sequential: bool,
    out: &mut Vec<Answer>,
    stats: &mut EngineStats,
) {
    let Some(&JoinStep { child: j, slot }) = steps.get(si) else {
        out.push(acc.clone());
        return;
    };
    // Range cuts — each a necessary condition of the full checks below.
    let mut min_start: Option<Timestamp> = None;
    let mut max_start_excl: Option<Timestamp> = None;
    if let Some(w) = window {
        // A candidate starting before acc.end − w overflows the span no
        // matter where it ends (acc itself fits the window, so its own
        // start is not the binding constraint).
        min_start = Some(acc.end.saturating_sub(w));
    }
    // Interval of the delta at position k; placed before any probe step.
    let delta_start = spans[k].expect("delta position placed").0;
    if sequential {
        if let Some(Some((_, prev_end))) = j.checked_sub(1).map(|p| spans[p]) {
            // Strict succession: start > prev.end, i.e. start ≥ prev.end+1ms.
            let lb = Timestamp(prev_end.millis() + 1);
            min_start = Some(min_start.map_or(lb, |m| m.max(lb)));
        }
        if j < k {
            // The chain transitively needs end < delta.start, so
            // start < delta.start too.
            max_start_excl = Some(max_start_excl.map_or(delta_start, |m| m.min(delta_start)));
        }
    }
    let try_candidate = |a: &Answer,
                         spans: &mut Vec<Option<(Timestamp, Timestamp)>>,
                         out: &mut Vec<Answer>,
                         stats: &mut EngineStats| {
        stats.join_attempts += 1;
        if sequential && j < k && a.end >= delta_start {
            return;
        }
        let Some(b) = acc.bindings.merge(&a.bindings) else {
            return;
        };
        let combined = acc.combine(a, b);
        if let Some(w) = window {
            if combined.span() > w {
                return;
            }
        }
        spans[j] = Some((a.start, a.end));
        place(
            indexes,
            deltas,
            steps,
            si + 1,
            k,
            &combined,
            spans,
            window,
            sequential,
            out,
            stats,
        );
        spans[j] = None;
    };
    stats.index_probes += 1;
    let probe_key = acc.bindings.project(&indexes[j].maps[slot].key);
    for &(_, _, id) in indexes[j].probe(slot, &probe_key, min_start, max_start_excl) {
        try_candidate(indexes[j].get(id), spans, out, stats);
    }
    if j > k {
        // Later positions also draw from this round's deltas (they are
        // not yet stored); apply the same range cuts by hand.
        for a in &deltas[j] {
            if min_start.is_some_and(|m| a.start < m) {
                continue;
            }
            if max_start_excl.is_some_and(|m| a.start >= m) {
                continue;
            }
            try_candidate(a, spans, out, stats);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_event_query;

    fn q(src: &str) -> EventQuery {
        parse_event_query(src).unwrap()
    }

    fn syms(names: &[&str]) -> Vec<Sym> {
        names.iter().map(|n| Sym::new(n)).collect()
    }

    #[test]
    fn certain_vars_per_operator() {
        assert_eq!(certain_vars(&q("a{{v[[var X]]}}")), syms(&["X"]));
        assert_eq!(
            certain_vars(&q("and(a{{v[[var X]]}}, b{{w[[var Y]]}})")),
            syms(&["X", "Y"])
        );
        // Or: only the intersection is certain.
        assert_eq!(
            certain_vars(&q("or(a{{v[[var X]], w[[var Y]]}}, b{{v[[var X]]}})")),
            syms(&["X"])
        );
        // Count binds nothing; Agg binds its out-variable.
        assert_eq!(certain_vars(&q("count(3, a{{v[[var X]]}})")), syms(&[]));
        assert_eq!(
            certain_vars(&q("avg(var X, 3, a{{v[[var X]]}}) as var A")),
            syms(&["A", "X"])
        );
        // Absence answers are extended trigger answers.
        assert_eq!(
            certain_vars(&q(
                "absence(a{{v[[var X]]}}, b{{v[[var X]], u[[var U]]}}, 2s)"
            )),
            syms(&["X"])
        );
        assert_eq!(
            certain_vars(&q("a{{v[[var X]]}} where var X >= 2")),
            syms(&["X"])
        );
    }

    #[test]
    fn plan_keys_are_shared_certain_vars() {
        let parts = [q("a{{v[[var X]]}}"), q("b{{v[[var X]], w[[var Y]]}}")];
        let plan = JoinPlan::new(&parts);
        // Binary join: one key per child, the shared variable X.
        assert_eq!(plan.child_keys[0], vec![syms(&["X"])]);
        assert_eq!(plan.child_keys[1], vec![syms(&["X"])]);
        assert_eq!(plan.steps[0], vec![JoinStep { child: 1, slot: 0 }]);
        assert_eq!(plan.steps[1], vec![JoinStep { child: 0, slot: 0 }]);
    }

    #[test]
    fn plan_key_grows_along_enumeration() {
        // Three-way chain a(X) — b(X,Y) — c(Y): probing c after a,b keys
        // on Y, but probing c right after the delta at c... is position 2,
        // so from delta k=0 the order is [0, 1, 2]: key(1) = X, key(2) = Y.
        let parts = [
            q("a{{v[[var X]]}}"),
            q("b{{v[[var X]], w[[var Y]]}}"),
            q("c{{w[[var Y]]}}"),
        ];
        let plan = JoinPlan::new(&parts);
        assert_eq!(
            plan.steps[0],
            vec![
                JoinStep { child: 1, slot: 0 },
                JoinStep { child: 2, slot: 0 }
            ]
        );
        assert_eq!(plan.child_keys[1][0], syms(&["X"]));
        assert_eq!(plan.child_keys[2][0], syms(&["Y"]));
        // From delta k=2 the order is [2, 0, 1]: a keys on nothing shared
        // (c binds Y, a binds X), b keys on both.
        assert_eq!(plan.child_keys[0].last().unwrap(), &syms(&[]));
        assert!(plan.child_keys[1].contains(&syms(&["X", "Y"])));
    }

    #[test]
    fn unshared_vars_use_empty_key_single_bucket() {
        let parts = [q("a"), q("b")];
        let plan = JoinPlan::new(&parts);
        assert_eq!(plan.child_keys[0], vec![Vec::<Sym>::new()]);
        let mut ix = JoinIndex::new(&plan.child_keys[0]);
        let a1 = Answer {
            constituents: vec![EventId(1)],
            bindings: Bindings::new(),
            start: Timestamp(10),
            end: Timestamp(10),
        };
        ix.insert(a1.clone());
        assert_eq!(ix.len(), 1);
        assert_eq!(ix.probe(0, &Bindings::new(), None, None).len(), 1);
    }

    #[test]
    fn index_gc_and_consume_retract() {
        let plan = JoinPlan::new(&[q("a{{v[[var X]]}}"), q("b{{v[[var X]]}}")]);
        let mut ix = JoinIndex::new(&plan.child_keys[0]);
        for i in 0..10u64 {
            ix.insert(Answer {
                constituents: vec![EventId(i)],
                bindings: Bindings::of("X", reweb_term::Term::int(i as i64)),
                start: Timestamp(i * 100),
                end: Timestamp(i * 100),
            });
        }
        assert_eq!(ix.len(), 10);
        // GC everything older than 500ms before t=900.
        ix.gc(Timestamp(900), Dur::millis(500));
        assert_eq!(ix.len(), 6);
        // Consume two of the survivors.
        let ids: BTreeSet<EventId> = [EventId(5), EventId(7)].into();
        ix.consume(&ids);
        assert_eq!(ix.len(), 4);
        // Flattening preserves time order and the empty buckets are gone.
        let flat = ix.to_time_ordered_vec();
        assert_eq!(flat.len(), 4);
        assert!(flat.windows(2).all(|w| w[0].start <= w[1].start));
        assert!(ix.maps[0].buckets.len() == 4);
    }
}
