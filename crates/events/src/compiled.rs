//! Compilation of event queries into alpha-network registrations.
//!
//! [`reweb_query::compiled`] knows how to compile a single *pattern* into
//! necessary-condition tests; this module walks a composite
//! [`EventQuery`] and produces one [`Registration`] per constituent
//! pattern, so the engine's shared discrimination network can decide per
//! event which rules to even consider.
//!
//! Two semantic rules govern the walk:
//!
//! * **`WHERE` comparisons hoist only onto join-style paths.** A cmp whose
//!   single variable is bound as a root attribute of an `Atomic` part can
//!   run at dispatch time: an event failing it can only ever produce
//!   answers that the `Where` operator would filter anyway. `Count` and
//!   `Agg` patterns never receive guards — their *buffer contents* are
//!   output-visible (a count's constituents, an aggregate's values), so
//!   dropping a buffered event would change answers.
//! * **Absence timing is sacred.** Events reaching an `absence` operator
//!   both extend and *cancel* deadlines, and any pushed event can flush a
//!   due deadline; [`alpha_skippable`] therefore reports `false` for any
//!   query containing one, and the engine registers such rules label-only
//!   (every same-label event is a candidate, exactly as interpreted
//!   dispatch behaved).

use reweb_query::compiled::{compile_pattern, Registration};
use reweb_query::Cmp;

use crate::query::EventQuery;

/// Compile `q` into one registration per constituent pattern. An event is
/// a candidate for the owning rule iff it passes *some* registration —
/// the union over parts mirrors how any part's operator might consume the
/// event.
pub fn registrations(q: &EventQuery) -> Vec<Registration> {
    let mut out = Vec::new();
    go(q, &[], &mut out);
    out
}

/// May the engine skip feeding non-candidate events to this query's
/// operator tree without changing observable behavior?
///
/// `false` for absence-bearing queries: their operators fire on
/// *deadlines* carried forward by every pushed event (matching or not),
/// so the operator must see the full same-label stream. The engine
/// additionally keeps TTL-limited rules unskippable — window-less state
/// pruned by an engine TTL makes *gc timing* output-visible, and gc
/// advances with each push.
pub fn alpha_skippable(q: &EventQuery) -> bool {
    !q.has_absence()
}

fn go(q: &EventQuery, cmps: &[Cmp], out: &mut Vec<Registration>) {
    match q {
        EventQuery::Atomic { pattern } => out.push(compile_pattern(pattern, cmps)),
        EventQuery::And { parts, .. }
        | EventQuery::Or { parts }
        | EventQuery::Seq { parts, .. } => {
            for p in parts {
                go(p, cmps, out);
            }
        }
        EventQuery::Absence {
            trigger, absent, ..
        } => {
            // No guard hoisting on either side: trigger events that a
            // `Where` would later filter still open (and their absent
            // counterparts still cancel) deadlines.
            go(trigger, &[], out);
            go(absent, &[], out);
        }
        EventQuery::Count { pattern, .. } | EventQuery::Agg { pattern, .. } => {
            out.push(compile_pattern(pattern, &[]));
        }
        EventQuery::Where { inner, cmps: more } => {
            let combined: Vec<Cmp> = cmps.iter().chain(more.iter()).cloned().collect();
            go(inner, &combined, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_event_query;
    use reweb_query::compiled::AlphaTest;
    use reweb_term::Sym;

    fn regs(src: &str) -> Vec<Registration> {
        registrations(&parse_event_query(src).unwrap())
    }

    #[test]
    fn one_registration_per_part() {
        let rs = regs("and(order{{id[[var O]]}}, payment{{order[[var O]]}}) within 1h");
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].label, Some(Sym::new("order")));
        assert_eq!(rs[1].label, Some(Sym::new("payment")));
    }

    #[test]
    fn where_guards_reach_atomic_parts_only() {
        let rs = regs("reading{{@level=var L}} where var L >= 10");
        assert_eq!(rs.len(), 1);
        assert!(
            rs[0].tests.iter().any(|t| matches!(t, AlphaTest::Guard(_))),
            "root attr var cmp hoists into a dispatch guard"
        );
        // Count buffers are output-visible: no guards.
        let rs = regs("count(3, reading{{@level=var L}}) where var L >= 10");
        assert!(rs[0]
            .tests
            .iter()
            .all(|t| !matches!(t, AlphaTest::Guard(_))));
    }

    #[test]
    fn absence_blocks_skippability_and_guards() {
        let q = parse_event_query("absence(cancel{{id[[var F]]}}, rebooked{{id[[var F]]}}, 2h)")
            .unwrap();
        assert!(!alpha_skippable(&q));
        assert_eq!(registrations(&q).len(), 2);
        let q = parse_event_query("order{{id[[var O]]}}").unwrap();
        assert!(alpha_skippable(&q));
    }

    #[test]
    fn wildcard_parts_register_without_label() {
        let rs = regs("and(la{{}}, *{{tag[[var Y]]}})");
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[1].label, None);
        assert!(
            !rs[1].tests.is_empty(),
            "wildcard still carries child tests"
        );
    }
}
