//! The query-driven (backward-chaining) strawman evaluator — the approach
//! Thesis 6 argues *against*.
//!
//! [`NaiveEngine`] keeps the complete event history and re-evaluates the
//! query over it from scratch on every incoming event (and on every clock
//! advance), reporting only the answers it has not reported before. That
//! makes its per-event cost grow with the history — exactly the behaviour
//! experiment E6 contrasts with [`crate::IncrementalEngine`].
//!
//! Semantics are identical to the incremental engine (pinned by a property
//! test in `tests/equivalence.rs`), with one intended exception: the naive
//! engine has no TTL knob, because never forgetting anything is its point.

use std::collections::BTreeSet;

use reweb_query::{match_at, Bindings, QueryTerm};
use reweb_term::Timestamp;

use crate::event::{Answer, Event, EventId};
use crate::incremental::{fold_agg, Policy, Selection};
use crate::query::EventQuery;

/// The naive, history-rescanning evaluator.
#[derive(Clone, Debug)]
pub struct NaiveEngine {
    query: EventQuery,
    history: Vec<Event>,
    now: Timestamp,
    seen: BTreeSet<(Vec<EventId>, Bindings, Timestamp, Timestamp)>,
    policy: Policy,
    /// Ids used up by an emitted answer under `Policy::consume`: the
    /// naive rendering of consumption is to re-evaluate over the history
    /// *minus* these events.
    consumed: BTreeSet<EventId>,
}

impl NaiveEngine {
    /// An engine answering `q` by full re-evaluation per event.
    pub fn new(q: &EventQuery) -> NaiveEngine {
        NaiveEngine {
            query: q.clone(),
            history: Vec::new(),
            now: Timestamp::ZERO,
            seen: BTreeSet::new(),
            policy: Policy::default(),
            consumed: BTreeSet::new(),
        }
    }

    /// Selection/consumption policy, mirroring
    /// [`crate::IncrementalEngine::with_policy`].
    pub fn with_policy(mut self, policy: Policy) -> NaiveEngine {
        self.policy = policy;
        self
    }

    /// Feed one event: appends to the history and re-evaluates everything.
    pub fn push(&mut self, e: &Event) -> Vec<Answer> {
        self.now = self.now.max(e.time());
        self.history.push(e.clone());
        self.emit_new()
    }

    /// Advance the clock (absence deadlines); re-evaluates everything.
    pub fn advance_to(&mut self, t: Timestamp) -> Vec<Answer> {
        self.now = self.now.max(t);
        self.emit_new()
    }

    /// Number of retained events — grows without bound, which is the
    /// "shadow Web" Thesis 4 warns about.
    pub fn history_len(&self) -> usize {
        self.history.len()
    }

    fn emit_new(&mut self) -> Vec<Answer> {
        // Under `consume`, used-up events are invisible to re-evaluation —
        // the whole-history equivalent of the incremental engine dropping
        // every partial match that involves them.
        let mut all = if self.consumed.is_empty() {
            eval(&self.query, &self.history, self.now)
        } else {
            let filtered: Vec<Event> = self
                .history
                .iter()
                .filter(|e| !self.consumed.contains(&e.id))
                .cloned()
                .collect();
            eval(&self.query, &filtered, self.now)
        };
        all.sort();
        all.dedup_by(|a, b| a.key() == b.key());
        // Every new answer is recorded as seen — answers a `First`
        // selection suppresses must not resurface as "new" on the next
        // re-evaluation (the incremental engine never re-derives them).
        let mut out = Vec::new();
        for a in all {
            if self.seen.insert(a.key()) {
                out.push(a);
            }
        }
        if self.policy.selection == Selection::First && out.len() > 1 {
            out.truncate(1);
        }
        if self.policy.consume {
            self.consumed
                .extend(out.iter().flat_map(|a| a.constituents.iter().copied()));
        }
        out
    }
}

/// Evaluate a query over a complete history at time `now`.
pub fn eval(q: &EventQuery, history: &[Event], now: Timestamp) -> Vec<Answer> {
    match q {
        EventQuery::Atomic { pattern } => atomic_answers(pattern, history),
        EventQuery::And { parts, window } => {
            let sets: Vec<Vec<Answer>> = parts.iter().map(|p| eval(p, history, now)).collect();
            combine(&sets, *window, false)
        }
        EventQuery::Seq { parts, window } => {
            let sets: Vec<Vec<Answer>> = parts.iter().map(|p| eval(p, history, now)).collect();
            combine(&sets, *window, true)
        }
        EventQuery::Or { parts } => {
            let mut out = Vec::new();
            for p in parts {
                out.extend(eval(p, history, now));
            }
            out
        }
        EventQuery::Absence {
            trigger,
            absent,
            window,
        } => {
            let triggers = eval(trigger, history, now);
            let absents = eval(absent, history, now);
            triggers
                .into_iter()
                .filter(|ta| ta.end + *window <= now)
                .filter(|ta| {
                    !absents.iter().any(|aa| {
                        aa.end > ta.end
                            && aa.end <= ta.end + *window
                            && ta.bindings.merge(&aa.bindings).is_some()
                    })
                })
                .map(|ta| Answer {
                    end: ta.end + *window,
                    ..ta
                })
                .collect()
        }
        EventQuery::Count { pattern, n, window } => {
            let n = (*n).max(1);
            let matches: Vec<(EventId, Timestamp)> = history
                .iter()
                .filter(|e| !match_at(pattern, &e.payload, &Bindings::new()).is_empty())
                .map(|e| (e.id, e.time()))
                .collect();
            let mut out = Vec::new();
            for i in (n - 1)..matches.len() {
                let slice = &matches[i + 1 - n..=i];
                let start = slice[0].1;
                let end = slice[n - 1].1;
                if window.map_or(true, |w| end.since(start) <= w) {
                    out.push(Answer {
                        constituents: slice.iter().map(|(id, _)| *id).collect(),
                        bindings: Bindings::new(),
                        start,
                        end,
                    });
                }
            }
            out
        }
        EventQuery::Agg {
            f,
            var,
            over,
            pattern,
            out,
            group_by,
        } => {
            let over = (*over).max(1);
            // Projection treats group-by names as a set; a sorted copy
            // keeps the per-event `project` on its sorted fast path.
            let group_by = {
                let mut gb = group_by.clone();
                gb.sort();
                gb
            };
            // Replays the sliding buffers over the whole history — same
            // per-group semantics as the incremental engine, recomputed.
            let mut bufs: std::collections::BTreeMap<Bindings, Vec<(EventId, Timestamp, f64)>> =
                Default::default();
            let mut answers = Vec::new();
            for e in history {
                for b in match_at(pattern, &e.payload, &Bindings::new()) {
                    let Some(v) = b.get_sym(*var).and_then(reweb_term::Term::as_number) else {
                        continue;
                    };
                    let key = b.project(&group_by);
                    let buf = bufs.entry(key).or_default();
                    buf.push((e.id, e.time(), v));
                    if buf.len() > over {
                        buf.remove(0);
                    }
                    if buf.len() == over {
                        let vals: Vec<f64> = buf.iter().map(|(_, _, v)| *v).collect();
                        let agg = fold_agg(*f, &vals);
                        if let Some(bb) = b.bind_sym(*out, &reweb_term::Term::num(agg)) {
                            answers.push(Answer {
                                constituents: buf.iter().map(|(id, _, _)| *id).collect(),
                                bindings: bb,
                                start: buf[0].1,
                                end: e.time(),
                            });
                        }
                    }
                }
            }
            answers
        }
        EventQuery::Where { inner, cmps } => eval(inner, history, now)
            .into_iter()
            .filter(|a| cmps.iter().all(|c| c.holds(&a.bindings).unwrap_or(false)))
            .collect(),
    }
}

fn atomic_answers(pattern: &QueryTerm, history: &[Event]) -> Vec<Answer> {
    let mut out = Vec::new();
    for e in history {
        for b in match_at(pattern, &e.payload, &Bindings::new()) {
            out.push(Answer::atomic(e, b));
        }
    }
    out
}

/// Full cartesian combination (the quadratic blow-up the incremental engine
/// avoids).
fn combine(sets: &[Vec<Answer>], window: Option<reweb_term::Dur>, sequential: bool) -> Vec<Answer> {
    fn rec(
        sets: &[Vec<Answer>],
        idx: usize,
        acc: Option<&Answer>,
        window: Option<reweb_term::Dur>,
        sequential: bool,
        out: &mut Vec<Answer>,
    ) {
        if idx == sets.len() {
            if let Some(a) = acc {
                out.push(a.clone());
            }
            return;
        }
        for a in &sets[idx] {
            let combined = match acc {
                None => a.clone(),
                Some(prev) => {
                    if sequential && prev.end >= a.start {
                        continue;
                    }
                    let Some(b) = prev.bindings.merge(&a.bindings) else {
                        continue;
                    };
                    prev.combine(a, b)
                }
            };
            if let Some(w) = window {
                if combined.span() > w {
                    continue;
                }
            }
            rec(sets, idx + 1, Some(&combined), window, sequential, out);
        }
    }
    let mut out = Vec::new();
    rec(sets, 0, None, window, sequential, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_event_query;
    use reweb_term::parse_term;

    fn eng(q: &str) -> NaiveEngine {
        NaiveEngine::new(&parse_event_query(q).unwrap())
    }

    fn ev(id: u64, at_ms: u64, payload: &str) -> Event {
        Event::new(EventId(id), Timestamp(at_ms), parse_term(payload).unwrap())
    }

    #[test]
    fn emits_each_answer_once() {
        let mut e = eng("and(a, b)");
        e.push(&ev(1, 10, "a"));
        let out = e.push(&ev(2, 20, "b"));
        assert_eq!(out.len(), 1);
        // Re-evaluation finds the same answer again but does not re-emit.
        let out = e.push(&ev(3, 30, "c"));
        assert!(out.is_empty());
        assert_eq!(e.history_len(), 3);
    }

    #[test]
    fn absence_needs_clock() {
        let mut e = eng("absence(a, b, 1s)");
        e.push(&ev(1, 0, "a"));
        assert!(e.advance_to(Timestamp(999)).is_empty());
        let out = e.advance_to(Timestamp(1_000));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].end, Timestamp(1_000));
    }

    #[test]
    fn seq_ordering() {
        let mut e = eng("seq(a, b)");
        e.push(&ev(1, 10, "b"));
        e.push(&ev(2, 20, "a"));
        assert!(e.advance_to(Timestamp(30)).is_empty());
        let out = e.push(&ev(3, 40, "b"));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].constituents, vec![EventId(2), EventId(3)]);
    }
}
