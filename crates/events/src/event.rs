//! Events and answers to event queries.
//!
//! An [`Event`] is the volatile counterpart of a persistent document
//! (Thesis 4): it carries a term payload, a local sequence id, an occurrence
//! time (stamped by the sender) and a reception time (stamped by the
//! receiver). Event queries run over reception order, which is all a local
//! engine can observe (Thesis 2: rules are processed locally).
//!
//! An [`Answer`] is one detected (possibly composite) event: variable
//! bindings extracted from the constituent payloads, the time interval the
//! composite occupies, and the ids of the constituent atomic events.

use std::fmt;

use reweb_query::Bindings;
use reweb_term::{Sym, Term, Timestamp};

/// Local sequence number of an event at one node's engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(pub u64);

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// An atomic event as seen by a local engine.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Local sequence id (assigned by the receiving engine).
    pub id: EventId,
    /// When the sender says it happened.
    pub occurred: Timestamp,
    /// When it arrived here — the timestamp event queries use.
    pub received: Timestamp,
    /// Sender URI, or `"local"` for internally raised/derived events.
    pub source: String,
    /// The message payload.
    pub payload: Term,
    /// Observability trace id (0 = untraced). Assigned at admission when
    /// tracing is on; carried through derivation so a derived event's
    /// spans land on its ancestor's trace. Never part of event
    /// semantics: queries, windows, and dedup ignore it.
    pub trace: u64,
}

impl Event {
    /// A local event where occurrence and reception coincide.
    pub fn new(id: EventId, at: Timestamp, payload: Term) -> Event {
        Event {
            id,
            occurred: at,
            received: at,
            source: "local".into(),
            payload,
            trace: 0,
        }
    }

    /// Replace the source URI (builder style).
    pub fn with_source(mut self, source: impl Into<String>) -> Event {
        self.source = source.into();
        self
    }

    /// Set the observability trace id (builder style).
    pub fn with_trace(mut self, trace: u64) -> Event {
        self.trace = trace;
        self
    }

    /// The canonical timestamp used by event queries (reception time).
    pub fn time(&self) -> Timestamp {
        self.received
    }

    /// Root label of the payload, if it is an element. Engines index
    /// subscriptions by this label so unrelated rules are never consulted.
    pub fn label(&self) -> Option<&str> {
        self.payload.label()
    }

    /// Root label as an interned symbol — the form the dispatch index
    /// looks up without touching string bytes.
    pub fn label_sym(&self) -> Option<Sym> {
        self.payload.label_sym()
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{} {}", self.id, self.received, self.payload)
    }
}

/// One answer to an event query: a detected (composite) event.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Answer {
    /// Constituent atomic event ids, sorted ascending.
    pub constituents: Vec<EventId>,
    /// Variable bindings extracted from the constituents.
    pub bindings: Bindings,
    /// Start of the composite occurrence interval.
    pub start: Timestamp,
    /// End of the composite occurrence interval (detection time).
    pub end: Timestamp,
}

impl Answer {
    /// An answer for a single atomic event.
    pub fn atomic(e: &Event, bindings: Bindings) -> Answer {
        Answer {
            constituents: vec![e.id],
            bindings,
            start: e.time(),
            end: e.time(),
        }
    }

    /// Combine two answers (used by conjunction/sequence joins); bindings
    /// must already be merged by the caller.
    pub fn combine(&self, other: &Answer, bindings: Bindings) -> Answer {
        let mut constituents = self.constituents.clone();
        constituents.extend(other.constituents.iter().copied());
        constituents.sort();
        constituents.dedup();
        Answer {
            constituents,
            bindings,
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Identity for deduplication and for the incremental ≡ naive
    /// equivalence check: constituents + bindings + interval. The interval
    /// matters: an absence answer occupies `[trigger, deadline]`, which
    /// distinguishes it from an atomic answer over the same constituent.
    pub fn key(&self) -> (Vec<EventId>, Bindings, Timestamp, Timestamp) {
        (
            self.constituents.clone(),
            self.bindings.clone(),
            self.start,
            self.end,
        )
    }

    /// Length of the occupied interval.
    pub fn span(&self) -> reweb_term::Dur {
        self.end.since(self.start)
    }
}

impl fmt::Display for Answer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}..{}] {} via ", self.start, self.end, self.bindings)?;
        for (i, c) in self.constituents.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reweb_term::Dur;

    fn ev(id: u64, at: u64) -> Event {
        Event::new(EventId(id), Timestamp(at), Term::elem("x"))
    }

    #[test]
    fn atomic_answer() {
        let e = ev(3, 100);
        let a = Answer::atomic(&e, Bindings::new());
        assert_eq!(a.constituents, vec![EventId(3)]);
        assert_eq!(a.start, Timestamp(100));
        assert_eq!(a.end, Timestamp(100));
        assert_eq!(a.span(), Dur::ZERO);
    }

    #[test]
    fn combine_merges_interval_and_constituents() {
        let a = Answer::atomic(&ev(1, 100), Bindings::new());
        let b = Answer::atomic(&ev(2, 250), Bindings::new());
        let c = a.combine(&b, Bindings::new());
        assert_eq!(c.constituents, vec![EventId(1), EventId(2)]);
        assert_eq!(c.start, Timestamp(100));
        assert_eq!(c.end, Timestamp(250));
        assert_eq!(c.span(), Dur::millis(150));
        // Order-insensitive.
        let c2 = b.combine(&a, Bindings::new());
        assert_eq!(c.key(), c2.key());
    }

    #[test]
    fn event_label_and_time() {
        let e = Event::new(EventId(1), Timestamp(5), Term::ordered("order", vec![]))
            .with_source("http://client");
        assert_eq!(e.label(), Some("order"));
        assert_eq!(e.time(), Timestamp(5));
        assert_eq!(e.source, "http://client");
    }
}
