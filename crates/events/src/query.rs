//! The composite event query algebra (Thesis 5).
//!
//! The four dimensions the thesis names map onto the variants:
//!
//! * **data extraction** — [`EventQuery::Atomic`]: an Xcerpt query term
//!   matched against event payloads, producing variable bindings;
//! * **event composition** — [`EventQuery::And`], [`EventQuery::Or`],
//!   [`EventQuery::Seq`] (conjunction with temporal order);
//! * **temporal conditions** — `within` windows on `and`/`seq`
//!   ("events A and B happen within 1 hour and A happens before B"),
//!   and [`EventQuery::Absence`] for deadline-driven negation ("no
//!   rebooking notification within the next two hours");
//! * **event accumulation** — [`EventQuery::Count`] ("3 server outages
//!   within 1 hour") and [`EventQuery::Agg`] (sliding aggregates: "the
//!   average over the last 5 reported stock prices").
//!
//! [`EventQuery::Where`] attaches comparisons over extracted variables
//! (the `WHERE` part of a rule's event clause).

use std::fmt;

use reweb_query::{AggFn, Cmp, QueryTerm};
use reweb_term::{Dur, Sym};

/// A composite event query.
#[derive(Clone, Debug, PartialEq)]
pub enum EventQuery {
    /// A single event whose payload matches the pattern (matched at the
    /// payload root).
    Atomic {
        /// Query term matched against the payload root.
        pattern: QueryTerm,
    },
    /// All parts occur (any order), bindings consistent, optionally within
    /// a window.
    And {
        /// The conjuncts; all must occur with consistent bindings.
        parts: Vec<EventQuery>,
        /// Optional temporal bound on the whole conjunction.
        window: Option<Dur>,
    },
    /// Any part occurs.
    Or {
        /// The disjuncts; any one occurring answers the query.
        parts: Vec<EventQuery>,
    },
    /// All parts occur in temporal order (each part strictly after the
    /// previous part's interval), optionally within a window.
    Seq {
        /// The conjuncts, in required temporal order.
        parts: Vec<EventQuery>,
        /// Optional temporal bound on the whole sequence.
        window: Option<Dur>,
    },
    /// After a `trigger` answer, `absent` does *not* occur (with consistent
    /// bindings) for `window`; fires at the deadline. This is the paper's
    /// flight-cancellation example and requires timer support
    /// ([`crate::IncrementalEngine::advance_to`]).
    Absence {
        /// Query whose answer starts the absence watch.
        trigger: Box<EventQuery>,
        /// Query that must *not* answer before the deadline.
        absent: Box<EventQuery>,
        /// How long after the trigger the absence is required to hold.
        window: Dur,
    },
    /// `n` events matching `pattern`, sliding: fires on each matching event
    /// once the latest `n` matches span at most `window` (if given).
    Count {
        /// Query term each counted event must match.
        pattern: QueryTerm,
        /// How many matches are required.
        n: usize,
        /// Optional span the latest `n` matches must fit in.
        window: Option<Dur>,
    },
    /// Sliding aggregate over the last `over` matches of `pattern`
    /// (optionally per group): binds `out` to `f` applied to the values of
    /// `var`. Fires on each matching event once `over` matches exist.
    Agg {
        /// The aggregate function (avg, sum, min, max, count).
        f: AggFn,
        /// Variable bound by `pattern` whose numeric values are aggregated.
        var: Sym,
        /// Ring-buffer length (the "last n").
        over: usize,
        /// Query term each contributing event must match.
        pattern: QueryTerm,
        /// Output variable receiving the aggregate.
        out: Sym,
        /// Maintain one buffer per valuation of these variables
        /// (e.g. per stock symbol).
        group_by: Vec<Sym>,
    },
    /// Filter answers of `inner` by comparisons.
    Where {
        /// The query whose answers are filtered.
        inner: Box<EventQuery>,
        /// Comparisons every answer's bindings must satisfy.
        cmps: Vec<Cmp>,
    },
}

impl EventQuery {
    /// A single-event query matching `pattern` at the payload root.
    pub fn atomic(pattern: QueryTerm) -> EventQuery {
        EventQuery::Atomic { pattern }
    }

    /// Unwindowed conjunction of `parts`.
    pub fn and(parts: Vec<EventQuery>) -> EventQuery {
        EventQuery::And {
            parts,
            window: None,
        }
    }

    /// Unwindowed temporal sequence of `parts`.
    pub fn seq(parts: Vec<EventQuery>) -> EventQuery {
        EventQuery::Seq {
            parts,
            window: None,
        }
    }

    /// Disjunction of `parts`.
    pub fn or(parts: Vec<EventQuery>) -> EventQuery {
        EventQuery::Or { parts }
    }

    /// Constrain this query to a window (only `and`/`seq` carry windows;
    /// other shapes are returned unchanged wrapped semantics-preserving).
    pub fn within(self, d: Dur) -> EventQuery {
        match self {
            EventQuery::And { parts, .. } => EventQuery::And {
                parts,
                window: Some(d),
            },
            EventQuery::Seq { parts, .. } => EventQuery::Seq {
                parts,
                window: Some(d),
            },
            EventQuery::Count { pattern, n, .. } => EventQuery::Count {
                pattern,
                n,
                window: Some(d),
            },
            other => EventQuery::And {
                parts: vec![other],
                window: Some(d),
            },
        }
    }

    /// Filter this query's answers by `cmps` (the `WHERE` clause).
    pub fn where_(self, cmps: Vec<Cmp>) -> EventQuery {
        EventQuery::Where {
            inner: Box::new(self),
            cmps,
        }
    }

    /// The payload root labels this query can react to; `None` means "any
    /// label" (used for subscription indexing). Labels of `absent` parts
    /// are included: those events must reach the operator too. Sorted by
    /// name.
    pub fn trigger_labels(&self) -> Option<Vec<Sym>> {
        fn pattern_label(p: &QueryTerm) -> Option<Sym> {
            match p {
                QueryTerm::Elem(e) => match &e.label {
                    reweb_query::LabelPattern::Exact(l) => Some(*l),
                    reweb_query::LabelPattern::Any => None,
                },
                QueryTerm::VarAs(_, inner) => pattern_label(inner),
                // `desc`, bare `var`, text: could match any payload.
                _ => None,
            }
        }
        fn go(q: &EventQuery, out: &mut Vec<Sym>) -> bool {
            match q {
                EventQuery::Atomic { pattern } => match pattern_label(pattern) {
                    Some(l) => {
                        out.push(l);
                        true
                    }
                    None => false,
                },
                EventQuery::And { parts, .. }
                | EventQuery::Or { parts }
                | EventQuery::Seq { parts, .. } => parts.iter().all(|p| go(p, out)),
                EventQuery::Absence {
                    trigger, absent, ..
                } => go(trigger, out) && go(absent, out),
                EventQuery::Count { pattern, .. } => match pattern_label(pattern) {
                    Some(l) => {
                        out.push(l);
                        true
                    }
                    None => false,
                },
                EventQuery::Agg { pattern, .. } => match pattern_label(pattern) {
                    Some(l) => {
                        out.push(l);
                        true
                    }
                    None => false,
                },
                EventQuery::Where { inner, .. } => go(inner, out),
            }
        }
        let mut out = Vec::new();
        if go(self, &mut out) {
            out.sort();
            out.dedup();
            Some(out)
        } else {
            None
        }
    }

    /// The longest time this query can keep partial state alive, if
    /// bounded: the basis of volatile-data GC (Thesis 4). `None` means the
    /// query can hold state forever (window-less `and`/`seq`) — engines
    /// then fall back to their configured TTL.
    pub fn retention_bound(&self) -> Option<Dur> {
        match self {
            EventQuery::Atomic { .. } => Some(Dur::ZERO),
            EventQuery::Or { parts } => {
                let mut max = Dur::ZERO;
                for p in parts {
                    max = max.max(p.retention_bound()?);
                }
                Some(max)
            }
            EventQuery::And { parts, window } | EventQuery::Seq { parts, window } => {
                let w = (*window)?;
                let mut max = Dur::ZERO;
                for p in parts {
                    max = max.max(p.retention_bound()?);
                }
                Some(w + max)
            }
            EventQuery::Absence {
                trigger,
                absent,
                window,
            } => {
                let t = trigger.retention_bound()?;
                let a = absent.retention_bound()?;
                Some(*window + t.max(a))
            }
            EventQuery::Count { window, .. } => *window, // buffer bounded by n anyway
            EventQuery::Agg { .. } => Some(Dur::ZERO),   // ring buffers bounded by `over`
            EventQuery::Where { inner, .. } => inner.retention_bound(),
        }
    }

    /// The *replay horizon* of this query under an engine TTL of `ttl`: a
    /// duration `B` such that an event received before `now - B` can no
    /// longer influence any future answer or any operator state
    /// transition. The durability layer uses this to bound how far back
    /// in its write-ahead log a recovery must replay to rebuild
    /// composite-event partial state (crash recovery = snapshot + bounded
    /// log suffix).
    ///
    /// This differs from [`EventQuery::retention_bound`], which describes
    /// *memory*: an `agg` ring buffer is memory-bounded by its `over`
    /// count but can hold arbitrarily old events, so its replay horizon
    /// is unbounded (`None`) while its retention bound is zero. The
    /// bounds here are deliberately conservative (windows are summed
    /// along nesting chains, never intersected): over-estimating only
    /// lengthens a replay, under-estimating would corrupt recovery.
    pub fn replay_horizon(&self, ttl: Option<Dur>) -> Option<Dur> {
        fn min_opt(a: Option<Dur>, b: Option<Dur>) -> Option<Dur> {
            match (a, b) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (x, None) | (None, x) => x,
            }
        }
        match self {
            EventQuery::Atomic { .. } => Some(Dur::ZERO),
            EventQuery::Or { parts } => {
                let mut max = Dur::ZERO;
                for p in parts {
                    max = max.max(p.replay_horizon(ttl)?);
                }
                Some(max)
            }
            EventQuery::And { parts, window } | EventQuery::Seq { parts, window } => {
                // Stored child answers are pruned once `now - start`
                // exceeds min(window, ttl); a window-less join without a
                // TTL keeps partial matches forever.
                let w = min_opt(*window, ttl)?;
                let mut max = Dur::ZERO;
                for p in parts {
                    max = max.max(p.replay_horizon(ttl)?);
                }
                Some(w + max)
            }
            EventQuery::Absence {
                trigger,
                absent,
                window,
            } => {
                // Pending triggers live until `end + window`; their own
                // constituents reach back by the trigger's horizon.
                let t = trigger.replay_horizon(ttl)?;
                let a = absent.replay_horizon(ttl)?;
                Some(*window + t.max(a))
            }
            // A count buffer is pruned by min(window, ttl); without
            // either, an arbitrarily old event can still appear in a
            // future answer's constituents.
            EventQuery::Count { window, .. } => min_opt(*window, ttl),
            // Agg ring buffers are never time-pruned (only size-bounded),
            // so an old constituent can resurface at any future event.
            EventQuery::Agg { .. } => None,
            EventQuery::Where { inner, .. } => inner.replay_horizon(ttl),
        }
    }

    /// Does this query contain an `absence` operator? Only absence
    /// carries deadlines, so engines without one never need timer
    /// scheduling for it.
    pub fn has_absence(&self) -> bool {
        match self {
            EventQuery::Absence { .. } => true,
            EventQuery::And { parts, .. }
            | EventQuery::Or { parts }
            | EventQuery::Seq { parts, .. } => parts.iter().any(EventQuery::has_absence),
            EventQuery::Where { inner, .. } => inner.has_absence(),
            EventQuery::Atomic { .. } | EventQuery::Count { .. } | EventQuery::Agg { .. } => false,
        }
    }
}

impl fmt::Display for EventQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventQuery::Atomic { pattern } => write!(f, "{pattern}"),
            EventQuery::And { parts, window } => {
                f.write_str("and(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{p}")?;
                }
                f.write_str(")")?;
                if let Some(w) = window {
                    write!(f, " within {w}")?;
                }
                Ok(())
            }
            EventQuery::Or { parts } => {
                f.write_str("or(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{p}")?;
                }
                f.write_str(")")
            }
            EventQuery::Seq { parts, window } => {
                f.write_str("seq(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{p}")?;
                }
                f.write_str(")")?;
                if let Some(w) = window {
                    write!(f, " within {w}")?;
                }
                Ok(())
            }
            EventQuery::Absence {
                trigger,
                absent,
                window,
            } => write!(f, "absence({trigger}, {absent}, {window})"),
            EventQuery::Count { pattern, n, window } => {
                write!(f, "count({n}, {pattern}")?;
                if let Some(w) = window {
                    write!(f, ", {w}")?;
                }
                f.write_str(")")
            }
            EventQuery::Agg {
                f: func,
                var,
                over,
                pattern,
                out,
                group_by,
            } => {
                write!(
                    f,
                    "{}(var {var}, {over}, {pattern}) as var {out}",
                    func.name()
                )?;
                match group_by.as_slice() {
                    [] => {}
                    [g] => write!(f, " group by var {g}")?,
                    many => {
                        write!(f, " group by (")?;
                        for (i, g) in many.iter().enumerate() {
                            if i > 0 {
                                write!(f, ", ")?;
                            }
                            write!(f, "var {g}")?;
                        }
                        write!(f, ")")?;
                    }
                }
                Ok(())
            }
            EventQuery::Where { inner, cmps } => {
                write!(f, "{inner} where ")?;
                for (i, c) in cmps.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" and ")?;
                    }
                    write!(f, "{c}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reweb_query::parse_query_term;

    fn at(p: &str) -> EventQuery {
        EventQuery::atomic(parse_query_term(p).unwrap())
    }

    #[test]
    fn within_attaches_window() {
        let q = EventQuery::and(vec![at("a"), at("b")]).within(Dur::hours(1));
        match q {
            EventQuery::And { window, .. } => assert_eq!(window, Some(Dur::hours(1))),
            _ => panic!(),
        }
        // A bare atomic gets wrapped.
        let q = at("a").within(Dur::secs(5));
        assert!(matches!(
            q,
            EventQuery::And {
                window: Some(_),
                ..
            }
        ));
    }

    #[test]
    fn trigger_labels_for_indexing() {
        let q = EventQuery::seq(vec![
            at("order{{id[[var O]]}}"),
            at("payment{{order[[var O]]}}"),
        ]);
        assert_eq!(
            q.trigger_labels(),
            Some(vec![Sym::new("order"), Sym::new("payment")])
        );
        // A wildcard pattern defeats indexing.
        let q = EventQuery::and(vec![at("a"), at("*[[var X]]")]);
        assert_eq!(q.trigger_labels(), None);
        // `var F as flight[[..]]` still has a root label.
        let q = at("var F as flight[[status[\"cancelled\"]]]");
        assert_eq!(q.trigger_labels(), Some(vec![Sym::new("flight")]));
    }

    #[test]
    fn retention_bounds() {
        // Windowed and: window + children bounds.
        let q = EventQuery::and(vec![at("a"), at("b")]).within(Dur::mins(10));
        assert_eq!(q.retention_bound(), Some(Dur::mins(10)));
        // Window-less and: unbounded.
        let q = EventQuery::and(vec![at("a"), at("b")]);
        assert_eq!(q.retention_bound(), None);
        // Absence bounded by its window.
        let q = EventQuery::Absence {
            trigger: Box::new(at("cancel")),
            absent: Box::new(at("rebooked")),
            window: Dur::hours(2),
        };
        assert_eq!(q.retention_bound(), Some(Dur::hours(2)));
        // Nested windows compose.
        let inner = EventQuery::seq(vec![at("a"), at("b")]).within(Dur::mins(5));
        let outer = EventQuery::and(vec![inner, at("c")]).within(Dur::mins(10));
        assert_eq!(outer.retention_bound(), Some(Dur::mins(15)));
    }

    #[test]
    fn display_is_parseable_shape() {
        let q = EventQuery::seq(vec![at("a{{x[[var X]]}}"), at("b")]).within(Dur::mins(1));
        assert_eq!(q.to_string(), "seq(a{{x[[var X]]}}, b) within 1m");
    }
}
