//! Parser for the event query syntax.
//!
//! ```text
//! eventq  ::= primary ('where' cmp ('and' cmp)*)?
//! primary ::= 'and' '(' eventq (',' eventq)* ')' ('within' DUR)?
//!           | 'or'  '(' eventq (',' eventq)* ')'
//!           | 'seq' '(' eventq (',' eventq)* ')' ('within' DUR)?
//!           | 'absence' '(' eventq ',' eventq ',' DUR ')'
//!           | 'count' '(' INT ',' queryterm (',' DUR)? ')'
//!           | AGG '(' 'var' X ',' INT ',' queryterm ')' 'as' 'var' Y
//!                 ('group' 'by' 'var' G (',' 'var' G)*)?
//!           | queryterm                                 (atomic)
//! DUR     ::= NUMBER ('ms'|'s'|'m'|'h'|'d')?
//! AGG     ::= 'avg' | 'sum' | 'min' | 'max'
//! ```
//!
//! The keywords `and`, `or`, `seq`, … are only treated as combinators when
//! followed by `(`; an element pattern with one of those labels uses
//! brackets (`and[ … ]`), so there is no ambiguity with atomic patterns.

use reweb_query::parser::{cmp, query_term};
use reweb_query::AggFn;
use reweb_term::lex::{Cursor, Tok};
use reweb_term::{Dur, TermError};

use crate::query::EventQuery;

type Result<T> = std::result::Result<T, TermError>;

/// Parse a complete event query (whole input).
pub fn parse_event_query(input: &str) -> Result<EventQuery> {
    let mut cur = Cursor::from_str(input)?;
    let q = event_query(&mut cur)?;
    if !cur.at_end() {
        return Err(cur.error("trailing input after event query"));
    }
    Ok(q)
}

/// Parse an event query at the cursor (used by the rule-language parser).
pub fn event_query(cur: &mut Cursor) -> Result<EventQuery> {
    let mut q = primary(cur)?;
    // `where` clauses may chain; each wraps the query so far.
    while cur.eat_kw("where") {
        let mut cmps = vec![cmp(cur)?];
        while cur.eat_kw("and") {
            cmps.push(cmp(cur)?);
        }
        q = EventQuery::Where {
            inner: Box::new(q),
            cmps,
        };
    }
    Ok(q)
}

/// Parse a duration: a number with optional unit suffix (which the lexer
/// splits into a trailing identifier).
pub fn duration(cur: &mut Cursor) -> Result<Dur> {
    let n: u64 = match cur.peek() {
        Some(Tok::Num(n)) => {
            let v = n
                .parse()
                .map_err(|_| cur.error(format!("bad duration number {n}")))?;
            cur.next();
            v
        }
        Some(t) => return Err(cur.error(format!("expected duration, found {}", t.describe()))),
        None => return Err(cur.error("expected duration, found end of input")),
    };
    // Optional unit directly following.
    if let Some(Tok::Ident(u)) = cur.peek() {
        let mult = match u.as_str() {
            "ms" => Some(1),
            "s" => Some(1_000),
            "m" => Some(60_000),
            "h" => Some(3_600_000),
            "d" => Some(86_400_000),
            _ => None,
        };
        if let Some(m) = mult {
            cur.next();
            return Ok(Dur::millis(n * m));
        }
    }
    Ok(Dur::millis(n))
}

fn combinator_follows(cur: &Cursor, kw: &str) -> bool {
    cur.peek().is_some_and(|t| t.is_kw(kw)) && cur.peek_at(1).is_some_and(|t| t.is_punct('('))
}

fn primary(cur: &mut Cursor) -> Result<EventQuery> {
    for kw in ["and", "or", "seq"] {
        if combinator_follows(cur, kw) {
            cur.next(); // keyword
            cur.next(); // (
            let mut parts = vec![event_query(cur)?];
            while cur.eat_punct(',') {
                parts.push(event_query(cur)?);
            }
            cur.expect_punct(')')?;
            let mut q = match kw {
                "and" => EventQuery::and(parts),
                "or" => EventQuery::or(parts),
                _ => EventQuery::seq(parts),
            };
            if kw != "or" && cur.eat_kw("within") {
                q = q.within(duration(cur)?);
            }
            return Ok(q);
        }
    }
    if combinator_follows(cur, "absence") {
        cur.next();
        cur.next();
        let trigger = event_query(cur)?;
        cur.expect_punct(',')?;
        let absent = event_query(cur)?;
        cur.expect_punct(',')?;
        let window = duration(cur)?;
        cur.expect_punct(')')?;
        return Ok(EventQuery::Absence {
            trigger: Box::new(trigger),
            absent: Box::new(absent),
            window,
        });
    }
    if combinator_follows(cur, "count") {
        cur.next();
        cur.next();
        let n: usize = match cur.peek() {
            Some(Tok::Num(n)) => {
                let v = n.parse().map_err(|_| cur.error(format!("bad count {n}")))?;
                cur.next();
                v
            }
            _ => return Err(cur.error("expected a count after `count(`")),
        };
        cur.expect_punct(',')?;
        let pattern = query_term(cur)?;
        let window = if cur.eat_punct(',') {
            Some(duration(cur)?)
        } else {
            None
        };
        cur.expect_punct(')')?;
        return Ok(EventQuery::Count { pattern, n, window });
    }
    for agg in ["avg", "sum", "min", "max"] {
        if combinator_follows(cur, agg) {
            let f = AggFn::from_name(agg).expect("known aggregate");
            cur.next();
            cur.next();
            cur.expect_kw("var")?;
            let var = cur.expect_ident()?;
            cur.expect_punct(',')?;
            let over: usize = match cur.peek() {
                Some(Tok::Num(n)) => {
                    let v = n
                        .parse()
                        .map_err(|_| cur.error(format!("bad window size {n}")))?;
                    cur.next();
                    v
                }
                _ => return Err(cur.error("expected a window size")),
            };
            cur.expect_punct(',')?;
            let pattern = query_term(cur)?;
            cur.expect_punct(')')?;
            cur.expect_kw("as")?;
            cur.expect_kw("var")?;
            let out = cur.expect_ident()?;
            let mut group_by = Vec::new();
            if cur.eat_kw("group") {
                cur.expect_kw("by")?;
                // Multiple grouping variables need parentheses so the
                // commas don't blend into an enclosing combinator list.
                if cur.eat_punct('(') {
                    loop {
                        cur.expect_kw("var")?;
                        group_by.push(cur.expect_ident()?.into());
                        if !cur.eat_punct(',') {
                            break;
                        }
                    }
                    cur.expect_punct(')')?;
                } else {
                    cur.expect_kw("var")?;
                    group_by.push(cur.expect_ident()?.into());
                }
            }
            return Ok(EventQuery::Agg {
                f,
                var: var.into(),
                over,
                pattern,
                out: out.into(),
                group_by,
            });
        }
    }
    Ok(EventQuery::Atomic {
        pattern: query_term(cur)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_and_composition() {
        let q = parse_event_query("and(order{{id[[var O]]}}, payment{{order[[var O]]}}) within 2h")
            .unwrap();
        match q {
            EventQuery::And { parts, window } => {
                assert_eq!(parts.len(), 2);
                assert_eq!(window, Some(Dur::hours(2)));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn nested_combinators() {
        let q = parse_event_query("or(seq(a, b) within 10s, and(c, d))").unwrap();
        match q {
            EventQuery::Or { parts } => {
                assert!(
                    matches!(&parts[0], EventQuery::Seq { window: Some(w), .. } if *w == Dur::secs(10))
                );
                assert!(matches!(&parts[1], EventQuery::And { window: None, .. }));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn keyword_labels_with_brackets_are_atomic() {
        // `and[x]` is an element pattern labelled "and".
        let q = parse_event_query("and[x]").unwrap();
        assert!(matches!(q, EventQuery::Atomic { .. }));
        let q = parse_event_query("count{{n[[var N]]}}").unwrap();
        assert!(matches!(q, EventQuery::Atomic { .. }));
    }

    #[test]
    fn absence_count_agg() {
        let q = parse_event_query("absence(cancel{{no[[var N]]}}, rebooked{{no[[var N]]}}, 2h)")
            .unwrap();
        assert!(matches!(q, EventQuery::Absence { window, .. } if window == Dur::hours(2)));

        let q = parse_event_query("count(3, outage, 1h)").unwrap();
        assert!(matches!(q, EventQuery::Count { n: 3, window: Some(w), .. } if w == Dur::hours(1)));
        let q = parse_event_query("count(3, outage)").unwrap();
        assert!(matches!(
            q,
            EventQuery::Count {
                n: 3,
                window: None,
                ..
            }
        ));

        let q = parse_event_query(
            "avg(var P, 5, stock{{sym[[var S]], price[[var P]]}}) as var A group by var S",
        )
        .unwrap();
        match q {
            EventQuery::Agg {
                f,
                var,
                over,
                out,
                group_by,
                ..
            } => {
                assert_eq!(f, AggFn::Avg);
                assert_eq!(var, "P");
                assert_eq!(over, 5);
                assert_eq!(out, "A");
                assert_eq!(group_by, vec![reweb_term::Sym::new("S")]);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn where_clause() {
        let q = parse_event_query(
            "seq(p{{v[[var X]]}}, p{{v[[var Y]]}}) where var Y >= var X * 1.05 and var X > 0",
        )
        .unwrap();
        match q {
            EventQuery::Where { cmps, .. } => assert_eq!(cmps.len(), 2),
            _ => panic!(),
        }
    }

    #[test]
    fn durations() {
        for (src, ms) in [
            ("and(a,b) within 250ms", 250),
            ("and(a,b) within 3s", 3_000),
            ("and(a,b) within 5m", 300_000),
            ("and(a,b) within 2h", 7_200_000),
            ("and(a,b) within 1d", 86_400_000),
            ("and(a,b) within 42", 42),
        ] {
            match parse_event_query(src).unwrap() {
                EventQuery::And { window, .. } => {
                    assert_eq!(window, Some(Dur::millis(ms)), "{src}")
                }
                _ => panic!(),
            }
        }
    }

    #[test]
    fn display_roundtrips() {
        for src in [
            "and(a, b) within 1m",
            "or(a, b, c)",
            "seq(a{{x[[var X]]}}, b) within 10s",
            "absence(a, b, 2h)",
            "count(3, outage, 1h)",
            "avg(var P, 5, stock{{price[[var P]]}}) as var A",
            "and(a, b) where var X == 1",
        ] {
            let q = parse_event_query(src).unwrap();
            let q2 = parse_event_query(&q.to_string()).unwrap();
            assert_eq!(q, q2, "{src}");
        }
    }

    #[test]
    fn errors() {
        assert!(parse_event_query("and(a").is_err());
        assert!(parse_event_query("absence(a, b)").is_err());
        assert!(parse_event_query("count(x, a)").is_err());
        assert!(parse_event_query("avg(var P, 5, s)").is_err()); // missing `as var`
        assert!(parse_event_query("a b").is_err());
    }
}
