//! Data-driven, incremental evaluation of event queries (Thesis 6).
//!
//! > "Work done in one evaluation step of an event query should not be
//! > redone in future evaluation. […] a non-incremental, query-driven
//! > (backward-chaining) evaluation would have to check the entire history
//! > of events for an A when a B is detected."
//!
//! An [`EventQuery`] compiles to a tree of operators, each holding exactly
//! the partial matches it may still need:
//!
//! * `Atomic` — stateless; matches the incoming payload.
//! * `And`/`Seq` joins — store each child's answers; a new child answer is
//!   joined against the *stored* answers of the siblings (never against raw
//!   history). `Seq` additionally requires interval order; `within` windows
//!   both filter and bound retention.
//! * `Absence` — pending triggers with deadlines; cancelled by a consistent
//!   absent-answer, fired by [`IncrementalEngine::advance_to`].
//! * `Count`/`Agg` — ring buffers of the last *n* matches (per group).
//! * `Or`/`Where` — stateless routing/filtering.
//!
//! **Volatility (Thesis 4).** After every step, operators garbage-collect
//! state that can no longer contribute: windowed joins prune answers whose
//! start is older than the window; window bounds are pushed down to
//! children at compile time; an engine-wide TTL bounds window-less queries.
//! [`IncrementalEngine::state_size`] reports the retained partial matches.
//!
//! **Selection & consumption (Thesis 5, citation \[12\]).** [`Policy`]
//! optionally restricts each batch to its first answer and/or consumes
//! constituent events so they cannot contribute to later answers.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

use reweb_query::{match_at, AggFn, Bindings, Cmp, QueryTerm};
use reweb_term::{Dur, Sym, Timestamp};

use crate::beta::{join_indexed, JoinIndex, JoinMode, JoinPlan};
use crate::event::{Answer, Event, EventId};
use crate::query::EventQuery;

/// Instance selection: which of several simultaneous answers to keep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Selection {
    /// Every answer (the default; complete answer sets).
    #[default]
    Every,
    /// Only the first (smallest) answer of each batch.
    First,
}

/// Selection and consumption policy for one engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Policy {
    /// Which answers of a simultaneous batch are emitted.
    pub selection: Selection,
    /// If set, the constituents of an emitted answer are "used up": all
    /// partial matches involving them are discarded.
    pub consume: bool,
}

/// Counters exposed for the experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Events fed into the operator tree.
    pub events_processed: u64,
    /// Answers the root operator emitted.
    pub answers_emitted: u64,
    /// Join candidates examined — the unit of "work" E6 and E17 compare.
    /// Under [`JoinMode::Scan`] this counts every stored sibling answer
    /// enumerated; under [`JoinMode::Indexed`] only the candidates
    /// surviving the key and range cuts.
    pub join_attempts: u64,
    /// Bucket lookups performed by indexed joins (zero in scan mode) —
    /// the E17 probes-per-event currency.
    pub index_probes: u64,
}

/// The incremental (data-driven) event query engine.
#[derive(Clone, Debug)]
pub struct IncrementalEngine {
    root: OpNode,
    policy: Policy,
    ttl: Option<Dur>,
    now: Timestamp,
    join_mode: JoinMode,
    /// Work counters (join attempts, index probes, …).
    pub stats: EngineStats,
}

impl IncrementalEngine {
    /// Compile a query. Window bounds propagate down so every operator
    /// knows its retention.
    pub fn new(q: &EventQuery) -> IncrementalEngine {
        let join_mode = JoinMode::default();
        IncrementalEngine {
            root: compile(q, None, join_mode),
            policy: Policy::default(),
            ttl: None,
            now: Timestamp::ZERO,
            join_mode,
            stats: EngineStats::default(),
        }
    }

    /// Set the selection/consumption policy (builder style).
    pub fn with_policy(mut self, policy: Policy) -> IncrementalEngine {
        self.policy = policy;
        self
    }

    /// Builder form of [`IncrementalEngine::set_join_mode`].
    pub fn with_join_mode(mut self, mode: JoinMode) -> IncrementalEngine {
        self.set_join_mode(mode);
        self
    }

    /// Switch the join implementation of every `And`/`Seq` operator,
    /// rebuilding index state from the stored answers (the index is
    /// derived data, so the switch is lossless in both directions and
    /// legal mid-stream). Answer sequences are byte-identical in both
    /// modes — pinned by the `join_equivalence` differential proptest;
    /// [`JoinMode::Scan`] exists as that pin's oracle and for the E17
    /// occupancy-scaling contrast.
    pub fn set_join_mode(&mut self, mode: JoinMode) {
        if self.join_mode != mode {
            self.join_mode = mode;
            self.root.set_join_mode(mode);
        }
    }

    /// The join implementation `And`/`Seq` operators currently run on.
    pub fn join_mode(&self) -> JoinMode {
        self.join_mode
    }

    /// Engine-wide TTL: even window-less queries dispose of partial state
    /// after this long (Thesis 4's "volatile data stays volatile").
    /// Changes semantics for window-less joins — by design.
    pub fn with_ttl(mut self, ttl: Dur) -> IncrementalEngine {
        self.ttl = Some(ttl);
        self
    }

    /// Feed one event; returns the answers it completes.
    pub fn push(&mut self, e: &Event) -> Vec<Answer> {
        self.now = self.now.max(e.time());
        self.stats.events_processed += 1;
        let mut out = Vec::new();
        self.root.delta(&Input::Ev(e), &mut out, &mut self.stats);
        self.finish_batch(out)
    }

    /// Advance the clock; fires absence deadlines that have passed.
    pub fn advance_to(&mut self, t: Timestamp) -> Vec<Answer> {
        self.now = self.now.max(t);
        let mut out = Vec::new();
        self.root
            .delta(&Input::Time(self.now), &mut out, &mut self.stats);
        self.finish_batch(out)
    }

    fn finish_batch(&mut self, mut out: Vec<Answer>) -> Vec<Answer> {
        out.sort();
        out.dedup_by(|a, b| a.key() == b.key());
        if self.policy.selection == Selection::First && out.len() > 1 {
            out.truncate(1);
        }
        if self.policy.consume {
            let ids: BTreeSet<EventId> = out
                .iter()
                .flat_map(|a| a.constituents.iter().copied())
                .collect();
            if !ids.is_empty() {
                self.root.consume(&ids);
            }
        }
        self.root.gc(self.now, self.ttl);
        self.stats.answers_emitted += out.len() as u64;
        out
    }

    /// Total partial matches currently retained — the "volatile data" that
    /// Thesis 4 insists must stay bounded.
    pub fn state_size(&self) -> usize {
        self.root.state_size()
    }

    /// The earliest pending absence deadline, if any — hosts use this to
    /// schedule a timely [`IncrementalEngine::advance_to`] call.
    pub fn next_deadline(&self) -> Option<Timestamp> {
        self.root.next_deadline()
    }

    /// The engine's current clock (latest event or explicit advance).
    pub fn now(&self) -> Timestamp {
        self.now
    }
}

// ----- operator tree ----------------------------------------------------------

enum Input<'a> {
    Ev(&'a Event),
    Time(Timestamp),
}

/// Per-child answer storage of one `And`/`Seq` operator, switchable at
/// runtime (see [`IncrementalEngine::set_join_mode`]). Both variants hold
/// the same answers; only lookup shape differs.
#[derive(Clone, Debug)]
enum JoinStore {
    /// Flat stores, enumerated in full per delta (the oracle).
    Scan(Vec<Vec<Answer>>),
    /// Key-hashed, time-sorted stores probed per delta (the default).
    Indexed(Vec<JoinIndex>),
}

impl JoinStore {
    fn len(&self) -> usize {
        match self {
            JoinStore::Scan(stored) => stored.iter().map(Vec::len).sum(),
            JoinStore::Indexed(idxs) => idxs.iter().map(JoinIndex::len).sum(),
        }
    }
}

#[derive(Clone, Debug)]
enum OpNode {
    Atomic {
        pattern: QueryTerm,
    },
    Join {
        children: Vec<OpNode>,
        store: JoinStore,
        /// Compile-time join-key analysis shared by clones of this
        /// operator (crash-recovery builders clone engines freely).
        plan: Arc<JoinPlan>,
        window: Option<Dur>,
        /// Retention bound (own window, inherited bound, whichever is
        /// smaller); `None` = unbounded unless the engine TTL applies.
        retention: Option<Dur>,
        sequential: bool,
    },
    Or {
        children: Vec<OpNode>,
    },
    Absence {
        trigger: Box<OpNode>,
        absent: Box<OpNode>,
        window: Dur,
        /// Trigger answers awaiting their deadline (`end + window`).
        pending: Vec<Answer>,
    },
    Count {
        pattern: QueryTerm,
        n: usize,
        window: Option<Dur>,
        buf: VecDeque<(EventId, Timestamp)>,
    },
    Agg {
        f: AggFn,
        var: Sym,
        over: usize,
        pattern: QueryTerm,
        out_var: Sym,
        group_by: Vec<Sym>,
        bufs: BTreeMap<Bindings, VecDeque<(EventId, Timestamp, f64, Bindings)>>,
    },
    Where {
        inner: Box<OpNode>,
        cmps: Vec<Cmp>,
    },
}

fn min_opt(a: Option<Dur>, b: Option<Dur>) -> Option<Dur> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (x, None) | (None, x) => x,
    }
}

fn compile(q: &EventQuery, inherited: Option<Dur>, mode: JoinMode) -> OpNode {
    match q {
        EventQuery::Atomic { pattern } => OpNode::Atomic {
            pattern: pattern.clone(),
        },
        EventQuery::And { parts, window } | EventQuery::Seq { parts, window } => {
            let retention = min_opt(*window, inherited);
            let plan = JoinPlan::new(parts);
            let store = match mode {
                JoinMode::Indexed => JoinStore::Indexed(
                    plan.child_keys
                        .iter()
                        .map(|ks| JoinIndex::new(ks))
                        .collect(),
                ),
                JoinMode::Scan => JoinStore::Scan(vec![Vec::new(); parts.len()]),
            };
            OpNode::Join {
                children: parts.iter().map(|p| compile(p, retention, mode)).collect(),
                store,
                plan: Arc::new(plan),
                window: *window,
                retention,
                sequential: matches!(q, EventQuery::Seq { .. }),
            }
        }
        EventQuery::Or { parts } => OpNode::Or {
            children: parts.iter().map(|p| compile(p, inherited, mode)).collect(),
        },
        EventQuery::Absence {
            trigger,
            absent,
            window,
        } => {
            let child_bound = min_opt(Some(*window), inherited);
            OpNode::Absence {
                trigger: Box::new(compile(trigger, child_bound, mode)),
                absent: Box::new(compile(absent, child_bound, mode)),
                window: *window,
                pending: Vec::new(),
            }
        }
        EventQuery::Count { pattern, n, window } => OpNode::Count {
            pattern: pattern.clone(),
            n: (*n).max(1),
            window: *window,
            buf: VecDeque::new(),
        },
        EventQuery::Agg {
            f,
            var,
            over,
            pattern,
            out,
            group_by,
        } => OpNode::Agg {
            f: *f,
            var: *var,
            over: (*over).max(1),
            pattern: pattern.clone(),
            out_var: *out,
            group_by: {
                // Projection treats the names as a set; sorting once here
                // keeps every per-event `Bindings::project` on the
                // zero-copy sorted fast path.
                let mut gb = group_by.clone();
                gb.sort();
                gb
            },
            bufs: BTreeMap::new(),
        },
        EventQuery::Where { inner, cmps } => OpNode::Where {
            inner: Box::new(compile(inner, inherited, mode)),
            cmps: cmps.clone(),
        },
    }
}

impl OpNode {
    fn delta(&mut self, inp: &Input<'_>, out: &mut Vec<Answer>, stats: &mut EngineStats) {
        match self {
            OpNode::Atomic { pattern } => {
                if let Input::Ev(e) = inp {
                    for b in match_at(pattern, &e.payload, &Bindings::new()) {
                        out.push(Answer::atomic(e, b));
                    }
                }
            }
            OpNode::Join {
                children,
                store,
                plan,
                window,
                sequential,
                ..
            } => {
                let mut deltas: Vec<Vec<Answer>> = Vec::with_capacity(children.len());
                for c in children.iter_mut() {
                    let mut d = Vec::new();
                    c.delta(inp, &mut d, stats);
                    deltas.push(d);
                }
                if deltas.iter().any(|d| !d.is_empty()) {
                    match store {
                        JoinStore::Scan(stored) => {
                            join_new(stored, &deltas, *window, *sequential, out, stats);
                        }
                        JoinStore::Indexed(idxs) => {
                            join_indexed(idxs, &deltas, plan, *window, *sequential, out, stats);
                        }
                    }
                }
                match store {
                    JoinStore::Scan(stored) => {
                        for (s, d) in stored.iter_mut().zip(deltas) {
                            s.extend(d);
                        }
                    }
                    JoinStore::Indexed(idxs) => {
                        for (ix, d) in idxs.iter_mut().zip(deltas) {
                            for a in d {
                                ix.insert(a);
                            }
                        }
                    }
                }
            }
            OpNode::Or { children } => {
                for c in children {
                    c.delta(inp, out, stats);
                }
            }
            OpNode::Absence {
                trigger,
                absent,
                window,
                pending,
            } => {
                // New triggers open pending deadlines; consistent absent
                // answers strictly after a trigger cancel it; passing time
                // fires deadlines.
                let mut tdelta = Vec::new();
                trigger.delta(inp, &mut tdelta, stats);
                let mut adelta = Vec::new();
                absent.delta(inp, &mut adelta, stats);
                pending.extend(tdelta);
                pending.retain(|ta| {
                    !adelta.iter().any(|aa| {
                        aa.end > ta.end
                            && aa.end <= ta.end + *window
                            && ta.bindings.merge(&aa.bindings).is_some()
                    })
                });
                let now = match inp {
                    Input::Ev(e) => e.time(),
                    Input::Time(t) => *t,
                };
                let mut fired: Vec<Answer> = Vec::new();
                pending.retain(|ta| {
                    if ta.end + *window <= now {
                        fired.push(Answer {
                            constituents: ta.constituents.clone(),
                            bindings: ta.bindings.clone(),
                            start: ta.start,
                            end: ta.end + *window,
                        });
                        false
                    } else {
                        true
                    }
                });
                fired.sort();
                out.extend(fired);
            }
            OpNode::Count {
                pattern,
                n,
                window,
                buf,
            } => {
                if let Input::Ev(e) = inp {
                    if !match_at(pattern, &e.payload, &Bindings::new()).is_empty() {
                        buf.push_back((e.id, e.time()));
                        while buf.len() > *n {
                            buf.pop_front();
                        }
                        if buf.len() == *n {
                            let start = buf.front().expect("nonempty").1;
                            let within = window.map_or(true, |w| e.time().since(start) <= w);
                            if within {
                                out.push(Answer {
                                    constituents: buf.iter().map(|(id, _)| *id).collect(),
                                    bindings: Bindings::new(),
                                    start,
                                    end: e.time(),
                                });
                            }
                        }
                    }
                }
            }
            OpNode::Agg {
                f,
                var,
                over,
                pattern,
                out_var,
                group_by,
                bufs,
            } => {
                if let Input::Ev(e) = inp {
                    let matches = match_at(pattern, &e.payload, &Bindings::new());
                    for b in matches {
                        let Some(v) = b.get_sym(*var).and_then(reweb_term::Term::as_number) else {
                            continue;
                        };
                        let key = b.project(group_by);
                        let buf = bufs.entry(key).or_default();
                        buf.push_back((e.id, e.time(), v, b.clone()));
                        while buf.len() > *over {
                            buf.pop_front();
                        }
                        if buf.len() == *over {
                            let vals: Vec<f64> = buf.iter().map(|(_, _, v, _)| *v).collect();
                            let agg = fold_agg(*f, &vals);
                            if let Some(bb) = b.bind_sym(*out_var, &reweb_term::Term::num(agg)) {
                                out.push(Answer {
                                    constituents: buf.iter().map(|(id, _, _, _)| *id).collect(),
                                    bindings: bb,
                                    start: buf.front().expect("nonempty").1,
                                    end: e.time(),
                                });
                            }
                        }
                    }
                }
            }
            OpNode::Where { inner, cmps } => {
                let mut d = Vec::new();
                inner.delta(inp, &mut d, stats);
                out.extend(
                    d.into_iter()
                        .filter(|a| cmps.iter().all(|c| c.holds(&a.bindings).unwrap_or(false))),
                );
            }
        }
    }

    fn gc(&mut self, now: Timestamp, ttl: Option<Dur>) {
        match self {
            OpNode::Atomic { .. } => {}
            OpNode::Join {
                children,
                store,
                retention,
                ..
            } => {
                // A stored answer can only combine into an answer whose span
                // stays within the retention bound, and future events end at
                // `now` or later — prune once `now - start` exceeds it.
                if let Some(r) = min_opt(*retention, ttl) {
                    match store {
                        JoinStore::Scan(stored) => {
                            for s in stored.iter_mut() {
                                s.retain(|a| now.since(a.start) <= r);
                            }
                        }
                        JoinStore::Indexed(idxs) => {
                            for ix in idxs.iter_mut() {
                                ix.gc(now, r);
                            }
                        }
                    }
                }
                for c in children {
                    c.gc(now, ttl);
                }
            }
            OpNode::Or { children } => {
                for c in children {
                    c.gc(now, ttl);
                }
            }
            OpNode::Absence {
                trigger, absent, ..
            } => {
                // `pending` is self-pruning (fires at deadline).
                trigger.gc(now, ttl);
                absent.gc(now, ttl);
            }
            OpNode::Count { window, buf, .. } => {
                if let Some(w) = min_opt(*window, ttl) {
                    while buf.front().is_some_and(|(_, t)| now.since(*t) > w) {
                        buf.pop_front();
                    }
                }
            }
            OpNode::Agg { bufs, .. } => {
                // Ring buffers are bounded by `over`; empty groups are
                // dropped opportunistically.
                bufs.retain(|_, b| !b.is_empty());
            }
            OpNode::Where { inner, .. } => inner.gc(now, ttl),
        }
    }

    fn consume(&mut self, ids: &BTreeSet<EventId>) {
        match self {
            OpNode::Atomic { .. } => {}
            OpNode::Join {
                children, store, ..
            } => {
                match store {
                    JoinStore::Scan(stored) => {
                        for s in stored.iter_mut() {
                            s.retain(|a| a.constituents.iter().all(|id| !ids.contains(id)));
                        }
                    }
                    JoinStore::Indexed(idxs) => {
                        for ix in idxs.iter_mut() {
                            ix.consume(ids);
                        }
                    }
                }
                for c in children {
                    c.consume(ids);
                }
            }
            OpNode::Or { children } => {
                for c in children {
                    c.consume(ids);
                }
            }
            OpNode::Absence {
                trigger,
                absent,
                pending,
                ..
            } => {
                pending.retain(|a| a.constituents.iter().all(|id| !ids.contains(id)));
                trigger.consume(ids);
                absent.consume(ids);
            }
            OpNode::Count { buf, .. } => {
                buf.retain(|(id, _)| !ids.contains(id));
            }
            OpNode::Agg { bufs, .. } => {
                for b in bufs.values_mut() {
                    b.retain(|(id, _, _, _)| !ids.contains(id));
                }
            }
            OpNode::Where { inner, .. } => inner.consume(ids),
        }
    }

    fn state_size(&self) -> usize {
        match self {
            OpNode::Atomic { .. } => 0,
            OpNode::Join {
                children, store, ..
            } => store.len() + children.iter().map(OpNode::state_size).sum::<usize>(),
            OpNode::Or { children } => children.iter().map(OpNode::state_size).sum(),
            OpNode::Absence {
                trigger,
                absent,
                pending,
                ..
            } => pending.len() + trigger.state_size() + absent.state_size(),
            OpNode::Count { buf, .. } => buf.len(),
            OpNode::Agg { bufs, .. } => bufs.values().map(VecDeque::len).sum(),
            OpNode::Where { inner, .. } => inner.state_size(),
        }
    }

    /// Convert every join store to `mode`, rebuilding index state from
    /// the stored answers (or flattening it back to scan vectors). Both
    /// representations hold identical answer sets, so a switch is
    /// output-invisible mid-stream.
    fn set_join_mode(&mut self, mode: JoinMode) {
        match self {
            OpNode::Atomic { .. } | OpNode::Count { .. } | OpNode::Agg { .. } => {}
            OpNode::Join {
                children,
                store,
                plan,
                ..
            } => {
                match (mode, &mut *store) {
                    (JoinMode::Indexed, JoinStore::Scan(stored)) => {
                        let mut idxs: Vec<JoinIndex> = plan
                            .child_keys
                            .iter()
                            .map(|ks| JoinIndex::new(ks))
                            .collect();
                        for (ix, s) in idxs.iter_mut().zip(stored.iter_mut()) {
                            for a in s.drain(..) {
                                ix.insert(a);
                            }
                        }
                        *store = JoinStore::Indexed(idxs);
                    }
                    (JoinMode::Scan, JoinStore::Indexed(idxs)) => {
                        *store = JoinStore::Scan(
                            idxs.iter().map(JoinIndex::to_time_ordered_vec).collect(),
                        );
                    }
                    _ => {}
                }
                for c in children {
                    c.set_join_mode(mode);
                }
            }
            OpNode::Or { children } => {
                for c in children {
                    c.set_join_mode(mode);
                }
            }
            OpNode::Absence {
                trigger, absent, ..
            } => {
                trigger.set_join_mode(mode);
                absent.set_join_mode(mode);
            }
            OpNode::Where { inner, .. } => inner.set_join_mode(mode),
        }
    }

    fn next_deadline(&self) -> Option<Timestamp> {
        match self {
            OpNode::Atomic { .. } | OpNode::Count { .. } | OpNode::Agg { .. } => None,
            OpNode::Join { children, .. } | OpNode::Or { children } => {
                children.iter().filter_map(OpNode::next_deadline).min()
            }
            OpNode::Absence {
                trigger,
                absent,
                window,
                pending,
            } => [
                pending.iter().map(|ta| ta.end + *window).min(),
                trigger.next_deadline(),
                absent.next_deadline(),
            ]
            .into_iter()
            .flatten()
            .min(),
            OpNode::Where { inner, .. } => inner.next_deadline(),
        }
    }
}

pub(crate) fn fold_agg(f: AggFn, vals: &[f64]) -> f64 {
    match f {
        AggFn::Count => vals.len() as f64,
        AggFn::Sum => vals.iter().sum(),
        AggFn::Avg => vals.iter().sum::<f64>() / vals.len() as f64,
        AggFn::Min => vals.iter().cloned().fold(f64::INFINITY, f64::min),
        AggFn::Max => vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
    }
}

/// Enumerate every *new* combination (one answer per child, at least one
/// from a delta) with consistent bindings, sequence order (if `sequential`)
/// and window respected.
///
/// Incremental-cost enumeration: each new combo is generated exactly once,
/// keyed by its *first* delta position `i` — positions before `i` draw from
/// stored answers only, position `i` from the delta only, later positions
/// from both. An event that contributes no delta to any child therefore
/// costs nothing here, and an event extending one child joins only against
/// the *stored* sibling answers — never against raw history (Thesis 6).
fn join_new(
    stored: &[Vec<Answer>],
    deltas: &[Vec<Answer>],
    window: Option<Dur>,
    sequential: bool,
    out: &mut Vec<Answer>,
    stats: &mut EngineStats,
) {
    // Candidate source per position, relative to the first-new index.
    #[derive(Clone, Copy)]
    enum Source {
        OldOnly,
        NewOnly,
        Both,
    }

    // A recursive join enumerator: the parameters are the loop state of
    // a depth-first product walk, threaded explicitly instead of boxed
    // into a context struct on this hot path.
    #[allow(clippy::too_many_arguments)]
    fn rec(
        stored: &[Vec<Answer>],
        deltas: &[Vec<Answer>],
        sources: &[Source],
        idx: usize,
        acc: Option<&Answer>,
        window: Option<Dur>,
        sequential: bool,
        out: &mut Vec<Answer>,
        stats: &mut EngineStats,
    ) {
        if idx == stored.len() {
            if let Some(a) = acc {
                out.push(a.clone());
            }
            return;
        }
        let (olds, news): (&[Answer], &[Answer]) = match sources[idx] {
            Source::OldOnly => (&stored[idx], &[]),
            Source::NewOnly => (&[], &deltas[idx]),
            Source::Both => (&stored[idx], &deltas[idx]),
        };
        for a in olds.iter().chain(news.iter()) {
            stats.join_attempts += 1;
            let combined = match acc {
                None => a.clone(),
                Some(prev) => {
                    if sequential && prev.end >= a.start {
                        continue;
                    }
                    let Some(b) = prev.bindings.merge(&a.bindings) else {
                        continue;
                    };
                    prev.combine(a, b)
                }
            };
            if let Some(w) = window {
                if combined.span() > w {
                    continue;
                }
            }
            rec(
                stored,
                deltas,
                sources,
                idx + 1,
                Some(&combined),
                window,
                sequential,
                out,
                stats,
            );
        }
    }

    let n = stored.len();
    for first_new in 0..n {
        if deltas[first_new].is_empty() {
            continue;
        }
        // Cheap feasibility check before enumerating.
        let feasible = (0..n).all(|j| {
            if j < first_new {
                !stored[j].is_empty()
            } else if j == first_new {
                true
            } else {
                !stored[j].is_empty() || !deltas[j].is_empty()
            }
        });
        if !feasible {
            continue;
        }
        let sources: Vec<Source> = (0..n)
            .map(|j| {
                if j < first_new {
                    Source::OldOnly
                } else if j == first_new {
                    Source::NewOnly
                } else {
                    Source::Both
                }
            })
            .collect();
        rec(
            stored, deltas, &sources, 0, None, window, sequential, out, stats,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_event_query;
    use reweb_term::parse_term;

    fn eng(q: &str) -> IncrementalEngine {
        IncrementalEngine::new(&parse_event_query(q).unwrap())
    }

    fn ev(id: u64, at_ms: u64, payload: &str) -> Event {
        Event::new(EventId(id), Timestamp(at_ms), parse_term(payload).unwrap())
    }

    #[test]
    fn atomic_extracts_data() {
        let mut e = eng("order{{id[[var O]]}}");
        let out = e.push(&ev(1, 10, "order{id[\"o1\"], total[\"5\"]}"));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].bindings.get("O").unwrap().text_content(), "o1");
        // Non-matching payloads produce nothing.
        assert!(e.push(&ev(2, 11, "payment{order[\"o1\"]}")).is_empty());
    }

    #[test]
    fn and_joins_across_time_with_consistent_bindings() {
        let mut e = eng("and(order{{id[[var O]]}}, payment{{order[[var O]]}})");
        assert!(e.push(&ev(1, 10, "order{id[\"o1\"]}")).is_empty());
        assert!(e.push(&ev(2, 20, "payment{order[\"oX\"]}")).is_empty());
        let out = e.push(&ev(3, 30, "payment{order[\"o1\"]}"));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].constituents, vec![EventId(1), EventId(3)]);
        assert_eq!(out[0].start, Timestamp(10));
        assert_eq!(out[0].end, Timestamp(30));
    }

    #[test]
    fn and_is_order_insensitive_seq_is_not() {
        let mut a = eng("and(a, b)");
        assert!(a.push(&ev(1, 10, "b")).is_empty());
        assert_eq!(a.push(&ev(2, 20, "a")).len(), 1);

        let mut s = eng("seq(a, b)");
        assert!(s.push(&ev(1, 10, "b")).is_empty());
        assert!(s.push(&ev(2, 20, "a")).is_empty(), "b came before a");
        assert_eq!(s.push(&ev(3, 30, "b")).len(), 1);
    }

    #[test]
    fn seq_requires_strict_order_same_time_fails() {
        let mut s = eng("seq(a, b)");
        s.push(&ev(1, 10, "a"));
        // Same timestamp: prev.end >= next.start → rejected.
        assert!(s.push(&ev(2, 10, "b")).is_empty());
        assert_eq!(s.push(&ev(3, 11, "b")).len(), 1);
    }

    #[test]
    fn window_filters_and_gc_prunes() {
        let mut e = eng("and(a, b) within 1m");
        e.push(&ev(1, 0, "a"));
        assert_eq!(e.state_size(), 1);
        // Too late: outside the window.
        assert!(e.push(&ev(2, 120_000, "b")).is_empty());
        // And the stale `a` has been garbage-collected (Thesis 4).
        assert_eq!(e.state_size(), 1, "only the fresh b remains");
        let out = e.push(&ev(3, 150_000, "a"));
        assert_eq!(out.len(), 1, "fresh a joins fresh b");
    }

    #[test]
    fn or_unions() {
        let mut e = eng("or(a, b)");
        assert_eq!(e.push(&ev(1, 10, "a")).len(), 1);
        assert_eq!(e.push(&ev(2, 20, "b")).len(), 1);
        assert!(e.push(&ev(3, 30, "c")).is_empty());
    }

    #[test]
    fn absence_fires_at_deadline_only_if_silent() {
        // The paper's travel example: cancellation, then no rebooking
        // within 2h.
        let q =
            "absence(flight{{status[[\"cancelled\"]], no[[var N]]}}, rebooked{{no[[var N]]}}, 2h)";
        let mut e = eng(q);
        assert!(e
            .push(&ev(1, 0, "flight{status[\"cancelled\"], no[\"LH1\"]}"))
            .is_empty());
        // Before the deadline: nothing.
        assert!(e.advance_to(Timestamp(3_600_000)).is_empty());
        // Deadline passes in silence → fire.
        let out = e.advance_to(Timestamp(7_200_000));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].bindings.get("N").unwrap().text_content(), "LH1");
        assert_eq!(out[0].end, Timestamp(7_200_000));
        // Does not fire twice.
        assert!(e.advance_to(Timestamp(9_000_000)).is_empty());
    }

    #[test]
    fn absence_cancelled_by_consistent_event() {
        let q =
            "absence(flight{{status[[\"cancelled\"]], no[[var N]]}}, rebooked{{no[[var N]]}}, 2h)";
        let mut e = eng(q);
        e.push(&ev(1, 0, "flight{status[\"cancelled\"], no[\"LH1\"]}"));
        // A rebooking for a *different* flight does not cancel.
        e.push(&ev(2, 1000, "rebooked{no[\"LH9\"]}"));
        // The right one does.
        e.push(&ev(3, 2000, "rebooked{no[\"LH1\"]}"));
        assert!(e.advance_to(Timestamp(7_200_001)).is_empty());
    }

    #[test]
    fn absence_fires_via_late_event_too() {
        let mut e = eng("absence(a, b, 1s)");
        e.push(&ev(1, 0, "a"));
        // An unrelated event after the deadline also flushes it.
        let out = e.push(&ev(2, 5_000, "c"));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].end, Timestamp(1_000));
    }

    #[test]
    fn count_sliding_with_window() {
        // SLA: 3 outages within 1h.
        let mut e = eng("count(3, outage, 1h)");
        assert!(e.push(&ev(1, 0, "outage")).is_empty());
        assert!(e.push(&ev(2, 600_000, "outage")).is_empty());
        let out = e.push(&ev(3, 1_200_000, "outage"));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].constituents.len(), 3);
        // Sliding: a fourth outage within range fires again (with the
        // latest three).
        let out = e.push(&ev(4, 1_800_000, "outage"));
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].constituents,
            vec![EventId(2), EventId(3), EventId(4)]
        );
        // Outside the window: the three newest span > 1h → no fire.
        let out = e.push(&ev(5, 9_000_000, "outage"));
        assert!(out.is_empty());
    }

    #[test]
    fn agg_average_of_last_five() {
        // The paper's stock example: average over the last 5 prices.
        let mut e = eng("avg(var P, 5, stock{{price[[var P]]}}) as var A");
        for (i, p) in [10.0, 12.0, 11.0, 13.0].iter().enumerate() {
            let out = e.push(&ev(
                i as u64,
                i as u64 * 1000,
                &format!("stock{{price[\"{p}\"]}}"),
            ));
            assert!(out.is_empty(), "needs 5 values");
        }
        let out = e.push(&ev(9, 9000, "stock{price[\"14\"]}"));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].bindings.get("A").unwrap().as_number(), Some(12.0));
    }

    #[test]
    fn agg_group_by_keeps_separate_buffers() {
        let mut e =
            eng("avg(var P, 2, stock{{sym[[var S]], price[[var P]]}}) as var A group by var S");
        e.push(&ev(1, 1, "stock{sym[\"ACME\"], price[\"10\"]}"));
        e.push(&ev(2, 2, "stock{sym[\"GLOB\"], price[\"100\"]}"));
        let out = e.push(&ev(3, 3, "stock{sym[\"ACME\"], price[\"20\"]}"));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].bindings.get("S").unwrap().text_content(), "ACME");
        assert_eq!(out[0].bindings.get("A").unwrap().as_number(), Some(15.0));
    }

    #[test]
    fn where_filters_answers() {
        // Rise of 5%: two consecutive averages compared.
        let mut e = eng("seq(p{{v[[var X]]}}, p{{v[[var Y]]}}) where var Y >= var X * 1.05");
        e.push(&ev(1, 10, "p{v[\"100\"]}"));
        assert!(e.push(&ev(2, 20, "p{v[\"104\"]}")).is_empty());
        // 100 → 105 is a 5% rise; note both pairs (100,105) qualify but
        // (104,105) does not.
        let out = e.push(&ev(3, 30, "p{v[\"105\"]}"));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].constituents, vec![EventId(1), EventId(3)]);
    }

    #[test]
    fn selection_first_keeps_one_answer_per_batch() {
        let q = parse_event_query("and(a{{v[[var X]]}}, b)").unwrap();
        let mut every = IncrementalEngine::new(&q);
        let mut first = IncrementalEngine::new(&q).with_policy(Policy {
            selection: Selection::First,
            consume: false,
        });
        for e in [
            ev(1, 10, "a{v[\"1\"]}"),
            ev(2, 20, "a{v[\"2\"]}"),
            ev(3, 30, "b"),
        ] {
            let oe = every.push(&e);
            let of = first.push(&e);
            if e.id == EventId(3) {
                assert_eq!(oe.len(), 2);
                assert_eq!(of.len(), 1);
                assert_eq!(of[0].constituents, vec![EventId(1), EventId(3)]);
            }
        }
    }

    #[test]
    fn consumption_uses_events_up() {
        let q = parse_event_query("and(a, b)").unwrap();
        let mut e = IncrementalEngine::new(&q).with_policy(Policy {
            selection: Selection::Every,
            consume: true,
        });
        e.push(&ev(1, 10, "a"));
        assert_eq!(e.push(&ev(2, 20, "b")).len(), 1);
        // `a` was consumed: a second b finds nothing to join with.
        assert!(e.push(&ev(3, 30, "b")).is_empty());
        // Without consumption it would have fired again.
        let mut e2 = IncrementalEngine::new(&q);
        e2.push(&ev(1, 10, "a"));
        e2.push(&ev(2, 20, "b"));
        assert_eq!(e2.push(&ev(3, 30, "b")).len(), 1);
    }

    #[test]
    fn ttl_bounds_windowless_state() {
        let q = parse_event_query("and(a, b)").unwrap();
        let mut unbounded = IncrementalEngine::new(&q);
        let mut bounded = IncrementalEngine::new(&q).with_ttl(Dur::secs(10));
        for i in 0..100u64 {
            let e = ev(i, i * 1_000, "a");
            unbounded.push(&e);
            bounded.push(&e);
        }
        assert_eq!(unbounded.state_size(), 100);
        // Only ~10s of events retained: the "shadow Web" stays bounded.
        assert!(bounded.state_size() <= 11, "got {}", bounded.state_size());
    }

    #[test]
    fn nested_composition() {
        let mut e = eng("and(or(a, b), seq(c, d) within 10s)");
        e.push(&ev(1, 0, "c"));
        e.push(&ev(2, 1_000, "d"));
        let out = e.push(&ev(3, 2_000, "b"));
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].constituents,
            vec![EventId(1), EventId(2), EventId(3)]
        );
    }

    #[test]
    fn stats_count_work() {
        let mut e = eng("and(a, b)");
        for i in 0..10 {
            e.push(&ev(i, i * 10, "a"));
        }
        e.push(&ev(99, 1_000, "b"));
        assert_eq!(e.stats.events_processed, 11);
        assert_eq!(e.stats.answers_emitted, 10);
        assert!(e.stats.join_attempts > 0);
    }
}
