//! Deductive rules for events (Thesis 9, events half).
//!
//! > "The same advantages [as views] apply for querying and reasoning with
//! > event data, and we propose to also have deductive rules for events.
//! > However, since event queries have to \[be\] evaluated very frequently, a
//! > reactive language can be made more restrictive about rules for events
//! > for efficiency reasons (e.g., reject recursive rules)."
//!
//! An [`EventRule`] (`DETECT head ON query`) watches an event query and, on
//! every answer, *derives* a new event whose payload is built by the head
//! construct term. Derived events are fed back through the other rules of
//! the [`DeductionLayer`] — but the rule graph must be acyclic, which is
//! checked at registration exactly as the thesis prescribes.

use reweb_query::{construct, ConstructTerm};
use reweb_term::{Sym, TermError, Timestamp};

use crate::beta::JoinMode;
use crate::event::{Event, EventId};
use crate::incremental::{EngineStats, IncrementalEngine};
use crate::query::EventQuery;

/// A deductive event rule: `DETECT head ON query END`.
#[derive(Clone, Debug, PartialEq)]
pub struct EventRule {
    /// Rule name (diagnostics and cycle reports).
    pub name: String,
    /// Payload of the derived event (instantiated per answer).
    pub head: ConstructTerm,
    /// The composite event query that triggers the derivation.
    pub on: EventQuery,
}

impl EventRule {
    /// Build `DETECT head ON on END`.
    pub fn new(name: impl Into<String>, head: ConstructTerm, on: EventQuery) -> EventRule {
        EventRule {
            name: name.into(),
            head,
            on,
        }
    }

    /// Root label of the derived payload, if statically known.
    pub fn head_label(&self) -> Option<Sym> {
        match &self.head {
            ConstructTerm::Elem { label, .. } => Some(*label),
            _ => None,
        }
    }

    /// Labels of events this rule listens for (`None` = could be anything).
    pub fn listens_to(&self) -> Option<Vec<Sym>> {
        self.on.trigger_labels()
    }
}

/// A set of event rules evaluated together; derived events cascade through
/// other rules (acyclicity enforced).
#[derive(Debug, Default)]
pub struct DeductionLayer {
    rules: Vec<(EventRule, IncrementalEngine)>,
    next_derived_id: u64,
    join_mode: JoinMode,
}

impl DeductionLayer {
    /// An empty layer.
    pub fn new() -> DeductionLayer {
        DeductionLayer::default()
    }

    /// Register a rule. Fails if adding it would make the dependency graph
    /// of event rules cyclic (a rule depends on another if it listens to
    /// the label the other derives — or could, for label-less patterns).
    pub fn register(&mut self, rule: EventRule) -> Result<(), TermError> {
        let mut rules: Vec<&EventRule> = self.rules.iter().map(|(r, _)| r).collect();
        rules.push(&rule);
        if has_cycle(&rules) {
            return Err(TermError::InvalidEdit(format!(
                "event rule `{}` would make the deductive event rules recursive \
                 (rejected per Thesis 9)",
                rule.name
            )));
        }
        let engine = IncrementalEngine::new(&rule.on).with_join_mode(self.join_mode);
        self.rules.push((rule, engine));
        Ok(())
    }

    /// Number of registered DETECT rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Switch the join implementation of every registered DETECT rule's
    /// engine (and of rules registered later) — see
    /// [`IncrementalEngine::set_join_mode`].
    pub fn set_join_mode(&mut self, mode: JoinMode) {
        self.join_mode = mode;
        for (_, e) in self.rules.iter_mut() {
            e.set_join_mode(mode);
        }
    }

    /// Sum of the per-DETECT-rule engine counters, for folding into
    /// host-level metrics.
    pub fn stats_total(&self) -> EngineStats {
        let mut total = EngineStats::default();
        for (_, e) in &self.rules {
            total.events_processed += e.stats.events_processed;
            total.answers_emitted += e.stats.answers_emitted;
            total.join_attempts += e.stats.join_attempts;
            total.index_probes += e.stats.index_probes;
        }
        total
    }

    /// Total partial-match state across all DETECT rules (Thesis 4).
    pub fn state_size(&self) -> usize {
        self.rules.iter().map(|(_, e)| e.state_size()).sum()
    }

    /// Earliest pending absence deadline across all DETECT rules.
    pub fn next_deadline(&self) -> Option<Timestamp> {
        self.rules
            .iter()
            .filter_map(|(_, e)| e.next_deadline())
            .min()
    }

    /// `true` when no DETECT rules are registered.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The derived-event sequence counter. Derived events are stamped
    /// `EventId(u64::MAX - seq)`; those ids end up in answer constituent
    /// lists (which order simultaneous answers), so crash recovery must
    /// restore this counter exactly before replaying a log suffix.
    pub fn derived_seq(&self) -> u64 {
        self.next_derived_id
    }

    /// Restore the derived-event sequence counter (recovery only; see
    /// [`DeductionLayer::derived_seq`]).
    pub fn set_derived_seq(&mut self, seq: u64) {
        self.next_derived_id = seq;
    }

    /// The replay horizon across all registered DETECT rules (see
    /// [`crate::EventQuery::replay_horizon`]); DETECT engines run without
    /// an engine TTL, so the bound uses none.
    pub fn replay_horizon(&self) -> Option<reweb_term::Dur> {
        let mut max = reweb_term::Dur::ZERO;
        for (r, _) in &self.rules {
            max = max.max(r.on.replay_horizon(None)?);
        }
        Some(max)
    }

    /// Does any registered DETECT rule use an `absence` operator (and
    /// therefore need timer advances)?
    pub fn has_absence(&self) -> bool {
        self.rules.iter().any(|(r, _)| r.on.has_absence())
    }

    /// Feed one external event; returns all *derived* events, including
    /// those derived from other derived events (cascade, bounded because
    /// the rule graph is acyclic).
    pub fn push(&mut self, e: &Event) -> Result<Vec<Event>, TermError> {
        let mut derived = Vec::new();
        let mut frontier = vec![e.clone()];
        // Each pass can only move "up" the acyclic rule graph, so at most
        // `rules.len()` cascade levels are possible.
        let mut levels = 0;
        while !frontier.is_empty() {
            levels += 1;
            if levels > self.rules.len() + 1 {
                return Err(TermError::InvalidEdit(
                    "event deduction cascade exceeded the acyclic depth bound".into(),
                ));
            }
            let mut next = Vec::new();
            for ev in &frontier {
                for (rule, engine) in self.rules.iter_mut() {
                    let answers = engine.push(ev);
                    for a in answers {
                        for payload in construct(&rule.head, std::slice::from_ref(&a.bindings))? {
                            self.next_derived_id += 1;
                            let d = Event {
                                id: EventId(u64::MAX - self.next_derived_id),
                                occurred: ev.time(),
                                received: ev.time(),
                                source: format!("derived:{}", rule.name),
                                payload,
                                trace: ev.trace,
                            };
                            next.push(d);
                        }
                    }
                }
            }
            derived.extend(next.iter().cloned());
            frontier = next;
        }
        Ok(derived)
    }

    /// Advance the clock for all rule engines (absence deadlines inside
    /// DETECT rules); returns events derived by firing deadlines.
    pub fn advance_to(&mut self, t: Timestamp) -> Result<Vec<Event>, TermError> {
        let mut derived = Vec::new();
        let mut initial = Vec::new();
        for (rule, engine) in self.rules.iter_mut() {
            for a in engine.advance_to(t) {
                for payload in construct(&rule.head, std::slice::from_ref(&a.bindings))? {
                    self.next_derived_id += 1;
                    initial.push(Event {
                        id: EventId(u64::MAX - self.next_derived_id),
                        occurred: t,
                        received: t,
                        source: format!("derived:{}", rule.name),
                        payload,
                        // Deadline-derived: no single triggering event.
                        trace: 0,
                    });
                }
            }
        }
        // Cascade the deadline-derived events through the other rules.
        for ev in &initial {
            derived.extend(self.push(ev)?);
        }
        derived.splice(0..0, initial);
        Ok(derived)
    }
}

/// Dependency: r1 → r2 if r2 listens to what r1 derives (conservatively
/// true when either side is label-less).
fn depends(r1: &EventRule, r2: &EventRule) -> bool {
    match (r1.head_label(), r2.listens_to()) {
        (Some(h), Some(labels)) => labels.contains(&h),
        // Unknown head or wildcard listener: assume dependency.
        _ => true,
    }
}

fn has_cycle(rules: &[&EventRule]) -> bool {
    let n = rules.len();
    // DFS over the dependency graph.
    fn dfs(
        i: usize,
        rules: &[&EventRule],
        state: &mut Vec<u8>, // 0 = unseen, 1 = on stack, 2 = done
    ) -> bool {
        state[i] = 1;
        for j in 0..rules.len() {
            if depends(rules[i], rules[j]) {
                if state[j] == 1 {
                    return true;
                }
                if state[j] == 0 && dfs(j, rules, state) {
                    return true;
                }
            }
        }
        state[i] = 2;
        false
    }
    let mut state = vec![0u8; n];
    for i in 0..n {
        if state[i] == 0 && dfs(i, rules, &mut state) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_event_query;
    use reweb_query::parser::parse_construct_term;
    use reweb_term::parse_term;

    fn rule(name: &str, head: &str, on: &str) -> EventRule {
        EventRule::new(
            name,
            parse_construct_term(head).unwrap(),
            parse_event_query(on).unwrap(),
        )
    }

    fn ev(id: u64, at: u64, payload: &str) -> Event {
        Event::new(EventId(id), Timestamp(at), parse_term(payload).unwrap())
    }

    #[test]
    fn derives_higher_level_event() {
        let mut layer = DeductionLayer::new();
        layer
            .register(rule(
                "big_order",
                "big_order{id[var O], total[var T]}",
                "order{{id[[var O]], total[[var T]]}} where var T >= 100",
            ))
            .unwrap();
        let d = layer
            .push(&ev(1, 10, "order{id[\"o1\"], total[\"250\"]}"))
            .unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].label(), Some("big_order"));
        assert_eq!(d[0].source, "derived:big_order");
        // Below threshold: nothing.
        let d = layer
            .push(&ev(2, 20, "order{id[\"o2\"], total[\"10\"]}"))
            .unwrap();
        assert!(d.is_empty());
    }

    #[test]
    fn cascade_through_two_levels() {
        let mut layer = DeductionLayer::new();
        layer
            .register(rule("lvl1", "warning{src[var S]}", "fault{{src[[var S]]}}"))
            .unwrap();
        layer
            .register(rule("lvl2", "alarm{src[var S]}", "warning{{src[[var S]]}}"))
            .unwrap();
        let d = layer.push(&ev(1, 10, "fault{src[\"db\"]}")).unwrap();
        let labels: Vec<_> = d.iter().filter_map(Event::label).collect();
        assert_eq!(labels, vec!["warning", "alarm"]);
    }

    #[test]
    fn recursion_rejected() {
        let mut layer = DeductionLayer::new();
        layer
            .register(rule("ping", "ping{n[var N]}", "pong{{n[[var N]]}}"))
            .unwrap();
        let err = layer.register(rule("pong", "pong{n[var N]}", "ping{{n[[var N]]}}"));
        assert!(err.is_err());
        // Self-recursion too.
        let mut layer = DeductionLayer::new();
        assert!(layer
            .register(rule("self", "x{v[var V]}", "x{{v[[var V]]}}"))
            .is_err());
    }

    #[test]
    fn wildcard_listener_is_conservatively_recursive() {
        let mut layer = DeductionLayer::new();
        // A rule that listens to anything depends on everything, including
        // itself once it derives events.
        assert!(layer
            .register(rule("all", "seen{e[var X]}", "var X"))
            .is_err());
    }

    #[test]
    fn deadline_inside_detect_rule() {
        let mut layer = DeductionLayer::new();
        layer
            .register(rule(
                "stranded",
                "stranded{no[var N]}",
                "absence(cancel{{no[[var N]]}}, rebooked{{no[[var N]]}}, 2h)",
            ))
            .unwrap();
        layer.push(&ev(1, 0, "cancel{no[\"LH1\"]}")).unwrap();
        let d = layer.advance_to(Timestamp(7_200_000)).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].label(), Some("stranded"));
    }
}
