//! # reweb-events — composite event queries for a reactive Web
//!
//! This crate implements Theses 4–6 of *Twelve Theses on Reactive Rules for
//! the Web*:
//!
//! * **Thesis 4 — events are volatile data.** An [`Event`] is a timestamped,
//!   immutable message payload. The incremental engine never retains event
//!   data beyond what unexpired queries can still use: every operator
//!   derives a retention bound from its temporal window, expired partial
//!   matches are garbage-collected, and an engine-wide TTL bounds the state
//!   of window-less queries. [`IncrementalEngine::state_size`] exposes the
//!   retained state so the "no shadow Web" claim is measurable (E4).
//!
//! * **Thesis 5 — composite events are specified by event queries**, with
//!   four dimensions: *data extraction* (atomic patterns bind variables from
//!   payloads), *composition* ([`EventQuery::And`]/[`EventQuery::Or`]/
//!   [`EventQuery::Seq`]), *temporal conditions* (`within` windows,
//!   [`EventQuery::Absence`] for timer-driven negation), and *event
//!   accumulation* ([`EventQuery::Count`], sliding [`EventQuery::Agg`]
//!   aggregates). Instance *selection* and *consumption* policies
//!   ([`Policy`]) cover the paper's citation \[12\].
//!
//! * **Thesis 6 — data-driven incremental evaluation.** Queries compile to
//!   an operator network with per-operator partial-match storage
//!   ([`IncrementalEngine`]); each incoming event does work proportional to
//!   the affected state, never to the event history. `And`/`Seq` joins run
//!   on a beta network of join-key indexes ([`beta`]) by default — stored
//!   answers hashed by projected key bindings, windows and sequence order
//!   pruned by range lookup — with the scan join kept as a
//!   runtime-switchable oracle ([`JoinMode`], experiment E17). The strawman
//!   the thesis argues against — query-driven re-evaluation over the full
//!   history — is implemented too ([`NaiveEngine`]) as the baseline for
//!   experiment E6, and property tests pin all of them to the same
//!   semantics.
//!
//! * **Thesis 9 (events half)** — deductive rules for events:
//!   [`EventRule`] (`DETECT head ON query`) derives higher-level events;
//!   recursion among event rules is rejected, as the thesis prescribes.

#![warn(missing_docs)]

pub mod beta;
pub mod compiled;
pub mod deductive;
pub mod event;
pub mod incremental;
pub mod naive;
pub mod parser;
pub mod query;

pub use beta::JoinMode;
pub use compiled::{alpha_skippable, registrations};
pub use deductive::{DeductionLayer, EventRule};
pub use event::{Answer, Event, EventId};
pub use incremental::{IncrementalEngine, Policy, Selection};
pub use naive::NaiveEngine;
pub use parser::parse_event_query;
pub use query::EventQuery;

pub use reweb_term::TermError;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TermError>;
