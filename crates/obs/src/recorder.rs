//! The flight recorder: a bounded lock-free ring buffer of spans.
//!
//! Writers claim a slot with one `fetch_add` and publish through a
//! per-slot seqlock (odd generation = write in progress), so recording
//! never blocks and never allocates; when the ring wraps, the oldest
//! spans are overwritten — a flight recorder keeps the recent past, not
//! the full history. Readers (`snapshot`, `spans_for`) retry torn slots
//! and otherwise observe a consistent span or nothing.

use std::sync::atomic::{AtomicU64, Ordering};

use reweb_term::Term;

use crate::{field_u64, Stage};

/// One timestamped, staged interval in an event's journey through the
/// system. Times are nanoseconds since the owning recorder's epoch
/// (wall-clock monotonic, not virtual time — spans measure the machine,
/// not the simulation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Global record order (younger spans have larger sequence numbers).
    pub seq: u64,
    /// The trace this span belongs to; 0 marks an untraced stage sample
    /// (e.g. an fsync outside any event's causal path).
    pub trace: u64,
    /// Which pipeline stage the interval covers.
    pub stage: Stage,
    /// Start, in nanoseconds since the recorder epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

impl Span {
    /// Print as a term: `span{seq[...], trace[...], stage[...], start_ns[...], dur_ns[...]}`.
    pub fn to_term(&self) -> Term {
        Term::build("span")
            .unordered()
            .field("seq", self.seq.to_string())
            .field("trace", self.trace.to_string())
            .field("stage", self.stage.name())
            .field("start_ns", self.start_ns.to_string())
            .field("dur_ns", self.dur_ns.to_string())
            .finish()
    }

    /// Parse a term printed by [`Span::to_term`].
    pub fn from_term(t: &Term) -> Option<Span> {
        if t.label() != Some("span") {
            return None;
        }
        let stage = t
            .children()
            .iter()
            .find(|c| c.label() == Some("stage"))
            .map(|c| c.text_content())?;
        Some(Span {
            seq: field_u64(t, "seq")?,
            trace: field_u64(t, "trace")?,
            stage: Stage::from_name(&stage)?,
            start_ns: field_u64(t, "start_ns")?,
            dur_ns: field_u64(t, "dur_ns")?,
        })
    }
}

/// One ring slot: a seqlock generation word plus the span fields, all
/// word-sized atomics so the whole structure is lock-free.
#[derive(Default)]
struct Slot {
    /// 0 = never written; odd = write in progress; even ≥ 2 = published.
    gen: AtomicU64,
    seq: AtomicU64,
    trace: AtomicU64,
    stage: AtomicU64,
    start_ns: AtomicU64,
    dur_ns: AtomicU64,
}

/// A fixed-capacity lock-free span ring. All methods take `&self`; the
/// recorder is shared freely across shard workers and network threads.
pub struct FlightRecorder {
    slots: Box<[Slot]>,
    head: AtomicU64,
}

impl FlightRecorder {
    /// A recorder holding the most recent `capacity` spans (rounded up
    /// to at least 2).
    pub fn new(capacity: usize) -> FlightRecorder {
        let cap = capacity.max(2);
        FlightRecorder {
            slots: (0..cap).map(|_| Slot::default()).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Number of slots in the ring.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total spans ever recorded (including those already overwritten).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Record one span. Never blocks: if another writer is mid-flight in
    /// the same slot (only possible after a full ring wrap-around within
    /// the race window) the younger span is dropped.
    pub fn record(&self, trace: u64, stage: Stage, start_ns: u64, dur_ns: u64) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        let gen = slot.gen.load(Ordering::Relaxed);
        if gen & 1 == 1 {
            return; // a wrapped-around writer owns this slot right now
        }
        if slot
            .gen
            .compare_exchange(gen, gen + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        slot.seq.store(seq, Ordering::Relaxed);
        slot.trace.store(trace, Ordering::Relaxed);
        slot.stage.store(stage as u64, Ordering::Relaxed);
        slot.start_ns.store(start_ns, Ordering::Relaxed);
        slot.dur_ns.store(dur_ns, Ordering::Relaxed);
        slot.gen.store(gen + 2, Ordering::Release);
    }

    /// Every currently published span, oldest first. Slots being written
    /// during the scan are skipped rather than read torn.
    pub fn snapshot(&self) -> Vec<Span> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let g1 = slot.gen.load(Ordering::Acquire);
            if g1 == 0 || g1 & 1 == 1 {
                continue;
            }
            let span = Span {
                seq: slot.seq.load(Ordering::Relaxed),
                trace: slot.trace.load(Ordering::Relaxed),
                stage: Stage::from_u64(slot.stage.load(Ordering::Relaxed)),
                start_ns: slot.start_ns.load(Ordering::Relaxed),
                dur_ns: slot.dur_ns.load(Ordering::Relaxed),
            };
            std::sync::atomic::fence(Ordering::Acquire);
            if slot.gen.load(Ordering::Relaxed) == g1 {
                out.push(span);
            }
        }
        out.sort_by_key(|s| s.seq);
        out
    }

    /// The span chain of one trace, oldest first — the ingress→delivery
    /// journey of a single event, as far as the ring still remembers it.
    pub fn spans_for(&self, trace: u64) -> Vec<Span> {
        let mut v = self.snapshot();
        v.retain(|s| s.trace == trace);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reads_back_in_order() {
        let r = FlightRecorder::new(16);
        r.record(7, Stage::Admission, 100, 10);
        r.record(7, Stage::Alpha, 110, 5);
        r.record(8, Stage::Admission, 120, 3);
        let all = r.snapshot();
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].stage, Stage::Admission);
        assert_eq!(all[1].stage, Stage::Alpha);
        let chain = r.spans_for(7);
        assert_eq!(chain.len(), 2);
        assert!(chain[0].seq < chain[1].seq);
    }

    #[test]
    fn ring_overwrites_oldest_when_full() {
        let r = FlightRecorder::new(4);
        for i in 0..10u64 {
            r.record(i, Stage::Fire, i * 10, 1);
        }
        let all = r.snapshot();
        assert_eq!(all.len(), 4);
        // Only the four youngest survive.
        let traces: Vec<u64> = all.iter().map(|s| s.trace).collect();
        assert_eq!(traces, vec![6, 7, 8, 9]);
        assert_eq!(r.recorded(), 10);
    }

    #[test]
    fn concurrent_recording_never_tears() {
        use std::sync::Arc;
        let r = Arc::new(FlightRecorder::new(64));
        let writers: Vec<_> = (0..4)
            .map(|k| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..2000u64 {
                        // Encode the writer id in every field so a torn
                        // read would be detectable below.
                        let v = k * 1_000_000 + i;
                        r.record(v, Stage::Delivery, v, v);
                    }
                })
            })
            .collect();
        for _ in 0..50 {
            for s in r.snapshot() {
                assert_eq!(s.trace, s.start_ns);
                assert_eq!(s.trace, s.dur_ns);
            }
        }
        for w in writers {
            w.join().unwrap();
        }
        let final_spans = r.snapshot();
        assert!(final_spans.len() <= 64);
        for s in final_spans {
            assert_eq!(s.trace, s.start_ns);
        }
    }

    #[test]
    fn span_term_round_trip() {
        let s = Span {
            seq: 3,
            trace: 9,
            stage: Stage::Fsync,
            start_ns: 1234,
            dur_ns: 56,
        };
        let t = s.to_term();
        assert_eq!(Span::from_term(&t), Some(s));
        let printed = t.to_string();
        let reparsed = reweb_term::parse_term(&printed).unwrap();
        assert_eq!(Span::from_term(&reparsed), Some(s));
    }
}
