//! # reweb-obs — observability for the reactive engine stack
//!
//! The system spans four tiers (ingress → engine → durability →
//! delivery); this crate is what the system emits about itself:
//!
//! * **Causal tracing** — each ingested event gets a trace id carried
//!   admission → alpha dispatch → beta probes → firing → reaction →
//!   outbox → delivery ack, with each hop recorded as a [`Span`] in a
//!   bounded lock-free ring ([`FlightRecorder`]).
//! * **Latency histograms** — fixed-bucket log-scale [`Histogram`]s
//!   (p50/p90/p99/max) for batch latency, fsync stall, queue wait, and
//!   delivery round-trip, mergeable across shards and nodes the way
//!   `EngineMetrics::merge` merges counters.
//! * **Reaction provenance** — every reaction is annotated with the
//!   rule and the constituent event ids that satisfied its event query
//!   ([`Provenance`]), so [`Provenance::explain`] reconstructs a firing.
//!
//! Everything hangs off one [`Obs`] handle, compiled in unconditionally
//! but **runtime-toggled**: while disabled, instrumented code performs a
//! single relaxed atomic load and nothing else — no ids, no clock reads,
//! no recording (the E19 experiment gates this path at <5% overhead).

#![warn(missing_docs)]

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use reweb_term::Term;

mod hist;
mod recorder;

pub use hist::{bucket_ceil, bucket_of, AtomicHistogram, Histogram, BUCKETS};
pub use recorder::{FlightRecorder, Span};

pub(crate) use hist::field_u64;

/// Pipeline stages a span can cover, in causal order. The numeric
/// values are the ring-buffer encoding; the names are the wire/report
/// encoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u64)]
pub enum Stage {
    /// AAA admission + event construction at the engine boundary.
    Admission = 0,
    /// Alpha network dispatch: shape digest + candidate-rule collection.
    Alpha = 1,
    /// Beta tier: incremental join probes for one candidate rule.
    Beta = 2,
    /// Rule firing: condition evaluation + action execution.
    Fire = 3,
    /// A reaction leaving the engine (outbox messages produced).
    Reaction = 4,
    /// A reaction enqueued on the outbound delivery agent.
    Outbox = 5,
    /// Delivery round-trip: dial/push until the receiver's ack.
    Delivery = 6,
    /// Time spent queued in the ingress router before the engine ran.
    QueueWait = 7,
    /// A WAL fsync stall.
    Fsync = 8,
    /// Crash recovery replay (journal → warm-up → exact replay).
    Recovery = 9,
    /// Anything not covered above (forward compatibility).
    Other = 10,
}

impl Stage {
    /// The report/wire name of this stage.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Admission => "admission",
            Stage::Alpha => "alpha",
            Stage::Beta => "beta",
            Stage::Fire => "fire",
            Stage::Reaction => "reaction",
            Stage::Outbox => "outbox",
            Stage::Delivery => "delivery",
            Stage::QueueWait => "queue-wait",
            Stage::Fsync => "fsync",
            Stage::Recovery => "recovery",
            Stage::Other => "other",
        }
    }

    /// Parse a stage name printed by [`Stage::name`].
    pub fn from_name(s: &str) -> Option<Stage> {
        Some(match s {
            "admission" => Stage::Admission,
            "alpha" => Stage::Alpha,
            "beta" => Stage::Beta,
            "fire" => Stage::Fire,
            "reaction" => Stage::Reaction,
            "outbox" => Stage::Outbox,
            "delivery" => Stage::Delivery,
            "queue-wait" => Stage::QueueWait,
            "fsync" => Stage::Fsync,
            "recovery" => Stage::Recovery,
            "other" => Stage::Other,
            _ => return None,
        })
    }

    /// Total decoding from the ring-buffer representation (unknown
    /// values map to [`Stage::Other`] rather than failing — the ring is
    /// best-effort diagnostics, not a source of truth).
    pub fn from_u64(v: u64) -> Stage {
        match v {
            0 => Stage::Admission,
            1 => Stage::Alpha,
            2 => Stage::Beta,
            3 => Stage::Fire,
            4 => Stage::Reaction,
            5 => Stage::Outbox,
            6 => Stage::Delivery,
            7 => Stage::QueueWait,
            8 => Stage::Fsync,
            9 => Stage::Recovery,
            _ => Stage::Other,
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a reaction happened: the rule that fired and the constituent
/// events (by engine-assigned id) whose join satisfied its event query.
/// Carried on `OutMessage` when observability is enabled; excluded from
/// message equality so the byte-identity equivalence walls (sharded ≡
/// single, indexed ≡ scan, …) are undisturbed by per-shard id skew.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Provenance {
    /// Name of the rule that fired.
    pub rule: String,
    /// Ids of the constituent events, ascending.
    pub events: Vec<u64>,
    /// The trace id of the triggering event's journey (0 if tracing was
    /// off when the event entered).
    pub trace: u64,
}

impl Provenance {
    /// Print as a term:
    /// `provenance{rule[...], trace[...], events[e[..] …]}`.
    pub fn to_term(&self) -> Term {
        Term::build("provenance")
            .unordered()
            .field("rule", self.rule.clone())
            .field("trace", self.trace.to_string())
            .child(Term::ordered(
                "events",
                self.events
                    .iter()
                    .map(|id| Term::ordered("e", vec![Term::text(id.to_string())]))
                    .collect(),
            ))
            .finish()
    }

    /// Parse a term printed by [`Provenance::to_term`].
    pub fn from_term(t: &Term) -> Option<Provenance> {
        if t.label() != Some("provenance") {
            return None;
        }
        let rule = t
            .children()
            .iter()
            .find(|c| c.label() == Some("rule"))
            .map(|c| c.text_content())?;
        let trace = field_u64(t, "trace")?;
        let events = t
            .children()
            .iter()
            .find(|c| c.label() == Some("events"))?
            .children()
            .iter()
            .filter(|c| c.label() == Some("e"))
            .map(|c| c.text_content().parse().ok())
            .collect::<Option<Vec<u64>>>()?;
        Some(Provenance {
            rule,
            events,
            trace,
        })
    }

    /// A one-line human reconstruction of the firing.
    pub fn explain(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rule `{}` fired on event", self.rule)?;
        if self.events.len() != 1 {
            write!(f, "s")?;
        }
        for (i, id) in self.events.iter().enumerate() {
            write!(f, "{} #{}", if i == 0 { "" } else { "," }, id)?;
        }
        if self.trace != 0 {
            write!(f, " (trace {})", self.trace)?;
        }
        Ok(())
    }
}

/// Default flight-recorder capacity (spans).
pub const DEFAULT_RECORDER_CAPACITY: usize = 65_536;

/// The shared observability handle: an enable flag, a trace-id source, a
/// flight recorder, and the four tier histograms. One `Arc<Obs>` is
/// shared by an engine, all its shards, the durability wrapper, the
/// ingress server, and the delivery agent — sharing *is* the cross-shard
/// merge, since every member is a plain atomic.
pub struct Obs {
    enabled: AtomicBool,
    next_trace: AtomicU64,
    epoch: Instant,
    recorder: FlightRecorder,
    /// Engine batch ingest latency (ns per `receive_batch` call).
    pub batch: AtomicHistogram,
    /// WAL fsync stall (ns per `sync`).
    pub fsync: AtomicHistogram,
    /// Ingress queue wait (ns from enqueue to engine pickup).
    pub queue: AtomicHistogram,
    /// Outbound delivery round-trip (ns from push to ack).
    pub delivery: AtomicHistogram,
}

impl Default for Obs {
    fn default() -> Obs {
        Obs::new()
    }
}

impl Obs {
    /// A disabled handle with the default recorder capacity. This is
    /// what every engine owns from construction, so instrumented code
    /// never needs an `Option` check — just [`Obs::is_enabled`].
    pub fn new() -> Obs {
        Obs::with_capacity(DEFAULT_RECORDER_CAPACITY)
    }

    /// A disabled handle whose flight recorder holds `capacity` spans.
    pub fn with_capacity(capacity: usize) -> Obs {
        Obs {
            enabled: AtomicBool::new(false),
            next_trace: AtomicU64::new(1),
            epoch: Instant::now(),
            recorder: FlightRecorder::new(capacity),
            batch: AtomicHistogram::new(),
            fsync: AtomicHistogram::new(),
            queue: AtomicHistogram::new(),
            delivery: AtomicHistogram::new(),
        }
    }

    /// An enabled handle (convenience for tests and reports).
    pub fn enabled() -> Arc<Obs> {
        let o = Obs::new();
        o.enable();
        Arc::new(o)
    }

    /// Turn recording on.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Turn recording off. Already-recorded spans and histograms remain
    /// readable.
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// The one check on the disabled hot path: a relaxed load.
    #[inline(always)]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// A fresh trace id (never 0; 0 everywhere means "untraced").
    #[inline]
    pub fn next_trace(&self) -> u64 {
        self.next_trace.fetch_add(1, Ordering::Relaxed)
    }

    /// Nanoseconds since this handle was created.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Record a span that started at `start_ns` and ends now.
    #[inline]
    pub fn span_since(&self, trace: u64, stage: Stage, start_ns: u64) {
        let now = self.now_ns();
        self.recorder
            .record(trace, stage, start_ns, now.saturating_sub(start_ns));
    }

    /// Record a fully specified span.
    #[inline]
    pub fn span(&self, trace: u64, stage: Stage, start_ns: u64, dur_ns: u64) {
        self.recorder.record(trace, stage, start_ns, dur_ns);
    }

    /// The flight recorder (snapshots, capacity, totals).
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// The span chain of one trace, oldest first.
    pub fn spans_for(&self, trace: u64) -> Vec<Span> {
        self.recorder.spans_for(trace)
    }

    /// The full stats snapshot as a term — the body of a `stats` wire
    /// reply:
    /// `stats{enabled[...], spans[...], batch[hist…], fsync[hist…], queue[hist…], delivery[hist…]}`.
    pub fn stats_term(&self) -> Term {
        fn wrap(name: &str, h: &AtomicHistogram) -> Term {
            Term::ordered(name, vec![h.snapshot().to_term()])
        }
        Term::build("stats")
            .unordered()
            .field("enabled", if self.is_enabled() { "1" } else { "0" })
            .field("spans", self.recorder.recorded().to_string())
            .child(wrap("batch", &self.batch))
            .child(wrap("fsync", &self.fsync))
            .child(wrap("queue", &self.queue))
            .child(wrap("delivery", &self.delivery))
            .finish()
    }

    /// The span dump of one trace as a term — the body of a `trace`
    /// wire reply: `trace{id[...], span{…} …}`.
    pub fn trace_term(&self, trace: u64) -> Term {
        let mut b = Term::build("trace")
            .unordered()
            .field("id", trace.to_string());
        for s in self.spans_for(trace) {
            b = b.child(s.to_term());
        }
        b.finish()
    }
}

/// Pull one named histogram back out of a `stats{}` term (the inverse of
/// the corresponding [`Obs::stats_term`] child). `None` on shape
/// mismatch.
pub fn stats_histogram(stats: &Term, name: &str) -> Option<Histogram> {
    stats
        .children()
        .iter()
        .find(|c| c.label() == Some(name))
        .and_then(|c| c.children().first())
        .and_then(Histogram::from_term)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_toggleable() {
        let o = Obs::new();
        assert!(!o.is_enabled());
        o.enable();
        assert!(o.is_enabled());
        o.disable();
        assert!(!o.is_enabled());
    }

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let o = Obs::new();
        let a = o.next_trace();
        let b = o.next_trace();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn stage_names_round_trip() {
        for v in 0..=10u64 {
            let s = Stage::from_u64(v);
            assert_eq!(Stage::from_name(s.name()), Some(s));
            assert_eq!(s as u64, v);
        }
        assert_eq!(Stage::from_name("bogus"), None);
        assert_eq!(Stage::from_u64(999), Stage::Other);
    }

    #[test]
    fn provenance_term_round_trip_and_explain() {
        let p = Provenance {
            rule: "on_payment".into(),
            events: vec![3, 9],
            trace: 12,
        };
        let t = p.to_term();
        assert_eq!(Provenance::from_term(&t), Some(p.clone()));
        let printed = t.to_string();
        let reparsed = reweb_term::parse_term(&printed).unwrap();
        assert_eq!(Provenance::from_term(&reparsed), Some(p.clone()));
        let e = p.explain();
        assert!(e.contains("on_payment"), "{e}");
        assert!(e.contains("#3"), "{e}");
        assert!(e.contains("#9"), "{e}");
        assert!(e.contains("trace 12"), "{e}");
    }

    #[test]
    fn stats_term_carries_all_four_histograms() {
        let o = Obs::new();
        o.enable();
        o.batch.record(1_000);
        o.fsync.record(2_000);
        o.queue.record(10);
        o.delivery.record(5_000_000);
        let t = o.stats_term();
        assert_eq!(t.label(), Some("stats"));
        for name in ["batch", "fsync", "queue", "delivery"] {
            let h = stats_histogram(&t, name).expect(name);
            assert_eq!(h.count(), 1, "{name}");
        }
        // And the printed form re-parses to the same histograms.
        let reparsed = reweb_term::parse_term(&t.to_string()).unwrap();
        assert_eq!(
            stats_histogram(&reparsed, "delivery").unwrap().max(),
            5_000_000
        );
    }

    #[test]
    fn trace_term_is_the_span_chain() {
        let o = Obs::new();
        o.enable();
        let id = o.next_trace();
        let t0 = o.now_ns();
        o.span(id, Stage::Admission, t0, 50);
        o.span(id, Stage::Alpha, t0 + 50, 20);
        o.span(999_999, Stage::Fire, t0, 1); // someone else's trace
        let t = o.trace_term(id);
        assert_eq!(t.label(), Some("trace"));
        let spans: Vec<Span> = t
            .children()
            .iter()
            .filter(|c| c.label() == Some("span"))
            .map(|c| Span::from_term(c).unwrap())
            .collect();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].stage, Stage::Admission);
        assert_eq!(spans[1].stage, Stage::Alpha);
    }
}
