//! Fixed-bucket log-scale latency histograms.
//!
//! Values (nanoseconds, but the scale is unit-agnostic) land in one of
//! [`BUCKETS`] power-of-two buckets: bucket 0 holds exactly 0, bucket
//! `b > 0` holds `[2^(b-1), 2^b)`. The layout is fixed so snapshots from
//! different shards, nodes, or runs merge by plain bucket-wise addition —
//! the histogram analogue of `EngineMetrics::merge` — and quantiles are
//! answered from the merged counts without ever storing samples.

use std::sync::atomic::{AtomicU64, Ordering};

use reweb_term::Term;

/// Number of buckets. 64 covers the full `u64` range at one bucket per
/// power of two, so recording can never overflow the scale.
pub const BUCKETS: usize = 64;

/// Bucket index of a value: 0 for 0, else `floor(log2(v)) + 1`, clamped
/// to the last bucket.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).min(BUCKETS - 1)
}

/// Inclusive upper edge of a bucket — the value quantiles report, so the
/// estimate errs high (a conservative latency bound), never low.
#[inline]
pub fn bucket_ceil(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

/// A plain (single-threaded) histogram snapshot: mergeable, printable,
/// and round-trippable through the textual term syntax.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.max = self.max.max(v);
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The largest recorded value (exact, not bucketed). 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Bucket-wise sum — merging shard or node snapshots loses nothing
    /// because every histogram shares the one fixed bucket layout.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `q` in `[0, 1]`: the upper edge of the
    /// bucket holding the `ceil(q * count)`-th smallest sample (the exact
    /// `max` for the last occupied bucket). 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Within the topmost occupied bucket the tracked max is a
                // tighter bound than the bucket edge.
                return bucket_ceil(b).min(self.max);
            }
        }
        self.max
    }

    /// Shorthand for the median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }
    /// Shorthand for the 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }
    /// Shorthand for the 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Print as a term: `hist{n[...], max[...], b{i[...], c[...]}…}` with
    /// one `b` child per non-empty bucket. The term syntax is the
    /// wire/WAL lingua franca, so snapshots travel in `stats` replies and
    /// journal records unchanged.
    pub fn to_term(&self) -> Term {
        let mut b = Term::build("hist")
            .unordered()
            .field("n", self.count.to_string())
            .field("max", self.max.to_string());
        for (i, &c) in self.counts.iter().enumerate() {
            if c != 0 {
                b = b.child(
                    Term::build("b")
                        .unordered()
                        .field("i", i.to_string())
                        .field("c", c.to_string())
                        .finish(),
                );
            }
        }
        b.finish()
    }

    /// Parse a term printed by [`Histogram::to_term`]. Returns `None` on
    /// shape mismatch (wrong label, missing fields, bucket out of range).
    pub fn from_term(t: &Term) -> Option<Histogram> {
        if t.label() != Some("hist") {
            return None;
        }
        let mut h = Histogram::new();
        h.count = field_u64(t, "n")?;
        h.max = field_u64(t, "max")?;
        for c in t.children() {
            if c.label() == Some("b") {
                let i = field_u64(c, "i")? as usize;
                let n = field_u64(c, "c")?;
                if i >= BUCKETS {
                    return None;
                }
                h.counts[i] = n;
            }
        }
        Some(h)
    }
}

/// Read the `u64` text content of the child labelled `name`.
pub(crate) fn field_u64(t: &Term, name: &str) -> Option<u64> {
    t.children()
        .iter()
        .find(|c| c.label() == Some(name))
        .and_then(|c| c.text_content().parse().ok())
}

/// A thread-safe histogram: one relaxed `fetch_add` per record, no
/// locks, so shards and network threads share one instance and the
/// "merge" across shards is the data structure itself. `snapshot()`
/// produces a plain [`Histogram`] for quantiles and printing.
#[derive(Debug)]
pub struct AtomicHistogram {
    counts: [AtomicU64; BUCKETS],
    count: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> AtomicHistogram {
        AtomicHistogram::new()
    }
}

impl AtomicHistogram {
    /// An empty histogram.
    pub fn new() -> AtomicHistogram {
        AtomicHistogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value (relaxed; counts are statistics, not
    /// synchronization).
    #[inline]
    pub fn record(&self, v: u64) {
        self.counts[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copy into a plain [`Histogram`]. Concurrent recorders may land
    /// between bucket reads; each sample is still counted exactly once
    /// in some snapshot at or after its record.
    pub fn snapshot(&self) -> Histogram {
        let mut h = Histogram::new();
        for (i, c) in self.counts.iter().enumerate() {
            h.counts[i] = c.load(Ordering::Relaxed);
        }
        h.count = h.counts.iter().sum();
        h.max = self.max.load(Ordering::Relaxed);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        // Every value's bucket ceiling bounds it from above.
        for v in [0u64, 1, 7, 100, 4096, 1 << 40] {
            assert!(bucket_ceil(bucket_of(v)) >= v);
        }
    }

    #[test]
    fn quantiles_err_high_never_low() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1000);
        // p50 of 1..=1000 is 500; the bucket holding it spans 512..1023,
        // but rank 500 lands in bucket [256, 511] → ceiling 511.
        assert!(h.p50() >= 500);
        assert!(h.p99() >= 990);
        assert!(h.p99() <= h.max());
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn merge_is_bucketwise_sum() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [3u64, 70, 900] {
            a.record(v);
        }
        for v in [5u64, 1_000_000] {
            b.record(v);
        }
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.count(), 5);
        assert_eq!(m.max(), 1_000_000);
        // Merging in the other order gives the identical histogram.
        let mut m2 = b.clone();
        m2.merge(&a);
        assert_eq!(m, m2);
    }

    #[test]
    fn term_round_trip() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 42, 65_536, u64::MAX] {
            h.record(v);
        }
        let t = h.to_term();
        let back = Histogram::from_term(&t).expect("round trip");
        assert_eq!(h, back);
        // And through the printed text, the wire representation.
        let printed = t.to_string();
        let reparsed = reweb_term::parse_term(&printed).expect("parses");
        assert_eq!(Histogram::from_term(&reparsed).expect("round trip"), h);
    }

    #[test]
    fn from_term_rejects_garbage() {
        let t = reweb_term::parse_term("nothist{n[\"1\"]}").unwrap();
        assert!(Histogram::from_term(&t).is_none());
        let t = reweb_term::parse_term("hist{n[\"1\"]}").unwrap();
        assert!(Histogram::from_term(&t).is_none(), "missing max");
        let t =
            reweb_term::parse_term("hist{n[\"1\"], max[\"1\"], b{i[\"99\"], c[\"1\"]}}").unwrap();
        assert!(Histogram::from_term(&t).is_none(), "bucket out of range");
    }

    #[test]
    fn atomic_histogram_snapshots_match_serial_recording() {
        let ah = AtomicHistogram::new();
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 500, 100_000] {
            ah.record(v);
            h.record(v);
        }
        assert_eq!(ah.snapshot(), h);
    }

    #[test]
    fn atomic_histogram_is_shared_across_threads() {
        use std::sync::Arc;
        let ah = Arc::new(AtomicHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|k| {
                let ah = Arc::clone(&ah);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        ah.record(k * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = ah.snapshot();
        assert_eq!(s.count(), 4000);
        assert_eq!(s.max(), 3999);
    }
}
