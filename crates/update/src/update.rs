//! Primitive updates on persistent documents.
//!
//! An [`Update`] addresses its targets with a query term — the same pattern
//! language used everywhere else (Thesis 7's coherency) — and applies one
//! [`UpdateOp`] to every matched node. Bindings flowing in from the event
//! and condition parts parameterize both the target pattern and the
//! constructed content.
//!
//! Application is deterministic: matched paths are edited deepest-and-
//! rightmost first so earlier edits cannot invalidate later paths, and
//! per-path conflicts resolve to the smallest constructed term.
//!
//! An update that matches nothing is an **error**, not a silent no-op:
//! that is what makes `ALT` (try this, else that) meaningful, mirroring the
//! paper's "specification of alternative actions".

use std::fmt;

use reweb_query::{match_anywhere, Bindings, ConstructTerm, QueryTerm};
use reweb_term::path::{apply_edit, Path, PathEdit};
use reweb_term::{ResourceStore, Term, TermError};

/// A primitive update operation.
#[derive(Clone, Debug, PartialEq)]
pub enum UpdateOp {
    /// `INSERT content INTO target` — append the instantiated content as a
    /// child of every element matching `target`.
    Insert {
        /// Pattern selecting the parent elements.
        target: QueryTerm,
        /// Construct term instantiated into the new child.
        content: ConstructTerm,
    },
    /// `DELETE target` — remove every node matching `target`.
    Delete {
        /// Pattern selecting the nodes to remove.
        target: QueryTerm,
    },
    /// `REPLACE target BY content`.
    Replace {
        /// Pattern selecting the nodes to replace.
        target: QueryTerm,
        /// Construct term instantiated into the replacement.
        content: ConstructTerm,
    },
    /// `SETATTR key = content ON target`.
    SetAttr {
        /// Pattern selecting the elements to annotate.
        target: QueryTerm,
        /// Attribute name.
        key: String,
        /// Construct term instantiated into the attribute value.
        value: ConstructTerm,
    },
}

/// An update of one resource.
#[derive(Clone, Debug, PartialEq)]
pub struct Update {
    /// URI of the resource the operation edits.
    pub resource: String,
    /// The operation.
    pub op: UpdateOp,
}

impl Update {
    /// Convenience: `INSERT content INTO target` in `resource`.
    pub fn insert(
        resource: impl Into<String>,
        target: QueryTerm,
        content: ConstructTerm,
    ) -> Update {
        Update {
            resource: resource.into(),
            op: UpdateOp::Insert { target, content },
        }
    }

    /// Convenience: `DELETE target` in `resource`.
    pub fn delete(resource: impl Into<String>, target: QueryTerm) -> Update {
        Update {
            resource: resource.into(),
            op: UpdateOp::Delete { target },
        }
    }

    /// Convenience: `REPLACE target BY content` in `resource`.
    pub fn replace(
        resource: impl Into<String>,
        target: QueryTerm,
        content: ConstructTerm,
    ) -> Update {
        Update {
            resource: resource.into(),
            op: UpdateOp::Replace { target, content },
        }
    }

    /// Convenience: `SETATTR key = value ON target` in `resource`.
    pub fn set_attr(
        resource: impl Into<String>,
        target: QueryTerm,
        key: impl Into<String>,
        value: ConstructTerm,
    ) -> Update {
        Update {
            resource: resource.into(),
            op: UpdateOp::SetAttr {
                target,
                key: key.into(),
                value,
            },
        }
    }

    /// The pattern selecting the nodes this update touches.
    pub fn target(&self) -> &QueryTerm {
        match &self.op {
            UpdateOp::Insert { target, .. }
            | UpdateOp::Delete { target }
            | UpdateOp::Replace { target, .. }
            | UpdateOp::SetAttr { target, .. } => target,
        }
    }
}

impl fmt::Display for Update {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.op {
            UpdateOp::Insert { target, content } => {
                write!(f, "INSERT {content} INTO {target} IN {:?}", self.resource)
            }
            UpdateOp::Delete { target } => write!(f, "DELETE {target} IN {:?}", self.resource),
            UpdateOp::Replace { target, content } => {
                write!(f, "REPLACE {target} BY {content} IN {:?}", self.resource)
            }
            UpdateOp::SetAttr { target, key, value } => write!(
                f,
                "SETATTR {key} = {value} ON {target} IN {:?}",
                self.resource
            ),
        }
    }
}

/// Apply an update under the given bindings. Returns the number of nodes
/// affected; zero matches is an error (see module docs).
pub fn apply_update(
    store: &mut ResourceStore,
    u: &Update,
    binds: &Bindings,
) -> Result<usize, TermError> {
    let doc = store.get(&u.resource)?.clone();
    let matches = match_anywhere(u.target(), &doc, binds);
    if matches.is_empty() {
        return Err(TermError::InvalidEdit(format!(
            "update target matched nothing: {}",
            u.target()
        )));
    }

    // Per-path edits, deterministic: deepest/rightmost first, and for
    // conflicting content on the same path, the smallest term wins.
    let mut edits: Vec<(Path, PathEdit)> = Vec::new();
    match &u.op {
        UpdateOp::Insert { content, .. } => {
            let mut inserts: Vec<(Path, Term)> = Vec::new();
            for m in &matches {
                let t = content.instantiate(std::slice::from_ref(&m.bindings))?;
                inserts.push((m.path.clone(), t));
            }
            inserts.sort();
            inserts.dedup();
            for (p, t) in inserts {
                edits.push((p, PathEdit::AppendChild(t)));
            }
        }
        UpdateOp::Delete { .. } => {
            let mut paths: Vec<Path> = matches.iter().map(|m| m.path.clone()).collect();
            paths.sort();
            paths.dedup();
            // Drop paths nested under another deleted path: deleting the
            // ancestor subsumes them.
            let roots: Vec<Path> = paths
                .iter()
                .filter(|p| !paths.iter().any(|q| q != *p && q.is_prefix_of(p)))
                .cloned()
                .collect();
            for p in roots {
                edits.push((p, PathEdit::Delete));
            }
        }
        UpdateOp::Replace { content, .. } => {
            let mut repls: Vec<(Path, Term)> = Vec::new();
            for m in &matches {
                let t = content.instantiate(std::slice::from_ref(&m.bindings))?;
                repls.push((m.path.clone(), t));
            }
            repls.sort();
            repls.dedup_by(|a, b| a.0 == b.0);
            // Drop replacements nested inside other replaced subtrees.
            let paths: Vec<Path> = repls.iter().map(|(p, _)| p.clone()).collect();
            repls.retain(|(p, _)| !paths.iter().any(|q| q != p && q.is_prefix_of(p)));
            for (p, t) in repls {
                edits.push((p, PathEdit::Replace(t)));
            }
        }
        UpdateOp::SetAttr { key, value, .. } => {
            let mut sets: Vec<(Path, String)> = Vec::new();
            for m in &matches {
                let t = value.instantiate(std::slice::from_ref(&m.bindings))?;
                sets.push((m.path.clone(), t.text_content()));
            }
            sets.sort();
            sets.dedup_by(|a, b| a.0 == b.0);
            for (p, v) in sets {
                edits.push((
                    p,
                    PathEdit::SetAttr {
                        key: key.clone(),
                        value: v,
                    },
                ));
            }
        }
    }

    // Deepest/rightmost first keeps shallower paths valid.
    edits.sort_by(|a, b| b.0.cmp(&a.0));
    let affected = edits.len();
    let mut new_doc = doc;
    for (p, e) in edits {
        new_doc = apply_edit(&new_doc, &p, e)?;
    }
    store.put(&u.resource, new_doc);
    Ok(affected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reweb_query::parser::{parse_construct_term, parse_query_term};
    use reweb_term::parse_term;

    fn store() -> ResourceStore {
        let mut s = ResourceStore::new();
        s.put(
            "http://shop/stock",
            parse_term("stock[ item{sku[\"b1\"], qty[\"10\"]}, item{sku[\"b2\"], qty[\"3\"]} ]")
                .unwrap(),
        );
        s
    }

    fn q(s: &str) -> QueryTerm {
        parse_query_term(s).unwrap()
    }

    fn c(s: &str) -> ConstructTerm {
        parse_construct_term(s).unwrap()
    }

    #[test]
    fn insert_appends_to_each_match() {
        let mut s = store();
        let u = Update::insert(
            "http://shop/stock",
            q("item{{sku[[var K]]}}"),
            c("checked[var K]"),
        );
        let n = apply_update(&mut s, &u, &Bindings::new()).unwrap();
        assert_eq!(n, 2);
        let doc = s.get("http://shop/stock").unwrap();
        for item in doc.children() {
            let last = item.children().last().unwrap();
            assert_eq!(last.label(), Some("checked"));
        }
        // Content was parameterized per match.
        assert_eq!(
            doc.children()[0].children().last().unwrap().text_content(),
            "b1"
        );
    }

    #[test]
    fn delete_with_binding_seed() {
        let mut s = store();
        let u = Update::delete("http://shop/stock", q("item{{sku[[var K]]}}"));
        let seed = Bindings::of("K", Term::text("b2"));
        let n = apply_update(&mut s, &u, &seed).unwrap();
        assert_eq!(n, 1);
        let doc = s.get("http://shop/stock").unwrap();
        assert_eq!(doc.children().len(), 1);
        assert!(doc.to_string().contains("b1"));
    }

    #[test]
    fn replace_swaps_subtree() {
        let mut s = store();
        let u = Update::replace(
            "http://shop/stock",
            q("item{{sku[[\"b2\"]], qty[[var Q]]}}"),
            c("item{sku[\"b2\"], qty[eval(var Q - 1)]}"),
        );
        apply_update(&mut s, &u, &Bindings::new()).unwrap();
        let doc = s.get("http://shop/stock").unwrap();
        assert!(doc.to_string().contains("qty[\"2\"]"));
    }

    #[test]
    fn set_attr() {
        let mut s = store();
        let u = Update::set_attr(
            "http://shop/stock",
            q("item{{sku[[var K]]}}"),
            "checked",
            c("\"yes\""),
        );
        let n = apply_update(&mut s, &u, &Bindings::new()).unwrap();
        assert_eq!(n, 2);
        let doc = s.get("http://shop/stock").unwrap();
        assert_eq!(doc.children()[0].attr("checked"), Some("yes"));
    }

    #[test]
    fn no_match_is_error_and_leaves_store_untouched() {
        let mut s = store();
        let before = s.get("http://shop/stock").unwrap().clone();
        let v_before = s.version("http://shop/stock");
        let u = Update::delete("http://shop/stock", q("item{{sku[[\"nope\"]]}}"));
        assert!(apply_update(&mut s, &u, &Bindings::new()).is_err());
        assert_eq!(s.get("http://shop/stock").unwrap(), &before);
        assert_eq!(s.version("http://shop/stock"), v_before);
    }

    #[test]
    fn missing_resource_is_error() {
        let mut s = store();
        let u = Update::delete("http://nowhere", q("x"));
        assert!(apply_update(&mut s, &u, &Bindings::new()).is_err());
    }

    #[test]
    fn nested_delete_subsumed_by_ancestor() {
        let mut s = ResourceStore::new();
        s.put("u", parse_term("r[a[a[x]], b]").unwrap());
        // Pattern matches both the outer and inner `a`.
        let u = Update::delete("u", q("a"));
        // Inner match is a child pattern... target `a` matches outer a (with
        // child a[x]) only under total semantics? `a` parses as total
        // ordered with no children — matches only childless elements.
        // Use a partial pattern to match both.
        let u2 = Update::delete("u", q("a[[]]"));
        let _ = u;
        let n = apply_update(&mut s, &u2, &Bindings::new()).unwrap();
        // Outer delete subsumes the inner one.
        assert_eq!(n, 1);
        assert_eq!(s.get("u").unwrap().to_string(), "r[b]");
    }

    #[test]
    fn version_bumps_once_per_update() {
        let mut s = store();
        let v0 = s.version("http://shop/stock").unwrap();
        let u = Update::set_attr(
            "http://shop/stock",
            q("item{{sku[[var K]]}}"),
            "seen",
            c("\"1\""),
        );
        apply_update(&mut s, &u, &Bindings::new()).unwrap();
        assert_eq!(s.version("http://shop/stock"), Some(v0 + 1));
    }
}
