//! # reweb-update — updates and compound actions
//!
//! Thesis 8 of *Twelve Theses on Reactive Rules for the Web*: the Web is a
//! dynamic, state-changing system, so reactive rules need *state-changing
//! actions* — updates to persistent data and messages to other Web sites —
//! and compounds of them:
//!
//! * [`Update`] / [`UpdateOp`] — primitive updates on documents, addressed
//!   by query-term targets: `INSERT ct INTO qt`, `DELETE qt`,
//!   `REPLACE qt BY ct`, `SETATTR`.
//! * [`Action`] — the action language: updates, `SEND` (raise an event to a
//!   remote node — the paper's "communicating with other Web sites"),
//!   `PERSIST` (explicitly turn volatile event data into persistent data,
//!   closing Thesis 4's loop), `LOG`, and the compounds:
//!   - [`Action::Seq`] — transactional sequence: all local updates commit
//!     or none do (store snapshot + rollback, cheap thanks to structural
//!     sharing);
//!   - [`Action::Alt`] — alternatives: try each until one succeeds;
//!   - [`Action::If`] — branching inside actions;
//!   - [`Action::Call`] — procedural abstraction (Thesis 9): a named,
//!     parameterized action defined once and reused by many rules.
//! * [`Executor`] — runs actions against a [`reweb_query::QueryEngine`]'s
//!   store, collecting outbound messages (the push half of Thesis 3) and
//!   log entries, with statistics for the experiments.

#![warn(missing_docs)]

pub mod actions;
pub mod exec;
pub mod update;

pub use actions::{Action, ProcedureDef};
pub use exec::{ActionError, ActionStats, Executor, OutMessage};
pub use update::{apply_update, Update, UpdateOp};

/// Result alias for action execution.
pub type Result<T> = std::result::Result<T, ActionError>;
