//! Executing actions: transactions, alternatives, branching, procedures.
//!
//! The [`Executor`] borrows a [`QueryEngine`] (whose store it mutates and
//! whose views it queries for `IF` conditions) and a procedure registry.
//! `SEND` actions accumulate in the outbox — the hosting node (or the Web
//! simulator) turns them into pushed messages, keeping this crate free of
//! any network knowledge.
//!
//! Transactionality: `SEQ` snapshots the store, outbox, and log; if any
//! step fails, all three roll back — an all-or-nothing compound action.
//! `ALT` gives each alternative the same atomicity and takes the first
//! success.

use std::collections::BTreeMap;
use std::fmt;

use reweb_query::{Bindings, QueryEngine};
use reweb_term::{Term, TermError};

use crate::actions::{Action, ProcedureDef};
use crate::update::apply_update;

/// Why an action failed.
#[derive(Clone, Debug, PartialEq)]
pub enum ActionError {
    /// An update or construction failed at the term layer.
    Term(TermError),
    /// A `CALL` named a procedure that is not defined.
    UnknownProcedure(String),
    /// A `CALL` passed the wrong number of arguments.
    ArityMismatch {
        /// The procedure called.
        proc: String,
        /// Its declared parameter count.
        expected: usize,
        /// Arguments actually passed.
        got: usize,
    },
    /// An explicit `FAIL` action ran.
    Failed(String),
    /// All alternatives of an `ALT` failed; holds the last error.
    AllAlternativesFailed(Box<ActionError>),
}

impl fmt::Display for ActionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActionError::Term(e) => write!(f, "{e}"),
            ActionError::UnknownProcedure(p) => write!(f, "unknown procedure `{p}`"),
            ActionError::ArityMismatch {
                proc,
                expected,
                got,
            } => write!(
                f,
                "procedure `{proc}` expects {expected} arguments, got {got}"
            ),
            ActionError::Failed(m) => write!(f, "action failed: {m}"),
            ActionError::AllAlternativesFailed(last) => {
                write!(f, "all alternatives failed; last error: {last}")
            }
        }
    }
}

impl std::error::Error for ActionError {}

impl From<TermError> for ActionError {
    fn from(e: TermError) -> Self {
        ActionError::Term(e)
    }
}

/// A message produced by a `SEND` action, awaiting delivery.
#[derive(Clone, Debug)]
pub struct OutMessage {
    /// URI of the receiving node.
    pub to: String,
    /// The event payload.
    pub payload: Term,
    /// Why this message exists: the rule and constituent events behind
    /// it. `None` unless the producing engine has observability enabled.
    pub provenance: Option<std::sync::Arc<reweb_obs::Provenance>>,
}

/// Equality is deliberately `to` + `payload` only: provenance carries
/// per-engine event ids (and a trace id), which legitimately differ
/// between execution strategies — the byte-identity equivalence walls
/// (sharded ≡ single, indexed ≡ scan, recovery ≡ uninterrupted, …)
/// compare what a message *says*, not how it came to be.
impl PartialEq for OutMessage {
    fn eq(&self, other: &OutMessage) -> bool {
        self.to == other.to && self.payload == other.payload
    }
}

impl Eq for OutMessage {}

/// Execution statistics (experiments E8, E9, E12).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ActionStats {
    /// Primitive actions executed.
    pub actions_run: u64,
    /// Updates that committed.
    pub updates_applied: u64,
    /// Document nodes the updates touched.
    pub nodes_affected: u64,
    /// `SEND` messages placed in the outbox.
    pub messages_sent: u64,
    /// Transactional sequences rolled back.
    pub rollbacks: u64,
    /// Conditions evaluated by `IF` actions.
    pub condition_evals: u64,
}

/// Runs actions against a query engine's store.
pub struct Executor<'a> {
    /// The store and views updates and conditions run against.
    pub qe: &'a mut QueryEngine,
    /// Procedures `CALL` actions can invoke.
    pub procedures: &'a BTreeMap<String, ProcedureDef>,
    /// Messages produced by `SEND`, awaiting delivery by the host.
    pub outbox: Vec<OutMessage>,
    /// Entries appended by `LOG` actions.
    pub log: Vec<Term>,
    /// Execution counters.
    pub stats: ActionStats,
}

impl<'a> Executor<'a> {
    /// An executor over `qe` with an empty outbox and log.
    pub fn new(qe: &'a mut QueryEngine, procedures: &'a BTreeMap<String, ProcedureDef>) -> Self {
        Executor {
            qe,
            procedures,
            outbox: Vec::new(),
            log: Vec::new(),
            stats: ActionStats::default(),
        }
    }

    /// Execute an action under the given bindings.
    pub fn execute(&mut self, action: &Action, binds: &Bindings) -> Result<(), ActionError> {
        self.stats.actions_run += 1;
        match action {
            Action::Noop => Ok(()),
            Action::Fail(msg) => Err(ActionError::Failed(msg.clone())),
            Action::Log(ct) => {
                let t = ct.instantiate(std::slice::from_ref(binds))?;
                self.log.push(t);
                Ok(())
            }
            Action::Send { to, payload } => {
                let t = payload.instantiate(std::slice::from_ref(binds))?;
                self.outbox.push(OutMessage {
                    provenance: None,
                    to: to.clone(),
                    payload: t,
                });
                self.stats.messages_sent += 1;
                Ok(())
            }
            Action::Persist { resource, payload } => {
                let t = payload.instantiate(std::slice::from_ref(binds))?;
                if !self.qe.store.contains(resource) {
                    self.qe.store.put(resource.clone(), Term::elem("persisted"));
                }
                self.qe
                    .store
                    .update_with(resource, |doc| doc.with_child_pushed(t))?;
                self.stats.updates_applied += 1;
                self.stats.nodes_affected += 1;
                Ok(())
            }
            Action::Update(u) => {
                let n = apply_update(&mut self.qe.store, u, binds)?;
                self.stats.updates_applied += 1;
                self.stats.nodes_affected += n as u64;
                Ok(())
            }
            Action::Seq(steps) => {
                let snap = self.qe.store.snapshot();
                let outbox_mark = self.outbox.len();
                let log_mark = self.log.len();
                for s in steps {
                    if let Err(e) = self.execute(s, binds) {
                        self.qe.store.restore(snap);
                        self.outbox.truncate(outbox_mark);
                        self.log.truncate(log_mark);
                        self.stats.rollbacks += 1;
                        return Err(e);
                    }
                }
                Ok(())
            }
            Action::Alt(alternatives) => {
                let mut last: Option<ActionError> = None;
                for a in alternatives {
                    // Each alternative gets SEQ-like atomicity.
                    match self.execute(&Action::Seq(vec![a.clone()]), binds) {
                        Ok(()) => return Ok(()),
                        Err(e) => last = Some(e),
                    }
                }
                Err(ActionError::AllAlternativesFailed(Box::new(
                    last.unwrap_or(ActionError::Failed("empty ALT".into())),
                )))
            }
            Action::If { cond, then, else_ } => {
                self.stats.condition_evals += 1;
                let answers = self.qe.eval_condition(cond, binds)?;
                if answers.is_empty() {
                    match else_ {
                        Some(e) => self.execute(e, binds),
                        None => Ok(()),
                    }
                } else {
                    // The `then` branch runs once per answer — conditions
                    // deliver bindings that parameterize the action
                    // (Thesis 7).
                    for b in answers {
                        self.execute(then, &b)?;
                    }
                    Ok(())
                }
            }
            Action::Call { name, args } => {
                let proc = self
                    .procedures
                    .get(name)
                    .ok_or_else(|| ActionError::UnknownProcedure(name.clone()))?;
                if proc.params.len() != args.len() {
                    return Err(ActionError::ArityMismatch {
                        proc: name.clone(),
                        expected: proc.params.len(),
                        got: args.len(),
                    });
                }
                // Arguments are constructed with the caller's bindings,
                // then bound to the parameters — lexical isolation: the
                // body sees only its parameters.
                let mut callee = Bindings::new();
                for (param, arg) in proc.params.iter().zip(args) {
                    let t = arg.instantiate(std::slice::from_ref(binds))?;
                    callee = callee
                        .bind(param, &t)
                        .expect("fresh parameter names cannot conflict");
                }
                let body = proc.body.clone();
                self.execute(&body, &callee)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::Update;
    use reweb_query::parser::{parse_condition, parse_construct_term, parse_query_term};
    use reweb_term::{parse_term, ResourceStore};

    fn engine() -> QueryEngine {
        let mut s = ResourceStore::new();
        s.put(
            "http://shop/stock",
            parse_term("stock[item{sku[\"b1\"], qty[\"10\"]}]").unwrap(),
        );
        s.put("http://shop/ledger", parse_term("ledger[]").unwrap());
        QueryEngine::with_store(s)
    }

    fn c(s: &str) -> reweb_query::ConstructTerm {
        parse_construct_term(s).unwrap()
    }

    fn run(action: &Action, qe: &mut QueryEngine) -> (Result<(), ActionError>, Vec<OutMessage>) {
        let procs = BTreeMap::new();
        let mut ex = Executor::new(qe, &procs);
        let r = ex.execute(action, &Bindings::new());
        (r, ex.outbox)
    }

    #[test]
    fn send_constructs_payload() {
        let mut qe = engine();
        let procs = BTreeMap::new();
        let mut ex = Executor::new(&mut qe, &procs);
        let binds = Bindings::of("O", Term::text("o1"));
        ex.execute(
            &Action::send("http://mail", c("shipped{order[var O]}")),
            &binds,
        )
        .unwrap();
        assert_eq!(ex.outbox.len(), 1);
        assert_eq!(ex.outbox[0].to, "http://mail");
        assert_eq!(ex.outbox[0].payload.to_string(), "shipped{order[\"o1\"]}");
    }

    #[test]
    fn seq_commits_all_or_nothing() {
        let mut qe = engine();
        // Second step fails (target matches nothing) → first step must
        // roll back.
        let a = Action::seq(vec![
            Action::Update(Update::insert(
                "http://shop/ledger",
                parse_query_term("ledger").unwrap(),
                c("entry[\"x\"]"),
            )),
            Action::Update(Update::delete(
                "http://shop/stock",
                parse_query_term("item{{sku[[\"missing\"]]}}").unwrap(),
            )),
        ]);
        let before = qe.store.get("http://shop/ledger").unwrap().clone();
        let (r, _) = run(&a, &mut qe);
        assert!(r.is_err());
        assert_eq!(qe.store.get("http://shop/ledger").unwrap(), &before);
    }

    #[test]
    fn seq_rolls_back_outbox_and_log_too() {
        let mut qe = engine();
        let procs = BTreeMap::new();
        let mut ex = Executor::new(&mut qe, &procs);
        let a = Action::seq(vec![
            Action::send("http://x", c("m")),
            Action::Log(c("l")),
            Action::Fail("boom".into()),
        ]);
        assert!(ex.execute(&a, &Bindings::new()).is_err());
        assert!(ex.outbox.is_empty(), "unsent messages must not leak");
        assert!(ex.log.is_empty());
        assert_eq!(ex.stats.rollbacks, 1);
    }

    #[test]
    fn alt_takes_first_success() {
        let mut qe = engine();
        let a = Action::alt(vec![
            Action::Update(Update::delete(
                "http://shop/stock",
                parse_query_term("item{{sku[[\"missing\"]]}}").unwrap(),
            )),
            Action::Update(Update::set_attr(
                "http://shop/stock",
                parse_query_term("item{{sku[[\"b1\"]]}}").unwrap(),
                "flag",
                c("\"alt\""),
            )),
        ]);
        let (r, _) = run(&a, &mut qe);
        assert!(r.is_ok());
        let doc = qe.store.get("http://shop/stock").unwrap();
        assert_eq!(doc.children()[0].attr("flag"), Some("alt"));
    }

    #[test]
    fn alt_all_fail() {
        let mut qe = engine();
        let a = Action::alt(vec![Action::Fail("a".into()), Action::Fail("b".into())]);
        let (r, _) = run(&a, &mut qe);
        assert!(matches!(r, Err(ActionError::AllAlternativesFailed(_))));
    }

    #[test]
    fn failed_alternative_rolls_back_partially_executed_branch() {
        let mut qe = engine();
        let a = Action::alt(vec![
            Action::seq(vec![
                Action::Persist {
                    resource: "http://shop/archive".into(),
                    payload: c("attempt[\"1\"]"),
                },
                Action::Fail("late failure".into()),
            ]),
            Action::Noop,
        ]);
        let (r, _) = run(&a, &mut qe);
        assert!(r.is_ok());
        // The failed branch's persist must not have leaked.
        assert!(!qe.store.contains("http://shop/archive"));
    }

    #[test]
    fn if_branches_on_condition_and_passes_bindings() {
        let mut qe = engine();
        let a = Action::If {
            cond: parse_condition(
                "in \"http://shop/stock\" item{{sku[[var K]], qty[[var Q]]}} and var Q >= 5",
            )
            .unwrap(),
            then: Box::new(Action::Persist {
                resource: "http://shop/ok".into(),
                payload: c("instock[var K]"),
            }),
            else_: Some(Box::new(Action::Persist {
                resource: "http://shop/low".into(),
                payload: c("lowstock"),
            })),
        };
        let (r, _) = run(&a, &mut qe);
        r.unwrap();
        // qty 10 >= 5 → then-branch ran with K bound.
        let ok = qe.store.get("http://shop/ok").unwrap();
        assert!(ok.to_string().contains("instock[\"b1\"]"));
        assert!(!qe.store.contains("http://shop/low"));
    }

    #[test]
    fn procedures_bind_parameters_lexically() {
        let mut qe = engine();
        let mut procs = BTreeMap::new();
        procs.insert(
            "ship".to_string(),
            ProcedureDef::new(
                "ship",
                vec!["Order".into(), "Customer".into()],
                Action::seq(vec![
                    Action::Persist {
                        resource: "http://shop/shipments".into(),
                        payload: c("shipment{order[var Order], customer[var Customer]}"),
                    },
                    // A variable of the caller must NOT be visible here.
                    Action::Log(c("done[var Order]")),
                ]),
            ),
        );
        let caller = Bindings::of("O", Term::text("o9"));
        {
            let mut ex = Executor::new(&mut qe, &procs);
            ex.execute(
                &Action::Call {
                    name: "ship".into(),
                    args: vec![c("var O"), c("\"ann\"")],
                },
                &caller,
            )
            .unwrap();

            // Caller variables are not in scope inside the body.
            let bad = Action::Call {
                name: "ship".into(),
                args: vec![c("var O"), c("var Missing")],
            };
            assert!(ex.execute(&bad, &caller).is_err());
        }
        let doc = qe.store.get("http://shop/shipments").unwrap();
        assert!(doc
            .to_string()
            .contains("shipment{order[\"o9\"], customer[\"ann\"]}"));
    }

    #[test]
    fn unknown_procedure_and_arity() {
        let mut qe = engine();
        let procs = BTreeMap::new();
        let mut ex = Executor::new(&mut qe, &procs);
        assert!(matches!(
            ex.execute(
                &Action::Call {
                    name: "nope".into(),
                    args: vec![]
                },
                &Bindings::new()
            ),
            Err(ActionError::UnknownProcedure(_))
        ));
        let mut procs = BTreeMap::new();
        procs.insert(
            "p".to_string(),
            ProcedureDef::new("p", vec!["A".into()], Action::Noop),
        );
        let mut ex = Executor::new(&mut qe, &procs);
        assert!(matches!(
            ex.execute(
                &Action::Call {
                    name: "p".into(),
                    args: vec![]
                },
                &Bindings::new()
            ),
            Err(ActionError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn persist_creates_and_appends() {
        let mut qe = engine();
        let a = Action::seq(vec![
            Action::Persist {
                resource: "http://a/archive".into(),
                payload: c("entry[\"1\"]"),
            },
            Action::Persist {
                resource: "http://a/archive".into(),
                payload: c("entry[\"2\"]"),
            },
        ]);
        let (r, _) = run(&a, &mut qe);
        r.unwrap();
        let doc = qe.store.get("http://a/archive").unwrap();
        assert_eq!(doc.label(), Some("persisted"));
        assert_eq!(doc.children().len(), 2);
    }
}
