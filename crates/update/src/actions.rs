//! The action language: primitives and compounds (Thesis 8) plus
//! procedural abstraction (Thesis 9).

use std::fmt;

use reweb_query::{Condition, ConstructTerm};

use crate::update::Update;

/// An action — the `DO`/`THEN` part of an ECA rule.
#[derive(Clone, Debug, PartialEq)]
pub enum Action {
    /// Update persistent data (Thesis 8's "most important action").
    Update(Update),
    /// Raise an event towards another Web site (push, Thesis 3). The
    /// payload is constructed from the rule's bindings.
    Send {
        /// URI of the receiving node.
        to: String,
        /// Construct term instantiated into the event payload.
        payload: ConstructTerm,
    },
    /// Explicitly make (event) data persistent by appending it to a
    /// resource — Thesis 4: "if some data from an event must be stored
    /// indefinitely, it should explicitly be made persistent".
    /// Creates the resource (root `persisted[…]`) if missing.
    Persist {
        /// URI of the resource appended to (created if missing).
        resource: String,
        /// Construct term instantiated into the persisted entry.
        payload: ConstructTerm,
    },
    /// Append a constructed entry to the executor's log (accounting and
    /// debugging; Thesis 12 builds on this).
    Log(ConstructTerm),
    /// Transactional sequence: every local update commits, or none does.
    Seq(Vec<Action>),
    /// Alternatives: try in order until one succeeds (each attempt is
    /// atomic); fails if all fail.
    Alt(Vec<Action>),
    /// Branching inside actions (complements ECAA branching in rules).
    If {
        /// Condition deciding the branch.
        cond: Condition,
        /// Action when the condition has an answer.
        then: Box<Action>,
        /// Optional action when it has none.
        else_: Option<Box<Action>>,
    },
    /// Invoke a named procedure with constructed arguments (Thesis 9).
    Call {
        /// Name of the procedure ([`ProcedureDef::name`]).
        name: String,
        /// Positional arguments, instantiated before the call.
        args: Vec<ConstructTerm>,
    },
    /// Always fails — guard branches and failure injection in tests.
    Fail(String),
    /// Does nothing, successfully.
    Noop,
}

impl Action {
    /// Convenience: a transactional sequence.
    pub fn seq(actions: Vec<Action>) -> Action {
        Action::Seq(actions)
    }

    /// Convenience: ordered alternatives.
    pub fn alt(actions: Vec<Action>) -> Action {
        Action::Alt(actions)
    }

    /// Convenience: `SEND payload TO to`.
    pub fn send(to: impl Into<String>, payload: ConstructTerm) -> Action {
        Action::Send {
            to: to.into(),
            payload,
        }
    }

    /// Number of primitive actions in this tree (for stats/tests).
    pub fn primitive_count(&self) -> usize {
        match self {
            Action::Seq(xs) | Action::Alt(xs) => xs.iter().map(Action::primitive_count).sum(),
            Action::If { then, else_, .. } => {
                then.primitive_count() + else_.as_ref().map_or(0, |e| e.primitive_count())
            }
            _ => 1,
        }
    }
}

/// A named, parameterized action: defined once, shared by many rules
/// (Thesis 9: "a procedure mechanism … is clearly a better approach than
/// writing the same code in several rules").
#[derive(Clone, Debug, PartialEq)]
pub struct ProcedureDef {
    /// Name rules call the procedure by.
    pub name: String,
    /// Parameter variable names; arguments bind to these positionally.
    pub params: Vec<String>,
    /// The action executed per call, under the argument bindings.
    pub body: Action,
}

impl ProcedureDef {
    /// Define `PROCEDURE name(params) = body`.
    pub fn new(name: impl Into<String>, params: Vec<String>, body: Action) -> ProcedureDef {
        ProcedureDef {
            name: name.into(),
            params,
            body,
        }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Update(u) => write!(f, "UPDATE {u}"),
            Action::Send { to, payload } => write!(f, "SEND {payload} TO {to:?}"),
            Action::Persist { resource, payload } => {
                write!(f, "PERSIST {payload} IN {resource:?}")
            }
            Action::Log(p) => write!(f, "LOG {p}"),
            Action::Seq(xs) => {
                f.write_str("SEQ")?;
                for x in xs {
                    write!(f, " {x};")?;
                }
                f.write_str(" END")
            }
            Action::Alt(xs) => {
                f.write_str("ALT")?;
                for x in xs {
                    write!(f, " {x};")?;
                }
                f.write_str(" END")
            }
            Action::If { cond, then, else_ } => {
                write!(f, "IF {cond} THEN {then}")?;
                if let Some(e) = else_ {
                    write!(f, " ELSE {e}")?;
                }
                f.write_str(" END")
            }
            Action::Call { name, args } => {
                write!(f, "CALL {name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
            Action::Fail(msg) => write!(f, "FAIL {msg:?}"),
            Action::Noop => f.write_str("NOOP"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_count_walks_compounds() {
        let a = Action::seq(vec![
            Action::Noop,
            Action::alt(vec![Action::Fail("x".into()), Action::Noop]),
            Action::If {
                cond: Condition::always_true(),
                then: Box::new(Action::Noop),
                else_: Some(Box::new(Action::Noop)),
            },
        ]);
        assert_eq!(a.primitive_count(), 5);
    }

    #[test]
    fn display_shapes() {
        let a = Action::seq(vec![Action::Noop, Action::Fail("boom".into())]);
        assert_eq!(a.to_string(), "SEQ NOOP; FAIL \"boom\"; END");
    }
}
