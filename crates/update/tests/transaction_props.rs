//! Property tests for the action executor's transactional guarantees
//! (Thesis 8): a failed `SEQ` must leave no trace — not in the store, not
//! in the outbox, not in the log — no matter what succeeded before the
//! failure.

use proptest::prelude::*;
use std::collections::BTreeMap;

use reweb_query::parser::parse_construct_term;
use reweb_query::{Bindings, QueryEngine};
use reweb_term::{parse_term, Term};
use reweb_update::{Action, Executor};

/// A random primitive step: persist to one of three resources, send, log.
fn arb_step() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0..3u8, 0..100u32).prop_map(|(r, v)| Action::Persist {
            resource: format!("http://n/r{r}"),
            payload: parse_construct_term(&format!("entry[\"{v}\"]")).unwrap(),
        }),
        (0..100u32).prop_map(|v| Action::send(
            "http://other",
            parse_construct_term(&format!("msg[\"{v}\"]")).unwrap()
        )),
        (0..100u32)
            .prop_map(|v| Action::Log(parse_construct_term(&format!("log[\"{v}\"]")).unwrap())),
    ]
}

fn store_fingerprint(qe: &QueryEngine) -> Vec<(String, Term)> {
    qe.store
        .uris()
        .map(|u| (u.to_string(), qe.store.get(u).unwrap().clone()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A SEQ with a failure anywhere inside leaves the world untouched.
    #[test]
    fn failed_seq_is_invisible(
        prefix in proptest::collection::vec(arb_step(), 0..6),
        suffix in proptest::collection::vec(arb_step(), 0..3),
    ) {
        let mut qe = QueryEngine::new();
        qe.store.put("http://n/r0", parse_term("r[]").unwrap());
        let procs = BTreeMap::new();
        let mut ex = Executor::new(&mut qe, &procs);

        // Let some unrelated committed work happen first.
        ex.execute(
            &Action::Persist {
                resource: "http://n/r0".into(),
                payload: parse_construct_term("committed").unwrap(),
            },
            &Bindings::new(),
        )
        .unwrap();
        let outbox_before = ex.outbox.clone();
        let log_before = ex.log.clone();
        let store_before = store_fingerprint(ex.qe);

        // Now a SEQ that is guaranteed to fail.
        let mut steps = prefix.clone();
        steps.push(Action::Fail("injected".into()));
        steps.extend(suffix.clone());
        let r = ex.execute(&Action::Seq(steps), &Bindings::new());
        prop_assert!(r.is_err());

        prop_assert_eq!(store_fingerprint(ex.qe), store_before, "store leaked");
        prop_assert_eq!(&ex.outbox, &outbox_before, "outbox leaked");
        prop_assert_eq!(&ex.log, &log_before, "log leaked");
    }

    /// A successful SEQ applies *all* its steps, in order.
    #[test]
    fn successful_seq_applies_everything(
        steps in proptest::collection::vec(arb_step(), 0..8),
    ) {
        let mut qe = QueryEngine::new();
        let procs = BTreeMap::new();
        let mut ex = Executor::new(&mut qe, &procs);
        let expected_persists = steps
            .iter()
            .filter(|a| matches!(a, Action::Persist { .. }))
            .count();
        let expected_sends = steps
            .iter()
            .filter(|a| matches!(a, Action::Send { .. }))
            .count();
        let expected_logs = steps
            .iter()
            .filter(|a| matches!(a, Action::Log(_)))
            .count();
        ex.execute(&Action::Seq(steps), &Bindings::new()).unwrap();
        let persisted: usize = ex
            .qe
            .store
            .uris()
            .map(|u| ex.qe.store.get(u).unwrap().children().len())
            .sum();
        prop_assert_eq!(persisted, expected_persists);
        prop_assert_eq!(ex.outbox.len(), expected_sends);
        prop_assert_eq!(ex.log.len(), expected_logs);
    }

    /// ALT behaves like its first succeeding branch, and a failing branch
    /// attempt never leaks partial effects into the winner's world.
    #[test]
    fn alt_equals_first_success(
        failing in proptest::collection::vec(arb_step(), 1..4),
        winning in proptest::collection::vec(arb_step(), 0..4),
    ) {
        // Branch 1: effects then failure. Branch 2: the winner.
        let mut qe1 = QueryEngine::new();
        let procs = BTreeMap::new();
        let mut ex1 = Executor::new(&mut qe1, &procs);
        let mut branch1 = failing.clone();
        branch1.push(Action::Fail("nope".into()));
        ex1.execute(
            &Action::Alt(vec![Action::Seq(branch1), Action::Seq(winning.clone())]),
            &Bindings::new(),
        )
        .unwrap();

        // Reference: just the winner.
        let mut qe2 = QueryEngine::new();
        let mut ex2 = Executor::new(&mut qe2, &procs);
        ex2.execute(&Action::Seq(winning), &Bindings::new()).unwrap();

        prop_assert_eq!(store_fingerprint(ex1.qe), store_fingerprint(ex2.qe));
        prop_assert_eq!(ex1.outbox, ex2.outbox);
        prop_assert_eq!(ex1.log, ex2.log);
    }
}
