//! Meta-programming: rules as data (Thesis 11).
//!
//! > "In meta-programming, programs can 'have other programs as data and
//! > exploit their semantics'. A particular form … is meta-circularity,
//! > where the same language is used on both levels."
//!
//! Rules and rule sets *reify* to terms — ordinary data that can travel in
//! event messages, be stored in resources, and be queried with the same
//! query language as everything else — and *reflect* back into executable
//! rules. The parts (event queries, conditions, actions) are carried as
//! their textual form, which the receiving engine parses with the very
//! parser it uses for its own rules: the two levels genuinely share one
//! language.
//!
//! The wire shape:
//!
//! ```text
//! ruleset{ name["shop"],
//!          procedure{ name["ship"], params[p["Order"], p["Customer"]], body["SEQ …"] },
//!          view{ uri["view://good"], head["good[var C]"], from["in …"] },
//!          detect{ head["big{…}"], on["order{{…}}"] },
//!          rule{ name["on_payment"], on["and(…)"],
//!                branch{ cond["in …"], action["CALL ship(…)"] },
//!                branch{ cond["true"], action["SEND …"] } },
//!          ruleset{ … } }
//! ```
//!
//! [`crate::ReactiveEngine`] installs rule sets arriving as
//! `install_rules[ ruleset{…} ]` messages, gated by the `InstallRules`
//! permission (Thesis 12 guarding Thesis 11).

use reweb_events::parse_event_query;
use reweb_query::parser::{parse_condition, parse_construct_term};
use reweb_query::DeductiveRule;
use reweb_term::{Term, TermError};
use reweb_update::ProcedureDef;

use crate::parser::parse_action;
use crate::rule::{Branch, EcaRule, RuleSet};

/// Reify a rule as a term.
pub fn rule_to_term(r: &EcaRule) -> Term {
    let mut b = Term::build("rule")
        .unordered()
        .field("name", &r.name)
        .field("on", r.on.to_string());
    for br in &r.branches {
        b = b.child(
            Term::build("branch")
                .field("cond", br.cond.to_string())
                .field("action", br.action.to_string())
                .finish(),
        );
    }
    b.finish()
}

fn field_text(t: &Term, name: &str) -> Result<String, TermError> {
    t.children()
        .iter()
        .find(|c| c.label() == Some(name))
        .map(|c| c.text_content())
        .ok_or_else(|| TermError::InvalidEdit(format!("missing `{name}` in {}", t)))
}

/// Reflect a rule term back into an executable rule.
pub fn rule_from_term(t: &Term) -> Result<EcaRule, TermError> {
    if t.label() != Some("rule") {
        return Err(TermError::InvalidEdit(format!(
            "expected rule{{…}}, got {t}"
        )));
    }
    let name = field_text(t, "name")?;
    let on = parse_event_query(&field_text(t, "on")?)?;
    let mut branches = Vec::new();
    for c in t.children().iter().filter(|c| c.label() == Some("branch")) {
        branches.push(Branch {
            cond: parse_condition(&field_text(c, "cond")?)?,
            action: parse_action(&field_text(c, "action")?)?,
        });
    }
    if branches.is_empty() {
        return Err(TermError::InvalidEdit(format!(
            "rule `{name}` has no branches"
        )));
    }
    Ok(EcaRule { name, on, branches })
}

/// Reify a rule set (recursively) as a term.
pub fn ruleset_to_term(s: &RuleSet) -> Term {
    let mut b = Term::build("ruleset").unordered().field("name", &s.name);
    for p in &s.procedures {
        b = b.child(
            Term::build("procedure")
                .field("name", &p.name)
                .child(
                    Term::build("params")
                        .children(
                            p.params
                                .iter()
                                .map(|x| Term::ordered("p", vec![Term::text(x.clone())])),
                        )
                        .finish(),
                )
                .field("body", p.body.to_string())
                .finish(),
        );
    }
    for (uri, v) in &s.views {
        b = b.child(
            Term::build("view")
                .field("uri", uri)
                .field("head", v.head.to_string())
                .field("from", v.body.to_string())
                .finish(),
        );
    }
    for er in &s.event_rules {
        b = b.child(
            Term::build("detect")
                .field("name", &er.name)
                .field("head", er.head.to_string())
                .field("on", er.on.to_string())
                .finish(),
        );
    }
    for r in &s.rules {
        b = b.child(rule_to_term(r));
    }
    for c in &s.children {
        b = b.child(ruleset_to_term(c));
    }
    b.finish()
}

/// Reflect a rule-set term back into a rule set (enabled).
pub fn ruleset_from_term(t: &Term) -> Result<RuleSet, TermError> {
    if t.label() != Some("ruleset") {
        return Err(TermError::InvalidEdit(format!(
            "expected ruleset{{…}}, got {t}"
        )));
    }
    let mut s = RuleSet::new(field_text(t, "name")?);
    for c in t.children() {
        match c.label() {
            Some("procedure") => {
                let name = field_text(c, "name")?;
                let params = c
                    .children()
                    .iter()
                    .find(|x| x.label() == Some("params"))
                    .map(|ps| {
                        ps.children()
                            .iter()
                            .map(|p| p.text_content())
                            .collect::<Vec<_>>()
                    })
                    .unwrap_or_default();
                let body = parse_action(&field_text(c, "body")?)?;
                s.procedures.push(ProcedureDef::new(name, params, body));
            }
            Some("view") => {
                let uri = field_text(c, "uri")?;
                let head = parse_construct_term(&field_text(c, "head")?)?;
                let body = parse_condition(&field_text(c, "from")?)?;
                s.views.push((uri, DeductiveRule::new(head, body)));
            }
            Some("detect") => {
                let name = field_text(c, "name")?;
                let head = parse_construct_term(&field_text(c, "head")?)?;
                let on = parse_event_query(&field_text(c, "on")?)?;
                s.event_rules
                    .push(reweb_events::EventRule::new(name, head, on));
            }
            Some("rule") => s.rules.push(rule_from_term(c)?),
            Some("ruleset") => s.children.push(ruleset_from_term(c)?),
            Some("name") => {}
            other => {
                return Err(TermError::InvalidEdit(format!(
                    "unexpected item in ruleset term: {other:?}"
                )))
            }
        }
    }
    Ok(s)
}

/// Build the `install_rules[ … ]` message payload carrying a rule set.
pub fn install_rules_payload(s: &RuleSet) -> Term {
    Term::ordered("install_rules", vec![ruleset_to_term(s)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    const PROGRAM: &str = r#"
        RULESET shop
          PROCEDURE ship(Order) DO SEND s{o[var Order]} TO "http://mail" END
          VIEW "view://good" CONSTRUCT good[var C]
            FROM in "http://c" customer{{id[[var C]]}} END
          DETECT big{id[var O]} ON order{{id[[var O]], total[[var T]]}} where var T >= 100 END
          RULE on_big ON big{{id[[var O]]}}
            IF in "view://good" good[[var O]] THEN CALL ship(var O)
            ELSE LOG skipped[var O]
          END
          RULESET inner
            RULE r2 ON ping DO NOOP END
          END
        END
    "#;

    #[test]
    fn ruleset_roundtrips_through_terms() {
        let set = parse_program(PROGRAM).unwrap();
        let term = ruleset_to_term(&set);
        let back = ruleset_from_term(&term).unwrap();
        assert_eq!(set, back);
    }

    #[test]
    fn rule_roundtrip() {
        let set = parse_program(PROGRAM).unwrap();
        let r = &set.rules[0];
        let back = rule_from_term(&rule_to_term(r)).unwrap();
        assert_eq!(r, &back);
    }

    #[test]
    fn reified_rules_are_queryable() {
        // The point of reification over opaque source strings: other rules
        // can *query* the rule base with the ordinary query language.
        use reweb_query::{match_anywhere, parse_query_term, Bindings};
        let set = parse_program(PROGRAM).unwrap();
        let term = ruleset_to_term(&set);
        let hits = match_anywhere(
            &parse_query_term("rule{{name[[var N]]}}").unwrap(),
            &term,
            &Bindings::new(),
        );
        let names: Vec<String> = hits
            .iter()
            .map(|m| m.bindings.get("N").unwrap().text_content())
            .collect();
        assert_eq!(names, vec!["on_big", "r2"]);
    }

    #[test]
    fn malformed_terms_are_rejected() {
        assert!(rule_from_term(&Term::elem("not_a_rule")).is_err());
        assert!(ruleset_from_term(&Term::elem("rule")).is_err());
        // Rule without branches.
        let t = Term::build("rule")
            .field("name", "r")
            .field("on", "ping")
            .finish();
        assert!(rule_from_term(&t).is_err());
        // Unknown item inside a ruleset.
        let t = Term::build("ruleset")
            .field("name", "s")
            .child(Term::elem("mystery"))
            .finish();
        assert!(ruleset_from_term(&t).is_err());
    }

    #[test]
    fn install_payload_shape() {
        let set = parse_program("RULE r ON ping DO NOOP END").unwrap();
        let p = install_rules_payload(&set);
        assert_eq!(p.label(), Some("install_rules"));
        assert_eq!(p.children().len(), 1);
        assert_eq!(p.children()[0].label(), Some("ruleset"));
    }
}
