//! ECA rules with branching, and rule sets with scoping (Thesis 9).
//!
//! A rule has the shape `ON event [WHERE …] branches`, where the branches
//! generalize the three forms the thesis names:
//!
//! * plain **ECA**: one branch with a condition (or `DO` = trivially true);
//! * **ECAA** ("on E if C do A1 else A2"): a conditioned branch plus an
//!   else-branch — the condition is evaluated *once*, not twice as with a
//!   `C`/`¬C` rule pair (experiment E9 measures exactly this);
//! * **ECnAn**: a chain of condition/action pairs, first match fires.
//!
//! [`RuleSet`]s group rules, nest, can be disabled as a unit, and act as
//! scopes: procedures, views, and DETECT rules defined in a set are
//! visible to that set's rules and its descendants, with inner definitions
//! shadowing outer ones ("rule sets could introduce scopes for
//! identifiers").

use std::fmt;

use reweb_events::{EventQuery, EventRule};
use reweb_query::{Condition, DeductiveRule};
use reweb_update::{Action, ProcedureDef};

/// One condition/action pair of a rule.
#[derive(Clone, Debug, PartialEq)]
pub struct Branch {
    /// `Condition::always_true()` for `DO`/`ELSE` branches.
    pub cond: Condition,
    /// The action executed when the condition holds.
    pub action: Action,
}

/// A reactive rule: `RULE name ON event (IF c THEN a)… (ELSE a)? END`.
#[derive(Clone, Debug, PartialEq)]
pub struct EcaRule {
    /// The rule's name (metrics and error messages refer to it).
    pub name: String,
    /// The event query triggering this rule.
    pub on: EventQuery,
    /// Evaluated in order; the first branch whose condition holds fires.
    pub branches: Vec<Branch>,
}

impl EcaRule {
    /// Plain ECA rule: `ON event IF cond DO action`.
    pub fn new(name: impl Into<String>, on: EventQuery, cond: Condition, action: Action) -> Self {
        EcaRule {
            name: name.into(),
            on,
            branches: vec![Branch { cond, action }],
        }
    }

    /// `ON event DO action` (condition trivially true).
    pub fn on_do(name: impl Into<String>, on: EventQuery, action: Action) -> Self {
        EcaRule::new(name, on, Condition::always_true(), action)
    }

    /// ECAA rule: `ON event IF cond THEN a1 ELSE a2`.
    pub fn ecaa(
        name: impl Into<String>,
        on: EventQuery,
        cond: Condition,
        then: Action,
        else_: Action,
    ) -> Self {
        EcaRule {
            name: name.into(),
            on,
            branches: vec![
                Branch { cond, action: then },
                Branch {
                    cond: Condition::always_true(),
                    action: else_,
                },
            ],
        }
    }

    /// Append another `ELSEIF cond THEN action` branch.
    pub fn with_branch(mut self, cond: Condition, action: Action) -> Self {
        self.branches.push(Branch { cond, action });
        self
    }
}

impl fmt::Display for EcaRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "RULE {}", self.name)?;
        writeln!(f, "  ON {}", self.on)?;
        // `DO` only fits a single-branch rule; in a chain, a trivially
        // true branch prints as `IF true THEN` (non-final) or `ELSE`
        // (final) so the printed form stays inside the grammar.
        if self.branches.len() == 1 && self.branches[0].cond.is_trivial() {
            writeln!(f, "  DO {}", self.branches[0].action)?;
        } else {
            let last = self.branches.len() - 1;
            for (i, b) in self.branches.iter().enumerate() {
                if i == 0 {
                    writeln!(f, "  IF {} THEN {}", b.cond, b.action)?;
                } else if i == last && b.cond.is_trivial() {
                    writeln!(f, "  ELSE {}", b.action)?;
                } else {
                    writeln!(f, "  ELSEIF {} THEN {}", b.cond, b.action)?;
                }
            }
        }
        write!(f, "END")
    }
}

/// A named group of rules and scoped definitions.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RuleSet {
    /// The set's name (a path segment for [`RuleSet::find_mut`]).
    pub name: String,
    /// Disabled sets (and everything below them) are skipped at install.
    pub enabled: bool,
    /// The set's own rules.
    pub rules: Vec<EcaRule>,
    /// Nested rule sets.
    pub children: Vec<RuleSet>,
    /// Procedures scoped to this set and its descendants.
    pub procedures: Vec<ProcedureDef>,
    /// Views: (URI, rule) pairs registered with the local query engine.
    pub views: Vec<(String, DeductiveRule)>,
    /// DETECT rules deriving higher-level events.
    pub event_rules: Vec<EventRule>,
}

impl RuleSet {
    /// An empty, enabled rule set.
    pub fn new(name: impl Into<String>) -> RuleSet {
        RuleSet {
            name: name.into(),
            enabled: true,
            ..RuleSet::default()
        }
    }

    /// Append a rule (builder style).
    pub fn with_rule(mut self, r: EcaRule) -> RuleSet {
        self.rules.push(r);
        self
    }

    /// Append a nested set (builder style).
    pub fn with_child(mut self, c: RuleSet) -> RuleSet {
        self.children.push(c);
        self
    }

    /// Append a scoped procedure (builder style).
    pub fn with_procedure(mut self, p: ProcedureDef) -> RuleSet {
        self.procedures.push(p);
        self
    }

    /// Append a scoped view (builder style).
    pub fn with_view(mut self, uri: impl Into<String>, rule: DeductiveRule) -> RuleSet {
        self.views.push((uri.into(), rule));
        self
    }

    /// Append a scoped DETECT rule (builder style).
    pub fn with_event_rule(mut self, r: EventRule) -> RuleSet {
        self.event_rules.push(r);
        self
    }

    /// Mark the set disabled (skipped at install).
    pub fn disabled(mut self) -> RuleSet {
        self.enabled = false;
        self
    }

    /// Total number of rules, including nested sets (enabled or not).
    pub fn rule_count(&self) -> usize {
        self.rules.len() + self.children.iter().map(RuleSet::rule_count).sum::<usize>()
    }

    /// Find a nested rule set by dotted path (`"shop.orders"`), for
    /// enabling/disabling groups at runtime.
    pub fn find_mut(&mut self, path: &str) -> Option<&mut RuleSet> {
        let (head, rest) = match path.split_once('.') {
            Some((h, r)) => (h, Some(r)),
            None => (path, None),
        };
        if head != self.name {
            return None;
        }
        match rest {
            None => Some(self),
            Some(rest) => self.children.iter_mut().find_map(|c| c.find_mut(rest)),
        }
    }
}

impl fmt::Display for RuleSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "RULESET {}", self.name)?;
        for p in &self.procedures {
            writeln!(
                f,
                "PROCEDURE {}({}) DO {} END",
                p.name,
                p.params.join(", "),
                p.body
            )?;
        }
        for (uri, v) in &self.views {
            writeln!(f, "VIEW {uri:?} CONSTRUCT {} FROM {} END", v.head, v.body)?;
        }
        for er in &self.event_rules {
            writeln!(f, "DETECT {} ON {} END", er.head, er.on)?;
        }
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        for c in &self.children {
            writeln!(f, "{c}")?;
        }
        write!(f, "END")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reweb_events::parse_event_query;
    use reweb_query::parser::parse_condition;

    fn sample_rule(name: &str) -> EcaRule {
        EcaRule::ecaa(
            name,
            parse_event_query("a{{v[[var X]]}}").unwrap(),
            parse_condition("var X >= 1").unwrap(),
            Action::Noop,
            Action::Fail("else".into()),
        )
    }

    #[test]
    fn ecaa_has_two_branches_with_trivial_else() {
        let r = sample_rule("r");
        assert_eq!(r.branches.len(), 2);
        assert!(!r.branches[0].cond.is_trivial());
        assert!(r.branches[1].cond.is_trivial());
    }

    #[test]
    fn ecnan_chain() {
        let r = sample_rule("r").with_branch(parse_condition("var X >= 0").unwrap(), Action::Noop);
        assert_eq!(r.branches.len(), 3);
    }

    #[test]
    fn ruleset_counts_and_paths() {
        let mut root = RuleSet::new("shop").with_rule(sample_rule("a")).with_child(
            RuleSet::new("orders")
                .with_rule(sample_rule("b"))
                .with_rule(sample_rule("c")),
        );
        assert_eq!(root.rule_count(), 3);
        assert!(root.find_mut("shop.orders").is_some());
        assert!(root.find_mut("shop.payments").is_none());
        assert!(root.find_mut("orders").is_none());
        root.find_mut("shop.orders").unwrap().enabled = false;
        assert!(!root.children[0].enabled);
    }

    #[test]
    fn display_has_rule_shape() {
        let r = sample_rule("on_a");
        let s = r.to_string();
        assert!(s.starts_with("RULE on_a"));
        assert!(s.contains("ON a{{v[[var X]]}}"));
        assert!(s.contains("IF var X >= 1 THEN NOOP"));
        assert!(s.contains("ELSE FAIL \"else\""));
        assert!(s.ends_with("END"));
    }
}
