//! Authentication, authorization, accounting (Thesis 12).
//!
//! > "Reactivity in the Web's open and uncontrolled world requires
//! > language support for authentication, authorization, and accounting."
//!
//! These are *non-functional* requirements, so the engine provides them as
//! configuration rather than as rule code:
//!
//! * **Authentication** — principals registered with a salted credential
//!   hash (FNV-based; simulation-grade by design — the thesis asks for
//!   *language support*, not cryptography, and no crypto crates are in the
//!   dependency budget).
//! * **Authorization** — an ACL granting permissions (receive events by
//!   label, query/update resources, install rules) to principals or roles.
//! * **Accounting** — the dynamic one: every service request is recorded,
//!   counted per principal, and (optionally) re-raised as an
//!   `accounting{…}` event into the *same* engine — the thesis's "double
//!   reactivity". Accounting events are themselves exempt from accounting,
//!   which is why no meta-programming is needed (the axes stay orthogonal,
//!   as the thesis observes).

use std::collections::BTreeMap;
use std::fmt;

use reweb_term::{fnv1a, Term, Timestamp};

/// Credentials presented in a message envelope.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Credentials {
    /// The principal claiming to send the message.
    pub principal: String,
    /// The shared secret proving it.
    pub secret: String,
}

/// Transport-level metadata accompanying a received payload.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MessageMeta {
    /// Sender URI (`"local"` for internally raised events).
    pub from: String,
    /// Credentials presented by the sender, if any.
    pub credentials: Option<Credentials>,
}

impl MessageMeta {
    /// Metadata for an internally raised event (`from = "local"`).
    pub fn local() -> MessageMeta {
        MessageMeta {
            from: "local".into(),
            ..MessageMeta::default()
        }
    }

    /// Metadata for a message from `uri`, without credentials.
    pub fn from_uri(uri: impl Into<String>) -> MessageMeta {
        MessageMeta {
            from: uri.into(),
            ..MessageMeta::default()
        }
    }

    /// Attach credentials to this metadata.
    pub fn with_credentials(
        mut self,
        principal: impl Into<String>,
        secret: impl Into<String>,
    ) -> Self {
        self.credentials = Some(Credentials {
            principal: principal.into(),
            secret: secret.into(),
        });
        self
    }
}

/// A registered principal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Principal {
    /// The principal's name.
    pub name: String,
    salted_hash: u64,
    /// Roles the principal holds (ACL grants may name roles).
    pub roles: Vec<String>,
}

fn salted(principal: &str, secret: &str) -> u64 {
    fnv1a(format!("reweb-salt:{principal}:{secret}").as_bytes())
}

/// A grantable permission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Permission {
    /// Receive (and thus trigger rules with) events of this payload label;
    /// `"*"` = any label.
    ReceiveEvent(String),
    /// Query a resource (by URI; `"*"` = any).
    QueryResource(String),
    /// Update a resource (by URI; `"*"` = any).
    UpdateResource(String),
    /// Install rules received as messages (Thesis 11 integration).
    InstallRules,
}

/// Access control list: grants of permissions to principals or roles.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Acl {
    grants: Vec<(String, Permission)>,
}

impl Acl {
    /// An empty ACL (nothing granted).
    pub fn new() -> Acl {
        Acl::default()
    }

    /// Grant `perm` to a principal name, role name, or `"*"` (everyone).
    pub fn grant(&mut self, who: impl Into<String>, perm: Permission) {
        self.grants.push((who.into(), perm));
    }

    fn matches(perm: &Permission, wanted: &Permission) -> bool {
        match (perm, wanted) {
            (Permission::ReceiveEvent(a), Permission::ReceiveEvent(b)) => a == "*" || a == b,
            (Permission::QueryResource(a), Permission::QueryResource(b)) => a == "*" || a == b,
            (Permission::UpdateResource(a), Permission::UpdateResource(b)) => a == "*" || a == b,
            (Permission::InstallRules, Permission::InstallRules) => true,
            _ => false,
        }
    }

    /// Does `who` (with `roles`) hold `wanted`?
    pub fn allows(&self, who: &str, roles: &[String], wanted: &Permission) -> bool {
        self.grants.iter().any(|(g, p)| {
            (g == "*" || g == who || roles.iter().any(|r| r == g)) && Acl::matches(p, wanted)
        })
    }
}

/// AAA configuration of one engine.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AaaConfig {
    /// Reject unauthenticated or unknown senders.
    pub require_auth: bool,
    /// Enforce the ACL on received events.
    pub authorize: bool,
    /// Record accounting entries and usage counters.
    pub accounting: bool,
    /// Additionally re-raise each accounting record as an `accounting{…}`
    /// event into the engine (double reactivity).
    pub accounting_events: bool,
}

/// One accounting log entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccountingRecord {
    /// When the request was admitted or denied.
    pub time: Timestamp,
    /// The (authenticated or anonymous) principal.
    pub principal: String,
    /// What was requested, e.g. `"receive"`.
    pub action: String,
    /// Action detail, e.g. the event label.
    pub detail: String,
    /// Whether admission succeeded.
    pub allowed: bool,
}

impl AccountingRecord {
    /// Render as an `accounting{…}` event payload.
    pub fn to_event_payload(&self) -> Term {
        Term::build("accounting")
            .unordered()
            .field("principal", &self.principal)
            .field("action", &self.action)
            .field("detail", &self.detail)
            .field("allowed", if self.allowed { "true" } else { "false" })
            .field("at", self.time.millis().to_string())
            .finish()
    }
}

/// Per-principal usage counters (the basis for pay-per-use billing).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Usage {
    /// Messages admitted for this principal.
    pub messages: u64,
    /// Total payload bytes admitted.
    pub bytes: u64,
    /// Messages denied.
    pub denied: u64,
}

/// The AAA state of one engine.
#[derive(Clone, Debug, Default)]
pub struct Aaa {
    /// Which of the three A's are enforced.
    pub config: AaaConfig,
    principals: BTreeMap<String, Principal>,
    /// The access control list consulted when `config.authorize` is set.
    pub acl: Acl,
    /// The accounting log (when `config.accounting` is set).
    pub records: Vec<AccountingRecord>,
    usage: BTreeMap<String, Usage>,
}

/// Outcome of admission control for one message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Admission {
    /// Authenticated principal, or `"anonymous"`.
    pub principal: String,
    /// Whether the message may trigger rules.
    pub allowed: bool,
    /// Human-readable denial reason (empty when allowed).
    pub reason: String,
}

impl Aaa {
    /// AAA state with the given enforcement configuration.
    pub fn new(config: AaaConfig) -> Aaa {
        Aaa {
            config,
            ..Aaa::default()
        }
    }

    /// Register a principal with a secret and roles.
    pub fn register(&mut self, name: impl Into<String>, secret: &str, roles: Vec<String>) {
        let name = name.into();
        let salted_hash = salted(&name, secret);
        self.principals.insert(
            name.clone(),
            Principal {
                name,
                salted_hash,
                roles,
            },
        );
    }

    fn authenticate(&self, creds: Option<&Credentials>) -> Result<String, String> {
        match creds {
            None => {
                if self.config.require_auth {
                    Err("authentication required".into())
                } else {
                    Ok("anonymous".into())
                }
            }
            Some(c) => match self.principals.get(&c.principal) {
                None => Err(format!("unknown principal `{}`", c.principal)),
                Some(p) => {
                    if p.salted_hash == salted(&p.name, &c.secret) {
                        Ok(p.name.clone())
                    } else {
                        Err(format!("bad credentials for `{}`", c.principal))
                    }
                }
            },
        }
    }

    fn roles_of(&self, principal: &str) -> Vec<String> {
        self.principals
            .get(principal)
            .map(|p| p.roles.clone())
            .unwrap_or_default()
    }

    /// Admission control for a received event; records accounting.
    /// Returns the admission outcome and, when `accounting_events` is on
    /// and this message is itself accountable, the accounting payload to
    /// re-raise.
    pub fn admit(
        &mut self,
        meta: &MessageMeta,
        payload_label: &str,
        payload_bytes: usize,
        now: Timestamp,
    ) -> (Admission, Option<Term>) {
        let admission = match self.authenticate(meta.credentials.as_ref()) {
            Err(reason) => Admission {
                principal: meta
                    .credentials
                    .as_ref()
                    .map(|c| c.principal.clone())
                    .unwrap_or_else(|| "anonymous".into()),
                allowed: false,
                reason,
            },
            Ok(principal) => {
                let authorized = !self.config.authorize
                    || self.acl.allows(
                        &principal,
                        &self.roles_of(&principal),
                        &Permission::ReceiveEvent(payload_label.to_string()),
                    );
                Admission {
                    principal,
                    allowed: authorized,
                    reason: if authorized {
                        "ok".into()
                    } else {
                        format!("not authorized to send `{payload_label}`")
                    },
                }
            }
        };

        // Accounting — but never account the accounting events themselves
        // (that keeps the two axes of reactivity orthogonal).
        let mut event = None;
        if self.config.accounting && payload_label != "accounting" {
            let rec = AccountingRecord {
                time: now,
                principal: admission.principal.clone(),
                action: "receive".into(),
                detail: payload_label.to_string(),
                allowed: admission.allowed,
            };
            let usage = self.usage.entry(admission.principal.clone()).or_default();
            if admission.allowed {
                usage.messages += 1;
                usage.bytes += payload_bytes as u64;
            } else {
                usage.denied += 1;
            }
            if self.config.accounting_events {
                event = Some(rec.to_event_payload());
            }
            self.records.push(rec);
        }
        (admission, event)
    }

    /// Check a non-event permission (rule installation, resource access).
    pub fn check(&self, principal: &str, wanted: &Permission) -> bool {
        if !self.config.authorize {
            return true;
        }
        self.acl
            .allows(principal, &self.roles_of(principal), wanted)
    }

    /// Usage counters accumulated for `principal`.
    pub fn usage(&self, principal: &str) -> Usage {
        self.usage.get(principal).copied().unwrap_or_default()
    }

    /// A pay-per-use billing report: one entry per principal with message
    /// and byte counts and a cost at the given price per message.
    pub fn billing_report(&self, price_per_message: f64) -> Term {
        Term::build("billing")
            .children(self.usage.iter().map(|(p, u)| {
                Term::build("account")
                    .field("principal", p)
                    .field("messages", u.messages.to_string())
                    .field("bytes", u.bytes.to_string())
                    .field("denied", u.denied.to_string())
                    .field(
                        "cost",
                        format!("{:.2}", u.messages as f64 * price_per_message),
                    )
                    .finish()
            }))
            .finish()
    }
}

impl fmt::Display for AccountingRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} {} {} ({})",
            self.time,
            self.principal,
            self.action,
            self.detail,
            if self.allowed { "allowed" } else { "DENIED" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aaa_full() -> Aaa {
        let mut a = Aaa::new(AaaConfig {
            require_auth: true,
            authorize: true,
            accounting: true,
            accounting_events: true,
        });
        a.register("franz", "secret123", vec!["customer".into()]);
        a.acl
            .grant("customer", Permission::ReceiveEvent("order".into()));
        a
    }

    fn meta(principal: &str, secret: &str) -> MessageMeta {
        MessageMeta::from_uri("http://client").with_credentials(principal, secret)
    }

    #[test]
    fn authentication_accepts_and_rejects() {
        let mut a = aaa_full();
        let (adm, _) = a.admit(&meta("franz", "secret123"), "order", 10, Timestamp(1));
        assert!(adm.allowed);
        assert_eq!(adm.principal, "franz");

        let (adm, _) = a.admit(&meta("franz", "wrong"), "order", 10, Timestamp(2));
        assert!(!adm.allowed);
        let (adm, _) = a.admit(&meta("mallory", "x"), "order", 10, Timestamp(3));
        assert!(!adm.allowed);
        // Missing credentials with require_auth.
        let (adm, _) = a.admit(
            &MessageMeta::from_uri("http://x"),
            "order",
            10,
            Timestamp(4),
        );
        assert!(!adm.allowed);
    }

    #[test]
    fn authorization_by_role_and_label() {
        let mut a = aaa_full();
        // franz (role customer) may send `order` but not `admin_cmd`.
        let (adm, _) = a.admit(&meta("franz", "secret123"), "admin_cmd", 5, Timestamp(1));
        assert!(!adm.allowed);
        assert!(adm.reason.contains("not authorized"));
        // Wildcard grant opens everything.
        a.acl.grant("franz", Permission::ReceiveEvent("*".into()));
        let (adm, _) = a.admit(&meta("franz", "secret123"), "admin_cmd", 5, Timestamp(2));
        assert!(adm.allowed);
    }

    #[test]
    fn accounting_records_and_counters() {
        let mut a = aaa_full();
        a.admit(&meta("franz", "secret123"), "order", 100, Timestamp(1));
        a.admit(&meta("franz", "secret123"), "order", 50, Timestamp(2));
        a.admit(&meta("franz", "secret123"), "admin_cmd", 10, Timestamp(3));
        assert_eq!(a.records.len(), 3);
        let u = a.usage("franz");
        assert_eq!(u.messages, 2);
        assert_eq!(u.bytes, 150);
        assert_eq!(u.denied, 1);
    }

    #[test]
    fn accounting_event_emitted_but_not_for_accounting() {
        let mut a = aaa_full();
        let (_, ev) = a.admit(&meta("franz", "secret123"), "order", 10, Timestamp(1));
        let ev = ev.expect("accounting event");
        assert_eq!(ev.label(), Some("accounting"));
        // Accounting of accounting is suppressed (no infinite regress).
        let (_, ev2) = a.admit(&meta("franz", "secret123"), "accounting", 10, Timestamp(2));
        assert!(ev2.is_none());
        assert_eq!(a.records.len(), 1);
    }

    #[test]
    fn billing_report_shape() {
        let mut a = aaa_full();
        a.admit(&meta("franz", "secret123"), "order", 100, Timestamp(1));
        let report = a.billing_report(0.05);
        assert_eq!(report.label(), Some("billing"));
        let acct = &report.children()[0];
        assert!(acct.to_string().contains("principal[\"franz\"]"));
        assert!(acct.to_string().contains("cost[\"0.05\"]"));
    }

    #[test]
    fn anonymous_allowed_when_auth_not_required() {
        let mut a = Aaa::new(AaaConfig::default());
        let (adm, _) = a.admit(
            &MessageMeta::from_uri("http://x"),
            "anything",
            1,
            Timestamp(1),
        );
        assert!(adm.allowed);
        assert_eq!(adm.principal, "anonymous");
    }

    #[test]
    fn check_permission_for_rule_install() {
        let mut a = aaa_full();
        assert!(!a.check("franz", &Permission::InstallRules));
        a.acl.grant("franz", Permission::InstallRules);
        assert!(a.check("franz", &Permission::InstallRules));
        // With authorization off, everything is allowed.
        let open = Aaa::new(AaaConfig::default());
        assert!(open.check("anyone", &Permission::InstallRules));
    }
}
