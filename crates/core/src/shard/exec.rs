//! Thread-per-shard execution backend for [`super::ShardedEngine`].
//!
//! The serial backend processes every shard inside the caller's thread;
//! this module adds a `WorkerPool` — one long-lived OS thread per
//! shard — so `receive_batch` actually exploits hardware parallelism
//! (the ROADMAP's "thread per shard inside `receive_batch`" step).
//!
//! ## Ownership protocol
//!
//! Workers own no state between batches. The [`super::ShardedEngine`] keeps its
//! [`ReactiveEngine`] shards on the main thread — so `shards()`,
//! `for_each_shard`, `install`, `put_resource`, and `metrics` work
//! identically in both exec modes — and *moves* each engine to its
//! worker over a channel for the duration of one batch segment. The
//! worker processes its slice, then moves the engine back together with
//! its tagged outputs. Moving an engine is a pointer-sized memcpy (it is
//! boxed); the payloads inside are `Arc`-backed terms, so nothing deep
//! is copied across threads.
//!
//! ## Deterministic merge
//!
//! The serial backend appends outputs in a fixed order: for each message
//! `k` in batch order, first the absence-deadline firings of every shard
//! with a due timer (in shard order), then the outputs of the shard the
//! message routes to; after the last message, one clock-alignment sweep
//! over all shards in shard order. Workers therefore tag every output
//! group with `(k, phase, shard)` — phase 0 for deadline firings, 1 for
//! routed delivery, with the epilogue at `k = u32::MAX` — and the merge
//! is a sort on that key. The result is **byte-identical** to the serial
//! backend's output sequence, which is what lets the equivalence
//! property test and the 20× determinism stress test hold with threads.
//!
//! ## Panic containment
//!
//! A panic inside a worker (a defective rule action) is caught with
//! [`std::panic::catch_unwind`]; the worker reports it as a
//! `Reply::Panicked` and stays alive for the next job. The engine that
//! was executing is lost with the unwound stack, so the owning
//! [`super::ShardedEngine`] marks itself *poisoned*: the failed batch and every
//! later one surface an engine error instead of a hang or a poisoned
//! lock. See `ShardedEngine::try_receive_batch`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use reweb_term::Timestamp;

use super::InMessage;
use crate::engine::{OutMessage, ReactiveEngine};

// The whole protocol rests on engines being movable across threads;
// fail compilation loudly if a non-Send type ever sneaks into one.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<ReactiveEngine>();
    assert_send::<InMessage>();
};

/// How a [`ShardedEngine`] executes its shards.
///
/// [`ShardedEngine`]: super::ShardedEngine
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecMode {
    /// All shards run in the caller's thread (the PR-2 behaviour).
    #[default]
    Serial,
    /// One long-lived worker thread per shard; batches fan out over
    /// channels and merge back in deterministic serial order.
    Threads,
}

/// One unit of work shipped to a worker, carrying the shard's engine.
pub(super) struct Job {
    pub(super) engine: Box<ReactiveEngine>,
    pub(super) kind: JobKind,
}

pub(super) enum JobKind {
    /// Process this shard's slice of one batch segment.
    Segment {
        /// `(global batch index, message)` pairs homed on this shard,
        /// in batch order.
        sub: Vec<(u32, InMessage)>,
        /// Arrival time of *every* message in the segment, by global
        /// index — consulted only when this shard has a pending absence
        /// deadline, to fire it at exactly the point the serial backend
        /// would.
        timeline: Arc<Vec<Timestamp>>,
        /// The shard's cached earliest deadline at segment start.
        deadline: Option<Timestamp>,
        /// Whether the shard hosts any absence rule (deadline cache
        /// refreshes are skipped otherwise, as in the serial backend).
        has_timers: bool,
        /// Advance to this time after the slice (the batch epilogue;
        /// only set on the final segment of a batch).
        flush: Option<Timestamp>,
    },
    /// Fan-out of `advance_time`: fire due deadlines up to `.0`.
    Advance(Timestamp),
}

/// One output group: every [`OutMessage`] a single `advance_time` or
/// `receive` call produced, tagged with its position in the serial
/// append order.
pub(super) struct Tagged {
    /// Global index of the message that triggered this group;
    /// `u32::MAX` for the epilogue sweep.
    pub(super) k: u32,
    /// 0 = deadline firing (before the message), 1 = routed delivery.
    pub(super) phase: u8,
    pub(super) out: Vec<OutMessage>,
}

/// What a worker sends back when its job is done.
pub(super) enum Reply {
    /// Job completed; the engine comes home with its outputs and its
    /// refreshed deadline cache.
    Done {
        shard: usize,
        engine: Box<ReactiveEngine>,
        out: Vec<Tagged>,
        deadline: Option<Timestamp>,
    },
    /// The job panicked; the engine was lost with the unwound stack.
    Panicked { shard: usize, msg: String },
}

/// One long-lived worker thread per shard, plus the channels to reach
/// them. Dropping the pool closes the job channels, which ends each
/// worker's receive loop; the threads are then joined.
pub(super) struct WorkerPool {
    senders: Vec<Sender<Job>>,
    replies: Receiver<Reply>,
    handles: Vec<JoinHandle<()>>,
}

/// Upper bound on waiting for one worker reply. Workers never block on
/// anything but their job channel, so this only trips if a worker dies
/// in a way `catch_unwind` cannot see (e.g. an abort); it converts what
/// would be a silent hang into an engine error.
const REPLY_TIMEOUT: Duration = Duration::from_secs(300);

impl WorkerPool {
    /// Spawn one worker per shard.
    pub(super) fn new(shards: usize) -> WorkerPool {
        let (reply_tx, replies) = channel::<Reply>();
        let mut senders = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (job_tx, job_rx) = channel::<Job>();
            let tx = reply_tx.clone();
            senders.push(job_tx);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("reweb-shard-{shard}"))
                    .spawn(move || worker_loop(shard, job_rx, tx))
                    .expect("spawn shard worker"),
            );
        }
        WorkerPool {
            senders,
            replies,
            handles,
        }
    }

    /// Ship a job to shard `s`'s worker. A send only fails when the
    /// worker thread is gone (it died in a way `catch_unwind` cannot
    /// see); the job — engine included — comes back to the caller so it
    /// can fail fast instead of waiting out the reply timeout.
    pub(super) fn send(&self, s: usize, job: Job) -> Result<(), Job> {
        self.senders[s].send(job).map_err(|e| e.0)
    }

    /// Wait for one reply (any shard).
    pub(super) fn recv(&self) -> Result<Reply, String> {
        match self.replies.recv_timeout(REPLY_TIMEOUT) {
            Ok(r) => Ok(r),
            Err(RecvTimeoutError::Timeout) => Err("worker unresponsive (timeout)".into()),
            Err(RecvTimeoutError::Disconnected) => Err("worker channel closed".into()),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.senders.clear(); // close job channels; workers exit their loops
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shard: usize, jobs: Receiver<Job>, replies: Sender<Reply>) {
    for job in jobs {
        let reply = match catch_unwind(AssertUnwindSafe(|| run_job(job))) {
            Ok((engine, out)) => {
                let deadline = engine.next_deadline();
                Reply::Done {
                    shard,
                    engine,
                    out,
                    deadline,
                }
            }
            Err(payload) => Reply::Panicked {
                shard,
                msg: panic_message(payload.as_ref()),
            },
        };
        if replies.send(reply).is_err() {
            return; // pool dropped mid-job; nothing left to report to
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// Execute one job. Runs on the worker thread, inside `catch_unwind`.
fn run_job(job: Job) -> (Box<ReactiveEngine>, Vec<Tagged>) {
    let Job { mut engine, kind } = job;
    let mut out = Vec::new();
    match kind {
        JobKind::Advance(now) => {
            let o = engine.advance_time(now);
            if !o.is_empty() {
                out.push(Tagged {
                    k: 0,
                    phase: 0,
                    out: o,
                });
            }
        }
        JobKind::Segment {
            sub,
            timeline,
            mut deadline,
            has_timers,
            flush,
        } => {
            if !has_timers {
                // No absence rule on this shard: no deadline can ever be
                // pending, so the timeline walk degenerates to the
                // shard's own messages.
                debug_assert!(deadline.is_none());
                for (k, m) in sub {
                    let o = engine.receive(m.payload, &m.meta, m.at);
                    if !o.is_empty() {
                        out.push(Tagged {
                            k,
                            phase: 1,
                            out: o,
                        });
                    }
                }
            } else {
                // Mirror the serial backend exactly: before each message
                // (whether or not it is ours) fire a due deadline; for
                // our own messages, deliver and refresh the cache.
                let mut sub = sub.into_iter().peekable();
                for (k, &at) in timeline.iter().enumerate() {
                    let k = k as u32;
                    if deadline.is_some_and(|d| d <= at) {
                        let o = engine.advance_time(at);
                        deadline = engine.next_deadline();
                        if !o.is_empty() {
                            out.push(Tagged {
                                k,
                                phase: 0,
                                out: o,
                            });
                        }
                    }
                    if sub.peek().is_some_and(|(hk, _)| *hk == k) {
                        let (_, m) = sub.next().expect("peeked");
                        let o = engine.receive(m.payload, &m.meta, m.at);
                        deadline = engine.next_deadline();
                        if !o.is_empty() {
                            out.push(Tagged {
                                k,
                                phase: 1,
                                out: o,
                            });
                        }
                    }
                }
            }
            if let Some(now) = flush {
                let o = engine.advance_time(now);
                if !o.is_empty() {
                    out.push(Tagged {
                        k: u32::MAX,
                        phase: 0,
                        out: o,
                    });
                }
            }
        }
    }
    (engine, out)
}
