//! Sharded batch ingestion: N reactive engines behind one front-end.
//!
//! Thesis 2 argues for *local* rule processing at many Web nodes; this
//! module applies the same idea inside one node. A [`ShardedEngine`] owns
//! N independent [`ReactiveEngine`] shards and partitions the installed
//! rules by **event-label affinity**: labels that co-occur in one rule's
//! trigger (e.g. `and(order, payment)`) are grouped with union-find, each
//! group is pinned to one shard, and every incoming event is routed to
//! the single shard owning its label. A rule therefore sees exactly the
//! events it would see in an unsharded engine, and each shard's per-event
//! work (timer advance, dispatch, partial-match bookkeeping) covers only
//! its own rules — the first architecture step toward multi-backend
//! scale-out (experiment E13 measures the win). Shards share no state,
//! so batches can also execute with **one worker thread per shard**: see
//! [`ExecMode`] and the [`exec`] module. Both modes produce identical
//! output sequences; [`ShardedEngine::new_parallel`] is a drop-in
//! constructor swap.
//!
//! Placement rules, in order:
//!
//! * **Label-bearing rules** (`trigger_labels()` is `Some`) go to the
//!   shard owning their label group. Groups are assigned round-robin in
//!   first-appearance order, so installs are deterministic. A later
//!   install whose rules would *join* groups already pinned to different
//!   shards is refused with an error (honoring it would orphan the rules
//!   on the losing shard); install co-triggered rules together.
//! * **Stateless wildcard rules** (an atomic pattern with an `*` label,
//!   optionally under `where`) are replicated to *all* shards: each event
//!   is processed by exactly one shard, so exactly one replica fires.
//! * **Stateful wildcard rules** (composite queries a wildcard makes
//!   unindexable, e.g. `and(a, *)`) need every event in one place: the
//!   router *collapses* to shard 0. Collapsing is only sound before rules
//!   have been distributed — afterwards [`ShardedEngine::install`]
//!   returns an error instead of silently losing events.
//! * **DETECT rules** are pinned with their head label unioned into their
//!   trigger group, so derived events surface on the same shard as every
//!   rule consuming them (consumers of the head label are unioned into
//!   that group too).
//! * Rules listening for `accounting{…}` events collapse the router as
//!   well: accounting records are raised on whichever shard admits a
//!   message, so double reactivity (Thesis 12) needs all admissions in
//!   one place.
//!
//! What sharding deliberately does **not** give you: shards have
//! independent resource stores, so a rule that `PERSIST`s state one shard
//! and a rule that queries it from another diverge from the single-engine
//! semantics. Nodes that need shared state should communicate through
//! events (which is Thesis 2's position anyway) or pre-seed every shard
//! via [`ShardedEngine::put_resource`]. Rule sets carried by
//! `install_rules` messages (Thesis 11) install on the shard that admits
//! the message; their labels are pinned there when still unclaimed, and a
//! warning is recorded when a label already routes elsewhere.
//!
//! The equivalence of sharded and single-engine processing over random
//! rule sets and event streams is pinned by the property test in
//! `crates/core/tests/sharded_equivalence.rs`.

use std::collections::BTreeMap;
use std::sync::Arc;

use reweb_events::{EventQuery, EventRule};
use reweb_term::{fnv1a, Dur, Sym, SymMap, Term, Timestamp};

use crate::aaa::MessageMeta;
use crate::engine::{EngineMetrics, OutMessage, ReactiveEngine};
use crate::meta::ruleset_from_term;
use crate::rule::RuleSet;

pub mod exec;

pub use exec::ExecMode;

use exec::{Job, JobKind, Reply, WorkerPool};

/// One unit of batch input: everything [`ReactiveEngine::receive`] takes.
#[derive(Clone, Debug, PartialEq)]
pub struct InMessage {
    /// The event payload.
    pub payload: Term,
    /// Transport metadata (sender, credentials) for AAA admission.
    pub meta: MessageMeta,
    /// Arrival time; batches should be non-decreasing in `at`.
    pub at: Timestamp,
}

impl InMessage {
    /// Bundle a payload, its transport metadata, and an arrival time.
    pub fn new(payload: Term, meta: MessageMeta, at: Timestamp) -> InMessage {
        InMessage { payload, meta, at }
    }
}

/// Where a rule's trigger places it among the shards.
enum Affinity {
    /// All trigger labels, to be unioned into one group.
    Labels(Vec<Sym>),
    /// Stateless wildcard: replicate to every shard.
    Replicate,
    /// Stateful wildcard: all events must reach one shard.
    Collapse,
}

/// A wildcard query is safe to replicate only when it keeps no
/// cross-event state: each event then fires the one replica on its home
/// shard exactly once.
fn is_stateless(q: &EventQuery) -> bool {
    match q {
        EventQuery::Atomic { .. } => true,
        EventQuery::Where { inner, .. } => is_stateless(inner),
        _ => false,
    }
}

fn rule_affinity(on: &EventQuery) -> Affinity {
    match on.trigger_labels() {
        // Accounting events are raised shard-locally on admission; rules
        // consuming them need every admission on one shard.
        Some(labels) if labels.iter().any(|l| l == "accounting") => Affinity::Collapse,
        Some(labels) => Affinity::Labels(labels),
        None if is_stateless(on) => Affinity::Replicate,
        None => Affinity::Collapse,
    }
}

/// Does any enabled rule of the set carry an `absence` operator (see
/// [`EventQuery::has_absence`])? Only absence carries deadlines, so
/// shards without one never need their deadline cache refreshed — which
/// keeps the per-event fast path free of the O(rules-per-shard)
/// `next_deadline` scan.
fn set_has_absence(set: &RuleSet) -> bool {
    set.enabled
        && (set.rules.iter().any(|r| r.on.has_absence())
            || set.event_rules.iter().any(|er| er.on.has_absence())
            || set.children.iter().any(set_has_absence))
}

/// A DETECT rule is pinned with its head label in the same group as its
/// trigger labels, so derived events meet their consumers.
fn detect_affinity(er: &EventRule) -> Affinity {
    match (er.listens_to(), er.head_label()) {
        (Some(labels), Some(head)) if !labels.iter().any(|l| l == "accounting") => {
            let mut ls = labels;
            ls.push(head);
            Affinity::Labels(ls)
        }
        _ => Affinity::Collapse,
    }
}

/// Union-find over event labels: the label → shard routing table.
#[derive(Clone, Debug, Default)]
struct Router {
    /// label → group id (an index into `parent`). Keyed by interned
    /// symbol: per-event routing is an integer hash lookup.
    label_group: SymMap<usize>,
    /// Union-find parents; roots are the live groups.
    parent: Vec<usize>,
    /// Root group → owning shard, assigned round-robin at install.
    group_shard: BTreeMap<usize, usize>,
    /// Next round-robin shard for a fresh group.
    next_shard: usize,
    /// All routing forced to shard 0 (a stateful wildcard is installed).
    collapsed: bool,
}

impl Router {
    fn find(&mut self, mut g: usize) -> usize {
        while self.parent[g] != g {
            self.parent[g] = self.parent[self.parent[g]]; // path halving
            g = self.parent[g];
        }
        g
    }

    fn group_of(&mut self, label: Sym) -> usize {
        if let Some(&g) = self.label_group.get(&label) {
            return self.find(g);
        }
        let g = self.parent.len();
        self.parent.push(g);
        self.label_group.insert(label, g);
        g
    }

    /// Union two groups. When both are already pinned to different
    /// shards, the first shard wins and the conflict is reported so the
    /// caller can record a warning (partial-match state is not migrated).
    fn union(&mut self, a: usize, b: usize) -> Option<(usize, usize)> {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return None;
        }
        let sa = self.group_shard.get(&ra).copied();
        let sb = self.group_shard.get(&rb).copied();
        self.parent[rb] = ra;
        if let Some(s) = sb {
            self.group_shard.remove(&rb);
            match sa {
                None => {
                    self.group_shard.insert(ra, s);
                }
                Some(keep) if keep != s => return Some((keep, s)),
                Some(_) => {}
            }
        }
        None
    }

    /// Union all of a rule's labels into one group; returns its root.
    /// A union that merges groups already pinned to *different* shards is
    /// reported in `conflicts` — the static install path rejects it, the
    /// dynamic path records it as a warning.
    fn union_labels(&mut self, labels: &[Sym], conflicts: &mut Vec<String>) -> usize {
        let first = self.group_of(labels[0]);
        let mut root = first;
        for l in &labels[1..] {
            let g = self.group_of(*l);
            if let Some((kept, lost)) = self.union(root, g) {
                conflicts.push(format!(
                    "labels {labels:?} join groups already routed to shards \
                     {kept} and {lost}"
                ));
            }
            root = self.find(root);
        }
        root
    }

    /// Pin every not-yet-assigned group among `labels` round-robin.
    fn assign(&mut self, labels: &[Sym], n_shards: usize) {
        for l in labels {
            let Some(&g) = self.label_group.get(l) else {
                continue;
            };
            let root = self.find(g);
            if !self.group_shard.contains_key(&root) {
                self.group_shard.insert(root, self.next_shard % n_shards);
                self.next_shard += 1;
            }
        }
    }

    /// Home shard of a label: its group's shard, or a stable hash for
    /// labels no rule subscribes to (`None` = text payload, hashed like
    /// the empty label so routing matches the pre-interning behaviour).
    fn home_of(&mut self, label: Option<Sym>, n_shards: usize) -> usize {
        if self.collapsed || n_shards == 1 {
            return 0;
        }
        if let Some(label) = label {
            if let Some(&g) = self.label_group.get(&label) {
                let root = self.find(g);
                if let Some(&s) = self.group_shard.get(&root) {
                    return s;
                }
            }
            return (fnv1a(label.as_str().as_bytes()) % n_shards as u64) as usize;
        }
        (fnv1a(b"") % n_shards as u64) as usize
    }
}

/// First pass over a rule set: build label groups in `router`, record
/// label first-appearance order, detect collapse triggers, and report
/// unions that would span already-pinned shards.
fn scan_set(
    router: &mut Router,
    set: &RuleSet,
    labels: &mut Vec<Sym>,
    collapse: &mut bool,
    conflicts: &mut Vec<String>,
) {
    if !set.enabled {
        return;
    }
    for r in &set.rules {
        match rule_affinity(&r.on) {
            Affinity::Labels(ls) => {
                router.union_labels(&ls, conflicts);
                labels.extend(ls);
            }
            Affinity::Replicate => {}
            Affinity::Collapse => *collapse = true,
        }
    }
    for er in &set.event_rules {
        match detect_affinity(er) {
            Affinity::Labels(ls) => {
                router.union_labels(&ls, conflicts);
                labels.extend(ls);
            }
            _ => *collapse = true,
        }
    }
    for c in &set.children {
        scan_set(router, c, labels, collapse, conflicts);
    }
}

/// N [`ReactiveEngine`] shards behind one `receive_batch` front-end,
/// semantically equivalent to a single engine (see the module docs for
/// the placement rules and the documented store-sharing caveat).
pub struct ShardedEngine {
    /// This node's URI; shard `i` is named `{uri}#shard{i}`.
    pub uri: String,
    shards: Vec<ReactiveEngine>,
    router: Router,
    /// Shared front-end clock: the latest `at` seen across all batches.
    now: Timestamp,
    /// Cached earliest deadline per shard, so batch routing touches only
    /// shards with due timers instead of advancing all of them per event.
    deadlines: Vec<Option<Timestamp>>,
    /// Whether a shard hosts any absence rule at all; shards without one
    /// can never have a deadline, so the cache refresh is skipped.
    has_timers: Vec<bool>,
    /// Events routed per shard (the E13 occupancy metric).
    routed: Vec<u64>,
    /// Routing-layer warnings (dynamic installs that could not be placed
    /// soundly); engine-level errors stay in each shard's metrics.
    pub warnings: Vec<String>,
    /// How batches execute: in the caller's thread, or fanned out to one
    /// worker thread per shard.
    mode: ExecMode,
    /// The worker threads (present only in [`ExecMode::Threads`]).
    pool: Option<WorkerPool>,
    /// Set when a worker panicked: the shard's engine state was lost
    /// with the unwound stack, so every later batch is refused with this
    /// error instead of silently diverging.
    poisoned: Option<String>,
}

impl ShardedEngine {
    /// A sharded engine with `shards` (at least 1) empty shards,
    /// executing serially in the caller's thread.
    pub fn new(uri: impl Into<String>, shards: usize) -> ShardedEngine {
        ShardedEngine::with_mode(uri, shards, ExecMode::Serial)
    }

    /// A sharded engine whose shards execute concurrently, one worker
    /// thread per shard. Same `InMessage` interface, same outputs — the
    /// merge reproduces the serial order byte for byte (see
    /// [`exec`]'s module docs).
    pub fn new_parallel(uri: impl Into<String>, shards: usize) -> ShardedEngine {
        ShardedEngine::with_mode(uri, shards, ExecMode::Threads)
    }

    /// A sharded engine with an explicit execution mode.
    pub fn with_mode(uri: impl Into<String>, shards: usize, mode: ExecMode) -> ShardedEngine {
        let uri = uri.into();
        let n = shards.max(1);
        ShardedEngine {
            shards: (0..n)
                .map(|i| ReactiveEngine::new(format!("{uri}#shard{i}")))
                .collect(),
            uri,
            router: Router::default(),
            now: Timestamp::ZERO,
            deadlines: vec![None; n],
            has_timers: vec![false; n],
            routed: vec![0; n],
            warnings: Vec::new(),
            mode,
            pool: match mode {
                ExecMode::Serial => None,
                ExecMode::Threads => Some(WorkerPool::new(n)),
            },
            poisoned: None,
        }
    }

    /// The execution mode this engine was built with.
    pub fn exec_mode(&self) -> ExecMode {
        self.mode
    }

    /// The worker pool backing [`ExecMode::Threads`]. The
    /// mode-implies-pool invariant is established by
    /// [`ShardedEngine::with_mode`] and checked in this one place, so a
    /// future execution-mode refactor cannot leave a stale unwrap behind
    /// in one of the thread-backend paths — they all funnel through
    /// here. Takes the field (not `&self`) so callers keep disjoint
    /// mutable access to the shard vector while the pool is borrowed.
    fn worker_pool(pool: &Option<WorkerPool>) -> &WorkerPool {
        pool.as_ref()
            .expect("ExecMode::Threads invariant: with_mode constructed the pool")
    }

    /// The panic message that poisoned this engine, if a worker panicked.
    pub fn poisoned(&self) -> Option<&str> {
        self.poisoned.as_deref()
    }

    /// Test hook: rig every shard to panic when it receives an event
    /// with this label (see `ReactiveEngine::rig_panic_on_label`).
    #[doc(hidden)]
    pub fn rig_panic_on_label(&mut self, label: &str) {
        for s in &mut self.shards {
            s.rig_panic_on_label(label);
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Read access to the shards (tests, experiments). After a worker
    /// panic (see [`ShardedEngine::poisoned`]) the lost shard's slot
    /// holds a blank placeholder engine — check `poisoned()` before
    /// trusting per-shard state on the thread backend.
    pub fn shards(&self) -> &[ReactiveEngine] {
        &self.shards
    }

    /// Apply `f` to every shard — the escape hatch for configuration
    /// that must be uniform across shards (AAA, store seeding, TTLs).
    pub fn for_each_shard(&mut self, mut f: impl FnMut(&mut ReactiveEngine)) {
        for s in &mut self.shards {
            f(s);
        }
    }

    /// Mutable access to the shards — the durability layer's restore
    /// hatch (`reweb_persist` rebuilds per-shard stores, replay marks,
    /// and metrics through it). Mutating shard state directly is *not*
    /// part of the engine's semantic surface: anything changed here
    /// bypasses routing, logging, and the equivalence guarantees.
    pub fn shards_mut(&mut self) -> &mut [ReactiveEngine] {
        &mut self.shards
    }

    /// Attach one shared observability handle to every shard (see
    /// [`ReactiveEngine::set_obs`]). All shards report into the same
    /// flight recorder and histograms — the atomics *are* the cross-shard
    /// merge, so a `stats` snapshot needs no per-shard fold.
    pub fn set_obs(&mut self, obs: std::sync::Arc<reweb_obs::Obs>) {
        for s in &mut self.shards {
            s.set_obs(std::sync::Arc::clone(&obs));
        }
    }

    /// The observability handle shared by the shards (shard 0's; they
    /// are all clones of one `Arc` after [`ShardedEngine::set_obs`]).
    pub fn obs(&self) -> &std::sync::Arc<reweb_obs::Obs> {
        self.shards[0].obs()
    }

    /// Forward [`ReactiveEngine::set_replay_warmup`] to every shard.
    pub fn set_replay_warmup(&mut self, on: bool) {
        for s in &mut self.shards {
            s.set_replay_warmup(on);
        }
    }

    /// Restore the front-end clock without firing any deadline —
    /// recovery only (per-shard clocks are restored through
    /// [`ShardedEngine::shards_mut`] /
    /// [`ReactiveEngine::restore_replay_mark`]).
    pub fn restore_clock(&mut self, t: Timestamp) {
        self.now = self.now.max(t);
    }

    /// Recompute the per-shard deadline caches and absence flags from
    /// the shards' actual rule state — recovery calls this after
    /// restoring shard state behind the front-end's back.
    pub fn refresh_deadlines(&mut self) {
        for i in 0..self.shards.len() {
            self.has_timers[i] = self.shards[i].has_deadline_rules();
            self.deadlines[i] = self.shards[i].next_deadline();
        }
    }

    /// The replay horizon across all shards (see
    /// [`ReactiveEngine::replay_horizon`]); `None` = some shard holds
    /// unbounded state.
    pub fn replay_horizon(&self) -> Option<Dur> {
        let mut max = Dur::ZERO;
        for s in &self.shards {
            max = max.max(s.replay_horizon()?);
        }
        Some(max)
    }

    /// Fire every absence deadline already due at each shard's current
    /// clock, bypassing the monotone-clock fast path (see
    /// [`ReactiveEngine::flush_due_deadlines`]); outputs merge in shard
    /// order.
    pub fn flush_due_deadlines(&mut self) -> Vec<OutMessage> {
        let mut out = Vec::new();
        for i in 0..self.shards.len() {
            out.extend(self.shards[i].flush_due_deadlines());
            self.deadlines[i] = self.shards[i].next_deadline();
        }
        out
    }

    /// Replicate a document into every shard's store, so conditions read
    /// the same data wherever the reading rule was placed.
    pub fn put_resource(&mut self, uri: impl Into<String>, doc: Term) {
        let uri = uri.into();
        for s in &mut self.shards {
            s.qe.store.put(uri.clone(), doc.clone());
        }
    }

    /// Volatility bound for window-less event queries, forwarded to all
    /// shards (applies to rules installed *after* the call).
    pub fn set_default_ttl(&mut self, ttl: Dur) {
        for s in &mut self.shards {
            s.set_default_ttl(ttl);
        }
    }

    /// Total installed rules across shards. Replicated wildcard rules
    /// count once per shard.
    pub fn rule_count(&self) -> usize {
        self.shards.iter().map(ReactiveEngine::rule_count).sum()
    }

    /// Total partial-match state across all shards (Thesis 4 metric).
    pub fn state_size(&self) -> usize {
        self.shards.iter().map(ReactiveEngine::state_size).sum()
    }

    /// Earliest pending absence deadline across all shards.
    pub fn next_deadline(&self) -> Option<Timestamp> {
        self.shards
            .iter()
            .filter_map(ReactiveEngine::next_deadline)
            .min()
    }

    /// The front-end clock (latest message time seen).
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Events routed to each shard so far; `occupancy()[i]` /
    /// ingested events is shard `i`'s share of the batch traffic.
    pub fn occupancy(&self) -> &[u64] {
        &self.routed
    }

    /// The busiest shard's share of all routed events (0 when idle).
    pub fn hottest_share(&self) -> f64 {
        let total: u64 = self.routed.iter().sum();
        if total == 0 {
            return 0.0;
        }
        *self.routed.iter().max().expect("at least one shard") as f64 / total as f64
    }

    /// Aggregate metrics over all shards (counters summed, per-rule fire
    /// counts and error logs merged). After a worker panic the lost
    /// shard's counters are gone with it; the merged error log then
    /// carries the poison message so the gap is visible.
    pub fn metrics(&self) -> EngineMetrics {
        let mut m = EngineMetrics::default();
        for s in &self.shards {
            m.merge(&s.metrics);
        }
        if let Some(why) = &self.poisoned {
            m.errors.push(format!(
                "sharded engine poisoned ({why}); counters from the lost shard \
                 are missing from these totals"
            ));
        }
        m
    }

    /// Install a rule set, partitioning its rules by label affinity (see
    /// the module docs). Errors — leaving the engine untouched — if the
    /// set would force collapsed routing after rules were already
    /// distributed, or if it would merge label groups already pinned to
    /// different shards (either way, already-installed rules would stop
    /// receiving their events).
    pub fn install(&mut self, set: &RuleSet) -> crate::Result<()> {
        // Dry-run the affinity pass on a copy of the router so a rejected
        // install cannot leave half-merged groups behind.
        let mut trial = self.router.clone();
        let mut labels = Vec::new();
        let mut collapse = false;
        let mut conflicts = Vec::new();
        scan_set(&mut trial, set, &mut labels, &mut collapse, &mut conflicts);
        if !conflicts.is_empty() {
            return Err(reweb_term::TermError::InvalidEdit(format!(
                "rule set joins event labels already routed to different shards \
                 ({}); install co-triggered rules together, before their labels \
                 are pinned apart",
                conflicts.join("; ")
            )));
        }
        if collapse && !trial.collapsed {
            let distributed = self.shards[1..].iter().any(|s| s.rule_count() > 0);
            if distributed {
                return Err(reweb_term::TermError::InvalidEdit(
                    "rule set needs collapsed (single-shard) routing, but rules are \
                     already distributed; install wildcard-composite and accounting \
                     rules first, or use fewer shards"
                        .into(),
                ));
            }
            trial.collapsed = true;
        }
        trial.assign(&labels, self.shards.len());
        self.router = trial;
        for i in 0..self.shards.len() {
            let pruned = self.prune(set, i);
            self.has_timers[i] = self.has_timers[i] || set_has_absence(&pruned);
            self.shards[i].install(&pruned)?;
            self.deadlines[i] = self.shards[i].next_deadline();
        }
        Ok(())
    }

    /// Parse and install a rule program (see [`crate::parse_program`]).
    pub fn install_program(&mut self, src: &str) -> crate::Result<()> {
        let set = crate::parser::parse_program(src)?;
        self.install(&set)
    }

    /// Second pass: the subset of `set` that shard `i` installs.
    /// Procedures and views replicate everywhere (they are definitions,
    /// not subscriptions); rules and DETECT rules go to their home shard,
    /// replicated wildcards to every shard.
    fn prune(&mut self, set: &RuleSet, shard: usize) -> RuleSet {
        let n = self.shards.len();
        let mut out = RuleSet::new(set.name.clone());
        out.enabled = set.enabled;
        out.procedures = set.procedures.clone();
        out.views = set.views.clone();
        for r in &set.rules {
            let keep = match rule_affinity(&r.on) {
                Affinity::Labels(ls) => self.router.home_of(Some(ls[0]), n) == shard,
                Affinity::Replicate => !self.router.collapsed || shard == 0,
                Affinity::Collapse => shard == 0,
            };
            if keep {
                out.rules.push(r.clone());
            }
        }
        for er in &set.event_rules {
            let keep = match detect_affinity(er) {
                Affinity::Labels(ls) => self.router.home_of(Some(ls[0]), n) == shard,
                _ => shard == 0,
            };
            if keep {
                out.event_rules.push(er.clone());
            }
        }
        for c in &set.children {
            out.children.push(self.prune(c, shard));
        }
        out
    }

    /// Rules installed dynamically by an `install_rules` message live on
    /// the shard that admitted it; pin their labels there when the labels
    /// are still unclaimed, and warn when they already route elsewhere.
    fn note_dynamic_install(&mut self, set: &RuleSet, shard: usize) {
        if !set.enabled {
            return;
        }
        // (rule name, affinity) for both plain rules and DETECT rules —
        // a carried DETECT's trigger labels must route to the admitting
        // shard just like a plain rule's.
        let placements: Vec<(String, Affinity)> = set
            .rules
            .iter()
            .map(|r| (r.name.clone(), rule_affinity(&r.on)))
            .chain(
                set.event_rules
                    .iter()
                    .map(|er| (er.name.clone(), detect_affinity(er))),
            )
            .collect();
        let n = self.shards.len();
        for (name, affinity) in placements {
            match affinity {
                Affinity::Labels(ls) => {
                    let mut conflicts = Vec::new();
                    let root = self.router.union_labels(&ls, &mut conflicts);
                    self.warnings.extend(conflicts);
                    let home = *self.router.group_shard.entry(root).or_insert(shard);
                    if home != shard && !self.router.collapsed && n > 1 {
                        self.warnings.push(format!(
                            "dynamically installed rule {name} lives on shard {shard} \
                             but its labels {ls:?} route to shard {home}; it will not \
                             fire"
                        ));
                    }
                }
                Affinity::Replicate | Affinity::Collapse => {
                    if n > 1 && !self.router.collapsed {
                        self.warnings.push(format!(
                            "dynamically installed wildcard rule {name} is only on \
                             shard {shard}; it sees that shard's events only"
                        ));
                    }
                }
            }
        }
        for c in &set.children {
            self.note_dynamic_install(c, shard);
        }
    }

    /// Route one batch of messages: each message is delivered to the one
    /// shard owning its label, shards with due absence deadlines are
    /// advanced first, and the batch ends with every shard aligned to the
    /// shared clock. Outputs are merged deterministically (batch order,
    /// then shard order). Semantically equivalent to feeding the batch
    /// through a single [`ReactiveEngine::receive`] loop — in **both**
    /// execution modes, byte for byte.
    ///
    /// Errors (a poisoned engine after a worker panic) are recorded in
    /// [`ShardedEngine::warnings`]; use
    /// [`ShardedEngine::try_receive_batch`] to observe them directly.
    pub fn receive_batch(&mut self, msgs: &[InMessage]) -> Vec<OutMessage> {
        match self.try_receive_batch(msgs) {
            Ok(out) => out,
            Err(e) => {
                self.warnings.push(format!("receive_batch failed: {e}"));
                Vec::new()
            }
        }
    }

    /// [`ShardedEngine::try_receive_batch_tagged`], swallowing execution
    /// failures into [`ShardedEngine::warnings`] like
    /// [`ShardedEngine::receive_batch`] does.
    pub fn receive_batch_tagged(&mut self, msgs: &[InMessage]) -> Vec<(u32, OutMessage)> {
        match self.try_receive_batch_tagged(msgs) {
            Ok(out) => out,
            Err(e) => {
                self.warnings.push(format!("receive_batch failed: {e}"));
                Vec::new()
            }
        }
    }

    /// [`ShardedEngine::receive_batch`], surfacing execution failures.
    ///
    /// The only failure source is the thread backend: a worker panic (a
    /// defective rule action) loses that shard's engine state, so the
    /// batch — and every batch after it — returns an error naming the
    /// panic instead of hanging on a dead worker or silently dropping a
    /// shard. The serial backend always succeeds (engine-level failures
    /// are contained per rule and recorded in metrics).
    pub fn try_receive_batch(&mut self, msgs: &[InMessage]) -> crate::Result<Vec<OutMessage>> {
        Ok(self
            .try_receive_batch_tagged(msgs)?
            .into_iter()
            .map(|(_, o)| o)
            .collect())
    }

    /// [`ShardedEngine::try_receive_batch`], tagging every output with
    /// the index of the batch message that produced it — the attribution
    /// surface the networked ingress tier uses to route reactions back
    /// to their submitters. Deadline firings are attributed to the
    /// message whose arrival advanced the clock past them; the batch
    /// epilogue sweep is attributed to the last message. Stripping the
    /// tags reproduces the untagged output byte for byte (it IS the
    /// untagged implementation).
    pub fn try_receive_batch_tagged(
        &mut self,
        msgs: &[InMessage],
    ) -> crate::Result<Vec<(u32, OutMessage)>> {
        if let Some(why) = &self.poisoned {
            return Err(reweb_term::TermError::InvalidEdit(why.clone()));
        }
        let obs = std::sync::Arc::clone(self.shards[0].obs());
        let obs_on = obs.is_enabled() && !msgs.is_empty();
        let t0 = if obs_on { obs.now_ns() } else { 0 };
        let out = match self.mode {
            ExecMode::Serial => Ok(self.receive_batch_serial_tagged(msgs)),
            ExecMode::Threads => self.receive_batch_parallel_tagged(msgs),
        };
        if obs_on {
            // Whole-batch latency across all shards — the front-end view,
            // matching what a single engine records per batch.
            obs.batch.record(obs.now_ns().saturating_sub(t0));
        }
        out
    }

    fn receive_batch_serial_tagged(&mut self, msgs: &[InMessage]) -> Vec<(u32, OutMessage)> {
        let last = msgs.len().saturating_sub(1) as u32;
        let mut pre = Vec::new();
        let mut out = Vec::new();
        for (k, m) in msgs.iter().enumerate() {
            if m.at > self.now {
                self.now = m.at;
            }
            // Deadlines elsewhere fire before this message is processed,
            // exactly as a single engine's pre-receive time advance does.
            pre.clear();
            self.advance_due_shards(m.at, &mut pre);
            out.extend(pre.drain(..).map(|o| (k as u32, o)));
            out.extend(self.route_one(m).into_iter().map(|o| (k as u32, o)));
        }
        let now = self.now;
        out.extend(self.advance_time(now).into_iter().map(|o| (last, o)));
        out
    }

    /// Fire due absence deadlines on every shard, in shard order — the
    /// pre-delivery step of the serial batch loop.
    fn advance_due_shards(&mut self, at: Timestamp, out: &mut Vec<OutMessage>) {
        for s in 0..self.shards.len() {
            if self.deadlines[s].is_some_and(|d| d <= at) {
                out.extend(self.shards[s].advance_time(at));
                self.deadlines[s] = self.shards[s].next_deadline();
            }
        }
    }

    /// The thread backend: fan each batch segment out to one worker per
    /// shard, merge tagged outputs back into the serial append order.
    ///
    /// `install_rules` messages rewrite the routing table mid-batch, so
    /// they split the batch: the stretch before one executes in
    /// parallel, the install itself is processed on the caller's thread
    /// (engines are home between segments), then the next stretch fans
    /// out against the updated router.
    fn receive_batch_parallel_tagged(
        &mut self,
        msgs: &[InMessage],
    ) -> crate::Result<Vec<(u32, OutMessage)>> {
        let is_install = |m: &InMessage| m.payload.label() == Some("install_rules");
        let batch_end = msgs.iter().map(|m| m.at).fold(self.now, Timestamp::max);
        let last = msgs.len().saturating_sub(1) as u32;
        let mut out = Vec::new();
        let mut k = 0;
        let mut flushed = false;
        while k < msgs.len() {
            let m = &msgs[k];
            if is_install(m) {
                if m.at > self.now {
                    self.now = m.at;
                }
                let mut pre = Vec::new();
                self.advance_due_shards(m.at, &mut pre);
                out.extend(pre.into_iter().map(|o| (k as u32, o)));
                out.extend(self.route_one(m).into_iter().map(|o| (k as u32, o)));
                k += 1;
                continue;
            }
            let end = k + msgs[k..]
                .iter()
                .position(is_install)
                .unwrap_or(msgs.len() - k);
            // The final segment carries the epilogue sweep with it, so
            // the workers align every shard to the batch clock in
            // parallel too. Segment tags are local to the segment
            // (`u32::MAX` marks the epilogue sweep); re-base them to
            // batch indices here.
            let flush = (end == msgs.len()).then_some(batch_end);
            flushed = flush.is_some();
            let base = k as u32;
            out.extend(self.run_segment(&msgs[k..end], flush)?.into_iter().map(
                |(lk, o)| match lk {
                    u32::MAX => (last, o),
                    lk => (base + lk, o),
                },
            ));
            k = end;
        }
        if !flushed {
            // Empty batch, or one ending in an `install_rules` message:
            // the epilogue has not run yet.
            out.extend(
                self.try_advance_time(batch_end)?
                    .into_iter()
                    .map(|o| (last, o)),
            );
        }
        Ok(out)
    }

    /// Route one segment main-side, ship every shard's engine and slice
    /// to its worker, and merge the tagged replies.
    fn run_segment(
        &mut self,
        seg: &[InMessage],
        flush: Option<Timestamp>,
    ) -> crate::Result<Vec<(u32, OutMessage)>> {
        let n = self.shards.len();
        let mut subs: Vec<Vec<(u32, InMessage)>> = vec![Vec::new(); n];
        let mut timeline = Vec::with_capacity(seg.len());
        for (k, m) in seg.iter().enumerate() {
            if m.at > self.now {
                self.now = m.at;
            }
            timeline.push(m.at);
            let h = self.router.home_of(m.payload.label_sym(), n);
            self.routed[h] += 1;
            subs[h].push((k as u32, m.clone()));
        }
        let timeline = Arc::new(timeline);
        let pool = Self::worker_pool(&self.pool);
        let mut sent = 0;
        let mut send_failure = None;
        for (s, sub) in subs.into_iter().enumerate() {
            // An idle shard — no messages, no pending deadline, and no
            // absence rule that the epilogue sweep could fire — can
            // produce no output; keep its engine home (bumping its
            // clock exactly as the serial epilogue would) instead of
            // paying two channel hops. This is what keeps the
            // single-message `receive` path cheap at high shard counts.
            if sub.is_empty() && self.deadlines[s].is_none() && !self.has_timers[s] {
                if let Some(end) = flush {
                    self.shards[s].advance_time(end);
                }
                continue;
            }
            let engine = std::mem::replace(&mut self.shards[s], ReactiveEngine::new(String::new()));
            match pool.send(
                s,
                Job {
                    engine: Box::new(engine),
                    kind: JobKind::Segment {
                        sub,
                        timeline: Arc::clone(&timeline),
                        deadline: self.deadlines[s],
                        has_timers: self.has_timers[s],
                        flush,
                    },
                },
            ) {
                Ok(()) => sent += 1,
                Err(job) => {
                    // The worker thread is gone; the engine comes back
                    // with the refused job. Fail fast after draining
                    // the jobs that did go out.
                    self.shards[s] = *job.engine;
                    send_failure.get_or_insert(format!("shard {s} worker is gone (thread died)"));
                }
            }
        }
        let out = self.collect_replies(sent);
        match send_failure {
            None => out,
            Some(why) => {
                self.poisoned.get_or_insert(why.clone());
                Err(reweb_term::TermError::InvalidEdit(why))
            }
        }
    }

    /// Collect `expect` worker replies, re-homing engines and deadline
    /// caches, and merge every output group by its `(message index,
    /// phase, shard)` tag — the serial append order. The message index
    /// (`u32::MAX` for the epilogue sweep) survives the merge so callers
    /// can attribute outputs.
    fn collect_replies(&mut self, expect: usize) -> crate::Result<Vec<(u32, OutMessage)>> {
        let pool = Self::worker_pool(&self.pool);
        let mut tagged: Vec<(u32, u8, usize, Vec<OutMessage>)> = Vec::new();
        let mut failure: Option<String> = None;
        for _ in 0..expect {
            match pool.recv() {
                Ok(Reply::Done {
                    shard,
                    engine,
                    out,
                    deadline,
                }) => {
                    self.shards[shard] = *engine;
                    self.deadlines[shard] = deadline;
                    for t in out {
                        tagged.push((t.k, t.phase, shard, t.out));
                    }
                }
                Ok(Reply::Panicked { shard, msg }) => {
                    failure.get_or_insert(format!(
                        "shard {shard} worker panicked: {msg}; shard state lost, \
                         sharded engine poisoned"
                    ));
                }
                Err(e) => {
                    failure.get_or_insert(format!("shard execution failed: {e}"));
                    break;
                }
            }
        }
        if let Some(why) = failure {
            self.poisoned = Some(why.clone());
            return Err(reweb_term::TermError::InvalidEdit(why));
        }
        // Keys are unique per group — each (k, phase) pair belongs to
        // exactly one shard — so an unstable sort reproduces the serial
        // order exactly.
        tagged.sort_unstable_by_key(|&(k, phase, shard, _)| (k, phase, shard));
        Ok(tagged
            .into_iter()
            .flat_map(|(k, _, _, o)| o.into_iter().map(move |m| (k, m)))
            .collect())
    }

    /// Receive a single message (the websim delivery path).
    pub fn receive(
        &mut self,
        payload: Term,
        meta: &MessageMeta,
        now: Timestamp,
    ) -> Vec<OutMessage> {
        self.receive_batch(&[InMessage::new(payload, meta.clone(), now)])
    }

    fn route_one(&mut self, m: &InMessage) -> Vec<OutMessage> {
        let h = self
            .router
            .home_of(m.payload.label_sym(), self.shards.len());
        self.routed[h] += 1;
        let dynamic = m.payload.label() == Some("install_rules");
        let rules_before = if dynamic {
            self.shards[h].rule_count()
        } else {
            0
        };
        let out = self.shards[h].receive(m.payload.clone(), &m.meta, m.at);
        if self.has_timers[h] {
            self.deadlines[h] = self.shards[h].next_deadline();
        }
        if dynamic && self.shards[h].rule_count() > rules_before {
            if let Some(carried) = m.payload.children().first() {
                if let Ok(set) = ruleset_from_term(carried) {
                    self.note_dynamic_install(&set, h);
                    if set_has_absence(&set) {
                        self.has_timers[h] = true;
                        self.deadlines[h] = self.shards[h].next_deadline();
                    }
                }
            }
        }
        out
    }

    /// Advance every shard's clock to `now`, firing due absence
    /// deadlines; also the batch epilogue that re-aligns lagging shards.
    /// In [`ExecMode::Threads`] the advance fans out to the workers —
    /// each shard's timer scan runs concurrently — and the outputs merge
    /// back in shard order, exactly as the serial loop appends them.
    pub fn advance_time(&mut self, now: Timestamp) -> Vec<OutMessage> {
        match self.try_advance_time(now) {
            Ok(out) => out,
            Err(e) => {
                self.warnings.push(format!("advance_time failed: {e}"));
                Vec::new()
            }
        }
    }

    /// [`ShardedEngine::advance_time`], surfacing worker failures (see
    /// [`ShardedEngine::try_receive_batch`]).
    pub fn try_advance_time(&mut self, now: Timestamp) -> crate::Result<Vec<OutMessage>> {
        if let Some(why) = &self.poisoned {
            return Err(reweb_term::TermError::InvalidEdit(why.clone()));
        }
        if now > self.now {
            self.now = now;
        }
        match self.mode {
            ExecMode::Serial => {
                let mut out = Vec::new();
                for s in 0..self.shards.len() {
                    out.extend(self.shards[s].advance_time(now));
                    self.deadlines[s] = self.shards[s].next_deadline();
                }
                Ok(out)
            }
            ExecMode::Threads => {
                let n = self.shards.len();
                let pool = Self::worker_pool(&self.pool);
                let mut sent = 0;
                let mut send_failure = None;
                for s in 0..n {
                    // A shard with no pending deadline has nothing to
                    // fire; advancing it is a clock bump the next batch
                    // performs anyway, so skip the channel round-trip.
                    if self.deadlines[s].is_none() && !self.has_timers[s] {
                        self.shards[s].advance_time(now);
                        continue;
                    }
                    let engine =
                        std::mem::replace(&mut self.shards[s], ReactiveEngine::new(String::new()));
                    match pool.send(
                        s,
                        Job {
                            engine: Box::new(engine),
                            kind: JobKind::Advance(now),
                        },
                    ) {
                        Ok(()) => sent += 1,
                        Err(job) => {
                            self.shards[s] = *job.engine;
                            send_failure
                                .get_or_insert(format!("shard {s} worker is gone (thread died)"));
                        }
                    }
                }
                let out = self
                    .collect_replies(sent)
                    .map(|v| v.into_iter().map(|(_, o)| o).collect());
                match send_failure {
                    None => out,
                    Some(why) => {
                        self.poisoned.get_or_insert(why.clone());
                        Err(reweb_term::TermError::InvalidEdit(why))
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reweb_term::parse_term;

    fn msg(src: &str, at: u64) -> InMessage {
        InMessage::new(
            parse_term(src).unwrap(),
            MessageMeta::from_uri("http://client"),
            Timestamp(at),
        )
    }

    /// Two independent label groups land on different shards and both
    /// composite rules fire exactly as in a single engine.
    #[test]
    fn label_groups_spread_and_fire() {
        let mut e = ShardedEngine::new("http://node", 2);
        e.install_program(
            r#"
            RULE pay ON and(order{{id[[var O]]}}, payment{{order[[var O]]}}) within 1h
              DO SEND paid{order[var O]} TO "http://sink" END
            RULE ship ON and(pick{{id[[var P]]}}, pack{{id[[var P]]}}) within 1h
              DO SEND shipped{id[var P]} TO "http://sink" END
            "#,
        )
        .unwrap();
        // order/payment share a group, pick/pack another; round-robin
        // puts them on different shards.
        assert_eq!(e.shards()[0].rule_count(), 1);
        assert_eq!(e.shards()[1].rule_count(), 1);
        let out = e.receive_batch(&[
            msg("order{id[\"o1\"]}", 1_000),
            msg("pick{id[\"p1\"]}", 2_000),
            msg("payment{order[\"o1\"]}", 3_000),
            msg("pack{id[\"p1\"]}", 4_000),
        ]);
        let mut payloads: Vec<String> = out.iter().map(|o| o.payload.to_string()).collect();
        payloads.sort();
        assert_eq!(payloads, vec!["paid{order[\"o1\"]}", "shipped{id[\"p1\"]}"]);
        assert_eq!(e.occupancy().iter().sum::<u64>(), 4);
        assert!(e.hottest_share() <= 0.5 + f64::EPSILON);
    }

    /// A stateless wildcard rule is replicated, yet fires exactly once
    /// per event because each event has exactly one home shard.
    #[test]
    fn stateless_wildcard_fires_once_per_event() {
        let mut e = ShardedEngine::new("http://node", 4);
        e.install_program(
            r#"RULE audit ON *{{kind[[var K]]}} DO SEND saw{kind[var K]} TO "http://audit" END"#,
        )
        .unwrap();
        assert_eq!(e.rule_count(), 4, "one replica per shard");
        let out = e.receive_batch(&[
            msg("a{kind[\"x\"]}", 1),
            msg("b{kind[\"y\"]}", 2),
            msg("c{kind[\"z\"]}", 3),
        ]);
        assert_eq!(out.len(), 3);
        assert_eq!(e.metrics().rules_fired, 3);
    }

    /// A composite wildcard needs global state: the router collapses and
    /// the rule still sees both events.
    #[test]
    fn stateful_wildcard_collapses_router() {
        let mut e = ShardedEngine::new("http://node", 4);
        e.install_program(
            r#"RULE pair ON and(a{{v[[var X]]}}, *{{tag[[var X]]}}) within 1h
               DO SEND matched{v[var X]} TO "http://sink" END"#,
        )
        .unwrap();
        let out = e.receive_batch(&[msg("a{v[\"1\"]}", 1), msg("zzz{tag[\"1\"]}", 2)]);
        assert_eq!(out.len(), 1);
        assert_eq!(e.occupancy()[0], 2, "all events routed to shard 0");
    }

    /// Collapsing after rules were distributed would lose events, so the
    /// install is refused.
    #[test]
    fn late_collapse_is_an_install_error() {
        let mut e = ShardedEngine::new("http://node", 2);
        e.install_program(r#"RULE a ON a DO NOOP END  RULE b ON b DO NOOP END"#)
            .unwrap();
        assert!(e.shards()[1].rule_count() > 0, "rules distributed");
        let err = e.install_program(r#"RULE w ON and(a, *{{v[[var X]]}}) DO NOOP END"#);
        assert!(err.is_err());
    }

    /// DETECT rules and their consumers share a shard, so derived events
    /// cascade exactly as in one engine.
    #[test]
    fn detect_and_consumer_are_colocated() {
        let mut e = ShardedEngine::new("http://node", 4);
        e.install_program(
            r#"
            DETECT big{id[var O]} ON order{{id[[var O]], total[[var T]]}} where var T >= 100 END
            RULE on_big ON big{{id[[var O]]}} DO SEND audit{id[var O]} TO "http://audit" END
            RULE other ON ping DO SEND pong TO "http://sink" END
            "#,
        )
        .unwrap();
        let out = e.receive_batch(&[msg("order{id[\"o1\"], total[\"500\"]}", 1)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to, "http://audit");
        assert_eq!(e.metrics().events_derived, 1);
    }

    /// Absence deadlines fire on shards that receive no further traffic:
    /// the batch loop advances due shards before each message and aligns
    /// all clocks at the end.
    #[test]
    fn absence_deadline_fires_across_shards() {
        let mut e = ShardedEngine::new("http://node", 2);
        e.install_program(
            r#"
            RULE stranded ON absence(cancel{{no[[var N]]}}, rebooked{{no[[var N]]}}, 2h)
              DO SEND alarm{no[var N]} TO "http://phone" END
            RULE chatter ON tick DO SEND tock TO "http://sink" END
            "#,
        )
        .unwrap();
        // cancel on one shard, then only `tick` traffic (other shard)
        // until well past the 2h deadline.
        let out = e.receive_batch(&[
            msg("cancel{no[\"LH1\"]}", 0),
            msg("tick", 3_600_000),
            msg("tick", 7_300_000),
        ]);
        let alarms: Vec<_> = out
            .iter()
            .filter(|o| o.payload.label() == Some("alarm"))
            .collect();
        assert_eq!(alarms.len(), 1);
        assert_eq!(alarms[0].payload.to_string(), "alarm{no[\"LH1\"]}");
    }

    /// `install_rules` messages install on the admitting shard and the
    /// router pins the new labels there.
    #[test]
    fn dynamic_install_pins_labels_to_admitting_shard() {
        use crate::meta::ruleset_to_term;

        let carried = crate::parse_program(
            r#"RULE fresh ON newevt{{v[[var X]]}} DO SEND got{v[var X]} TO "http://sink" END"#,
        )
        .unwrap();
        let payload = Term::ordered("install_rules", vec![ruleset_to_term(&carried)]);
        let mut e = ShardedEngine::new("http://node", 3);
        let before = e.rule_count();
        let out = e.receive_batch(&[
            InMessage::new(
                payload,
                MessageMeta::from_uri("http://partner"),
                Timestamp(1),
            ),
            msg("newevt{v[\"7\"]}", 2),
        ]);
        assert_eq!(e.rule_count(), before + 1);
        assert_eq!(out.len(), 1, "new rule fired on its pinned shard");
        assert_eq!(out[0].payload.to_string(), "got{v[\"7\"]}");
    }

    /// A later install joining label groups pinned to different shards
    /// is refused, and the failed install leaves routing fully intact.
    #[test]
    fn install_refuses_to_merge_groups_across_shards() {
        let mut e = ShardedEngine::new("http://node", 2);
        e.install_program(r#"RULE ra ON a DO SEND xa TO "http://s" END"#)
            .unwrap();
        e.install_program(r#"RULE rb ON b DO SEND xb TO "http://s" END"#)
            .unwrap();
        // `a` and `b` were pinned round-robin to different shards; a rule
        // joining them cannot be placed without orphaning one of them.
        let err = e.install_program(r#"RULE rab ON and(a, b) within 1m DO NOOP END"#);
        assert!(err.is_err());
        assert_eq!(e.rule_count(), 2, "rejected set not installed anywhere");
        let out = e.receive_batch(&[msg("a", 1), msg("b", 2)]);
        assert_eq!(out.len(), 2, "existing rules still routed correctly");
    }

    /// A DETECT rule carried by `install_rules` gets its trigger labels
    /// pinned to the admitting shard, so derivation keeps working.
    #[test]
    fn dynamic_install_pins_detect_trigger_labels() {
        use crate::meta::ruleset_to_term;

        // `orderq` hashes to a different shard than `install_rules` at 4
        // shards, so this fails if the DETECT trigger is left unpinned.
        let carried = crate::parse_program(
            r#"DETECT dd{v[var X]} ON orderq{{v[[var X]]}} END
               RULE consume ON dd{{v[[var X]]}} DO SEND got{v[var X]} TO "http://sink" END"#,
        )
        .unwrap();
        let payload = Term::ordered("install_rules", vec![ruleset_to_term(&carried)]);
        let mut e = ShardedEngine::new("http://node", 4);
        let out = e.receive_batch(&[
            InMessage::new(
                payload,
                MessageMeta::from_uri("http://partner"),
                Timestamp(1),
            ),
            msg("orderq{v[\"9\"]}", 2),
        ]);
        assert_eq!(
            e.metrics().events_derived,
            1,
            "DETECT saw its trigger event"
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload.to_string(), "got{v[\"9\"]}");
    }

    /// Aggregated metrics sum the per-shard counters.
    #[test]
    fn metrics_aggregate_across_shards() {
        let mut e = ShardedEngine::new("http://node", 2);
        e.install_program(
            r#"RULE a ON a DO SEND x TO "http://s" END
               RULE b ON b DO SEND y TO "http://s" END"#,
        )
        .unwrap();
        e.receive_batch(&[msg("a", 1), msg("b", 2), msg("nobody_listens", 3)]);
        let m = e.metrics();
        assert_eq!(m.events_received, 3);
        assert_eq!(m.rules_fired, 2);
        assert_eq!(m.messages_sent, 2);
        assert_eq!(m.events_unmatched, 1);
        assert_eq!(m.rules_installed, 2);
    }

    /// The thread backend reproduces the serial backend's output
    /// *sequence* (not just multiset) on a mixed workload with absence
    /// deadlines, wildcards, and a mid-batch dynamic install.
    #[test]
    fn parallel_matches_serial_byte_for_byte() {
        use crate::meta::ruleset_to_term;

        let program = r#"
            RULE pay ON and(order{{id[[var O]]}}, payment{{order[[var O]]}}) within 1h
              DO SEND paid{order[var O]} TO "http://sink" END
            RULE audit ON *{{kind[[var K]]}} DO SEND saw{kind[var K]} TO "http://audit" END
            RULE quiet ON absence(ping{{n[[var N]]}}, pong{{n[[var N]]}}, 10s)
              DO SEND silent{n[var N]} TO "http://ops" END
        "#;
        let carried = crate::parse_program(
            r#"RULE fresh ON newevt{{v[[var X]]}} DO SEND got{v[var X]} TO "http://sink" END"#,
        )
        .unwrap();
        let install = Term::ordered("install_rules", vec![ruleset_to_term(&carried)]);
        let mut msgs = vec![
            msg("order{id[\"o1\"]}", 1_000),
            msg("ping{n[\"7\"]}", 2_000),
            msg("x{kind[\"a\"]}", 3_000),
            InMessage::new(
                install,
                MessageMeta::from_uri("http://peer"),
                Timestamp(4_000),
            ),
            msg("newevt{v[\"9\"]}", 5_000),
            msg("payment{order[\"o1\"]}", 6_000),
            msg("y{kind[\"b\"]}", 20_000),
        ];
        // A second absence window that stays pending at batch end.
        msgs.push(msg("ping{n[\"8\"]}", 21_000));

        let run = |mode: ExecMode| {
            let mut e = ShardedEngine::with_mode("http://node", 4, mode);
            e.install_program(program).unwrap();
            let out = e.receive_batch(&msgs);
            assert!(
                e.warnings.iter().all(|w| !w.contains("failed")),
                "{:?}",
                e.warnings
            );
            out.iter()
                .map(|o| format!("{}<-{}", o.to, o.payload))
                .collect::<Vec<_>>()
        };
        let serial = run(ExecMode::Serial);
        let threads = run(ExecMode::Threads);
        assert!(!serial.is_empty());
        assert_eq!(serial, threads, "thread merge must reproduce serial order");
    }

    /// `advance_time` fans out to the workers and still merges
    /// deterministically in shard order.
    #[test]
    fn parallel_advance_time_fans_out() {
        let mut e = ShardedEngine::new_parallel("http://node", 2);
        e.install_program(
            r#"
            RULE a ON absence(s1{{n[[var N]]}}, e1{{n[[var N]]}}, 5s)
              DO SEND t1{n[var N]} TO "http://ops" END
            RULE b ON absence(s2{{n[[var N]]}}, e2{{n[[var N]]}}, 5s)
              DO SEND t2{n[var N]} TO "http://ops" END
            "#,
        )
        .unwrap();
        e.receive_batch(&[msg("s1{n[\"1\"]}", 0), msg("s2{n[\"2\"]}", 0)]);
        let out = e.advance_time(Timestamp(10_000));
        let labels: Vec<_> = out.iter().filter_map(|o| o.payload.label()).collect();
        assert_eq!(labels, vec!["t1", "t2"], "shard-order merge");
    }

    /// A worker panic (defective rule action) surfaces as an engine
    /// error — not a hang, not a poisoned lock — and poisons the engine
    /// for later batches too.
    #[test]
    fn worker_panic_surfaces_as_engine_error() {
        let mut e = ShardedEngine::new_parallel("http://node", 2);
        e.install_program(
            r#"RULE a ON a DO SEND xa TO "http://s" END
               RULE b ON b DO SEND xb TO "http://s" END"#,
        )
        .unwrap();
        e.rig_panic_on_label("boom");
        let err = e
            .try_receive_batch(&[msg("a", 1), msg("boom", 2), msg("b", 3)])
            .expect_err("rigged panic must surface");
        assert!(err.to_string().contains("panicked"), "{err}");
        assert!(e.poisoned().is_some());
        // Poison sticks: the next batch is refused with the same error.
        let err2 = e.try_receive_batch(&[msg("a", 4)]).expect_err("poisoned");
        assert!(err2.to_string().contains("panicked"), "{err2}");
        // The infallible wrapper records it instead of panicking.
        assert!(e.receive_batch(&[msg("a", 5)]).is_empty());
        assert!(e
            .warnings
            .iter()
            .any(|w| w.contains("receive_batch failed")));
    }

    /// One shard degenerates to plain single-engine behaviour.
    #[test]
    fn single_shard_is_identity() {
        let mut sharded = ShardedEngine::new("http://node", 1);
        let mut single = ReactiveEngine::new("http://node");
        sharded
            .install_program(r#"RULE r ON ping DO SEND pong TO "http://s" END"#)
            .unwrap();
        single
            .install_program(r#"RULE r ON ping DO SEND pong TO "http://s" END"#)
            .unwrap();
        let meta = MessageMeta::from_uri("http://c");
        let a = sharded.receive(Term::elem("ping"), &meta, Timestamp(5));
        let b = single.receive(Term::elem("ping"), &meta, Timestamp(5));
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0].payload.to_string(), b[0].payload.to_string());
    }
}
