//! Policy-based trust negotiation — the Thesis 11 scenario.
//!
//! The paper's walkthrough: customer Franz and shop fussbaelle.biz do not
//! trust each other; instead of revealing everything, they exchange
//! *policies* (rules stating "I will disclose X once you have presented
//! Y") reactively, each disclosure unlocking the next, until the deal
//! closes. The paper claims three advantages for the reactive style over
//! dumping all policies up front:
//!
//! 1. efficiency — "only small sets of relevant rules are exchanged";
//! 2. privacy — "policies themselves can be sensitive information";
//! 3. dynamism (out of scope here).
//!
//! [`negotiate`] implements both strategies over the same parties so
//! experiment E11 can measure claims 1 and 2: [`Strategy::Reactive`]
//! discloses a policy only when its target is requested;
//! [`Strategy::Eager`] sends every policy in one bulk message per side.
//! Messages are real terms (policies reified like rules), so message and
//! byte counts are honest.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use reweb_term::Term;

/// A disclosure policy: "I disclose `target` once you have presented all
/// of `requires`." An empty `requires` means freely disclosed on request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Policy {
    /// The credential or resource this policy guards.
    pub target: String,
    /// Credentials the peer must present first.
    pub requires: Vec<String>,
    /// Sensitive policies must only travel when their target was
    /// explicitly requested (the paper's advantage 2).
    pub sensitive: bool,
}

impl Policy {
    /// A non-sensitive policy guarding `target` behind `requires`.
    pub fn new(target: impl Into<String>, requires: Vec<&str>) -> Policy {
        Policy {
            target: target.into(),
            requires: requires.into_iter().map(String::from).collect(),
            sensitive: false,
        }
    }

    /// Mark the policy sensitive (builder style).
    pub fn sensitive(mut self) -> Policy {
        self.sensitive = true;
        self
    }

    /// Reify as a term (the policy *is* a rule travelling as data).
    pub fn to_term(&self) -> Term {
        Term::build("policy")
            .unordered()
            .field("target", &self.target)
            .child(
                Term::build("requires")
                    .children(
                        self.requires
                            .iter()
                            .map(|r| Term::ordered("c", vec![Term::text(r.clone())])),
                    )
                    .finish(),
            )
            .finish()
    }
}

/// One negotiating party: credentials it can present, guarded by policies.
#[derive(Clone, Debug, Default)]
pub struct Party {
    /// The party's name (for reporting).
    pub name: String,
    /// Credential name → credential document (certificate, card, …).
    pub credentials: BTreeMap<String, Term>,
    /// The party's disclosure policies.
    pub policies: Vec<Policy>,
}

impl Party {
    /// A party with no credentials or policies yet.
    pub fn new(name: impl Into<String>) -> Party {
        Party {
            name: name.into(),
            ..Party::default()
        }
    }

    /// Add a presentable credential (builder style).
    pub fn with_credential(mut self, name: impl Into<String>, doc: Term) -> Party {
        self.credentials.insert(name.into(), doc);
        self
    }

    /// Add a disclosure policy (builder style).
    pub fn with_policy(mut self, p: Policy) -> Party {
        self.policies.push(p);
        self
    }

    fn policy_for(&self, target: &str) -> Option<&Policy> {
        self.policies.iter().find(|p| p.target == target)
    }
}

/// Disclosure strategy under comparison (E11).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Exchange only the policies on the path to the requested target.
    Reactive,
    /// Dump every policy up front, then exchange credentials.
    Eager,
}

/// What a negotiation run measured.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NegotiationOutcome {
    /// Did the requester obtain the target?
    pub success: bool,
    /// Message exchanges (each direction counts one).
    pub messages: usize,
    /// Total serialized bytes on the wire.
    pub bytes: usize,
    /// Policies disclosed by requester + responder.
    pub policies_disclosed: usize,
    /// Sensitive policies that travelled — the privacy cost.
    pub sensitive_leaked: usize,
    /// Credentials presented by both sides.
    pub credentials_presented: usize,
    /// Human-readable trace of the exchange.
    pub trace: Vec<String>,
}

/// Run a trust negotiation: `requester` asks `responder` for `target`.
pub fn negotiate(
    requester: &Party,
    responder: &Party,
    target: &str,
    strategy: Strategy,
) -> NegotiationOutcome {
    match strategy {
        Strategy::Reactive => reactive(requester, responder, target),
        Strategy::Eager => eager(requester, responder, target),
    }
}

/// Which side holds/presents an item.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Side {
    Requester,
    Responder,
}

impl Side {
    fn other(self) -> Side {
        match self {
            Side::Requester => Side::Responder,
            Side::Responder => Side::Requester,
        }
    }
}

struct Runtime<'a> {
    parties: [&'a Party; 2],
    presented: [BTreeSet<String>; 2], // what each side has presented
    disclosed: [BTreeSet<String>; 2], // policy targets each side disclosed
    out: NegotiationOutcome,
}

impl<'a> Runtime<'a> {
    fn party(&self, s: Side) -> &'a Party {
        self.parties[s as usize]
    }

    fn presented(&self, s: Side) -> &BTreeSet<String> {
        &self.presented[s as usize]
    }

    fn send(&mut self, from: Side, what: &str, payload: &Term) {
        self.out.messages += 1;
        self.out.bytes += payload.serialized_size();
        self.out.trace.push(format!(
            "{} -> {}: {what} {payload}",
            self.party(from).name,
            self.party(from.other()).name
        ));
    }

    /// `side` presents credential `name` (requirements already met).
    fn present(&mut self, side: Side, name: &str) {
        let doc = self.party(side).credentials[name].clone();
        let msg = Term::build("present")
            .field("name", name)
            .child(doc)
            .finish();
        self.send(side, "present", &msg);
        self.presented[side as usize].insert(name.to_string());
        self.out.credentials_presented += 1;
    }

    /// `side` discloses its policy for `target`.
    fn disclose_policy(&mut self, side: Side, p: &Policy) {
        if self.disclosed[side as usize].insert(p.target.clone()) {
            let msg = p.to_term();
            self.send(side, "policy", &msg);
            self.out.policies_disclosed += 1;
            if p.sensitive {
                self.out.sensitive_leaked += 1;
            }
        }
    }
}

/// Reactive negotiation: a worklist of wanted items; a request for an item
/// triggers either presentation (requirements met), a policy disclosure
/// (requirements pending — which become requests back), or failure.
fn reactive(requester: &Party, responder: &Party, target: &str) -> NegotiationOutcome {
    let mut rt = Runtime {
        parties: [requester, responder],
        presented: [BTreeSet::new(), BTreeSet::new()],
        disclosed: [BTreeSet::new(), BTreeSet::new()],
        out: NegotiationOutcome::default(),
    };

    // Items wanted *from* a side, FIFO.
    let mut wanted: VecDeque<(Side, String)> = VecDeque::new();
    let mut requested: BTreeSet<(usize, String)> = BTreeSet::new();

    // Opening request.
    let open = Term::build("request").field("item", target).finish();
    rt.send(Side::Requester, "request", &open);
    wanted.push_back((Side::Responder, target.to_string()));
    requested.insert((Side::Responder as usize, target.to_string()));

    let mut stalled_rounds = 0;
    while let Some((holder, item)) = wanted.pop_front() {
        if rt.presented(holder).contains(&item) {
            continue;
        }
        if !rt.party(holder).credentials.contains_key(&item) {
            rt.out
                .trace
                .push(format!("{} cannot provide {item}", rt.party(holder).name));
            rt.out.success = false;
            return rt.out;
        }
        let policy = rt.party(holder).policy_for(&item).cloned();
        let unmet: Vec<String> = policy
            .as_ref()
            .map(|p| {
                p.requires
                    .iter()
                    .filter(|r| !rt.presented(holder.other()).contains(*r))
                    .cloned()
                    .collect()
            })
            .unwrap_or_default();
        if unmet.is_empty() {
            rt.present(holder, &item);
            stalled_rounds = 0;
        } else {
            // Disclose the guarding policy; the unmet requirements become
            // requests against the other side.
            let p = policy.expect("unmet implies policy");
            rt.disclose_policy(holder, &p);
            for r in unmet {
                if requested.insert((holder.other() as usize, r.clone())) {
                    let req = Term::build("request").field("item", &r).finish();
                    rt.send(holder, "request", &req);
                    wanted.push_back((holder.other(), r));
                }
            }
            // Re-queue the original item until its requirements are met.
            wanted.push_back((holder, item));
            stalled_rounds += 1;
            if stalled_rounds > wanted.len() + 1 {
                // No progress is possible: circular or unsatisfiable.
                rt.out.trace.push("negotiation deadlocked".into());
                rt.out.success = false;
                return rt.out;
            }
        }
    }
    rt.out.success = rt.presented[Side::Responder as usize].contains(target);
    rt.out
}

/// Eager negotiation: both sides dump all their policies in one bulk
/// message each, then present whatever credentials the joint fixpoint
/// allows.
fn eager(requester: &Party, responder: &Party, target: &str) -> NegotiationOutcome {
    let mut rt = Runtime {
        parties: [requester, responder],
        presented: [BTreeSet::new(), BTreeSet::new()],
        disclosed: [BTreeSet::new(), BTreeSet::new()],
        out: NegotiationOutcome::default(),
    };

    for side in [Side::Requester, Side::Responder] {
        let bundle = Term::build("policies")
            .children(rt.party(side).policies.iter().map(Policy::to_term))
            .finish();
        rt.send(side, "all policies", &bundle);
        rt.out.policies_disclosed += rt.party(side).policies.len();
        rt.out.sensitive_leaked += rt
            .party(side)
            .policies
            .iter()
            .filter(|p| p.sensitive)
            .count();
    }

    // Joint fixpoint: present every credential whose requirements are met.
    loop {
        let mut progress = false;
        for side in [Side::Requester, Side::Responder] {
            let presentable: Vec<String> = rt
                .party(side)
                .credentials
                .keys()
                .filter(|c| !rt.presented(side).contains(*c))
                .filter(|c| {
                    rt.party(side)
                        .policy_for(c)
                        .map(|p| {
                            p.requires
                                .iter()
                                .all(|r| rt.presented(side.other()).contains(r))
                        })
                        .unwrap_or(true)
                })
                .cloned()
                .collect();
            for c in presentable {
                rt.present(side, &c);
                progress = true;
            }
        }
        if !progress {
            break;
        }
    }
    rt.out.success = rt.presented[Side::Responder as usize].contains(target);
    rt.out
}

/// The paper's online-shopping scenario: Franz buys ten soccer balls from
/// fussbaelle.biz, establishing trust step by step.
pub fn fussbaelle_scenario() -> (Party, Party) {
    let franz = Party::new("franz")
        .with_credential(
            "credit_card",
            Term::build("credential")
                .field("kind", "credit_card")
                .field("number", "4111-XXXX")
                .finish(),
        )
        // Franz only reveals the card to shops that prove BBB membership —
        // and that policy itself is sensitive.
        .with_policy(Policy::new("credit_card", vec!["bbb_membership"]).sensitive());
    let shop = Party::new("fussbaelle.biz")
        .with_credential(
            "purchase",
            Term::build("confirmation")
                .field("item", "10 soccer balls")
                .finish(),
        )
        .with_credential(
            "bbb_membership",
            Term::build("certificate")
                .field("issuer", "Better Business Bureau of Internet")
                .finish(),
        )
        // Sales require a payment credential.
        .with_policy(Policy::new("purchase", vec!["credit_card"]))
        // The membership certificate is freely disclosed on request.
        .with_policy(Policy::new("bbb_membership", vec![]));
    (franz, shop)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fussbaelle_reactive_succeeds_with_minimal_disclosure() {
        let (franz, shop) = fussbaelle_scenario();
        let out = negotiate(&franz, &shop, "purchase", Strategy::Reactive);
        assert!(out.success, "trace: {:#?}", out.trace);
        // Only the two policies on the path travelled.
        assert_eq!(out.policies_disclosed, 2);
        // Franz's sensitive policy had to travel (it guards the very
        // credential the shop requested) — but nothing else did.
        assert_eq!(out.sensitive_leaked, 1);
        // bbb_membership + credit_card + purchase.
        assert_eq!(out.credentials_presented, 3);
    }

    #[test]
    fn fussbaelle_eager_discloses_everything() {
        let (franz, shop) = fussbaelle_scenario();
        let eager = negotiate(&franz, &shop, "purchase", Strategy::Eager);
        let reactive = negotiate(&franz, &shop, "purchase", Strategy::Reactive);
        assert!(eager.success);
        // Eager leaks all 3 policies; reactive only the 2 needed.
        assert_eq!(eager.policies_disclosed, 3);
        assert!(eager.policies_disclosed >= reactive.policies_disclosed);
        assert_eq!(eager.sensitive_leaked, 1);
    }

    #[test]
    fn reactive_scales_with_need_not_with_policy_count() {
        // A big shop with many irrelevant policies: reactive disclosure
        // must not grow with them (the paper's advantage 1).
        let (franz, mut shop) = fussbaelle_scenario();
        for i in 0..50 {
            shop = shop.with_policy(Policy::new(format!("unrelated_{i}"), vec!["x"]));
        }
        let reactive = negotiate(&franz, &shop, "purchase", Strategy::Reactive);
        let eager = negotiate(&franz, &shop, "purchase", Strategy::Eager);
        assert!(reactive.success);
        assert_eq!(reactive.policies_disclosed, 2);
        assert_eq!(eager.policies_disclosed, 53);
        assert!(eager.bytes > reactive.bytes);
    }

    #[test]
    fn failure_when_requirement_unavailable() {
        let poor = Party::new("poor"); // no credentials at all
        let (_, shop) = fussbaelle_scenario();
        let out = negotiate(&poor, &shop, "purchase", Strategy::Reactive);
        assert!(!out.success);
        let out = negotiate(&poor, &shop, "purchase", Strategy::Eager);
        assert!(!out.success);
    }

    #[test]
    fn failure_on_circular_policies() {
        // A requires the other's B first; the other requires A first.
        let a = Party::new("a")
            .with_credential("ca", Term::elem("ca"))
            .with_policy(Policy::new("ca", vec!["cb"]));
        let b = Party::new("b")
            .with_credential("cb", Term::elem("cb"))
            .with_policy(Policy::new("cb", vec!["ca"]));
        let out = negotiate(&a, &b, "cb", Strategy::Reactive);
        assert!(!out.success);
        let out = negotiate(&a, &b, "cb", Strategy::Eager);
        assert!(!out.success);
    }

    #[test]
    fn unknown_item_fails_cleanly() {
        let (franz, shop) = fussbaelle_scenario();
        let out = negotiate(&franz, &shop, "unicorn", Strategy::Reactive);
        assert!(!out.success);
    }

    #[test]
    fn message_count_matches_papers_walkthrough() {
        // The paper's five steps: request, shop policy, franz policy,
        // certificate, card — plus the final confirmation.
        let (franz, shop) = fussbaelle_scenario();
        let out = negotiate(&franz, &shop, "purchase", Strategy::Reactive);
        // 1 request(purchase) + policy(purchase) + 1 request(credit_card)
        // + policy(credit_card) + 1 request(bbb) + present(bbb)
        // + present(credit_card) + present(purchase).
        assert_eq!(out.messages, 8);
        assert!(out.success);
    }
}
