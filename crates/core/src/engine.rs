//! The reactive engine: local rule processing per Web node (Thesis 2).
//!
//! Each node runs one [`ReactiveEngine`] owning its rule base, resource
//! store, and event-query state. Engines interact *only* through events:
//! received payloads trigger rules; actions produce [`OutMessage`]s for
//! the transport to deliver (push, Thesis 3). There is no central
//! coordinator anywhere.
//!
//! Processing a message:
//!
//! 1. due timers fire ([`ReactiveEngine::advance_time`] — absence
//!    deadlines);
//! 2. AAA admission (Thesis 12): authenticate, authorize, account — a
//!    denied message triggers no rules but is accounted;
//! 3. `install_rules` payloads install the carried rule set (Thesis 11),
//!    gated by the `InstallRules` permission;
//! 4. DETECT rules derive higher-level events (Thesis 9);
//! 5. the event (and every derived event) is dispatched to the rules
//!    subscribed to its payload label — rule sets index their rules by
//!    trigger label, so unrelated rules cost nothing;
//! 6. for each answer of a rule's event query, the rule's branches run in
//!    order: the first branch whose condition holds executes its action
//!    once per condition answer (ECAA/ECnAn, Thesis 9), with bindings
//!    flowing event → condition → action (Thesis 7).
//!
//! Rule failures are contained: an action error is recorded in the
//! metrics, never unwinding the engine.

use std::collections::BTreeMap;
use std::sync::Arc;

use reweb_events::{
    alpha_skippable, registrations, Answer, DeductionLayer, Event, EventId, IncrementalEngine,
    JoinMode,
};
use reweb_obs::{Obs, Provenance, Stage};
use reweb_query::compiled::{
    AlphaNetwork, CandidateIndex, EventShape, InterpretedIndex, Registration,
};
use reweb_query::QueryEngine;
use reweb_term::{Dur, Sym, Term, Timestamp};
use reweb_update::{Executor, ProcedureDef};

use crate::shard::InMessage;

pub use reweb_update::OutMessage;

use crate::aaa::{Aaa, AaaConfig, MessageMeta, Permission};
use crate::meta::ruleset_from_term;
use crate::rule::{EcaRule, RuleSet};

/// Counters and error log of one engine (experiments E1, E9, E12, E13).
#[derive(Clone, Debug, Default)]
pub struct EngineMetrics {
    /// Messages received (via [`ReactiveEngine::receive`] or
    /// [`ReactiveEngine::raise_local`]), whether or not anything fired.
    pub events_received: u64,
    /// Messages refused by AAA admission; they trigger no rules.
    pub events_denied: u64,
    /// Higher-level events derived by DETECT rules (Thesis 9).
    pub events_derived: u64,
    /// Received or derived events dispatched to no rule at all — dropped
    /// without any partial-match or condition work.
    pub events_unmatched: u64,
    /// Rule firings (branch taken for at least one answer).
    pub rules_fired: u64,
    /// Non-trivial condition evaluations (the E9 currency).
    pub condition_evals: u64,
    /// Actions that returned an error (contained, logged in `errors`).
    pub actions_failed: u64,
    /// Outbound messages produced by actions.
    pub messages_sent: u64,
    /// Rules compiled into this engine.
    pub rules_installed: u64,
    /// Alpha tests and dispatch probes evaluated by the candidate index
    /// (E16): with the compiled network this tracks event shape and
    /// vocabulary, not installed-rule count.
    pub alpha_tests_run: u64,
    /// Candidate rules the index actually handed to dispatch, after
    /// dedup. `rules_considered / events_received` is the observable
    /// sharing ratio of the discrimination network.
    pub rules_considered: u64,
    /// Join candidates examined across all rules' event queries
    /// ([`reweb_events::incremental::EngineStats::join_attempts`] summed
    /// over every push and clock advance) — the E17 work currency.
    pub join_attempts: u64,
    /// Beta-index bucket probes across all rules' event queries (zero
    /// under [`reweb_events::JoinMode::Scan`]).
    pub index_probes: u64,
    /// Firing count per rule name.
    pub fires_by_rule: BTreeMap<String, u64>,
    /// Human-readable error log (action failures, denied installs, …).
    pub errors: Vec<String>,
}

impl EngineMetrics {
    /// Fold another engine's counters into this one — how a
    /// [`crate::shard::ShardedEngine`] aggregates its shards.
    pub fn merge(&mut self, other: &EngineMetrics) {
        self.events_received += other.events_received;
        self.events_denied += other.events_denied;
        self.events_derived += other.events_derived;
        self.events_unmatched += other.events_unmatched;
        self.rules_fired += other.rules_fired;
        self.condition_evals += other.condition_evals;
        self.actions_failed += other.actions_failed;
        self.messages_sent += other.messages_sent;
        self.rules_installed += other.rules_installed;
        self.alpha_tests_run += other.alpha_tests_run;
        self.rules_considered += other.rules_considered;
        self.join_attempts += other.join_attempts;
        self.index_probes += other.index_probes;
        for (name, n) in &other.fires_by_rule {
            *self.fires_by_rule.entry(name.clone()).or_default() += n;
        }
        self.errors.extend(other.errors.iter().cloned());
    }
}

struct CompiledRule {
    rule: EcaRule,
    ev: IncrementalEngine,
    procs: BTreeMap<String, ProcedureDef>,
    set_path: String,
    /// Alpha-network registrations of this rule's trigger patterns (tests
    /// pre-stripped for rules whose timing semantics forbid skipping) —
    /// kept so a match-mode switch can rebuild the index without
    /// recompiling patterns.
    regs: Vec<Registration>,
}

/// Which candidate-index implementation dispatch runs on — see
/// [`ReactiveEngine::set_match_mode`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MatchMode {
    /// The shared alpha discrimination network
    /// ([`reweb_query::compiled::AlphaNetwork`]); per-event dispatch cost
    /// tracks the event's shape, not the installed-rule count.
    #[default]
    Compiled,
    /// The historical label → rule-list index: every rule sharing the
    /// event's label is a candidate and gets the full pattern walk. Kept
    /// as the equivalence baseline (compiled output is pinned
    /// byte-identical to it).
    Interpreted,
}

/// Fold two replay horizons: unbounded (`None`) absorbs everything,
/// otherwise the larger bound wins.
fn fold_horizon(a: Option<Dur>, b: Option<Dur>) -> Option<Dur> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a.max(b)),
        _ => None,
    }
}

/// One top-level item installed into an engine, kept for
/// [`ReactiveEngine::program_source`].
enum InstalledItem {
    /// A rule set installed via [`ReactiveEngine::install`] (disabled
    /// subtrees pruned away, since `Display` cannot express them).
    Set(RuleSet),
    /// A bare rule installed via [`ReactiveEngine::add_rule`].
    Rule(EcaRule),
}

/// The engine-internal sequence state that stamps events: the virtual
/// clock, the received-event id counter, and the derived-event id
/// counter. Event ids order simultaneous composite answers, so crash
/// recovery (`reweb_persist`) must capture these *before* a log record is
/// processed and restore them exactly before replaying that record —
/// otherwise a recovered engine's future outputs could sort differently
/// from the uninterrupted run's.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplayMark {
    /// The engine's virtual clock ([`ReactiveEngine::now`]).
    pub clock: Timestamp,
    /// Received-event sequence counter (next event gets `seq + 1`).
    pub event_seq: u64,
    /// Derived-event sequence counter of the deduction layer.
    pub derived_seq: u64,
}

/// The enabled projection of a rule set: `None` when the set itself is
/// disabled, otherwise a copy with disabled descendants removed. This is
/// what an install actually *does*, and — unlike disabledness — it is
/// expressible in the textual rule language, so it is what
/// [`ReactiveEngine::program_source`] records.
fn enabled_only(set: &RuleSet) -> Option<RuleSet> {
    if !set.enabled {
        return None;
    }
    let mut out = set.clone();
    out.children = set.children.iter().filter_map(enabled_only).collect();
    Some(out)
}

/// A per-node ECA rule engine.
pub struct ReactiveEngine {
    /// This node's own URI (stamped on outbound messages by the host).
    pub uri: String,
    /// Local persistent data and views.
    pub qe: QueryEngine,
    /// Authentication/authorization/accounting state.
    pub aaa: Aaa,
    compiled: Vec<CompiledRule>,
    /// The candidate index dispatch consults per event: the shared alpha
    /// discrimination network by default, the historical label map under
    /// [`MatchMode::Interpreted`]. Extended live on each rule install —
    /// never rebuilt from scratch except on an explicit mode switch.
    index: Box<dyn CandidateIndex>,
    match_mode: MatchMode,
    /// The join implementation every rule's `And`/`Seq` operators run on
    /// (see [`ReactiveEngine::set_join_mode`]). Applied to already
    /// installed rules on switch and remembered for future installs.
    join_mode: JoinMode,
    /// Rules whose event engines must observe every clock tick: absence
    /// deadlines fire on ticks, and TTL gc timing is output-visible. All
    /// other rules advance lazily on their next candidate push, so a
    /// tick costs `O(|advance_idxs|)`, not `O(rules)`.
    advance_idxs: Vec<usize>,
    /// Reused dispatch scratch: the candidate rule-index list is built in
    /// this buffer instead of allocating a fresh `Vec` per event.
    scratch_idxs: Vec<usize>,
    deduction: DeductionLayer,
    default_ttl: Option<Dur>,
    next_event_id: u64,
    now: Timestamp,
    /// Test hook: receiving an event with this label panics mid-action,
    /// simulating a defective rule body (see [`ReactiveEngine::rig_panic_on_label`]).
    panic_on_label: Option<String>,
    /// Top-level installed items, in order (see
    /// [`ReactiveEngine::program_source`]).
    installed: Vec<InstalledItem>,
    /// Cached fold of every installed rule's and DETECT rule's replay
    /// horizon — rules are never uninstalled, so the fold only ever
    /// widens, and the durability layer reads it per logged record.
    horizon: Option<Dur>,
    /// Warmup-replay mode: event-query and deduction state advances, but
    /// no rule fires (see [`ReactiveEngine::set_replay_warmup`]).
    replay_warmup: bool,
    /// Counters and error log (see [`EngineMetrics`]).
    pub metrics: EngineMetrics,
    /// Terms written by `LOG` actions.
    pub action_log: Vec<Term>,
    /// Observability handle: tracing, flight recorder, histograms.
    /// Always present (disabled by default) so the hot path pays one
    /// relaxed load, never an `Option` branch; shards of one
    /// `ShardedEngine` share a single handle, which is what makes the
    /// histograms mergeable across shards for free.
    obs: Arc<Obs>,
}

impl ReactiveEngine {
    /// An empty engine for the node at `uri`.
    pub fn new(uri: impl Into<String>) -> ReactiveEngine {
        ReactiveEngine {
            uri: uri.into(),
            qe: QueryEngine::new(),
            aaa: Aaa::new(AaaConfig::default()),
            compiled: Vec::new(),
            index: Box::new(AlphaNetwork::new()),
            match_mode: MatchMode::Compiled,
            join_mode: JoinMode::default(),
            advance_idxs: Vec::new(),
            scratch_idxs: Vec::new(),
            deduction: DeductionLayer::new(),
            default_ttl: None,
            next_event_id: 0,
            now: Timestamp::ZERO,
            panic_on_label: None,
            installed: Vec::new(),
            horizon: Some(Dur::ZERO),
            replay_warmup: false,
            metrics: EngineMetrics::default(),
            action_log: Vec::new(),
            obs: Arc::new(Obs::new()),
        }
    }

    /// Attach a shared observability handle (replacing the default
    /// disabled one). Pass clones of one `Arc` to every engine, shard,
    /// and tier that should report into the same recorder/histograms.
    pub fn set_obs(&mut self, obs: Arc<Obs>) {
        self.obs = obs;
    }

    /// The attached observability handle (disabled unless enabled or
    /// replaced via [`ReactiveEngine::set_obs`]).
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// Volatility bound for window-less event queries (Thesis 4): partial
    /// matches older than this are disposed of. Applies to rules installed
    /// *after* the call.
    pub fn set_default_ttl(&mut self, ttl: Dur) {
        self.default_ttl = Some(ttl);
    }

    /// Install a rule set: registers its views and DETECT rules, compiles
    /// its (enabled) rules, scoping procedures root-to-leaf with inner
    /// definitions shadowing outer ones.
    pub fn install(&mut self, set: &RuleSet) -> crate::Result<()> {
        // Record what this install *means* before running it: disabled
        // subtrees are pruned (they install nothing and the textual form
        // cannot express disabledness), and a failing install is still
        // recorded because installation has no rollback — whatever
        // partially installed is reproduced by re-running the same text.
        if let Some(effective) = enabled_only(set) {
            self.installed.push(InstalledItem::Set(effective));
        }
        self.install_scoped(set, &BTreeMap::new(), "")?;
        Ok(())
    }

    /// Parse and install a rule program (see [`crate::parse_program`]).
    pub fn install_program(&mut self, src: &str) -> crate::Result<()> {
        let set = crate::parser::parse_program(src)?;
        self.install(&set)
    }

    fn install_scoped(
        &mut self,
        set: &RuleSet,
        inherited: &BTreeMap<String, ProcedureDef>,
        parent_path: &str,
    ) -> crate::Result<()> {
        if !set.enabled {
            return Ok(());
        }
        let path = if parent_path.is_empty() {
            set.name.clone()
        } else {
            format!("{parent_path}.{}", set.name)
        };
        let mut procs = inherited.clone();
        for p in &set.procedures {
            procs.insert(p.name.clone(), p.clone());
        }
        for (uri, v) in &set.views {
            self.qe.register_view(uri.clone(), v.clone());
        }
        for er in &set.event_rules {
            self.deduction.register(er.clone())?;
            // DETECT engines run without a TTL (see DeductionLayer).
            self.horizon = fold_horizon(self.horizon, er.on.replay_horizon(None));
        }
        for r in &set.rules {
            self.add_rule_scoped(r.clone(), procs.clone(), path.clone());
        }
        for c in &set.children {
            self.install_scoped(c, &procs, &path)?;
        }
        Ok(())
    }

    /// Install a single rule with no scoped procedures.
    pub fn add_rule(&mut self, rule: EcaRule) {
        self.installed.push(InstalledItem::Rule(rule.clone()));
        self.add_rule_scoped(rule, BTreeMap::new(), String::new());
    }

    fn add_rule_scoped(
        &mut self,
        rule: EcaRule,
        procs: BTreeMap<String, ProcedureDef>,
        set_path: String,
    ) {
        let mut ev = IncrementalEngine::new(&rule.on).with_join_mode(self.join_mode);
        if let Some(ttl) = self.default_ttl {
            ev = ev.with_ttl(ttl);
        }
        self.horizon = fold_horizon(self.horizon, rule.on.replay_horizon(self.default_ttl));
        let idx = self.compiled.len();
        let skippable = alpha_skippable(&rule.on) && self.default_ttl.is_none();
        let mut regs = registrations(&rule.on);
        if !skippable {
            // Deadline/TTL timing must see the full same-label stream:
            // register label-only, which is exactly the interpreted
            // candidate set.
            for r in &mut regs {
                r.tests.clear();
            }
        }
        for r in &regs {
            self.index.insert(r, idx);
        }
        if rule.on.has_absence() || self.default_ttl.is_some() {
            self.advance_idxs.push(idx);
        }
        self.compiled.push(CompiledRule {
            rule,
            ev,
            procs,
            set_path,
            regs,
        });
        self.metrics.rules_installed += 1;
    }

    /// Number of compiled (installed, enabled) rules.
    pub fn rule_count(&self) -> usize {
        self.compiled.len()
    }

    /// Switch the candidate-index implementation and rebuild it from the
    /// stored registrations of every installed rule. Dispatch outputs are
    /// byte-identical in both modes — pinned by the `compiled_equivalence`
    /// property test; [`MatchMode::Interpreted`] exists as that pin's
    /// baseline and for the E16 scaling comparison.
    pub fn set_match_mode(&mut self, mode: MatchMode) {
        self.match_mode = mode;
        let mut index: Box<dyn CandidateIndex> = match mode {
            MatchMode::Compiled => Box::new(AlphaNetwork::new()),
            MatchMode::Interpreted => Box::new(InterpretedIndex::new()),
        };
        for (idx, cr) in self.compiled.iter().enumerate() {
            for r in &cr.regs {
                index.insert(r, idx);
            }
        }
        self.index = index;
    }

    /// The candidate-index implementation dispatch currently runs on.
    pub fn match_mode(&self) -> MatchMode {
        self.match_mode
    }

    /// Switch the join implementation of every installed rule's (and
    /// DETECT rule's) `And`/`Seq` operators — the beta-network analogue
    /// of [`ReactiveEngine::set_match_mode`]. Index state rebuilds from
    /// the stored answers, so the switch is legal mid-stream; answer
    /// sequences are byte-identical in both modes (pinned by the
    /// `join_equivalence` differential proptest). Rules installed later
    /// inherit the mode.
    pub fn set_join_mode(&mut self, mode: JoinMode) {
        self.join_mode = mode;
        for cr in self.compiled.iter_mut() {
            cr.ev.set_join_mode(mode);
        }
        self.deduction.set_join_mode(mode);
    }

    /// The join implementation event queries currently run on.
    pub fn join_mode(&self) -> JoinMode {
        self.join_mode
    }

    /// Nodes in the candidate index — under [`MatchMode::Compiled`] the
    /// size of the shared discrimination network, whose growth is
    /// sublinear in rules whenever rules share tests (the E16 sharing
    /// metric).
    pub fn index_node_count(&self) -> usize {
        self.index.node_count()
    }

    /// Reprint everything installed into this engine as a parseable rule
    /// program (the `RULE_LANGUAGE.md` textual syntax): the sets and
    /// bare rules passed to [`ReactiveEngine::install`],
    /// [`ReactiveEngine::install_program`], and
    /// [`ReactiveEngine::add_rule`] — including rule sets that arrived
    /// dynamically in `install_rules` messages — in installation order,
    /// with disabled subtrees pruned (they installed nothing). Feeding
    /// the result to [`ReactiveEngine::install_program`] on a blank
    /// engine reproduces the rule base; reprinting *that* engine is a
    /// fixed point. Snapshots in `reweb_persist` persist rule programs in
    /// exactly this textual form; standalone it is the engine's rule
    /// export/debug surface.
    pub fn program_source(&self) -> String {
        let mut out = String::new();
        for item in &self.installed {
            if !out.is_empty() {
                out.push_str("\n\n");
            }
            match item {
                InstalledItem::Set(s) => out.push_str(&s.to_string()),
                InstalledItem::Rule(r) => out.push_str(&r.to_string()),
            }
        }
        out
    }

    /// Warmup-replay mode for crash recovery: while set, events still
    /// flow through AAA admission, deduction, and every rule's
    /// incremental event-query state — but **no rule fires**: no
    /// condition is evaluated, no action runs, no store write, output,
    /// log entry, or metric results. `reweb_persist` uses this to rebuild
    /// composite-event partial state from a log suffix whose *effects*
    /// are already covered by a snapshot.
    pub fn set_replay_warmup(&mut self, on: bool) {
        self.replay_warmup = on;
    }

    /// Capture the sequence state a recovery must restore before
    /// replaying the next input (see [`ReplayMark`]).
    pub fn replay_mark(&self) -> ReplayMark {
        ReplayMark {
            clock: self.now,
            event_seq: self.next_event_id,
            derived_seq: self.deduction.derived_seq(),
        }
    }

    /// Restore a previously captured [`ReplayMark`] — recovery only. The
    /// clock is set without firing any deadline.
    pub fn restore_replay_mark(&mut self, m: ReplayMark) {
        self.now = m.clock;
        self.next_event_id = m.event_seq;
        self.deduction.set_derived_seq(m.derived_seq);
    }

    /// The engine's replay horizon: a duration `B` such that no input
    /// older than `now - B` can still influence a future answer of any
    /// installed rule or DETECT rule (see
    /// [`reweb_events::EventQuery::replay_horizon`]). `None` = unbounded
    /// (some installed query retains state forever). Recovery replays
    /// exactly this much log suffix to rebuild composite-event state.
    pub fn replay_horizon(&self) -> Option<Dur> {
        // Cached: folded at install time (per rule, under the TTL the
        // rule was compiled with; DETECT rules without one), because the
        // durability layer consults this per logged record and rules are
        // never uninstalled — the fold only ever widens.
        self.horizon
    }

    /// Does any installed rule or DETECT rule use an `absence` operator
    /// (i.e. can this engine ever hold a pending deadline)?
    pub fn has_deadline_rules(&self) -> bool {
        self.compiled.iter().any(|c| c.rule.on.has_absence()) || self.deduction.has_absence()
    }

    /// Fire every absence deadline already due at the *current* clock,
    /// bypassing the monotone-clock fast path of
    /// [`ReactiveEngine::advance_time`]. Recovery uses this (under
    /// warmup mode) to discharge deadlines that a restored clock jumped
    /// over, so they cannot fire spuriously on the first post-recovery
    /// input.
    pub fn flush_due_deadlines(&mut self) -> Vec<OutMessage> {
        self.advance_fire()
    }

    /// Total partial-match state across all rules (Thesis 4 metric).
    pub fn state_size(&self) -> usize {
        self.compiled.iter().map(|c| c.ev.state_size()).sum()
    }

    /// Earliest pending absence deadline across all rules and DETECT
    /// rules — hosts (the Web simulator) use this to schedule a timely
    /// [`ReactiveEngine::advance_time`] call instead of polling the clock.
    pub fn next_deadline(&self) -> Option<Timestamp> {
        let rules = self.compiled.iter().filter_map(|c| c.ev.next_deadline());
        rules.chain(self.deduction.next_deadline()).min()
    }

    /// The engine's current virtual time.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Test hook: make this engine panic (as a defective rule action
    /// would) whenever it receives an event with the given label. Used by
    /// the shard executor's panic-containment tests; hidden from docs
    /// because it exists only to rig failures.
    #[doc(hidden)]
    pub fn rig_panic_on_label(&mut self, label: impl Into<String>) {
        self.panic_on_label = Some(label.into());
    }

    /// Receive a message from the Web: AAA admission, rule installation,
    /// deduction, dispatch. Returns the outbound messages the triggered
    /// actions produced.
    pub fn receive(
        &mut self,
        payload: Term,
        meta: &MessageMeta,
        now: Timestamp,
    ) -> Vec<OutMessage> {
        if let Some(rigged) = &self.panic_on_label {
            if payload.label() == Some(rigged.as_str()) {
                panic!("rigged action panic on label `{rigged}`");
            }
        }
        let mut out = self.advance_time(now);
        self.metrics.events_received += 1;
        // `as_str` on the interned label is `&'static`, so admission works
        // on a borrowed label with no per-event `String` allocation.
        let label: &str = payload.label_sym().map(Sym::as_str).unwrap_or("");
        let (admission, acct_event) = self.aaa.admit(meta, label, payload.serialized_size(), now);
        if !admission.allowed {
            self.metrics.events_denied += 1;
            self.metrics.errors.push(format!(
                "denied message `{label}` from {}: {}",
                meta.from, admission.reason
            ));
        } else {
            // Thesis 11: rules received as messages.
            if label == "install_rules" {
                if self
                    .aaa
                    .check(&admission.principal, &Permission::InstallRules)
                {
                    match payload
                        .children()
                        .first()
                        .ok_or_else(|| {
                            reweb_term::TermError::InvalidEdit(
                                "install_rules without a rule set".into(),
                            )
                        })
                        .and_then(ruleset_from_term)
                    {
                        Ok(set) => {
                            if let Err(e) = self.install(&set) {
                                self.metrics.errors.push(format!("install failed: {e}"));
                            }
                        }
                        Err(e) => self.metrics.errors.push(format!("install failed: {e}")),
                    }
                } else {
                    self.metrics
                        .errors
                        .push(format!("{} may not install rules", admission.principal));
                }
            }
            self.process_event(payload, &meta.from, &mut out);
        }
        // Double reactivity: the accounting record is itself an event.
        if let Some(acct) = acct_event {
            self.process_event(acct, "aaa:local", &mut out);
        }
        out
    }

    /// Receive a batch of messages, tagging every output with the index
    /// of the message that produced it — the attribution surface the
    /// networked ingress tier uses to route reactions back to their
    /// submitters. Equivalent to calling [`ReactiveEngine::receive`] per
    /// message and concatenating: stripping the tags reproduces that
    /// output byte for byte.
    pub fn receive_batch_tagged(&mut self, msgs: &[InMessage]) -> Vec<(u32, OutMessage)> {
        let obs_on = self.obs.is_enabled();
        let t0 = if obs_on { self.obs.now_ns() } else { 0 };
        let mut out = Vec::new();
        for (k, m) in msgs.iter().enumerate() {
            out.extend(
                self.receive(m.payload.clone(), &m.meta, m.at)
                    .into_iter()
                    .map(|o| (k as u32, o)),
            );
        }
        if obs_on && !msgs.is_empty() {
            self.obs.batch.record(self.obs.now_ns().saturating_sub(t0));
        }
        out
    }

    /// Raise an event locally (no AAA — it never crossed the Web).
    pub fn raise_local(&mut self, payload: Term, now: Timestamp) -> Vec<OutMessage> {
        let mut out = self.advance_time(now);
        self.metrics.events_received += 1;
        self.process_event(payload, "local", &mut out);
        out
    }

    /// Advance the virtual clock: fires absence deadlines in rule event
    /// queries and DETECT rules.
    pub fn advance_time(&mut self, now: Timestamp) -> Vec<OutMessage> {
        if now <= self.now && self.now != Timestamp::ZERO {
            return Vec::new();
        }
        self.now = self.now.max(now);
        self.advance_fire()
    }

    /// Shared body of [`ReactiveEngine::advance_time`] and
    /// [`ReactiveEngine::flush_due_deadlines`]: advance the deduction
    /// layer and every *tick-sensitive* rule (see `advance_idxs`) to the
    /// current clock. Remaining rules catch up on their next candidate
    /// push — their windowed gc is output-invisible, so delaying it never
    /// changes an answer.
    fn advance_fire(&mut self) -> Vec<OutMessage> {
        let now = self.now;
        let mut out = Vec::new();
        for i in 0..self.advance_idxs.len() {
            let idx = self.advance_idxs[i];
            let s0 = self.compiled[idx].ev.stats;
            let answers = self.compiled[idx].ev.advance_to(now);
            self.absorb_join_stats(s0, self.compiled[idx].ev.stats);
            for a in answers {
                // Deadline-driven firings have no triggering event, so
                // their spans land on trace 0 (untraced samples).
                self.fire(idx, &a, 0, &mut out);
            }
        }
        let d0 = self.deduction_stats();
        let advanced = self.deduction.advance_to(now);
        self.absorb_deduction_stats(d0);
        match advanced {
            Ok(derived) => {
                for d in derived {
                    self.metrics.events_derived += 1;
                    self.dispatch(&d, &mut out);
                }
            }
            Err(e) => self.metrics.errors.push(format!("deduction: {e}")),
        }
        out
    }

    /// Fold the events-layer join counters accumulated between two
    /// [`reweb_events::incremental::EngineStats`] observations into the
    /// engine metrics — without this the per-rule counters would be
    /// dropped at the core boundary and sharded/durable runs (which only
    /// see [`EngineMetrics`]) would report 0.
    fn absorb_join_stats(
        &mut self,
        before: reweb_events::incremental::EngineStats,
        after: reweb_events::incremental::EngineStats,
    ) {
        self.metrics.join_attempts += after.join_attempts - before.join_attempts;
        self.metrics.index_probes += after.index_probes - before.index_probes;
    }

    /// Summed DETECT-engine counters, or a zero default when the
    /// deduction layer is empty (skips the per-rule walk on the hot path).
    fn deduction_stats(&self) -> reweb_events::incremental::EngineStats {
        if self.deduction.is_empty() {
            reweb_events::incremental::EngineStats::default()
        } else {
            self.deduction.stats_total()
        }
    }

    fn absorb_deduction_stats(&mut self, before: reweb_events::incremental::EngineStats) {
        if !self.deduction.is_empty() {
            let after = self.deduction.stats_total();
            self.absorb_join_stats(before, after);
        }
    }

    fn process_event(&mut self, payload: Term, source: &str, out: &mut Vec<OutMessage>) {
        let tracing = self.obs.is_enabled();
        self.next_event_id += 1;
        let mut e = Event::new(EventId(self.next_event_id), self.now, payload)
            .with_source(source.to_string());
        let t0 = if tracing {
            e.trace = self.obs.next_trace();
            self.obs.now_ns()
        } else {
            0
        };
        let d0 = self.deduction_stats();
        let pushed = self.deduction.push(&e);
        self.absorb_deduction_stats(d0);
        let derived = match pushed {
            Ok(d) => d,
            Err(err) => {
                self.metrics.errors.push(format!("deduction: {err}"));
                Vec::new()
            }
        };
        self.metrics.events_derived += derived.len() as u64;
        if tracing {
            // Admission span: event construction + DETECT derivation,
            // everything between entry and alpha dispatch.
            self.obs.span_since(e.trace, Stage::Admission, t0);
        }
        self.dispatch(&e, out);
        for d in derived {
            self.dispatch(&d, out);
        }
    }

    fn dispatch(&mut self, e: &Event, out: &mut Vec<OutMessage>) {
        // Take the scratch buffer for the duration of the dispatch; `fire`
        // borrows `self` mutably, so the buffer lives as a local and is
        // put back before returning. (Dispatch never re-enters itself —
        // derived events dispatch from `process_event` — but even if it
        // did, the nested call would simply see an empty scratch.)
        let mut idxs = std::mem::take(&mut self.scratch_idxs);
        idxs.clear();
        let tracing = e.trace != 0 && self.obs.is_enabled();
        let t_alpha = if tracing { self.obs.now_ns() } else { 0 };
        let shape = EventShape::of(&e.payload);
        self.index
            .collect(&shape, &mut idxs, &mut self.metrics.alpha_tests_run);
        // Rules registered per trigger pattern, so a multi-part query can
        // surface more than once; sorting restores install order, which
        // is the firing order the interpreted matcher pins.
        idxs.sort_unstable();
        idxs.dedup();
        self.metrics.rules_considered += idxs.len() as u64;
        if tracing {
            self.obs.span_since(e.trace, Stage::Alpha, t_alpha);
        }
        if idxs.is_empty() {
            self.metrics.events_unmatched += 1;
            self.scratch_idxs = idxs;
            return;
        }
        for &idx in &idxs {
            let s0 = self.compiled[idx].ev.stats;
            let t_beta = if tracing { self.obs.now_ns() } else { 0 };
            let answers = self.compiled[idx].ev.push(e);
            if tracing {
                self.obs.span_since(e.trace, Stage::Beta, t_beta);
            }
            self.absorb_join_stats(s0, self.compiled[idx].ev.stats);
            for a in answers {
                self.fire(idx, &a, e.trace, out);
            }
        }
        self.scratch_idxs = idxs;
    }

    /// Run the branches of rule `idx` for one event-query answer.
    fn fire(&mut self, idx: usize, ans: &Answer, trace: u64, out: &mut Vec<OutMessage>) {
        // Warmup replay rebuilds event-query state only: the answer's
        // *effects* (conditions, actions, store writes, outputs, metric
        // counts) already happened before the crash and live in the
        // snapshot this replay runs on top of.
        if self.replay_warmup {
            return;
        }
        let obs_on = self.obs.is_enabled();
        let t_fire = if obs_on { self.obs.now_ns() } else { 0 };
        // Split borrows: the compiled rule is read, the query engine is
        // mutated by actions, metrics/log are appended to.
        let ReactiveEngine {
            qe,
            compiled,
            metrics,
            action_log,
            obs,
            ..
        } = self;
        let cr = &compiled[idx];
        let binds = &ans.bindings;
        for branch in &cr.rule.branches {
            let answers = if branch.cond.is_trivial() {
                vec![binds.clone()]
            } else {
                metrics.condition_evals += 1;
                match qe.eval_condition(&branch.cond, binds) {
                    Ok(a) => a,
                    Err(e) => {
                        metrics
                            .errors
                            .push(format!("rule {}: condition error: {e}", cr.rule.name));
                        return;
                    }
                }
            };
            if answers.is_empty() {
                continue; // try the next branch (ECAA/ECnAn)
            }
            metrics.rules_fired += 1;
            *metrics
                .fires_by_rule
                .entry(cr.rule.name.clone())
                .or_default() += 1;
            let mut produced = false;
            for b in answers {
                let mut ex = Executor::new(qe, &cr.procs);
                if let Err(e) = ex.execute(&branch.action, &b) {
                    metrics.actions_failed += 1;
                    metrics.errors.push(format!(
                        "rule {} ({}): action failed: {e}",
                        cr.rule.name, cr.set_path
                    ));
                }
                metrics.messages_sent += ex.outbox.len() as u64;
                if obs_on && !ex.outbox.is_empty() {
                    produced = true;
                    // One shared provenance per firing: which rule, on
                    // which constituent events, on which trace.
                    let prov = Arc::new(Provenance {
                        rule: cr.rule.name.clone(),
                        events: ans.constituents.iter().map(|id| id.0).collect(),
                        trace,
                    });
                    for m in &mut ex.outbox {
                        m.provenance = Some(Arc::clone(&prov));
                    }
                }
                out.extend(ex.outbox);
                action_log.extend(ex.log);
            }
            if obs_on {
                obs.span_since(trace, Stage::Fire, t_fire);
                if produced {
                    obs.span_since(trace, Stage::Reaction, t_fire);
                }
            }
            return; // first branch that held fires; later branches skipped
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reweb_term::parse_term;

    fn shop_engine() -> ReactiveEngine {
        let mut e = ReactiveEngine::new("http://shop");
        e.qe.store.put(
            "http://shop/customers",
            parse_term("customers[customer{id[\"c1\"], order[\"o1\"]}]").unwrap(),
        );
        e.install_program(
            r#"
            RULESET shop
              PROCEDURE ship(Order, Customer) DO
                SEQ
                  PERSIST shipment{order[var Order], customer[var Customer]} IN "http://shop/shipments";
                  SEND shipped{order[var Order]} TO "http://mail";
                END
              END

              RULE on_payment
                ON and( order{{id[[var O]], total[[var T]]}},
                        payment{{order[[var O]], amount[[var A]]}} ) within 2h
                WHERE var A >= var T
                IF in "http://shop/customers" customer{{id[[var C]], order[[var O]]}}
                THEN CALL ship(var O, var C)
                ELSE SEND unmatched{order[var O]} TO "http://shop/alerts"
              END
            END
            "#,
        )
        .unwrap();
        e
    }

    #[test]
    fn full_rule_fires_through_condition_into_procedure() {
        let mut e = shop_engine();
        let meta = MessageMeta::from_uri("http://client");
        let out = e.receive(
            parse_term("order{id[\"o1\"], total[\"50\"]}").unwrap(),
            &meta,
            Timestamp(1_000),
        );
        assert!(out.is_empty());
        let out = e.receive(
            parse_term("payment{order[\"o1\"], amount[\"60\"]}").unwrap(),
            &meta,
            Timestamp(2_000),
        );
        // The composite fired, the condition joined the customer, the
        // procedure persisted and sent.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to, "http://mail");
        assert_eq!(out[0].payload.to_string(), "shipped{order[\"o1\"]}");
        let shipments = e.qe.store.get("http://shop/shipments").unwrap();
        assert!(shipments.to_string().contains("customer[\"c1\"]"));
        assert_eq!(e.metrics.rules_fired, 1);
        assert_eq!(e.metrics.condition_evals, 1);
    }

    #[test]
    fn else_branch_for_unknown_customer() {
        let mut e = shop_engine();
        let meta = MessageMeta::from_uri("http://client");
        e.receive(
            parse_term("order{id[\"o9\"], total[\"50\"]}").unwrap(),
            &meta,
            Timestamp(1_000),
        );
        let out = e.receive(
            parse_term("payment{order[\"o9\"], amount[\"60\"]}").unwrap(),
            &meta,
            Timestamp(2_000),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to, "http://shop/alerts");
        // The ECAA else took one condition evaluation, not two.
        assert_eq!(e.metrics.condition_evals, 1);
    }

    #[test]
    fn where_clause_guards_event() {
        let mut e = shop_engine();
        let meta = MessageMeta::from_uri("http://client");
        e.receive(
            parse_term("order{id[\"o1\"], total[\"50\"]}").unwrap(),
            &meta,
            Timestamp(1_000),
        );
        // Underpayment: WHERE var A >= var T fails, nothing fires.
        let out = e.receive(
            parse_term("payment{order[\"o1\"], amount[\"10\"]}").unwrap(),
            &meta,
            Timestamp(2_000),
        );
        assert!(out.is_empty());
        assert_eq!(e.metrics.rules_fired, 0);
    }

    #[test]
    fn label_index_skips_unrelated_rules() {
        let mut e = shop_engine();
        let meta = MessageMeta::from_uri("http://client");
        // An event with an unrelated label triggers no event-query work.
        e.receive(
            parse_term("weather{t[\"20\"]}").unwrap(),
            &meta,
            Timestamp(1),
        );
        assert_eq!(e.state_size(), 0);
    }

    #[test]
    fn timer_fires_absence_rule() {
        let mut e = ReactiveEngine::new("http://me");
        e.install_program(
            r#"
            RULE stranded
              ON absence(cancel{{no[[var N]]}}, rebooked{{no[[var N]]}}, 2h)
              DO SEND alarm{no[var N]} TO "http://phone"
            END
            "#,
        )
        .unwrap();
        let meta = MessageMeta::from_uri("http://airline");
        e.receive(
            parse_term("cancel{no[\"LH1\"]}").unwrap(),
            &meta,
            Timestamp(0),
        );
        let out = e.advance_time(Timestamp(7_200_000));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload.to_string(), "alarm{no[\"LH1\"]}");
    }

    #[test]
    fn detect_rule_derives_and_triggers() {
        let mut e = ReactiveEngine::new("http://me");
        e.install_program(
            r#"
            DETECT big{id[var O]} ON order{{id[[var O]], total[[var T]]}} where var T >= 100 END
            RULE on_big ON big{{id[[var O]]}} DO SEND audit{id[var O]} TO "http://audit" END
            "#,
        )
        .unwrap();
        let meta = MessageMeta::from_uri("http://client");
        let out = e.receive(
            parse_term("order{id[\"o1\"], total[\"500\"]}").unwrap(),
            &meta,
            Timestamp(1),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to, "http://audit");
        assert_eq!(e.metrics.events_derived, 1);
    }

    #[test]
    fn aaa_denies_and_accounts() {
        let mut e = ReactiveEngine::new("http://me");
        e.aaa = Aaa::new(AaaConfig {
            require_auth: true,
            authorize: true,
            accounting: true,
            accounting_events: true,
        });
        e.aaa.register("franz", "pw", vec![]);
        e.aaa
            .acl
            .grant("franz", Permission::ReceiveEvent("order".into()));
        e.install_program(
            r#"
            RULE audit_denied
              ON accounting{{allowed[["false"]], principal[[var P]]}}
              DO PERSIST denied[var P] IN "http://me/audit"
            END
            "#,
        )
        .unwrap();
        // Unauthenticated: denied, no rule processing of the payload...
        let out = e.receive(
            parse_term("order{id[\"o1\"]}").unwrap(),
            &MessageMeta::from_uri("http://x"),
            Timestamp(1),
        );
        assert!(out.is_empty());
        assert_eq!(e.metrics.events_denied, 1);
        // ...but the accounting event (double reactivity) fired our audit
        // rule.
        let audit = e.qe.store.get("http://me/audit").unwrap();
        assert_eq!(audit.children().len(), 1);
    }

    #[test]
    fn install_rules_message_requires_permission() {
        use crate::meta::ruleset_to_term;
        use crate::parser::parse_program;

        let carried =
            parse_program(r#"RULE injected ON ping DO SEND pong TO "http://attacker" END"#)
                .unwrap();
        let payload = Term::ordered("install_rules", vec![ruleset_to_term(&carried)]);

        // Without permission: rejected.
        let mut e = ReactiveEngine::new("http://me");
        e.aaa = Aaa::new(AaaConfig {
            require_auth: false,
            authorize: true,
            accounting: false,
            accounting_events: false,
        });
        e.aaa.acl.grant("*", Permission::ReceiveEvent("*".into()));
        let before = e.rule_count();
        e.receive(
            payload.clone(),
            &MessageMeta::from_uri("http://partner"),
            Timestamp(1),
        );
        assert_eq!(e.rule_count(), before);
        assert!(e
            .metrics
            .errors
            .iter()
            .any(|m| m.contains("may not install")));

        // With permission: installed and live.
        let mut e = ReactiveEngine::new("http://me");
        e.receive(
            payload,
            &MessageMeta::from_uri("http://partner"),
            Timestamp(1),
        );
        assert_eq!(e.rule_count(), 1);
        let out = e.receive(
            Term::elem("ping"),
            &MessageMeta::from_uri("http://partner"),
            Timestamp(2),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to, "http://attacker");
    }

    #[test]
    fn action_failure_is_contained() {
        let mut e = ReactiveEngine::new("http://me");
        e.install_program(
            r#"
            RULE bad ON ping DO UPDATE DELETE nothing IN "http://missing" END
            RULE good ON ping DO SEND pong TO "http://ok" END
            "#,
        )
        .unwrap();
        let out = e.raise_local(Term::elem("ping"), Timestamp(1));
        // The failing rule did not prevent the good one.
        assert_eq!(out.len(), 1);
        assert_eq!(e.metrics.actions_failed, 1);
        assert!(!e.metrics.errors.is_empty());
    }

    #[test]
    fn disabled_ruleset_not_installed() {
        use crate::parser::parse_program;
        let mut set = parse_program(
            r#"
            RULESET a
              RULE r1 ON ping DO NOOP END
              RULESET b
                RULE r2 ON ping DO NOOP END
              END
            END
            "#,
        )
        .unwrap();
        // Disable the nested set before install. A single top-level
        // RULESET is returned unwrapped, so the path starts at `a`.
        set.find_mut("a.b").expect("path").enabled = false;
        let mut e = ReactiveEngine::new("http://me");
        e.install(&set).unwrap();
        assert_eq!(e.rule_count(), 1);
    }
}
