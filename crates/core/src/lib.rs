//! # reweb-core — the ECA rule language and reactive engine
//!
//! The primary contribution of *Twelve Theses on Reactive Rules for the
//! Web* (Bry & Eckert, EDBT 2006), rebuilt from the theses: an
//! XChange-style language of reactive rules
//!
//! ```text
//! RULE on_payment
//!   ON and( order{{id[[var O]], total[[var T]]}},
//!           payment{{order[[var O]], amount[[var A]]}} ) within 2h
//!   WHERE var A >= var T
//!   IF in "http://shop/customers" customer{{id[[var C]], order[[var O]]}}
//!   THEN CALL ship(var O, var C)
//!   ELSE SEND unmatched_payment{order[var O]} TO "http://shop/alerts"
//! END
//! ```
//!
//! and a per-node engine that processes them **locally** (Thesis 2),
//! reacting to events with event-based communication to other nodes.
//!
//! What lives where:
//!
//! * [`rule`] — [`EcaRule`] with ECAA/ECnAn branching (Thesis 9),
//!   [`RuleSet`] grouping with nesting, enable/disable, and scoped
//!   procedures/views/event-rules.
//! * [`engine`] — [`ReactiveEngine`]: event-label-indexed dispatch,
//!   incremental event query evaluation, condition evaluation over the
//!   local store and views, action execution, timer handling, metrics.
//! * [`parser`] — the full textual rule language (programs, rule sets,
//!   rules, procedures, views, DETECT rules, actions), round-trippable
//!   with the `Display` impls.
//! * [`meta`] — Thesis 11: rules as data. Rules and rule sets reify to
//!   terms that travel inside event messages and reflect back into rules,
//!   so engines can exchange and evaluate each other's rules
//!   (meta-circularity: same language on both levels).
//! * [`shard`] — batch ingestion front-end: a [`ShardedEngine`] owning N
//!   engines, partitioning rules by event-label affinity and routing each
//!   event to the one shard that needs it — semantically equivalent to a
//!   single engine (experiment E13 measures the throughput win).
//! * [`aaa`] — Thesis 12: authentication (salted-hash credentials),
//!   authorization (ACL over event labels, resources, rule installation),
//!   and accounting — realized as *derived events* fed back into the same
//!   engine ("double reactivity") plus usage counters and a billing report.
//! * [`trust`] — the thesis-11 scenario: policy-based trust negotiation by
//!   reactive, incremental rule exchange, with the eager "send every
//!   policy up front" strategy as the E11 baseline.

#![warn(missing_docs)]

pub mod aaa;
pub mod engine;
pub mod meta;
pub mod parser;
pub mod rule;
pub mod shard;
pub mod trust;

pub use aaa::{AaaConfig, AccountingRecord, Acl, Credentials, MessageMeta, Permission, Principal};
pub use engine::{EngineMetrics, MatchMode, OutMessage, ReactiveEngine, ReplayMark};
pub use meta::{rule_from_term, rule_to_term, ruleset_from_term, ruleset_to_term};
pub use parser::{parse_action, parse_program, parse_rule};
pub use reweb_events::JoinMode;
pub use rule::{Branch, EcaRule, RuleSet};
pub use shard::{ExecMode, InMessage, ShardedEngine};
pub use trust::{negotiate, NegotiationOutcome, Party, Policy, Strategy};

pub use reweb_term::TermError;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TermError>;
