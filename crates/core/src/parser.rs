//! Parser for the rule language — programs, rule sets, rules, procedures,
//! views, DETECT rules, and actions.
//!
//! ```text
//! program   ::= item*
//! item      ::= ruleset | rule | procedure | view | detect
//! ruleset   ::= RULESET IDENT item* END
//! rule      ::= RULE IDENT ON eventquery body END
//! body      ::= DO action
//!             | IF condition THEN action
//!               (ELSEIF condition THEN action)* (ELSE action)?
//! procedure ::= PROCEDURE IDENT '(' params? ')' DO action END
//! view      ::= VIEW STRING CONSTRUCT constructterm FROM condition END
//! detect    ::= DETECT constructterm ON eventquery END
//!
//! action    ::= SEQ (action ';')* END
//!             | ALT (action ';')* END
//!             | IF condition THEN action (ELSE action)? END
//!             | UPDATE update
//!             | SEND constructterm TO STRING
//!             | PERSIST constructterm IN STRING
//!             | LOG constructterm
//!             | CALL IDENT '(' (constructterm (',' constructterm)*)? ')'
//!             | NOOP | FAIL STRING
//! update    ::= INSERT constructterm INTO queryterm IN STRING
//!             | DELETE queryterm IN STRING
//!             | REPLACE queryterm BY constructterm IN STRING
//!             | SETATTR IDENT '=' constructterm ON queryterm IN STRING
//! ```
//!
//! Keywords are case-insensitive. Event-level `WHERE` clauses belong to
//! the event query (`ON … WHERE var A >= var T`). Every `Display` impl in
//! this crate prints exactly this syntax, so rules round-trip through
//! their printed form — the property meta-programming (Thesis 11) relies
//! on.

use reweb_events::parser::event_query;
use reweb_events::EventRule;
use reweb_query::parser::{condition, construct_term, query_term};
use reweb_query::DeductiveRule;
use reweb_term::lex::Cursor;
use reweb_term::TermError;
use reweb_update::{Action, ProcedureDef, Update};

use crate::rule::{Branch, EcaRule, RuleSet};

type Result<T> = std::result::Result<T, TermError>;

/// Parse a whole rule program. If the program consists of exactly one
/// top-level `RULESET`, that set is returned as-is; otherwise the items
/// are wrapped in a synthetic root set named `program`.
pub fn parse_program(src: &str) -> Result<RuleSet> {
    let mut cur = Cursor::from_str(src)?;
    let mut root = RuleSet::new("program");
    while !cur.at_end() {
        item(&mut cur, &mut root)?;
    }
    if root.rules.is_empty()
        && root.procedures.is_empty()
        && root.views.is_empty()
        && root.event_rules.is_empty()
        && root.children.len() == 1
    {
        return Ok(root.children.pop().expect("one child"));
    }
    Ok(root)
}

/// Parse a single rule (`RULE … END`).
pub fn parse_rule(src: &str) -> Result<EcaRule> {
    let mut cur = Cursor::from_str(src)?;
    cur.expect_kw("rule")?;
    let r = rule(&mut cur)?;
    if !cur.at_end() {
        return Err(cur.error("trailing input after rule"));
    }
    Ok(r)
}

/// Parse a single action.
pub fn parse_action(src: &str) -> Result<Action> {
    let mut cur = Cursor::from_str(src)?;
    let a = action(&mut cur)?;
    if !cur.at_end() {
        return Err(cur.error("trailing input after action"));
    }
    Ok(a)
}

fn item(cur: &mut Cursor, into: &mut RuleSet) -> Result<()> {
    if cur.eat_kw("ruleset") {
        let name = cur.expect_ident()?;
        let mut set = RuleSet::new(name);
        loop {
            if cur.eat_kw("end") {
                break;
            }
            if cur.at_end() {
                return Err(cur.error("unterminated RULESET"));
            }
            item(cur, &mut set)?;
        }
        into.children.push(set);
        return Ok(());
    }
    if cur.eat_kw("rule") {
        into.rules.push(rule(cur)?);
        return Ok(());
    }
    if cur.eat_kw("procedure") {
        let name = cur.expect_ident()?;
        cur.expect_punct('(')?;
        let mut params = Vec::new();
        if !cur.eat_punct(')') {
            loop {
                params.push(cur.expect_ident()?);
                if !cur.eat_punct(',') {
                    break;
                }
            }
            cur.expect_punct(')')?;
        }
        cur.expect_kw("do")?;
        let body = action(cur)?;
        cur.expect_kw("end")?;
        into.procedures.push(ProcedureDef::new(name, params, body));
        return Ok(());
    }
    if cur.eat_kw("view") {
        let uri = cur.expect_str()?;
        cur.expect_kw("construct")?;
        let head = construct_term(cur)?;
        cur.expect_kw("from")?;
        let body = condition(cur)?;
        cur.expect_kw("end")?;
        into.views.push((uri, DeductiveRule::new(head, body)));
        return Ok(());
    }
    if cur.eat_kw("detect") {
        let head = construct_term(cur)?;
        cur.expect_kw("on")?;
        let on = event_query(cur)?;
        cur.expect_kw("end")?;
        let name = format!("detect_{}", into.event_rules.len());
        into.event_rules.push(EventRule::new(name, head, on));
        return Ok(());
    }
    Err(cur.error("expected RULESET, RULE, PROCEDURE, VIEW, or DETECT"))
}

fn rule(cur: &mut Cursor) -> Result<EcaRule> {
    let name = cur.expect_ident()?;
    cur.expect_kw("on")?;
    let on = event_query(cur)?;
    let mut branches = Vec::new();
    if cur.eat_kw("do") {
        branches.push(Branch {
            cond: reweb_query::Condition::always_true(),
            action: action(cur)?,
        });
    } else {
        cur.expect_kw("if")?;
        let cond = condition(cur)?;
        cur.expect_kw("then")?;
        branches.push(Branch {
            cond,
            action: action(cur)?,
        });
        loop {
            if cur.eat_kw("elseif") {
                let cond = condition(cur)?;
                cur.expect_kw("then")?;
                branches.push(Branch {
                    cond,
                    action: action(cur)?,
                });
            } else if cur.eat_kw("else") {
                branches.push(Branch {
                    cond: reweb_query::Condition::always_true(),
                    action: action(cur)?,
                });
                break;
            } else {
                break;
            }
        }
    }
    cur.expect_kw("end")?;
    Ok(EcaRule { name, on, branches })
}

/// Parse an action at the cursor (public for the meta module).
pub fn action(cur: &mut Cursor) -> Result<Action> {
    if cur.eat_kw("seq") {
        let mut steps = Vec::new();
        loop {
            if cur.eat_kw("end") {
                break;
            }
            steps.push(action(cur)?);
            cur.eat_punct(';');
        }
        return Ok(Action::Seq(steps));
    }
    if cur.eat_kw("alt") {
        let mut alts = Vec::new();
        loop {
            if cur.eat_kw("end") {
                break;
            }
            alts.push(action(cur)?);
            cur.eat_punct(';');
        }
        return Ok(Action::Alt(alts));
    }
    if cur.eat_kw("if") {
        let cond = condition(cur)?;
        cur.expect_kw("then")?;
        let then = action(cur)?;
        let else_ = if cur.eat_kw("else") {
            Some(Box::new(action(cur)?))
        } else {
            None
        };
        cur.expect_kw("end")?;
        return Ok(Action::If {
            cond,
            then: Box::new(then),
            else_,
        });
    }
    if cur.eat_kw("update") {
        return Ok(Action::Update(update(cur)?));
    }
    if cur.eat_kw("send") {
        let payload = construct_term(cur)?;
        cur.expect_kw("to")?;
        let to = cur.expect_str()?;
        return Ok(Action::Send { to, payload });
    }
    if cur.eat_kw("persist") {
        let payload = construct_term(cur)?;
        cur.expect_kw("in")?;
        let resource = cur.expect_str()?;
        return Ok(Action::Persist { resource, payload });
    }
    if cur.eat_kw("log") {
        return Ok(Action::Log(construct_term(cur)?));
    }
    if cur.eat_kw("call") {
        let name = cur.expect_ident()?;
        cur.expect_punct('(')?;
        let mut args = Vec::new();
        if !cur.eat_punct(')') {
            loop {
                args.push(construct_term(cur)?);
                if !cur.eat_punct(',') {
                    break;
                }
            }
            cur.expect_punct(')')?;
        }
        return Ok(Action::Call { name, args });
    }
    if cur.eat_kw("noop") {
        return Ok(Action::Noop);
    }
    if cur.eat_kw("fail") {
        return Ok(Action::Fail(cur.expect_str()?));
    }
    Err(cur
        .error("expected an action (SEQ, ALT, IF, UPDATE, SEND, PERSIST, LOG, CALL, NOOP, FAIL)"))
}

fn update(cur: &mut Cursor) -> Result<Update> {
    if cur.eat_kw("insert") {
        let content = construct_term(cur)?;
        cur.expect_kw("into")?;
        let target = query_term(cur)?;
        cur.expect_kw("in")?;
        let resource = cur.expect_str()?;
        return Ok(Update::insert(resource, target, content));
    }
    if cur.eat_kw("delete") {
        let target = query_term(cur)?;
        cur.expect_kw("in")?;
        let resource = cur.expect_str()?;
        return Ok(Update::delete(resource, target));
    }
    if cur.eat_kw("replace") {
        let target = query_term(cur)?;
        cur.expect_kw("by")?;
        let content = construct_term(cur)?;
        cur.expect_kw("in")?;
        let resource = cur.expect_str()?;
        return Ok(Update::replace(resource, target, content));
    }
    if cur.eat_kw("setattr") {
        let key = cur.expect_ident()?;
        cur.expect_punct('=')?;
        let value = construct_term(cur)?;
        cur.expect_kw("on")?;
        let target = query_term(cur)?;
        cur.expect_kw("in")?;
        let resource = cur.expect_str()?;
        return Ok(Update::set_attr(resource, target, key, value));
    }
    Err(cur.error("expected INSERT, DELETE, REPLACE, or SETATTR"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROGRAM: &str = r#"
        # The marketplace program from the paper's motivation section.
        RULESET shop
          PROCEDURE ship(Order, Customer) DO
            SEQ
              PERSIST shipment{order[var Order], customer[var Customer]} IN "http://shop/shipments";
              SEND shipped{order[var Order]} TO "http://mail";
            END
          END

          VIEW "view://good_customers"
            CONSTRUCT good[var C]
            FROM in "http://shop/customers" customer{{id[[var C]], rating[[var R]]}} and var R >= 4
          END

          DETECT big{id[var O]} ON order{{id[[var O]], total[[var T]]}} where var T >= 100 END

          RULESET orders
            RULE on_payment
              ON and( order{{id[[var O]], total[[var T]]}},
                      payment{{order[[var O]], amount[[var A]]}} ) within 2h
                 where var A >= var T
              IF in "http://shop/customers" customer{{id[[var C]], order[[var O]]}}
              THEN CALL ship(var O, var C)
              ELSEIF in "view://good_customers" good[[var O]]
              THEN NOOP
              ELSE SEND unmatched{order[var O]} TO "http://shop/alerts"
            END
          END
        END
    "#;

    #[test]
    fn parses_full_program() {
        let set = parse_program(PROGRAM).unwrap();
        assert_eq!(set.name, "shop");
        assert_eq!(set.procedures.len(), 1);
        assert_eq!(set.views.len(), 1);
        assert_eq!(set.event_rules.len(), 1);
        assert_eq!(set.children.len(), 1);
        let rule = &set.children[0].rules[0];
        assert_eq!(rule.name, "on_payment");
        assert_eq!(rule.branches.len(), 3);
        assert!(rule.branches[2].cond.is_trivial());
    }

    #[test]
    fn program_roundtrips_through_display() {
        let set = parse_program(PROGRAM).unwrap();
        let printed = set.to_string();
        let reparsed = parse_program(&printed).unwrap();
        assert_eq!(set, reparsed, "printed:\n{printed}");
    }

    #[test]
    fn rule_forms() {
        let r = parse_rule("RULE r ON ping DO NOOP END").unwrap();
        assert_eq!(r.branches.len(), 1);
        assert!(r.branches[0].cond.is_trivial());

        let r = parse_rule("RULE r ON ping IF true THEN NOOP END").unwrap();
        assert_eq!(r.branches.len(), 1);

        let r = parse_rule("RULE r ON ping IF var X > 1 THEN NOOP ELSE FAIL \"no\" END").unwrap();
        assert_eq!(r.branches.len(), 2);
    }

    #[test]
    fn action_forms_roundtrip() {
        for src in [
            "NOOP",
            "FAIL \"boom\"",
            "LOG entry[\"x\"]",
            "SEND m{v[var X]} TO \"http://x\"",
            "PERSIST p[var X] IN \"http://y\"",
            "CALL f(var X, \"lit\")",
            "CALL f()",
            "SEQ NOOP; NOOP; END",
            "ALT FAIL \"a\"; NOOP; END",
            "IF in \"u\" x THEN NOOP ELSE NOOP END",
            "UPDATE INSERT e[\"1\"] INTO ledger IN \"http://l\"",
            "UPDATE DELETE item{{sku[[var K]]}} IN \"http://s\"",
            "UPDATE REPLACE q BY r[\"2\"] IN \"http://s\"",
            "UPDATE SETATTR flag = \"yes\" ON item IN \"http://s\"",
        ] {
            let a = parse_action(src).unwrap();
            let reparsed = parse_action(&a.to_string()).unwrap();
            assert_eq!(a, reparsed, "src: {src}\nprinted: {a}");
        }
    }

    #[test]
    fn nested_compound_actions() {
        let a = parse_action("SEQ ALT FAIL \"x\"; NOOP; END; IF true THEN SEQ NOOP; END END; END")
            .unwrap();
        assert_eq!(a.primitive_count(), 3);
    }

    #[test]
    fn errors() {
        assert!(parse_rule("RULE r ON END").is_err());
        assert!(parse_rule("RULE r ON ping DO NOOP").is_err()); // missing END
        assert!(parse_action("UPDATE FROB x IN \"u\"").is_err());
        assert!(parse_action("SEND x").is_err());
        assert!(parse_program("RULESET a RULE r ON p DO NOOP END").is_err()); // unterminated set
        assert!(parse_program("FROB").is_err());
    }

    #[test]
    fn multiple_top_level_items_get_wrapped() {
        let set = parse_program("RULE a ON p DO NOOP END  RULE b ON q DO NOOP END").unwrap();
        assert_eq!(set.name, "program");
        assert_eq!(set.rules.len(), 2);
        // A single top-level set is returned unwrapped.
        let set = parse_program("RULESET only RULE a ON p DO NOOP END END").unwrap();
        assert_eq!(set.name, "only");
    }
}
