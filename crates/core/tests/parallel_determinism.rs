//! Stress test for the thread-per-shard executor's merge determinism: a
//! 10 000-event batch, processed through serial and parallel
//! [`ShardedEngine`]s 20 times over, must produce **byte-identical**
//! output ordering on every run. Any race in the worker fan-out or the
//! tagged merge — outputs attributed to the wrong message index, phase
//! ordering flipping with thread scheduling, unstable merge keys —
//! shows up here as a sequence mismatch long before it would corrupt an
//! experiment table.

use reweb_core::{InMessage, MessageMeta, ShardedEngine};
use reweb_term::{parse_term, Timestamp};

const EVENTS: usize = 10_000;
const SHARDS: usize = 8;
const RUNS: usize = 20;

/// The rule mix: windowed joins across 8 label groups (exercises
/// partial-match state on every shard — the groups spread round-robin
/// over the 8 shards) and absence rules on two of the groups (exercise
/// the cross-shard deadline path, where merge order is subtlest).
const PROGRAM: &str = r#"
    RULE j0 ON and(evt0{{n[[var N]]}}, ack0{{n[[var N]]}}) within 1m
      DO SEND done0{n[var N]} TO "http://sink" END
    RULE j1 ON and(evt1{{n[[var N]]}}, ack1{{n[[var N]]}}) within 1m
      DO SEND done1{n[var N]} TO "http://sink" END
    RULE j2 ON and(evt2{{n[[var N]]}}, ack2{{n[[var N]]}}) within 1m
      DO SEND done2{n[var N]} TO "http://sink" END
    RULE j3 ON and(evt3{{n[[var N]]}}, ack3{{n[[var N]]}}) within 1m
      DO SEND done3{n[var N]} TO "http://sink" END
    RULE j4 ON and(evt4{{n[[var N]]}}, ack4{{n[[var N]]}}) within 1m
      DO SEND done4{n[var N]} TO "http://sink" END
    RULE j5 ON and(evt5{{n[[var N]]}}, ack5{{n[[var N]]}}) within 1m
      DO SEND done5{n[var N]} TO "http://sink" END
    RULE j6 ON and(evt6{{n[[var N]]}}, ack6{{n[[var N]]}}) within 1m
      DO SEND done6{n[var N]} TO "http://sink" END
    RULE j7 ON and(evt7{{n[[var N]]}}, ack7{{n[[var N]]}}) within 1m
      DO SEND done7{n[var N]} TO "http://sink" END
    RULE gap0 ON absence(evt0{{n[[var N]]}}, ack0{{n[[var N]]}}, 2s)
      DO SEND gap0{n[var N]} TO "http://ops" END
    RULE gap4 ON absence(evt4{{n[[var N]]}}, ack4{{n[[var N]]}}, 2s)
      DO SEND gap4{n[var N]} TO "http://ops" END
"#;

/// Deterministic stream: evt/ack pairs cycling over 8 label groups with
/// LCG jitter, with some acks of the absence-carrying groups dropped so
/// their deadlines actually fire mid-batch on shards that receive no
/// further traffic.
fn stream() -> Vec<InMessage> {
    let meta = MessageMeta::from_uri("http://peer");
    let mut lcg: u64 = 0x2545_F491_4F6C_DD1D;
    let mut at = 0u64;
    let mut msgs = Vec::with_capacity(EVENTS);
    for j in 0..EVENTS {
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        at += 10 + (lcg >> 59); // +10..+41 ms
        let group = (j / 2) % 8;
        let payload = if j % 2 == 0 {
            parse_term(&format!("evt{group}{{n[\"{j}\"]}}")).unwrap()
        } else if j % 32 == 1 || j % 64 == 9 {
            // j ≡ 1 (mod 32) is always an ack of group 0, j ≡ 9 (mod 64)
            // one of group 4 — the two groups carrying absence rules.
            // Dropped ack: the matching absence deadline fires ~2 s
            // later, interleaved with other shards' deliveries.
            parse_term(&format!("noise{{n[\"{j}\"]}}")).unwrap()
        } else {
            parse_term(&format!("ack{group}{{n[\"{}\"]}}", j - 1)).unwrap()
        };
        msgs.push(InMessage::new(payload, meta.clone(), Timestamp(at)));
    }
    msgs
}

fn run(parallel: bool, msgs: &[InMessage]) -> String {
    let mut e = if parallel {
        ShardedEngine::new_parallel("http://node", SHARDS)
    } else {
        ShardedEngine::new("http://node", SHARDS)
    };
    e.install_program(PROGRAM).expect("program installs");
    let out = e.try_receive_batch(msgs).expect("no worker failure");
    // One flat byte string: any reordering, duplication, or loss breaks
    // equality loudly.
    let mut s = String::new();
    for o in out {
        s.push_str(&o.to);
        s.push('<');
        s.push_str(&o.payload.to_string());
        s.push('\n');
    }
    s
}

#[test]
fn twenty_runs_byte_identical_serial_vs_parallel() {
    let msgs = stream();
    let reference = run(false, &msgs);
    assert!(
        reference.lines().count() > EVENTS / 3,
        "workload must produce substantial output ({} lines)",
        reference.lines().count()
    );
    assert!(
        reference.contains("gap0"),
        "absence deadlines must fire mid-batch"
    );
    for i in 0..RUNS {
        let parallel = run(true, &msgs);
        assert!(
            parallel == reference,
            "run {i}: parallel output diverged from serial reference \
             (first difference at byte {})",
            parallel
                .bytes()
                .zip(reference.bytes())
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| parallel.len().min(reference.len()))
        );
    }
    // The serial backend is itself stable across runs (sanity: the
    // reference is not a moving target).
    assert_eq!(run(false, &msgs), reference);
}
